//! Trace export: serialize a run's trace and metrics to JSONL and the
//! Chrome trace-event format.
//!
//! ```text
//! cargo run --example trace_export [output-dir]
//! ```
//!
//! Runs the fixed two-process semaphore scenario (two processes contend
//! for one permit), then writes `trace_export.jsonl` and
//! `trace_export.chrome.json` into `output-dir` (default: `target/`).
//! Load the `.chrome.json` file in <https://ui.perfetto.dev> or
//! `chrome://tracing`: one track per simulated process, each dispatch a
//! one-tick slice, each park…wake episode an async span named after the
//! wait reason.
//!
//! The exporters are pure functions of the run, so for a fixed scenario
//! the output bytes are fixed too — the `trace_export` integration test
//! pins this very scenario's bytes against `docs/`.

use bloom_bench::trace_export_sample;
use bloom_sim::export;
use std::path::PathBuf;

fn main() {
    let out_dir = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target"));
    std::fs::create_dir_all(&out_dir).expect("create output dir");

    let report = trace_export_sample();
    let metrics = &report.metrics;

    let jsonl = export::to_jsonl(&report.trace, metrics);
    let chrome = export::to_chrome_trace(&report.trace, metrics);
    let jsonl_path = out_dir.join("trace_export.jsonl");
    let chrome_path = out_dir.join("trace_export.chrome.json");
    std::fs::write(&jsonl_path, &jsonl).expect("write JSONL");
    std::fs::write(&chrome_path, &chrome).expect("write Chrome trace");

    println!("== trace export: two processes, one semaphore permit ==\n");
    println!(
        "run: {} trace events over {} virtual ticks",
        report.trace.len(),
        report.steps
    );
    println!(
        "metrics: {} dispatches, {} context switches, {} parks, {} wakes, \
         peak queue depth {}, {} sync ops",
        metrics.dispatches,
        metrics.context_switches,
        metrics.total_parks(),
        metrics.total_wakes(),
        metrics.max_queue_depth(),
        metrics.total_sync_ops(),
    );
    for (mechanism, count) in &metrics.sync_ops {
        println!("  sync ops[{mechanism}] = {count}");
    }
    println!("\nwrote {} ({} bytes)", jsonl_path.display(), jsonl.len());
    println!("wrote {} ({} bytes)", chrome_path.display(), chrome.len());
    println!("\nOpen the .chrome.json file in https://ui.perfetto.dev to see the");
    println!("park/wake spans; every line of the .jsonl file is one JSON object.");

    // Self-check with the built-in parser: both documents must be valid.
    for line in jsonl.lines() {
        export::parse_json(line).expect("every JSONL line parses");
    }
    export::parse_json(&chrome).expect("chrome trace parses");
    println!("\nself-check: all exported JSON parses cleanly.");
}
