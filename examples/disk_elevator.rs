//! Hoare's disk-head scheduler, visualized: the same seek workload under
//! all four mechanisms, with the arm's SCAN sweeps drawn per service.
//!
//! ```text
//! cargo run --example disk_elevator
//! ```
//!
//! Also contrasts SCAN with naive FCFS service to show why the elevator
//! policy exists: total head travel drops sharply.

use bloom_core::events::{extract, Phase};
use bloom_problems::disk;
use bloom_sim::prelude::*;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const TRACKS: i64 = 100;

fn workload(seed: u64, n: usize) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..TRACKS)).collect()
}

fn main() {
    let tracks = workload(2026, 10);
    println!("== Hoare's disk-head (elevator) scheduler ==\n");
    println!("Seek requests, in arrival order: {tracks:?}\n");

    for mech in disk::MECHANISMS {
        let mut sim = Sim::new();
        let scheduler = disk::make(mech);

        // One long first seek pins the arm while the rest of the workload
        // queues up, so the elevator actually has something to sort.
        let s0 = Arc::clone(&scheduler);
        let first = tracks[0];
        sim.spawn("warmup", move |ctx| {
            s0.seek(ctx, first, &mut || {
                for _ in 0..12 {
                    ctx.yield_now();
                }
            });
        });
        for (i, &track) in tracks[1..].iter().enumerate() {
            let s = Arc::clone(&scheduler);
            sim.spawn(&format!("client{i}"), move |ctx| {
                ctx.yield_now();
                s.seek(ctx, track, &mut || {});
            });
        }
        let report = sim.run().expect("no deadlock");

        let served: Vec<i64> = extract(&report.trace)
            .iter()
            .filter(|e| e.op == "seek" && e.phase == Phase::Enter)
            .map(|e| e.params[0])
            .collect();
        let travel: i64 = served.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
        println!("{mech}:");
        println!("   service order: {served:?}");
        println!("   head travel:   {travel} tracks");
        draw_sweep(&served);
        println!();
    }

    // FCFS comparison: serve in arrival order.
    let fcfs_travel: i64 = tracks.windows(2).map(|w| (w[1] - w[0]).abs()).sum();
    println!("naive FCFS service of the same workload:");
    println!("   service order: {tracks:?}");
    println!("   head travel:   {fcfs_travel} tracks");
    println!("\nSCAN turns random seeks into at most two sweeps across the platter —");
    println!("that is the request-parameter information (the track number) at work.");
}

/// Draws each serviced track on a 0..100 scale.
fn draw_sweep(served: &[i64]) {
    let shared = Arc::new(Mutex::new(()));
    let _ = shared; // keep the example self-contained, no extra helpers
    for &t in served {
        let pos = (t as usize * 50) / TRACKS as usize;
        let mut line = vec![b'.'; 51];
        line[pos] = b'#';
        println!("   |{}| track {t:>3}", String::from_utf8_lossy(&line));
    }
}
