//! Hoare's alarm clock under all four mechanisms, with a highlight on the
//! serializer's automatic signalling: its `tick` contains no wake-up code
//! at all — the waiting condition (`now >= deadline`) is the enqueue
//! guarantee and is re-evaluated by the mechanism itself.
//!
//! ```text
//! cargo run --example alarm_clock
//! ```

use bloom_core::checks::{check_alarm, expect_clean};
use bloom_core::events::{extract, Phase};
use bloom_problems::alarm;
use bloom_sim::prelude::*;
use std::sync::Arc;

fn main() {
    println!("== Hoare's alarm clock ==\n");
    println!("Nine sleepers with scattered deadlines; a ticker drives the logical clock.\n");

    let delays: Vec<i64> = vec![7, 2, 11, 2, 5, 9, 1, 4, 13];

    for mech in alarm::MECHANISMS {
        let mut sim = Sim::new();
        let clock = alarm::make(mech);

        for (i, &delay) in delays.iter().enumerate() {
            let c = Arc::clone(&clock);
            sim.spawn(&format!("sleeper{i}"), move |ctx| {
                c.wake_me(ctx, delay);
            });
        }
        let c = Arc::clone(&clock);
        sim.spawn_daemon("ticker", move |ctx| loop {
            ctx.sleep(3);
            c.tick(ctx);
        });

        let report = sim.run().expect("all sleepers wake");
        let events = extract(&report.trace);
        expect_clean(
            &check_alarm(&events, "wake", 1),
            &format!("{mech} deadlines"),
        );

        let wakes: Vec<(i64, i64)> = events
            .iter()
            .filter(|e| e.op == "wake" && e.phase == Phase::Enter)
            .map(|e| (e.params[0], e.params[1]))
            .collect();
        println!("{mech}:");
        print!("   wake order (deadline@clock):");
        for (deadline, at) in &wakes {
            print!(" {deadline}@{at}");
        }
        println!();
        let ordered = wakes.windows(2).all(|w| w[0].0 <= w[1].0);
        println!(
            "   earliest-deadline-first: {}\n",
            if ordered { "yes" } else { "NO (bug!)" }
        );
        assert!(ordered);
    }

    println!("Note the serializer version: `tick` only increments the clock — waking");
    println!("whoever is due happens automatically when possession is released, because");
    println!("each sleeper's enqueue carried the guarantee `now >= deadline`.");
}
