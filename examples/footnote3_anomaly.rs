//! The paper's footnote 3, live: Figure 1's readers-priority path
//! expression lets a second writer overtake a waiting reader.
//!
//! ```text
//! cargo run --example footnote3_anomaly
//! ```
//!
//! Part 1 replays Bloom's hand-traced interleaving deterministically and
//! prints the annotated event trace. Part 2 upgrades the argument with
//! the schedule explorer: *every* interleaving of the scenario is
//! executed, counting how many violate readers priority — for Figure 1
//! and for the monitor solution (which never does).

use bloom_core::checks::check_priority_over;
use bloom_core::events::extract;
use bloom_core::{MechanismId, Phase};
use bloom_problems::rw::{self, PathFig1ReadersPriority, ReadersWriters, RwVariant};
use bloom_sim::prelude::*;
use std::sync::Arc;

fn main() {
    println!("== Footnote 3: the Figure-1 readers-priority anomaly ==\n");
    println!("Figure 1 (Campbell & Habermann, as reproduced by Bloom):");
    println!("    path writeattempt end");
    println!("    path {{ requestread }} , requestwrite end");
    println!("    path {{ read }} , (openwrite ; write) end\n");

    // ---- Part 1: the deterministic replay -------------------------------
    let mut sim = Sim::new();
    let db = Arc::new(PathFig1ReadersPriority::new());
    let d1 = Arc::clone(&db);
    sim.spawn("writer-1", move |ctx| {
        d1.write(ctx, &mut || {
            for _ in 0..6 {
                ctx.yield_now(); // a long write
            }
        });
    });
    let d2 = Arc::clone(&db);
    sim.spawn("writer-2", move |ctx| {
        ctx.yield_now(); // arrives while writer-1 writes
        d2.write(ctx, &mut || {});
    });
    let d3 = Arc::clone(&db);
    sim.spawn("reader", move |ctx| {
        ctx.yield_now();
        ctx.yield_now(); // arrives after writer-2, still during the write
        d3.read(ctx, &mut || {});
    });
    let report = sim.run().expect("no deadlock");
    let events = extract(&report.trace);

    println!("Scripted replay (writer-1 writing; writer-2 then reader arrive):");
    for e in &events {
        let who = report.name_of(e.pid);
        let phase = match e.phase {
            Phase::Request => "requests",
            Phase::Enter => "ENTERS",
            Phase::Exit => "exits",
        };
        println!("    [seq {:>3}] {who:<9} {phase} {}", e.seq, e.op);
    }
    let violations = check_priority_over(&events, "read", "write");
    println!();
    for v in &violations {
        println!("  VIOLATION {v}");
    }
    assert!(
        !violations.is_empty(),
        "the scripted anomaly must reproduce"
    );
    println!(
        "\n  \"The second writer will therefore gain access to the resource before\n   \
         the reader, though readers should have priority.\"  — footnote 3\n"
    );

    // ---- Part 2: exhaustive exploration ---------------------------------
    println!("Exhaustive check (two writers, one reader, every interleaving):\n");
    for mech in [
        MechanismId::PathV1,
        MechanismId::PathV3,
        MechanismId::Monitor,
        MechanismId::Serializer,
    ] {
        let (journal, stats) = ExploreConfig::new(500_000).engine(Engine::Parallel).run(
            || {
                let mut sim = Sim::new();
                let db = rw::make(mech, RwVariant::ReadersPriority);
                for i in 0..2 {
                    let db = Arc::clone(&db);
                    sim.spawn(&format!("writer{i}"), move |ctx| {
                        db.write(ctx, &mut || ctx.yield_now());
                    });
                }
                let db = Arc::clone(&db);
                sim.spawn("reader", move |ctx| {
                    db.read(ctx, &mut || ctx.yield_now());
                });
                sim
            },
            |_, result| {
                result.as_ref().is_ok_and(|report| {
                    !check_priority_over(&extract(&report.trace), "read", "write").is_empty()
                })
            },
        );
        assert!(stats.complete);
        let schedules = journal.len();
        let violating = journal.iter().filter(|r| r.value).count();
        let verdict = if violating > 0 {
            "ANOMALOUS"
        } else {
            "correct "
        };
        println!(
            "    {:<14} {verdict}   {violating:>3} of {schedules:>3} schedules violate \
             readers priority",
            mech.to_string()
        );
    }
    println!(
        "\nThe anomaly is a property of Figure 1, not of the scenario: the monitor and\n\
         serializer solutions are clean across the entire schedule tree — and so is\n\
         path-expr v3, where a single Andler predicate (blocked(read) == 0 on write)\n\
         states readers priority directly, exactly the fix the paper's history of the\n\
         mechanism predicts."
    );
}
