//! Runs the paper's full evaluation methodology end to end.
//!
//! ```text
//! cargo run --release --example evaluate_mechanisms
//! ```
//!
//! This is the programmatic version of Sections 4–5: pick a target
//! feature set, derive a minimal example suite, run every mechanism's
//! solutions under the checkers, derive the expressive-power matrix from
//! what the solutions actually needed, and compare constraint
//! independence across the readers/writers family. (Equivalent to the
//! `report` binary, but shows the library API a user would call.)

use bloom_bench::{anomaly_report, solution_matrix};
use bloom_core::{
    catalog, full_target, independence, minimal_cover, paper_profile, InfoType, MechanismId,
};
use bloom_problems::registry::derived_ratings;
use bloom_problems::rw::{self, RwVariant};

fn main() {
    // 1. §4.1 — choose the examples: cover every (kind × info) feature
    //    with minimum redundancy.
    let cat = catalog();
    let target = full_target(&cat);
    let cover = minimal_cover(&cat, &target).expect("catalog covers its own features");
    println!("1. Minimal example suite covering all six information types:");
    for &i in &cover {
        println!("   - {}", cat[i].id);
    }

    // 2. §4.1 — implement and validate: every solution against every
    //    checker (here via the prebuilt matrix runner).
    let (rows, failures) = solution_matrix();
    println!(
        "\n2. Solution matrix: {} solutions validated, {} failures",
        rows.len(),
        failures.len()
    );
    assert!(failures.is_empty());

    // 3. §5 — derive the expressive-power matrix from what the solutions
    //    actually did, and compare with the paper's claims.
    println!("\n3. Expressive power (derived from implementations vs paper claims):");
    for mech in MechanismId::ALL {
        let derived = derived_ratings(mech);
        let paper = paper_profile(mech);
        let mut agree = true;
        for (&info, &rating) in &derived {
            if rating != paper.rating(info) {
                agree = false;
            }
        }
        let summary: Vec<String> = InfoType::ALL
            .iter()
            .filter_map(|&i| derived.get(&i).map(|r| format!("{}={r}", i.label())))
            .collect();
        println!(
            "   {:<14} {}  [{}]",
            mech.to_string(),
            if agree {
                "matches the paper"
            } else {
                "DISAGREES"
            },
            summary.join(", ")
        );
        assert!(agree);
    }

    // 4. §4.2 — constraint independence over the readers/writers family.
    println!("\n4. Constraint independence (shared rw-exclusion across priority variants):");
    for mech in [
        MechanismId::Semaphore,
        MechanismId::Monitor,
        MechanismId::Serializer,
        MechanismId::PathV1,
    ] {
        let rp = rw::make(mech, RwVariant::ReadersPriority).desc();
        let wp = rw::make(mech, RwVariant::WritersPriority).desc();
        let score = independence(&rp, &wp)
            .score
            .expect("shared constraint exists");
        println!(
            "   {:<14} independence {score:.2} — {}",
            mech.to_string(),
            if score == 1.0 {
                "exclusion untouched when priority flips (additive)"
            } else {
                "changing priority rewrote the exclusion too (monolithic)"
            }
        );
    }

    // 5. F1a — the footnote-3 anomaly, exhaustively verified.
    println!("\n5. {}", anomaly_report());
}
