//! Quickstart: the deterministic simulator and all four mechanisms in
//! five minutes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Builds the same one-slot buffer four ways — semaphores, a Hoare
//! monitor, an Atkinson–Hewitt serializer, and a Campbell–Habermann path
//! expression — runs an identical producer/consumer workload over each,
//! and validates all four traces with the same constraint checkers.

use bloom_core::checks::{check_alternation, check_exclusion, expect_clean};
use bloom_core::events::extract;
use bloom_problems::oneslot;
use bloom_sim::prelude::*;
use std::sync::Arc;

fn main() {
    println!("== bloom-eval quickstart: one problem, four mechanisms ==\n");
    println!("The one-slot buffer: deposit and remove must strictly alternate.");
    println!("Path expressions state it in one line:  path deposit ; remove end");
    println!("The others keep a full/empty flag and wake waiters explicitly.\n");

    for mech in oneslot::MECHANISMS {
        // Fresh simulation per mechanism: processes are plain closures,
        // scheduled deterministically (here: a seeded random policy).
        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(7));

        let buffer = oneslot::make(mech);

        let consumer_buf = Arc::clone(&buffer);
        sim.spawn("consumer", move |ctx| {
            for _ in 0..5 {
                let value = consumer_buf.remove(ctx);
                ctx.emit("consumed", &[value]);
            }
        });
        let producer_buf = Arc::clone(&buffer);
        sim.spawn("producer", move |ctx| {
            for value in 0..5 {
                producer_buf.deposit(ctx, value);
            }
        });

        let report = sim.run().expect("no deadlock");

        // One event vocabulary, one checker, four mechanisms.
        let events = extract(&report.trace);
        expect_clean(
            &check_alternation(&events, "deposit", "remove"),
            &format!("{mech} alternation"),
        );
        expect_clean(
            &check_exclusion(&events, &[("deposit", "remove")]),
            &format!("{mech} exclusion"),
        );

        let consumed: Vec<i64> = report
            .trace
            .user_events()
            .filter(|(_, label, _)| *label == "consumed")
            .map(|(_, _, params)| params[0])
            .collect();
        println!(
            "  {mech:<14} consumed {consumed:?} in {} steps, {} trace events — checks pass",
            report.steps,
            report.trace.len()
        );
        assert_eq!(consumed, vec![0, 1, 2, 3, 4]);
    }

    println!("\nSame workload, same checkers, interchangeable mechanisms.");
    println!("Next: `cargo run --example footnote3_anomaly` for the paper's famous bug,");
    println!("      `cargo run --release -p bloom-bench --bin report` for the full evaluation.");
}
