//! The exhaustive schedule explorer, hands on.
//!
//! ```text
//! cargo run --release --example explore_schedules
//! ```
//!
//! The simulator records every contested scheduling decision; the
//! [`ParallelExplorer`] walks the tree of those decisions — depth-first
//! within each worker, work-shared across workers — running *every*
//! interleaving of a scenario. This example uses it to map the deadlock
//! space of the dining philosophers: what fraction of schedules deadlocks
//! naively, and that the two classic cures drive it to zero.

use bloom_semaphore::Semaphore;
use bloom_sim::prelude::*;
use std::sync::Arc;

/// Builds `n` philosophers; `ordered` selects the resource-ordering cure.
fn philosophers(n: usize, ordered: bool) -> impl Fn() -> Sim {
    move || {
        let mut sim = Sim::new();
        let forks: Vec<Arc<Semaphore>> = (0..n)
            .map(|i| Arc::new(Semaphore::strong(&format!("fork{i}"), 1)))
            .collect();
        for i in 0..n {
            let (first_idx, second_idx) = if ordered {
                let left = i;
                let right = (i + 1) % n;
                (left.min(right), left.max(right))
            } else {
                (i, (i + 1) % n)
            };
            let first = Arc::clone(&forks[first_idx]);
            let second = Arc::clone(&forks[second_idx]);
            sim.spawn(&format!("philosopher{i}"), move |ctx| {
                first.p(ctx);
                ctx.yield_now(); // think with one fork in hand
                second.p(ctx);
                second.v(ctx);
                first.v(ctx);
            });
        }
        sim
    }
}

fn explore(label: &str, setup: impl Fn() -> Sim + Sync) {
    let (journal, stats) = ExploreConfig::new(2_000_000)
        .engine(Engine::Parallel)
        .run(setup, |_, result| result.is_err());
    assert!(stats.complete, "{label}: exploration hit the budget cap");
    let schedules = journal.len();
    let deadlocks = journal.iter().filter(|r| r.value).count();
    let pct = 100.0 * deadlocks as f64 / schedules as f64;
    println!("  {label:<28} {schedules:>7} schedules, {deadlocks:>5} deadlock ({pct:>5.1}%)");
}

fn main() {
    println!("== Mapping the dining-philosophers deadlock space ==\n");
    println!("Every interleaving of every variant is executed; a deadlock is any");
    println!("schedule the simulator reports as one (all processes blocked).\n");

    for n in [2usize, 3, 4] {
        explore(&format!("naive, {n} philosophers"), philosophers(n, false));
    }
    println!();
    for n in [2usize, 3, 4] {
        explore(&format!("ordered, {n} philosophers"), philosophers(n, true));
    }

    println!(
        "\nThe deadlock fraction shrinks as the table grows (the circular wait needs\n\
         every philosopher holding its left fork), which is why the bug gets rarer —\n\
         not safer — on real schedulers. Resource ordering removes the cycle\n\
         entirely: zero deadlocking schedules, proven over the whole tree."
    );
}
