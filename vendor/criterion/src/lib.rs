#![forbid(unsafe_code)]
//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `criterion` to this shim via a path dependency in the root
//! manifest. It implements the API subset the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `Bencher::iter` —
//! as a plain timing loop: each benchmark runs `sample_size` samples and
//! prints mean/min per-iteration wall time. No statistics, plots, or
//! baselines; comparisons across mechanisms within one run remain
//! meaningful, which is what the workspace's B1 experiments need.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// The benchmark driver handed to `criterion_group!` functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&id.to_string(), self.sample_size, f);
        self
    }
}

/// A named collection of benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group collects.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, f);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_bench(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (prints nothing extra in this shim).
    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
pub struct BenchmarkId {
    function: Option<String>,
    parameter: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: Some(function.into()),
            parameter: parameter.to_string(),
        }
    }

    /// Identifier carrying just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: None,
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.function {
            Some(function) => write!(f, "{}/{}", function, self.parameter),
            None => f.write_str(&self.parameter),
        }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (once per call; the shim's samples
    /// are whole-routine timings).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.samples.push(start.elapsed());
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::with_capacity(samples),
    };
    for _ in 0..samples {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("  {label}: no samples");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "  {label}: mean {mean:?}, min {min:?} over {} samples",
        bencher.samples.len()
    );
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` that runs the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
