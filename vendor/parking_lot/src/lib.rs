#![forbid(unsafe_code)]
//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `parking_lot` to this shim via a path dependency in the root
//! manifest. It implements exactly the API subset the workspace
//! uses — `Mutex`, `MutexGuard`, `Condvar` — over `std::sync`, with
//! parking_lot's ergonomics: `lock()` returns the guard directly and a
//! poisoned mutex is transparently recovered (the workspace forbids
//! unwinding while holding a lock anyway; recovery keeps shim behavior
//! identical to the real crate, which has no poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive (`parking_lot::Mutex` API subset).
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` exists only so [`Condvar::wait`] can move the std
/// guard out and back; it is `Some` at all times outside that method.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0
            .as_ref()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0
            .as_mut()
            .expect("guard present outside Condvar::wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable (`parking_lot::Condvar` API subset).
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified, atomically releasing the guarded mutex.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present before wait");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or until `timeout` elapses, atomically
    /// releasing the guarded mutex (`parking_lot::Condvar::wait_for`).
    /// Like the real crate, spurious wakeups are possible and the caller
    /// re-checks its predicate in a loop.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard present before wait");
        let (inner, result) = match self.0.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.0 = Some(inner);
        WaitTimeoutResult(result.timed_out())
    }

    /// Wakes one waiter. Returns whether a thread could have been woken
    /// (always `true` here; std does not report it, parking_lot does —
    /// callers in this workspace ignore the value).
    pub fn notify_one(&self) -> bool {
        self.0.notify_one();
        true
    }

    /// Wakes all waiters, returning how many (always 0 here; unused).
    pub fn notify_all(&self) -> usize {
        self.0.notify_all();
        0
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Result of a [`Condvar::wait_for`]: whether the wait ended by timeout
/// rather than a notification (`parking_lot::WaitTimeoutResult` API
/// subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// `true` if the wait timed out without a notification.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_hand_off() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            let mut ready = m.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_one();
        }
        h.join().unwrap();
    }

    #[test]
    fn wait_for_times_out_and_delivers() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        // Timeout path: nobody notifies, so the wait must come back with
        // `timed_out()` and the lock re-held.
        {
            let (m, cv) = &*pair;
            let mut ready = m.lock();
            let r = cv.wait_for(&mut ready, Duration::from_millis(10));
            assert!(r.timed_out());
            assert!(!*ready, "guard is live again after the timeout");
        }
        // Delivery path: a notifying thread flips the flag; the waiter
        // must observe it well inside the generous timeout.
        let pair2 = Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*pair2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock();
        while !*ready {
            let r = cv.wait_for(&mut ready, Duration::from_secs(5));
            assert!(!r.timed_out() || *ready, "five seconds is plenty");
        }
        drop(ready);
        h.join().unwrap();
    }

    #[test]
    fn poison_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7, "lock recovers after a panicking holder");
    }
}
