#![forbid(unsafe_code)]
//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `rand` to this shim via a path dependency in the root
//! manifest. It provides the subset the workspace uses — `rngs::StdRng`,
//! `Rng::gen_range` over half-open integer ranges, and
//! `SeedableRng::seed_from_u64` — backed by SplitMix64.
//!
//! The stream differs from the real `StdRng` (ChaCha12); the workspace
//! only requires workload generation to be *deterministic per seed*, which
//! SplitMix64 satisfies, not any particular stream.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Integer types that [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy {
    /// Maps `raw` into `[lo, hi)` (caller guarantees `lo < hi`).
    fn from_raw(raw: u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn from_raw(raw: u64, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                lo.wrapping_add((raw as u128 % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods (auto-implemented for every source).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range. Panics if the range is empty.
    fn gen_range<T: SampleUniform + PartialOrd>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        let raw = self.next_u64();
        T::from_raw(raw, range.start, range.end)
    }

    /// A random bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        ((self.next_u64() >> 11) as f64 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic generator (SplitMix64; the real crate uses ChaCha12 —
    /// see the crate docs for why the difference does not matter here).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1_000_000u64), b.gen_range(0..1_000_000u64));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5..5i64);
            assert!((-5..5).contains(&v));
            let u = rng.gen_range(3..17usize);
            assert!((3..17).contains(&u));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        assert_ne!(va, vb);
    }
}
