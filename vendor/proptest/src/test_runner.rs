//! Test-execution configuration and failure reporting.

use std::fmt;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Accepted for API compatibility; shrinking is not implemented.
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
        }
    }
}

/// A failed property case (returned by `prop_assert*` and `?`).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    reason: String,
}

impl TestCaseError {
    /// Fails the case with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError {
            reason: reason.into(),
        }
    }

    /// Alias kept for API compatibility (rejects == fail here).
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::fail(reason)
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.reason)
    }
}

impl std::error::Error for TestCaseError {}
