//! Value-generation strategies (no shrinking — see the crate docs).

use std::fmt::Debug;
use std::ops::Range;
use std::rc::Rc;

/// Deterministic per-test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from the test name, so every test has its own
    /// deterministic stream.
    pub fn for_test(name: &str) -> Self {
        let mut state = 0x5EED_B100_14D5_EC75 ^ name.len() as u64;
        for b in name.bytes() {
            state = state.wrapping_mul(0x100_0000_01B3).wrapping_add(b as u64);
        }
        TestRng { state }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform index below `n` (panics if `n == 0`).
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Recursive strategies: `recurse` receives the strategy built so far
    /// and wraps it one level deeper; applied `depth` times. (The real
    /// crate's size parameters are accepted and ignored.)
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut strategy = self.boxed();
        for _ in 0..depth {
            strategy = recurse(strategy).boxed();
        }
        strategy
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe generation, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `any::<T>()`: the full range of a primitive type.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(std::marker::PhantomData)
}

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Debug + Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct ArbitraryStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let raw = rng.next_u64() as u128 % span;
                self.start.wrapping_add(raw as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Simple regex-shaped string strategy: supports `[chars]{m,n}`; any
/// other pattern is generated as the literal text itself.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_repeat(self) {
            Some((chars, lo, hi)) => {
                let len = lo + rng.below(hi - lo + 1);
                (0..len).map(|_| chars[rng.below(chars.len())]).collect()
            }
            None => (*self).to_string(),
        }
    }
}

/// Parses `[abc]{m,n}` (or `[a-e]{m,n}` with ranges) into
/// `(alphabet, m, n)`.
fn parse_class_repeat(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let rest = rest.strip_prefix('{')?;
    let counts = rest.strip_suffix('}')?;
    let (lo, hi) = counts.split_once(',')?;
    let (lo, hi) = (lo.trim().parse().ok()?, hi.trim().parse().ok()?);
    let mut chars = Vec::new();
    let mut it = class.chars().peekable();
    while let Some(c) = it.next() {
        if it.peek() == Some(&'-') {
            let mut jump = it.clone();
            jump.next(); // the '-'
            if let Some(end) = jump.next() {
                it = jump;
                for v in c..=end {
                    chars.push(v);
                }
                continue;
            }
        }
        chars.push(c);
    }
    if chars.is_empty() || lo > hi {
        return None;
    }
    Some((chars, lo, hi))
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice among same-valued strategies (see [`crate::prop_oneof!`]).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Builds the union; panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let arm = rng.below(self.0.len());
        self.0[arm].generate(rng)
    }
}

impl<T> std::fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Union({} arms)", self.0.len())
    }
}

/// Strategy produced by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S> VecStrategy<S> {
    pub(crate) fn new(element: S, len: Range<usize>) -> Self {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.len.start + rng.below(self.len.end - self.len.start);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}
