#![forbid(unsafe_code)]
//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! resolves `proptest` to this shim via a path dependency in the root
//! manifest. It implements the subset the workspace's property tests
//! use: the [`proptest!`] macro, integer-range / `any` / `Just` /
//! tuple / `prop_oneof!` / collection / simple-regex strategies,
//! `prop_map`, `prop_recursive`, boxing, and `prop_assert*`.
//!
//! Differences from the real crate, deliberate for this workspace:
//!
//! * **No shrinking.** A failing case reports the generated inputs and
//!   its case index; the inputs are already small by construction here.
//! * **Deterministic generation.** Cases derive from a fixed seed plus
//!   the case index, so a failure reproduces on every run.
//! * Regex strategies support only the `[chars]{m,n}` shape (the one
//!   form the workspace uses); anything else is treated as a literal.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub mod collection {
    //! Collection strategies (`prop::collection`).
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// A vector whose length is drawn from `len` and whose elements are
    /// drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy::new(element, len)
    }
}

/// The `prop::` paths used by `use proptest::prelude::*` clients.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

/// `prop_assert!(cond, args...)`: fail the current case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)`: equality assertion that fails the case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert_ne!(a, b)`: inequality assertion that fails the case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}

/// `prop_oneof![s1, s2, ...]`: choose uniformly among strategies of the
/// same value type. (The real crate also accepts weights; unused here.)
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// The `proptest! { ... }` test-definition macro.
///
/// Supports an optional leading `#![proptest_config(expr)]` and any
/// number of `#[test] fn name(arg in strategy, ...) { body }` items
/// (doc comments and other attributes pass through).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut rng = $crate::strategy::TestRng::for_test(stringify!($name));
            for case in 0..config.cases {
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);
                )+
                let inputs = format!(
                    concat!($("\n  ", stringify!($arg), " = {:?}",)+),
                    $(&$arg),+
                );
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}\ninputs:{}",
                        case + 1,
                        config.cases,
                        stringify!($name),
                        e,
                        inputs
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}
