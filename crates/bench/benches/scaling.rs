//! B1c: substrate scaling — simulator and mechanism cost as the process
//! count grows.
//!
//! Fixed total work (process count × operations is constant) over a
//! contended FCFS resource, per mechanism: shows how each mechanism's
//! wake-up machinery scales with the number of waiters, plus the
//! simulator's own scheduling cost as a baseline.

use bloom_problems::drivers::fcfs_scenario;
use bloom_problems::fcfs;
use bloom_sim::{Sim, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const TOTAL_OPS: usize = 96;

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_baseline");
    group.sample_size(12);
    for procs in [2usize, 8, 24] {
        group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
            b.iter(|| {
                let mut sim = Sim::with_config(SimConfig {
                    max_steps: 500_000,
                    record_sched_events: false,
                    ..SimConfig::default()
                });
                let per = TOTAL_OPS / procs;
                for i in 0..procs {
                    sim.spawn(&format!("p{i}"), move |ctx| {
                        for _ in 0..per {
                            ctx.yield_now();
                        }
                    });
                }
                sim.run().unwrap();
            })
        });
    }
    group.finish();

    for mech in fcfs::MECHANISMS {
        let mut group = c.benchmark_group(format!("fcfs_scaling_{mech}"));
        group.sample_size(12);
        for procs in [2usize, 8, 24] {
            group.bench_with_input(BenchmarkId::from_parameter(procs), &procs, |b, &procs| {
                let per = TOTAL_OPS / procs;
                b.iter(|| fcfs_scenario(mech, procs, per, None));
            });
        }
        group.finish();
    }
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
