//! B1b: whole-problem throughput, mechanism vs mechanism.
//!
//! One benchmark per canonical problem, identical workload across
//! mechanisms. The interesting output is the *ordering and ratios*
//! between mechanisms on the same problem (who pays for what machinery),
//! not absolute wall-clock numbers (which include the deterministic
//! simulator's hand-off costs).

use bloom_core::MechanismId;
use bloom_problems::drivers::{
    alarm_scenario, buffer_scenario, disk_scenario, fcfs_scenario, oneslot_scenario, rw_scenario,
};
use bloom_problems::rw::RwVariant;
use bloom_problems::{alarm, buffer, disk, fcfs, oneslot, rw};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_problems(c: &mut Criterion) {
    let mut group = c.benchmark_group("oneslot");
    group.sample_size(15);
    for mech in oneslot::MECHANISMS {
        group.bench_with_input(BenchmarkId::from_parameter(mech), &mech, |b, &mech| {
            b.iter(|| oneslot_scenario(mech, 25, None));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bounded_buffer");
    group.sample_size(15);
    for mech in buffer::MECHANISMS {
        group.bench_with_input(BenchmarkId::from_parameter(mech), &mech, |b, &mech| {
            b.iter(|| buffer_scenario(mech, 4, 2, 2, 10, None));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fcfs_resource");
    group.sample_size(15);
    for mech in fcfs::MECHANISMS {
        group.bench_with_input(BenchmarkId::from_parameter(mech), &mech, |b, &mech| {
            b.iter(|| fcfs_scenario(mech, 5, 6, None));
        });
    }
    group.finish();

    for variant in [RwVariant::ReadersPriority, RwVariant::Fcfs] {
        let mut group = c.benchmark_group(format!("rw_{variant:?}"));
        group.sample_size(15);
        for mech in rw::MECHANISMS {
            group.bench_with_input(BenchmarkId::from_parameter(mech), &mech, |b, &mech| {
                b.iter(|| rw_scenario(mech, variant, 4, 2, 4, None));
            });
        }
        group.finish();
    }

    let mut group = c.benchmark_group("disk_scheduler");
    group.sample_size(15);
    for mech in disk::MECHANISMS {
        group.bench_with_input(BenchmarkId::from_parameter(mech), &mech, |b, &mech| {
            b.iter(|| disk_scenario(mech, 4, 5, 7, None));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("alarm_clock");
    group.sample_size(15);
    for mech in alarm::MECHANISMS {
        group.bench_with_input(BenchmarkId::from_parameter(mech), &mech, |b, &mech| {
            b.iter(|| alarm_scenario(mech, 6, 5, None));
        });
    }
    group.finish();

    // The evaluation-methodology hot paths themselves.
    let mut group = c.benchmark_group("methodology");
    group.sample_size(20);
    group.bench_function("minimal_cover", |b| {
        let cat = bloom_core::catalog();
        let target = bloom_core::full_target(&cat);
        b.iter(|| bloom_core::minimal_cover(&cat, &target));
    });
    group.bench_function("independence_rw_family", |b| {
        let rp = rw::make(MechanismId::Monitor, RwVariant::ReadersPriority).desc();
        let wp = rw::make(MechanismId::Monitor, RwVariant::WritersPriority).desc();
        b.iter(|| bloom_core::independence(&rp, &wp));
    });
    group.finish();
}

criterion_group!(benches, bench_problems);
criterion_main!(benches);
