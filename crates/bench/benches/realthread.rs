//! R4 companion bench: the five mechanisms on real OS threads
//! (`bloom-rt`), uncontended and contended, plus one problem-shaped
//! workload — the criterion counterpart of `bench_realthread`, which
//! archives the same shapes to `BENCH_realthread.json`.
//!
//! Each iteration spawns the run's threads and joins them, so absolute
//! numbers include thread spawn cost (exactly as `primitives.rs` numbers
//! include the simulator's context-switch cost); mechanism-to-mechanism
//! comparison is the meaningful output, and sim-vs-real comparison goes
//! through `primitives.rs` run on the same host.

use bloom_rt::{RtChannel, RtConfig, RtMonitor, RtPathResource, RtSemaphore, RtSerializer, RtSim};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;
use std::time::Duration;

const OPS: usize = 200;
const CONTENDERS: usize = 4;

fn quiet_rt() -> RtSim {
    RtSim::with_config(RtConfig {
        watchdog: Duration::from_secs(60),
        ..RtConfig::default()
    })
}

fn bench_uncontended(c: &mut Criterion) {
    let mut group = c.benchmark_group("realthread_uncontended");
    group.sample_size(20);

    group.bench_function("semaphore_pv", |b| {
        b.iter(|| {
            let mut rt = quiet_rt();
            let sem = Arc::new(RtSemaphore::strong("s", 1));
            rt.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    sem.p(ctx);
                    sem.v(ctx);
                }
            });
            rt.run().unwrap();
        })
    });

    group.bench_function("monitor_enter", |b| {
        b.iter(|| {
            let mut rt = quiet_rt();
            let m = Arc::new(RtMonitor::hoare("m", 0i64));
            rt.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    m.enter(ctx, |mc| mc.state(|v| *v += 1));
                }
            });
            rt.run().unwrap();
        })
    });

    group.bench_function("serializer_enter", |b| {
        b.iter(|| {
            let mut rt = quiet_rt();
            let s = Arc::new(RtSerializer::new("s", 0i64));
            rt.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    s.enter(ctx, |sc| sc.state(|v| *v += 1));
                }
            });
            rt.run().unwrap();
        })
    });

    group.bench_function("pathexpr_perform", |b| {
        b.iter(|| {
            let mut rt = quiet_rt();
            let r = Arc::new(RtPathResource::parse("r", "path op end").unwrap());
            rt.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    r.perform(ctx, "op", || ());
                }
            });
            rt.run().unwrap();
        })
    });

    group.bench_function("channel_rendezvous", |b| {
        b.iter(|| {
            let mut rt = quiet_rt();
            let ch = Arc::new(RtChannel::<i64>::new("ch"));
            let tx = Arc::clone(&ch);
            rt.spawn("sender", move |ctx| {
                for _ in 0..OPS {
                    tx.send(ctx, 1);
                }
            });
            rt.spawn("receiver", move |ctx| {
                for _ in 0..OPS {
                    ch.recv(ctx);
                }
            });
            rt.run().unwrap();
        })
    });

    group.finish();
}

fn bench_contended(c: &mut Criterion) {
    let mut group = c.benchmark_group("realthread_contended");
    group.sample_size(20);

    group.bench_function("semaphore_pv_4way", |b| {
        b.iter(|| {
            let mut rt = quiet_rt();
            let sem = Arc::new(RtSemaphore::strong("s", 1));
            for i in 0..CONTENDERS {
                let s = Arc::clone(&sem);
                rt.spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..OPS / CONTENDERS {
                        s.p(ctx);
                        s.v(ctx);
                    }
                });
            }
            rt.run().unwrap();
        })
    });

    group.bench_function("monitor_enter_4way", |b| {
        b.iter(|| {
            let mut rt = quiet_rt();
            let m = Arc::new(RtMonitor::hoare("m", 0i64));
            for i in 0..CONTENDERS {
                let m = Arc::clone(&m);
                rt.spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..OPS / CONTENDERS {
                        m.enter(ctx, |mc| mc.state(|v| *v += 1));
                    }
                });
            }
            rt.run().unwrap();
        })
    });

    group.finish();
}

fn bench_problem(c: &mut Criterion) {
    let mut group = c.benchmark_group("realthread_problem");
    group.sample_size(20);

    group.bench_function("oneslot_buffer", |b| {
        b.iter(|| {
            let mut rt = quiet_rt();
            let m = Arc::new(RtMonitor::hoare("buf", None::<i64>));
            let notfull = Arc::new(bloom_rt::RtCond::new("notfull"));
            let notempty = Arc::new(bloom_rt::RtCond::new("notempty"));
            m.register_cond(&notfull);
            m.register_cond(&notempty);
            let (m1, nf1, ne1) = (Arc::clone(&m), Arc::clone(&notfull), Arc::clone(&notempty));
            rt.spawn("producer", move |ctx| {
                for i in 0..OPS {
                    m1.enter(ctx, |mc| {
                        while mc.state(|s| s.is_some()) {
                            mc.wait(&nf1);
                        }
                        mc.state(|s| *s = Some(i as i64));
                        mc.signal(&ne1);
                    });
                }
            });
            rt.spawn("consumer", move |ctx| {
                for _ in 0..OPS {
                    m.enter(ctx, |mc| {
                        while mc.state(|s| s.is_none()) {
                            mc.wait(&notempty);
                        }
                        mc.state(|s| *s = None);
                        mc.signal(&notfull);
                    });
                }
            });
            rt.run().unwrap();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_uncontended, bench_contended, bench_problem);
criterion_main!(benches);
