//! B1a: per-operation overhead of each mechanism's primitive.
//!
//! Measures one uncontended synchronized operation per mechanism, over
//! the same simulator substrate, so differences reflect mechanism
//! machinery (guard evaluation, queue scans, token accounting) rather
//! than harness costs. The paper's qualitative claim — "serializers
//! provide more mechanism than monitors, at more cost" (§5.2) — becomes
//! measurable here; the path-expression interpreter's conjunction scan
//! sits somewhere between.
//!
//! Absolute numbers include the deterministic simulator's context-switch
//! cost (two condvar hand-offs per scheduling point) and one OS-thread
//! spawn per process per iteration; comparisons across mechanisms are the
//! meaningful output.

use bloom_monitor::Monitor;
use bloom_pathexpr::PathResource;
use bloom_semaphore::{Semaphore, TryResult};
use bloom_serializer::Serializer;
use bloom_sim::{Sim, SimConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

const OPS: usize = 200;

fn quiet_sim() -> Sim {
    Sim::with_config(SimConfig {
        max_steps: 1_000_000,
        record_sched_events: false,
        ..SimConfig::default()
    })
}

fn bench_primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("primitive_op");
    group.sample_size(20);

    group.bench_function("baseline_yield", |b| {
        b.iter(|| {
            let mut sim = quiet_sim();
            sim.spawn("solo", |ctx| {
                for _ in 0..OPS {
                    ctx.yield_now();
                }
            });
            sim.run().unwrap();
        })
    });

    group.bench_function("semaphore_pv", |b| {
        b.iter(|| {
            let mut sim = quiet_sim();
            let sem = Arc::new(Semaphore::strong("s", 1));
            sim.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    sem.p(ctx);
                    sem.v(ctx);
                }
            });
            sim.run().unwrap();
        })
    });

    // The R2 deadline layer's fast path: an uncontended timed acquire
    // never arms a timer or touches the sleep queue, so `p_by`
    // should price like bare `p` plus one deadline computation. Compare
    // against `semaphore_pv` above.
    group.bench_function("semaphore_pv_timed", |b| {
        b.iter(|| {
            let mut sim = quiet_sim();
            let sem = Arc::new(Semaphore::strong("s", 1));
            sim.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    assert_eq!(sem.p_by(ctx, 8u64), TryResult::Acquired);
                    sem.v(ctx);
                }
            });
            sim.run().unwrap();
        })
    });

    group.bench_function("monitor_enter", |b| {
        b.iter(|| {
            let mut sim = quiet_sim();
            let m = Arc::new(Monitor::hoare("m", 0u64));
            sim.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    m.enter(ctx, |mc| mc.state(|n| *n += 1));
                }
            });
            sim.run().unwrap();
        })
    });

    group.bench_function("serializer_enter_crowd", |b| {
        b.iter(|| {
            let mut sim = quiet_sim();
            let s = Arc::new(Serializer::new("s", 0u64));
            let q = s.queue("q");
            let crowd = s.crowd("c");
            sim.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    s.enter(ctx, |sc| {
                        sc.enqueue(q, move |v| v.crowd_is_empty(crowd));
                        sc.state(|n| *n += 1);
                        sc.join_crowd(crowd, || {});
                    });
                }
            });
            sim.run().unwrap();
        })
    });

    group.bench_function("path_perform", |b| {
        b.iter(|| {
            let mut sim = quiet_sim();
            let r = Arc::new(PathResource::parse("r", "path op end").unwrap());
            sim.spawn("solo", move |ctx| {
                for _ in 0..OPS {
                    r.perform(ctx, "op", || {});
                }
            });
            sim.run().unwrap();
        })
    });

    // The Figure-1 path system: three conjunct paths and the nested
    // synchronization-procedure chain per WRITE.
    group.bench_function("path_figure1_write", |b| {
        b.iter(|| {
            let mut sim = quiet_sim();
            let r = Arc::new(
                PathResource::parse(
                    "rw",
                    "path writeattempt end \
                     path { requestread } , requestwrite end \
                     path { read } , (openwrite ; write) end",
                )
                .unwrap(),
            );
            sim.spawn("solo", move |ctx| {
                for _ in 0..OPS / 4 {
                    r.perform(ctx, "writeattempt", || {
                        r.perform(ctx, "requestwrite", || {
                            r.perform(ctx, "openwrite", || {});
                        });
                    });
                    r.perform(ctx, "write", || {});
                }
            });
            sim.run().unwrap();
        })
    });

    group.finish();
}

criterion_group!(benches, bench_primitives);
criterion_main!(benches);
