//! Exploration throughput baseline: serial [`Explorer`] vs the
//! work-sharing [`ParallelExplorer`] at 1/2/4/8 workers, over two real
//! schedule trees, plus the equivalence prune's effect on a
//! stutter-heavy tree. Writes `BENCH_explore.json` at the repo root
//! (archived in EXPERIMENTS.md §E1).
//!
//! ```text
//! cargo run --release -p bloom-bench --bin bench_explore
//! ```
//!
//! Wall-clock measurement is deliberately confined to this binary — the
//! deterministic report (`report.rs`) must stay machine-independent; this
//! artifact, like the criterion benches, is a measurement and says so.

use bloom_core::MechanismId;
use bloom_problems::liveness::{deadlock_recovery_sim, LiveMechanism};
use bloom_problems::rw::{self, RwVariant};
use bloom_sim::{Explorer, ParallelExplorer, Sim};
use std::sync::Arc;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The experiment-R2 dining-philosophers recovery tree: contested forks,
/// deadlock detection, and kernel victim-abort on many schedules.
fn recovery_tree() -> Sim {
    deadlock_recovery_sim(LiveMechanism::SemaphoreStrong)
}

/// The footnote-3 anomaly tree (two writers, one reader, Figure-1 paths):
/// the F1a report section's workload.
fn anomaly_tree() -> Sim {
    let mut sim = Sim::new();
    let db = rw::make(MechanismId::PathV1, RwVariant::ReadersPriority);
    for i in 0..2 {
        let db = Arc::clone(&db);
        sim.spawn(&format!("writer{i}"), move |ctx| {
            db.write(ctx, &mut || ctx.yield_now());
        });
    }
    let db2 = Arc::clone(&db);
    sim.spawn("reader", move |ctx| {
        db2.read(ctx, &mut || ctx.yield_now());
    });
    sim
}

/// Stutter-heavy dining scenario for the prune measurement: extra bare
/// yields between fork operations create pure quanta whose sibling
/// subtrees the sleep-set prune can discard.
fn dining_tree(n: usize) -> Sim {
    let mut sim = Sim::new();
    let forks: Vec<Arc<bloom_semaphore::Semaphore>> = (0..n)
        .map(|i| Arc::new(bloom_semaphore::Semaphore::strong(&format!("fork{i}"), 1)))
        .collect();
    for i in 0..n {
        let (a, b) = (i, (i + 1) % n);
        let (a, b) = (a.min(b), a.max(b));
        let first = Arc::clone(&forks[a]);
        let second = Arc::clone(&forks[b]);
        sim.spawn(&format!("philosopher{i}"), move |ctx| {
            first.p(ctx);
            ctx.yield_now();
            ctx.yield_now();
            second.p(ctx);
            second.v(ctx);
            first.v(ctx);
        });
    }
    sim
}

struct Measurement {
    schedules: usize,
    secs: f64,
}

fn time_serial(iters: usize, setup: impl Fn() -> Sim) -> Measurement {
    let start = Instant::now();
    let mut schedules = 0;
    for _ in 0..iters {
        let mut errors = 0usize;
        let stats = Explorer::new(usize::MAX).run(&setup, |_, result| {
            errors += usize::from(result.is_err());
        });
        assert!(stats.complete);
        std::hint::black_box(errors);
        schedules = stats.schedules;
    }
    Measurement {
        schedules,
        secs: start.elapsed().as_secs_f64() / iters as f64,
    }
}

fn time_parallel(iters: usize, threads: usize, setup: impl Fn() -> Sim + Sync) -> Measurement {
    let start = Instant::now();
    let mut schedules = 0;
    for _ in 0..iters {
        let (journal, stats) = ParallelExplorer::new(usize::MAX)
            .threads(threads)
            .run(&setup, |_, result| result.is_err());
        assert!(stats.complete);
        std::hint::black_box(journal.iter().filter(|r| r.value).count());
        schedules = journal.len();
    }
    Measurement {
        schedules,
        secs: start.elapsed().as_secs_f64() / iters as f64,
    }
}

fn bench_tree(name: &str, iters: usize, setup: impl Fn() -> Sim + Sync) -> String {
    let serial = time_serial(iters, &setup);
    eprintln!(
        "{name}: serial {} schedules in {:.3}s ({:.0}/s)",
        serial.schedules,
        serial.secs,
        serial.schedules as f64 / serial.secs
    );
    let mut parallel_entries = Vec::new();
    for &threads in &THREAD_COUNTS {
        let m = time_parallel(iters, threads, &setup);
        assert_eq!(
            m.schedules, serial.schedules,
            "{name}: parallel schedule count diverged at {threads} threads"
        );
        let speedup = serial.secs / m.secs;
        eprintln!(
            "{name}: {threads} thread(s) {:.3}s ({:.0}/s, {speedup:.2}x)",
            m.secs,
            m.schedules as f64 / m.secs
        );
        parallel_entries.push(format!(
            "{{ \"threads\": {threads}, \"schedules\": {}, \"secs\": {:.6}, \
             \"schedules_per_sec\": {:.0}, \"speedup\": {speedup:.2} }}",
            m.schedules,
            m.secs,
            m.schedules as f64 / m.secs
        ));
    }
    format!(
        "{{\n      \"name\": \"{name}\",\n      \"schedules\": {},\n      \
         \"serial\": {{ \"secs\": {:.6}, \"schedules_per_sec\": {:.0} }},\n      \
         \"parallel\": [\n        {}\n      ]\n    }}",
        serial.schedules,
        serial.secs,
        serial.schedules as f64 / serial.secs,
        parallel_entries.join(",\n        ")
    )
}

fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!("host: {cores} core(s) available");
    let trees = [
        bench_tree("liveness-recovery", 20, recovery_tree),
        bench_tree("anomaly", 100, anomaly_tree),
    ];

    // Prune measurement: the same stutter-heavy tree with and without the
    // equivalence prune, serial and 4-thread parallel agreeing exactly.
    let full = time_serial(3, || dining_tree(3));
    let (pruned_schedules, pruned_count) = {
        let stats = Explorer::new(usize::MAX)
            .with_pruning()
            .run(|| dining_tree(3), |_, _| {});
        assert!(stats.complete);
        (stats.schedules, stats.pruned)
    };
    let (pjournal, pstats) = ParallelExplorer::new(usize::MAX)
        .threads(4)
        .with_pruning()
        .run(|| dining_tree(3), |_, _| ());
    assert_eq!(pjournal.len(), pruned_schedules);
    assert_eq!(pstats.pruned, pruned_count);
    eprintln!(
        "pruning(dining-strong-3): {} full schedules, {} after prune ({} subtrees cut)",
        full.schedules, pruned_schedules, pruned_count
    );

    let json = format!(
        "{{\n  \"host_cores\": {cores},\n  \"trees\": [\n    {}\n  ],\n  \"pruning\": {{\n    \
         \"tree\": \"dining-strong-3\",\n    \"full_schedules\": {},\n    \
         \"pruned_schedules\": {},\n    \"pruned_subtrees\": {}\n  }}\n}}\n",
        trees.join(",\n    "),
        full.schedules,
        pruned_schedules,
        pruned_count
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("{json}");
}
