//! Exploration baselines: serial [`Explorer`] vs the work-sharing
//! [`ParallelExplorer`] at 1/2/4/8 workers over two real schedule trees
//! (E1, throughput), the equivalence prune's three layers — the pure-
//! stutter-only prune of PR 3 vs the object-granular sleep-set prune vs
//! the reads-from revisit mode (E4) —
//! on the same trees plus a stutter-heavy dining scenario (E2, schedule
//! counts), and the exploration-kernel execution modes — legacy
//! spawn-per-run replay vs the pooled host kernel, replay vs
//! checkpointed resume — on the pruned anomaly+background tree (E3,
//! throughput, with schedule/prune counts asserted identical across
//! modes). Writes `BENCH_explore.json` at the repo root (archived in
//! EXPERIMENTS.md §E1/§E2/§E3); the CI explore job gates on the E3
//! section.
//!
//! ```text
//! cargo run --release -p bloom-bench --bin bench_explore            # E1/E2
//! cargo run --release -p bloom-bench --bin bench_explore -- --sample --symbolic
//! ```
//!
//! With `--sample`, a third section measures the R3 *samplers* (PCT and
//! random walk) on the scaled starvation scenario: sampled schedules
//! per second at 1/2/4/8 workers, plus the deterministic violation
//! counts the throughput was bought with. With `--symbolic`, a fourth
//! section records the E5 symbolic-vs-concrete schedule counts for the
//! two `choose_value` scenarios (the CI explore job gates
//! `symbolic <= concrete` on it). Without a flag its section is an
//! empty array, so the JSON shape is stable either way.
//!
//! Wall-clock measurement is deliberately confined to this binary — the
//! deterministic report (`report.rs`) must stay machine-independent; this
//! artifact, like the criterion benches, is a measurement and says so.
//! The prune *counts*, by contrast, are deterministic, and this binary
//! asserts their soundness while measuring: every prune mode observes
//! the identical behavior set, and every pruned tree is byte-identical
//! across 1/2/4/8 worker threads.

use bloom_core::MechanismId;
use bloom_problems::liveness::{deadlock_recovery_sim, LiveMechanism};
use bloom_problems::r3::{starvation_at_scale, starvation_laws};
use bloom_problems::rw::{self, RwVariant};
use bloom_problems::symbolic::{compare_andler, compare_csp, SymbolicComparison};
use bloom_problems::workload::{Arrival, Think, WorkloadSpec};
use bloom_sim::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The experiment-R2 dining-philosophers recovery tree: contested forks,
/// deadlock detection, and kernel victim-abort on many schedules.
fn recovery_tree() -> Sim {
    deadlock_recovery_sim(LiveMechanism::SemaphoreStrong)
}

/// The footnote-3 anomaly tree (two writers, one reader, Figure-1 paths):
/// the F1a report section's workload. `reuse_hosts: false` selects the
/// legacy spawn-per-run kernel for the E3 baseline; everything else uses
/// the pooled default.
fn anomaly_tree_on(reuse_hosts: bool) -> Sim {
    let mut sim = Sim::with_config(SimConfig {
        reuse_hosts,
        ..SimConfig::default()
    });
    let db = rw::make(MechanismId::PathV1, RwVariant::ReadersPriority);
    for i in 0..2 {
        let db = Arc::clone(&db);
        sim.spawn(&format!("writer{i}"), move |ctx| {
            db.write(ctx, &mut || ctx.yield_now());
        });
    }
    let db2 = Arc::clone(&db);
    sim.spawn("reader", move |ctx| {
        db2.read(ctx, &mut || ctx.yield_now());
    });
    sim
}

fn anomaly_tree() -> Sim {
    anomaly_tree_on(true)
}

/// The footnote-3 tree as explored for the prune comparison: the
/// Figure-1 scenario of [`anomaly_tree`] plus one background process
/// working a private semaphore. Every quantum of the bare scenario
/// touches the single shared path machine, so the object-granular layer
/// cannot improve on the pure-stutter prune there (both leave all 44
/// schedules); the background worker is the minimal independent load
/// that separates the two layers — its semaphore quanta conflict with
/// nothing the anomaly processes touch, which only per-object footprints
/// can see. This is also the representative case: exploring a subsystem
/// embedded in a larger program.
fn anomaly_bg_tree_on(reuse_hosts: bool) -> Sim {
    let mut sim = anomaly_tree_on(reuse_hosts);
    let side = Arc::new(bloom_semaphore::Semaphore::strong("side", 1));
    sim.spawn("background", move |ctx| {
        side.p(ctx);
        ctx.yield_now();
        side.v(ctx);
    });
    sim
}

fn anomaly_bg_tree() -> Sim {
    anomaly_bg_tree_on(true)
}

/// Stutter-heavy dining scenario for the prune measurement: extra bare
/// yields between fork operations create pure quanta whose sibling
/// subtrees the sleep-set prune can discard.
fn dining_tree(n: usize) -> Sim {
    let mut sim = Sim::new();
    let forks: Vec<Arc<bloom_semaphore::Semaphore>> = (0..n)
        .map(|i| Arc::new(bloom_semaphore::Semaphore::strong(&format!("fork{i}"), 1)))
        .collect();
    for i in 0..n {
        let (a, b) = (i, (i + 1) % n);
        let (a, b) = (a.min(b), a.max(b));
        let first = Arc::clone(&forks[a]);
        let second = Arc::clone(&forks[b]);
        sim.spawn(&format!("philosopher{i}"), move |ctx| {
            first.p(ctx);
            ctx.yield_now();
            ctx.yield_now();
            second.p(ctx);
            second.v(ctx);
            first.v(ctx);
        });
    }
    sim
}

struct Measurement {
    schedules: usize,
    secs: f64,
}

fn time_serial(iters: usize, setup: impl Fn() -> Sim + Sync) -> Measurement {
    let start = Instant::now();
    let mut schedules = 0;
    for _ in 0..iters {
        let (journal, stats) =
            ExploreConfig::new(usize::MAX).run(&setup, |_, result| result.is_err());
        assert!(stats.complete);
        std::hint::black_box(journal.iter().filter(|r| r.value).count());
        schedules = stats.schedules;
    }
    Measurement {
        schedules,
        secs: start.elapsed().as_secs_f64() / iters as f64,
    }
}

fn time_parallel(iters: usize, threads: usize, setup: impl Fn() -> Sim + Sync) -> Measurement {
    let start = Instant::now();
    let mut schedules = 0;
    for _ in 0..iters {
        let (journal, stats) = ExploreConfig::new(usize::MAX)
            .threads(threads)
            .run(&setup, |_, result| result.is_err());
        assert!(stats.complete);
        std::hint::black_box(journal.iter().filter(|r| r.value).count());
        schedules = journal.len();
    }
    Measurement {
        schedules,
        secs: start.elapsed().as_secs_f64() / iters as f64,
    }
}

fn bench_tree(name: &str, iters: usize, setup: impl Fn() -> Sim + Sync) -> String {
    let serial = time_serial(iters, &setup);
    eprintln!(
        "{name}: serial {} schedules in {:.3}s ({:.0}/s)",
        serial.schedules,
        serial.secs,
        serial.schedules as f64 / serial.secs
    );
    let mut parallel_entries = Vec::new();
    for &threads in &THREAD_COUNTS {
        let m = time_parallel(iters, threads, &setup);
        assert_eq!(
            m.schedules, serial.schedules,
            "{name}: parallel schedule count diverged at {threads} threads"
        );
        let speedup = serial.secs / m.secs;
        eprintln!(
            "{name}: {threads} thread(s) {:.3}s ({:.0}/s, {speedup:.2}x)",
            m.secs,
            m.schedules as f64 / m.secs
        );
        parallel_entries.push(format!(
            "{{ \"threads\": {threads}, \"schedules\": {}, \"secs\": {:.6}, \
             \"schedules_per_sec\": {:.0}, \"speedup\": {speedup:.2} }}",
            m.schedules,
            m.secs,
            m.schedules as f64 / m.secs
        ));
    }
    format!(
        "{{\n      \"name\": \"{name}\",\n      \"schedules\": {},\n      \
         \"serial\": {{ \"secs\": {:.6}, \"schedules_per_sec\": {:.0} }},\n      \
         \"parallel\": [\n        {}\n      ]\n    }}",
        serial.schedules,
        serial.secs,
        serial.schedules as f64 / serial.secs,
        parallel_entries.join(",\n        ")
    )
}

/// Canonical behavior of one schedule: liveness verdict, recovery
/// victims, and the ordered user-event journal. Timestamps are excluded
/// on purpose — commuting a pure quantum shifts every later timestamp,
/// and that is exactly the unobservable difference the prune collapses.
fn behavior(result: &Result<SimReport, SimError>) -> String {
    let report = match result {
        Ok(report) => report,
        Err(err) => &err.report,
    };
    let events: Vec<String> = report
        .trace
        .user_events()
        .map(|(e, label, params)| format!("{}:{label}:{params:?}", e.pid))
        .collect();
    format!(
        "ok={} recovered={:?} {}",
        result.is_ok(),
        report.recovered,
        events.join(",")
    )
}

/// One serial exploration under `config`, returning the full
/// (decision-vector, behavior) journal alongside the stats. The unified
/// verb sorts the journal by decision vector, so it is directly
/// comparable to any other engine's.
fn explore_serial(
    config: &ExploreConfig,
    setup: impl Fn() -> Sim + Sync,
) -> (Vec<(Vec<u32>, String)>, ExploreStats) {
    let (journal, stats) = config.run(&setup, |_, result| behavior(result));
    assert!(stats.complete, "tree exceeds the budget");
    (
        journal.into_iter().map(|r| (r.choices, r.value)).collect(),
        stats,
    )
}

/// E2: full tree vs the PR 3 pure-stutter prune ("coarse") vs the
/// object-granular sleep-set prune vs the reads-from revisit mode
/// (DESIGN.md §2.14) on one tree. Asserts, while counting: all four
/// modes observe the identical behavior set, each prune layer visits
/// strictly fewer schedules than the one before it (granular < coarse,
/// revisit < granular), the revisit accounting invariant holds, and
/// every pruned tree is byte-identical across 1/2/4/8 worker threads.
fn compare_prunes(name: &str, setup: impl Fn() -> Sim + Sync) -> String {
    let budget = ExploreConfig::new(usize::MAX);
    let coarse_config = budget.clone().prune(true).granular(false);
    let granular_config = budget.clone().prune(true);
    let revisit_config = budget.clone().mode(PruneMode::Revisit);
    let (full_journal, full_stats) = explore_serial(&budget, &setup);
    let (coarse_journal, coarse_stats) = explore_serial(&coarse_config, &setup);
    let (granular_journal, granular_stats) = explore_serial(&granular_config, &setup);
    let (revisit_journal, revisit_stats) = explore_serial(&revisit_config, &setup);

    // Soundness while we measure: pruning may only skip schedules whose
    // behavior an explored schedule already exhibits.
    let behaviors = |journal: &[(Vec<u32>, String)]| -> BTreeSet<String> {
        journal.iter().map(|(_, b)| b.clone()).collect()
    };
    let full_set = behaviors(&full_journal);
    assert_eq!(
        behaviors(&coarse_journal),
        full_set,
        "{name}: coarse prune changed the behavior set"
    );
    assert_eq!(
        behaviors(&granular_journal),
        full_set,
        "{name}: granular prune changed the behavior set"
    );
    assert_eq!(
        behaviors(&revisit_journal),
        full_set,
        "{name}: revisit prune changed the behavior set"
    );
    assert!(coarse_stats.schedules <= full_stats.schedules);
    assert!(
        granular_stats.schedules < coarse_stats.schedules,
        "{name}: object-granular prune must beat the pure-only prune \
         ({} vs {} schedules)",
        granular_stats.schedules,
        coarse_stats.schedules
    );
    assert!(
        revisit_stats.schedules < granular_stats.schedules,
        "{name}: revisit mode must beat the sleep-set prune \
         ({} vs {} schedules)",
        revisit_stats.schedules,
        granular_stats.schedules
    );
    revisit_stats.assert_consistent();
    assert_eq!(
        revisit_stats.schedules,
        revisit_stats.revisits as usize + 1,
        "{name}: every revisit schedule past the root run is a grant"
    );

    // Thread-count invariance: every pruned tree merges to the serial
    // journal byte-for-byte at every worker count.
    for (config, serial_journal, serial_stats) in [
        (&coarse_config, &coarse_journal, &coarse_stats),
        (&granular_config, &granular_journal, &granular_stats),
        (&revisit_config, &revisit_journal, &revisit_stats),
    ] {
        for &threads in &THREAD_COUNTS {
            let (journal, stats) = config
                .clone()
                .threads(threads)
                .run(&setup, |_, result| behavior(result));
            let merged: Vec<(Vec<u32>, String)> =
                journal.into_iter().map(|r| (r.choices, r.value)).collect();
            assert_eq!(
                &merged, serial_journal,
                "{name}: pruned journal diverged at {threads} threads"
            );
            assert_eq!(stats.schedules, serial_stats.schedules);
            assert_eq!(stats.pruned, serial_stats.pruned);
            assert_eq!(stats.conflicts, serial_stats.conflicts);
            assert_eq!(stats.revisit_requests, serial_stats.revisit_requests);
            assert_eq!(stats.revisits, serial_stats.revisits);
        }
    }

    let evictions: u64 = granular_stats.conflicts.values().sum();
    let races: u64 = revisit_stats.conflicts.values().sum();
    eprintln!(
        "pruning({name}): {} full, {} coarse (pure-only), {} granular \
         ({} + {} subtrees cut, {} conflict evictions), {} revisit \
         ({} races, {} requests, {} grants)",
        full_stats.schedules,
        coarse_stats.schedules,
        granular_stats.schedules,
        coarse_stats.pruned,
        granular_stats.pruned,
        evictions,
        revisit_stats.schedules,
        races,
        revisit_stats.revisit_requests,
        revisit_stats.revisits
    );
    format!(
        "{{\n      \"tree\": \"{name}\",\n      \"full_schedules\": {},\n      \
         \"coarse_schedules\": {},\n      \"coarse_pruned\": {},\n      \
         \"granular_schedules\": {},\n      \"granular_pruned\": {},\n      \
         \"conflict_evictions\": {},\n      \
         \"revisit_schedules\": {},\n      \"revisit_pruned\": {},\n      \
         \"revisit_races\": {},\n      \"revisit_requests\": {},\n      \
         \"revisit_grants\": {}\n    }}",
        full_stats.schedules,
        coarse_stats.schedules,
        coarse_stats.pruned,
        granular_stats.schedules,
        granular_stats.pruned,
        evictions,
        revisit_stats.schedules,
        revisit_stats.pruned,
        races,
        revisit_stats.revisit_requests,
        revisit_stats.revisits
    )
}

/// E3: the exploration-kernel execution modes on the pruned
/// anomaly+background tree (1112 granular schedules). Four modes, one
/// axis each:
///
/// * `legacy-replay` — spawn-per-run kernel (`reuse_hosts: false`),
///   whole-prefix replay: the pre-pool baseline every ratio is against;
/// * `pooled-replay` — host-pool kernel, whole-prefix replay: the
///   default, and the fastest (the conservation bound in DESIGN.md
///   §2.13 explains why checkpointing cannot beat it — every held run
///   still executes its full prefix at birth);
/// * `pooled-dense-64` / `pooled-geom-8` — host-pool kernel resuming
///   from a spine of held runs under the two non-replay
///   [`CheckpointSpacing`] policies.
///
/// Soundness while measuring: all four modes must report identical
/// schedule and prune counts — the CI explore job re-asserts this from
/// the JSON, plus a throughput-ratio floor for the pooled kernel.
fn bench_kernel() -> String {
    // Warm the host pool so its one-time thread spawns don't bill the
    // first-measured mode.
    anomaly_bg_tree().run().expect("warmup run is clean");
    let modes: [(&str, bool, CheckpointSpacing); 4] = [
        ("legacy-replay", false, CheckpointSpacing::Replay),
        ("pooled-replay", true, CheckpointSpacing::Replay),
        (
            "pooled-dense-64",
            true,
            CheckpointSpacing::Dense { budget: 64 },
        ),
        (
            "pooled-geom-8",
            true,
            CheckpointSpacing::Geometric { budget: 8 },
        ),
    ];
    let iters = 5;
    let mut baseline: Option<(usize, usize, f64)> = None;
    let mut entries = Vec::new();
    for (name, reuse_hosts, spacing) in modes {
        let config = ExploreConfig::new(usize::MAX)
            .prune(true)
            .checkpoint(spacing);
        let start = Instant::now();
        let mut stats = ExploreStats::default();
        for _ in 0..iters {
            let (journal, s) = config.run(
                || anomaly_bg_tree_on(reuse_hosts),
                |_, result| result.is_err(),
            );
            stats = s;
            assert!(stats.complete);
            std::hint::black_box(journal.iter().filter(|r| r.value).count());
        }
        let secs = start.elapsed().as_secs_f64() / iters as f64;
        let per_sec = stats.schedules as f64 / secs;
        let speedup = match &baseline {
            None => {
                baseline = Some((stats.schedules, stats.pruned, secs));
                1.0
            }
            Some((schedules, pruned, legacy_secs)) => {
                assert_eq!(
                    stats.schedules, *schedules,
                    "{name}: kernel mode changed the schedule count"
                );
                assert_eq!(
                    stats.pruned, *pruned,
                    "{name}: kernel mode changed the prune count"
                );
                legacy_secs / secs
            }
        };
        eprintln!(
            "kernel({name}): {} schedules in {secs:.3}s ({per_sec:.0}/s, {speedup:.2}x legacy)",
            stats.schedules
        );
        entries.push(format!(
            "{{ \"mode\": \"{name}\", \"schedules\": {}, \"pruned\": {}, \
             \"secs\": {secs:.6}, \"schedules_per_sec\": {per_sec:.0}, \
             \"speedup_vs_legacy\": {speedup:.2} }}",
            stats.schedules, stats.pruned
        ));
    }
    format!(
        "{{\n      \"tree\": \"anomaly+background\",\n      \"modes\": [\n        {}\n      ]\n    }}",
        entries.join(",\n        ")
    )
}

/// `--sample`: throughput of the R3 samplers on one scaled starvation
/// tree. Violation counts are deterministic (seeded, worker-count
/// independent — asserted here across every worker count); the
/// schedules-per-second figures are measurements.
fn bench_samplers() -> Vec<String> {
    let spec = WorkloadSpec::new(0xB5A)
        .clients(24)
        .ops(4)
        .arrival(Arrival::Together)
        .think(Think::None);
    let laws = starvation_laws();
    let mut entries = Vec::new();
    for (name, strategy) in [
        (
            "pct-weak-24",
            SampleStrategy::Pct {
                change_points: 4,
                depth_hint: 2048,
            },
        ),
        ("walk-weak-24", SampleStrategy::Walk),
    ] {
        let iterations = 40;
        let mut baseline: Option<(Vec<Vec<u32>>, u64)> = None;
        let mut entry_parts = Vec::new();
        for &threads in &THREAD_COUNTS {
            let start = Instant::now();
            let (journal, stats) = ExploreConfig::new(0).threads(threads).sample(
                strategy,
                iterations,
                0xB5A,
                || starvation_at_scale(LiveMechanism::SemaphoreWeak, &spec),
                |_, result| ((), laws.violated(result)),
            );
            let secs = start.elapsed().as_secs_f64();
            let sampling = stats.sampling.expect("sampler stats");
            let hits = sampling
                .violations
                .get("starvation-free")
                .copied()
                .unwrap_or(0);
            let choices: Vec<Vec<u32>> = journal.into_iter().map(|r| r.choices).collect();
            match &baseline {
                None => baseline = Some((choices, hits)),
                Some((expect_choices, expect_hits)) => {
                    assert_eq!(
                        &choices, expect_choices,
                        "{name}: sampled journal diverged at {threads} threads"
                    );
                    assert_eq!(hits, *expect_hits);
                }
            }
            eprintln!(
                "sampling({name}): {threads} thread(s) {iterations} runs in {secs:.3}s \
                 ({:.0}/s), {hits} starvation hits",
                iterations as f64 / secs
            );
            entry_parts.push(format!(
                "{{ \"threads\": {threads}, \"runs\": {iterations}, \"secs\": {secs:.6}, \
                 \"runs_per_sec\": {:.0} }}",
                iterations as f64 / secs
            ));
        }
        let hits = baseline.expect("at least one worker count").1;
        entries.push(format!(
            "{{\n      \"name\": \"{name}\",\n      \"iterations\": 40,\n      \
             \"violations\": {hits},\n      \"workers\": [\n        {}\n      ]\n    }}",
            entry_parts.join(",\n        ")
        ));
    }
    entries
}

/// `--symbolic`: E5 — symbolic data-nondeterminism collapse vs concrete
/// enumeration on the two `choose_value` scenarios (see
/// `bloom_problems::symbolic`). All counts are deterministic; the
/// wall-clock column is the only measurement. Asserts while measuring:
/// the symbolic behavior set equals the concrete union, every symbolic
/// schedule passes its scenario check, and the symbolic schedule count
/// is strictly below concrete enumeration — the CI explore job re-gates
/// `symbolic <= concrete` from the JSON.
type SymbolicScenario = (&'static str, fn(usize) -> SymbolicComparison);

fn bench_symbolic() -> Vec<String> {
    let scenarios: [SymbolicScenario; 2] = [
        ("andler-burst", compare_andler),
        ("csp-capacity", compare_csp),
    ];
    let mut entries = Vec::new();
    for (name, run) in scenarios {
        let start = Instant::now();
        let c = run(500_000);
        let secs = start.elapsed().as_secs_f64();
        assert!(c.behaviors_match, "{name}: symbolic != concrete behaviors");
        assert!(c.clean, "{name}: a symbolic schedule failed its check");
        assert!(
            c.symbolic_schedules < c.concrete_schedules,
            "{name}: symbolic collapse bought nothing"
        );
        eprintln!(
            "symbolic({name}): domain {} -> {} concrete vs {} symbolic schedules \
             ({} class grants) in {secs:.3}s",
            c.domain, c.concrete_schedules, c.symbolic_schedules, c.sym_grants
        );
        entries.push(format!(
            "{{\n      \"tree\": \"{name}\",\n      \"domain\": {},\n      \
             \"concrete_schedules\": {},\n      \"symbolic_schedules\": {},\n      \
             \"sym_requests\": {},\n      \"sym_grants\": {},\n      \
             \"behaviors_match\": {},\n      \"clean\": {},\n      \
             \"secs\": {secs:.6}\n    }}",
            c.domain,
            c.concrete_schedules,
            c.symbolic_schedules,
            c.sym_requests,
            c.sym_grants,
            c.behaviors_match,
            c.clean
        ));
    }
    entries
}

fn main() {
    let sample = std::env::args().any(|a| a == "--sample");
    let symbolic = std::env::args().any(|a| a == "--symbolic");
    let meta = bloom_bench::hostmeta::json_fields();
    eprintln!(
        "host: {} core(s) available",
        bloom_bench::hostmeta::host_cores()
    );
    let trees = [
        bench_tree("liveness-recovery", 20, recovery_tree),
        bench_tree("anomaly", 100, anomaly_tree),
    ];
    let pruning = [
        compare_prunes("liveness-recovery", recovery_tree),
        compare_prunes("anomaly+background", anomaly_bg_tree),
        compare_prunes("dining-strong-3", || dining_tree(3)),
    ];
    let kernel = [bench_kernel()];
    let sampling = if sample { bench_samplers() } else { Vec::new() };
    let symbolic = if symbolic {
        bench_symbolic()
    } else {
        Vec::new()
    };

    let json = format!(
        "{{\n  {meta},\n  \"trees\": [\n    {}\n  ],\n  \
         \"pruning\": [\n    {}\n  ],\n  \"kernel\": [\n    {}\n  ],\n  \
         \"sampling\": [{}],\n  \"symbolic\": [{}]\n}}\n",
        trees.join(",\n    "),
        pruning.join(",\n    "),
        kernel.join(",\n    "),
        if sampling.is_empty() {
            String::new()
        } else {
            format!("\n    {}\n  ", sampling.join(",\n    "))
        },
        if symbolic.is_empty() {
            String::new()
        } else {
            format!("\n    {}\n  ", symbolic.join(",\n    "))
        }
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("{json}");
}
