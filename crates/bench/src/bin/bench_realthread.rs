//! Real-thread measurement companion to the R4 conformance suite:
//! wall-clock throughput of the five mechanisms on OS threads
//! (`bloom-rt`) next to the simulator executing the *identical* shape.
//! Writes `BENCH_realthread.json` at the repo root (archived in
//! EXPERIMENTS.md §R4).
//!
//! ```text
//! cargo run --release -p bloom-bench --bin bench_realthread
//! ```
//!
//! Like `bench_explore`, wall-clock time is confined to this binary and
//! the criterion benches — the deterministic report (`report.rs`) stays
//! machine-independent, and nothing here feeds `docs/report.txt`. The
//! numbers answer the paper-era question the simulator cannot: what the
//! five disciplines *cost* on metal, uncontended and contended, and what
//! the simulator's one-running-process execution model costs relative to
//! free-running threads on the same workload. Correctness on real
//! threads is the conformance suite's job (`tests/rt_conformance.rs`);
//! this binary only measures, with a `run_ok` flag per cell asserting
//! the run at least completed cleanly.

use bloom_monitor::Monitor;
use bloom_pathexpr::PathResource;
use bloom_rt::{RtChannel, RtConfig, RtMonitor, RtPathResource, RtSemaphore, RtSerializer, RtSim};
use bloom_semaphore::Semaphore;
use bloom_serializer::Serializer;
use bloom_sim::Sim;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Operations per uncontended cell (one thread, back to back).
const OPS: usize = 20_000;
/// Threads in the contended cells; each performs `OPS / CONTENDERS` ops.
const CONTENDERS: usize = 4;

struct Cell {
    secs: f64,
    ops_per_sec: f64,
}

fn cell(ops: usize, secs: f64) -> Cell {
    Cell {
        secs,
        ops_per_sec: ops as f64 / secs,
    }
}

fn time_real(build: impl FnOnce(&mut RtSim)) -> f64 {
    let mut rt = RtSim::with_config(RtConfig {
        // Generous overall budget: these are long straight-line runs, not
        // the short conformance scenarios the 5s default is sized for.
        watchdog: Duration::from_secs(120),
        ..RtConfig::default()
    });
    build(&mut rt);
    let start = Instant::now();
    rt.run().expect("bench run is clean");
    start.elapsed().as_secs_f64()
}

fn time_sim(build: impl FnOnce(&mut Sim)) -> f64 {
    let mut sim = Sim::new();
    build(&mut sim);
    let start = Instant::now();
    sim.run().expect("bench run is clean");
    start.elapsed().as_secs_f64()
}

/// One acquire/release benchmark: the same mechanism shape built for both
/// backends, in uncontended (1 × `OPS`) and contended
/// (`CONTENDERS` × `OPS/CONTENDERS`) layouts.
struct AcquireBench {
    mechanism: &'static str,
    sim: fn(&mut Sim, usize, usize),
    real: fn(&mut RtSim, usize, usize),
}

fn sim_semaphore(sim: &mut Sim, threads: usize, ops: usize) {
    let sem = Arc::new(Semaphore::strong("s", 1));
    for i in 0..threads {
        let s = Arc::clone(&sem);
        sim.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                s.p(ctx);
                s.v(ctx);
            }
        });
    }
}

fn real_semaphore(rt: &mut RtSim, threads: usize, ops: usize) {
    let sem = Arc::new(RtSemaphore::strong("s", 1));
    for i in 0..threads {
        let s = Arc::clone(&sem);
        rt.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                s.p(ctx);
                s.v(ctx);
            }
        });
    }
}

fn sim_monitor(sim: &mut Sim, threads: usize, ops: usize) {
    let m = Arc::new(Monitor::hoare("m", 0i64));
    for i in 0..threads {
        let m = Arc::clone(&m);
        sim.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                m.enter(ctx, |mc| mc.state(|v| *v += 1));
            }
        });
    }
}

fn real_monitor(rt: &mut RtSim, threads: usize, ops: usize) {
    let m = Arc::new(RtMonitor::hoare("m", 0i64));
    for i in 0..threads {
        let m = Arc::clone(&m);
        rt.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                m.enter(ctx, |mc| mc.state(|v| *v += 1));
            }
        });
    }
}

fn sim_serializer(sim: &mut Sim, threads: usize, ops: usize) {
    let s = Arc::new(Serializer::new("s", 0i64));
    for i in 0..threads {
        let s = Arc::clone(&s);
        sim.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                s.enter(ctx, |sc| sc.state(|v| *v += 1));
            }
        });
    }
}

fn real_serializer(rt: &mut RtSim, threads: usize, ops: usize) {
    let s = Arc::new(RtSerializer::new("s", 0i64));
    for i in 0..threads {
        let s = Arc::clone(&s);
        rt.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                s.enter(ctx, |sc| sc.state(|v| *v += 1));
            }
        });
    }
}

fn sim_pathexpr(sim: &mut Sim, threads: usize, ops: usize) {
    let r = Arc::new(PathResource::parse("r", "path op end").expect("static path"));
    for i in 0..threads {
        let r = Arc::clone(&r);
        sim.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                r.perform(ctx, "op", || ());
            }
        });
    }
}

fn real_pathexpr(rt: &mut RtSim, threads: usize, ops: usize) {
    let r = Arc::new(RtPathResource::parse("r", "path op end").expect("static path"));
    for i in 0..threads {
        let r = Arc::clone(&r);
        rt.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                r.perform(ctx, "op", || ());
            }
        });
    }
}

/// Channels are rendezvous, so "acquire" is one message: `threads`
/// senders split `ops` sends and one server receives them all.
fn sim_channel(sim: &mut Sim, threads: usize, ops: usize) {
    let ch = Arc::new(bloom_channel::Channel::<i64>::new("ch"));
    for i in 0..threads {
        let ch = Arc::clone(&ch);
        sim.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                ch.send(ctx, 1);
            }
        });
    }
    let ch2 = Arc::clone(&ch);
    sim.spawn("server", move |ctx| {
        for _ in 0..threads * ops {
            ch2.recv(ctx);
        }
    });
}

fn real_channel(rt: &mut RtSim, threads: usize, ops: usize) {
    let ch = Arc::new(RtChannel::<i64>::new("ch"));
    for i in 0..threads {
        let ch = Arc::clone(&ch);
        rt.spawn(&format!("w{i}"), move |ctx| {
            for _ in 0..ops {
                ch.send(ctx, 1);
            }
        });
    }
    let ch2 = Arc::clone(&ch);
    rt.spawn("server", move |ctx| {
        for _ in 0..threads * ops {
            ch2.recv(ctx);
        }
    });
}

const ACQUIRES: [AcquireBench; 5] = [
    AcquireBench {
        mechanism: "semaphore",
        sim: sim_semaphore,
        real: real_semaphore,
    },
    AcquireBench {
        mechanism: "monitor",
        sim: sim_monitor,
        real: real_monitor,
    },
    AcquireBench {
        mechanism: "serializer",
        sim: sim_serializer,
        real: real_serializer,
    },
    AcquireBench {
        mechanism: "pathexpr",
        sim: sim_pathexpr,
        real: real_pathexpr,
    },
    AcquireBench {
        mechanism: "channel",
        sim: sim_channel,
        real: real_channel,
    },
];

fn backend_json(c: &Cell) -> String {
    format!(
        "{{ \"secs\": {:.6}, \"ops_per_sec\": {:.0}, \"run_ok\": true }}",
        c.secs, c.ops_per_sec
    )
}

fn acquire_entry(b: &AcquireBench, mode: &str, threads: usize, per_thread: usize) -> String {
    let total = threads * per_thread;
    let sim_cell = cell(total, time_sim(|s| (b.sim)(s, threads, per_thread)));
    let real_cell = cell(total, time_real(|rt| (b.real)(rt, threads, per_thread)));
    eprintln!(
        "{} ({mode}): sim {:.0} ops/s, real {:.0} ops/s",
        b.mechanism, sim_cell.ops_per_sec, real_cell.ops_per_sec
    );
    format!(
        "{{\n      \"mechanism\": \"{}\",\n      \"mode\": \"{mode}\",\n      \
         \"threads\": {threads},\n      \"ops\": {total},\n      \
         \"sim\": {},\n      \"real\": {}\n    }}",
        b.mechanism,
        backend_json(&sim_cell),
        backend_json(&real_cell)
    )
}

/// One-slot buffer on the Hoare monitor (the R4 conformance scenario's
/// shape, scaled to `items` hand-offs): producer and consumer alternate
/// through `notfull`/`notempty`.
fn oneslot(items: usize) -> (String, String) {
    let build_sim = |sim: &mut Sim| {
        let m = Arc::new(Monitor::hoare("buf", None::<i64>));
        let notfull = Arc::new(bloom_monitor::Cond::new("notfull"));
        let notempty = Arc::new(bloom_monitor::Cond::new("notempty"));
        m.register_cond(&notfull);
        m.register_cond(&notempty);
        let (m1, nf1, ne1) = (Arc::clone(&m), Arc::clone(&notfull), Arc::clone(&notempty));
        sim.spawn("producer", move |ctx| {
            for i in 0..items {
                m1.enter(ctx, |mc| {
                    while mc.state(|s| s.is_some()) {
                        mc.wait(&nf1);
                    }
                    mc.state(|s| *s = Some(i as i64));
                    mc.signal(&ne1);
                });
            }
        });
        let (m2, nf2, ne2) = (m, notfull, notempty);
        sim.spawn("consumer", move |ctx| {
            for _ in 0..items {
                m2.enter(ctx, |mc| {
                    while mc.state(|s| s.is_none()) {
                        mc.wait(&ne2);
                    }
                    mc.state(|s| *s = None);
                    mc.signal(&nf2);
                });
            }
        });
    };
    let build_real = |rt: &mut RtSim| {
        let m = Arc::new(RtMonitor::hoare("buf", None::<i64>));
        let notfull = Arc::new(bloom_rt::RtCond::new("notfull"));
        let notempty = Arc::new(bloom_rt::RtCond::new("notempty"));
        m.register_cond(&notfull);
        m.register_cond(&notempty);
        let (m1, nf1, ne1) = (Arc::clone(&m), Arc::clone(&notfull), Arc::clone(&notempty));
        rt.spawn("producer", move |ctx| {
            for i in 0..items {
                m1.enter(ctx, |mc| {
                    while mc.state(|s| s.is_some()) {
                        mc.wait(&nf1);
                    }
                    mc.state(|s| *s = Some(i as i64));
                    mc.signal(&ne1);
                });
            }
        });
        let (m2, nf2, ne2) = (m, notfull, notempty);
        rt.spawn("consumer", move |ctx| {
            for _ in 0..items {
                m2.enter(ctx, |mc| {
                    while mc.state(|s| s.is_none()) {
                        mc.wait(&ne2);
                    }
                    mc.state(|s| *s = None);
                    mc.signal(&nf2);
                });
            }
        });
    };
    let sim_cell = cell(items, time_sim(build_sim));
    let real_cell = cell(items, time_real(build_real));
    eprintln!(
        "one-slot-buffer: sim {:.0} items/s, real {:.0} items/s",
        sim_cell.ops_per_sec, real_cell.ops_per_sec
    );
    (backend_json(&sim_cell), backend_json(&real_cell))
}

/// Readers/writers on the serializer (crowds for readers, exclusive
/// writer), `rounds` operations per process.
fn readers_writers(rounds: usize) -> (String, String) {
    let build_sim = |sim: &mut Sim| {
        let s = Arc::new(Serializer::new("db", ()));
        let readers = s.crowd("readers");
        let writers = s.crowd("writers");
        let q = s.queue("main");
        for name in ["reader1", "reader2"] {
            let s = Arc::clone(&s);
            sim.spawn(name, move |ctx| {
                for _ in 0..rounds {
                    s.enter(ctx, |sc| {
                        sc.enqueue(q, move |g| g.crowd_is_empty(writers));
                        sc.join_crowd(readers, || ());
                    });
                }
            });
        }
        let s2 = Arc::clone(&s);
        sim.spawn("writer", move |ctx| {
            for _ in 0..rounds {
                s2.enter(ctx, |sc| {
                    sc.enqueue(q, move |g| {
                        g.crowd_is_empty(readers) && g.crowd_is_empty(writers)
                    });
                    sc.join_crowd(writers, || ());
                });
            }
        });
    };
    let build_real = |rt: &mut RtSim| {
        let s = Arc::new(RtSerializer::new("db", ()));
        let readers = s.crowd("readers");
        let writers = s.crowd("writers");
        let q = s.queue("main");
        for name in ["reader1", "reader2"] {
            let s = Arc::clone(&s);
            rt.spawn(name, move |ctx| {
                for _ in 0..rounds {
                    s.enter(ctx, |sc| {
                        sc.enqueue(q, move |g| g.crowd_is_empty(writers));
                        sc.join_crowd(readers, || ());
                    });
                }
            });
        }
        let s2 = Arc::clone(&s);
        rt.spawn("writer", move |ctx| {
            for _ in 0..rounds {
                s2.enter(ctx, |sc| {
                    sc.enqueue(q, move |g| {
                        g.crowd_is_empty(readers) && g.crowd_is_empty(writers)
                    });
                    sc.join_crowd(writers, || ());
                });
            }
        });
    };
    let total = rounds * 3;
    let sim_cell = cell(total, time_sim(build_sim));
    let real_cell = cell(total, time_real(build_real));
    eprintln!(
        "readers-writers: sim {:.0} ops/s, real {:.0} ops/s",
        sim_cell.ops_per_sec, real_cell.ops_per_sec
    );
    (backend_json(&sim_cell), backend_json(&real_cell))
}

fn main() {
    let meta = bloom_bench::hostmeta::json_fields();
    eprintln!(
        "host: {} core(s) available",
        bloom_bench::hostmeta::host_cores()
    );

    let mut acquire_entries = Vec::new();
    for b in &ACQUIRES {
        acquire_entries.push(acquire_entry(b, "uncontended", 1, OPS));
        acquire_entries.push(acquire_entry(b, "contended", CONTENDERS, OPS / CONTENDERS));
    }

    let (oneslot_sim, oneslot_real) = oneslot(10_000);
    let (rw_sim, rw_real) = readers_writers(3_000);
    let problems = [
        format!(
            "{{\n      \"problem\": \"one-slot-buffer\",\n      \"mechanism\": \"monitor\",\n      \
             \"ops\": 10000,\n      \"sim\": {oneslot_sim},\n      \"real\": {oneslot_real}\n    }}"
        ),
        format!(
            "{{\n      \"problem\": \"readers-writers\",\n      \"mechanism\": \"serializer\",\n      \
             \"ops\": 9000,\n      \"sim\": {rw_sim},\n      \"real\": {rw_real}\n    }}"
        ),
    ];

    let json = format!(
        "{{\n  {meta},\n  \"tick_micros\": 200,\n  \
         \"acquire\": [\n    {}\n  ],\n  \"problems\": [\n    {}\n  ]\n}}\n",
        acquire_entries.join(",\n    "),
        problems.join(",\n    ")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_realthread.json");
    std::fs::write(path, &json).expect("write BENCH_realthread.json");
    println!("{json}");
}
