//! Regenerates every evaluation artifact of the paper.
//!
//! ```text
//! cargo run --release -p bloom-bench --bin report
//! ```
//!
//! Prints the coverage table (T2), the expressiveness matrix (T3), the
//! workaround census (T3b), the independence matrix (T4), the exhaustive
//! footnote-3 verification (F1a), the crash-robustness matrix (R1), the
//! modularity assessment (T6), and the full solution matrix (T1).
//! `EXPERIMENTS.md` archives this output and maps each section back to
//! the paper.

fn main() {
    print!("{}", bloom_bench::full_report());
}
