//! Host metadata stamped into the measurement artifacts.
//!
//! `BENCH_explore.json` and `BENCH_realthread.json` are wall-clock
//! measurements, so their numbers are only meaningful relative to the
//! host that produced them. Both binaries stamp the same three fields —
//! core count, compiler, and date — through this module so the two
//! artifacts stay comparable and a rebaseline is self-describing.
//!
//! Wall-clock access lives here and in the measurement binaries only;
//! nothing deterministic (the report, the simulator, the checkers) may
//! read it.

use std::time::{SystemTime, UNIX_EPOCH};

/// Number of hardware threads available to this process.
pub fn host_cores() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// `rustc --version` of the toolchain on `PATH`, or `"unknown"` when the
/// compiler cannot be queried (the artifact is still valid, just less
/// self-describing).
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Today's UTC date as `YYYY-MM-DD`, computed from the Unix epoch with
/// the standard civil-from-days conversion (no date-handling crate —
/// the workspace takes no new dependencies for a timestamp).
pub fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let (y, m, d) = civil_from_days((secs / 86_400) as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Days-since-epoch to proleptic Gregorian (year, month, day).
fn civil_from_days(days: i64) -> (i64, u32, u32) {
    let z = days + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (y + i64::from(m <= 2), m, d)
}

/// The shared leading JSON fields of both measurement artifacts, without
/// surrounding braces: `"host_cores": …, "rustc": …, "date": …`.
pub fn json_fields() -> String {
    format!(
        "\"host_cores\": {},\n  \"rustc\": \"{}\",\n  \"date\": \"{}\"",
        host_cores(),
        rustc_version().replace('"', "'"),
        today_utc()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn civil_from_days_known_dates() {
        assert_eq!(civil_from_days(0), (1970, 1, 1));
        assert_eq!(civil_from_days(19_723), (2024, 1, 1)); // leap year start
        assert_eq!(civil_from_days(19_782), (2024, 2, 29)); // leap day
        assert_eq!(civil_from_days(19_783), (2024, 3, 1));
        assert_eq!(civil_from_days(20_493), (2026, 2, 9));
    }

    #[test]
    fn today_is_plausible() {
        let today = today_utc();
        assert_eq!(today.len(), 10);
        assert!(today.as_str() >= "2026-01-01", "clock sanity: {today}");
    }
}
