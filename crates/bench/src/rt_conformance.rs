//! R4: differential conformance between the deterministic simulator and
//! the real-thread backend (`bloom-rt`).
//!
//! The simulator *proves* properties by exhausting every schedule of a
//! scenario; the real-thread backend *samples* schedules from whatever
//! the OS does. This module connects the two: each [`Scenario`] is one
//! synchronization workload written twice — once against `bloom_sim`
//! and once against `bloom_rt` — with **byte-identical event emissions**
//! at the same decision points, plus one backend-agnostic verdict
//! function over the run result (law verdicts from `bloom_core`,
//! optionally refined by observable trace facts such as which branch a
//! timed wait took).
//!
//! Conformance then means *envelope containment*:
//!
//! * the simulator exhaustively explores the scenario and collects the
//!   set of verdicts any schedule can produce — the **verdict
//!   envelope** ([`sim_envelope`]);
//! * the real-thread twin runs N times under seeded jitter
//!   ([`bloom_rt::RtCtx::chaos`]); every verdict it produces must fall
//!   inside the envelope. A real run may legally miss rare verdicts
//!   (sampling is incomplete) but may never manufacture one the
//!   simulator proved impossible.
//!
//! [`CrashScenario`] extends this to fault injection: the simulator
//! sweeps `FaultPlan` kill-points across every schedule
//! ([`sim_crash_envelope`]), the real twin injects a panic at the same
//! 1-based instrumented points ([`bloom_rt::KillPoint`]), and both
//! sides classify the aftermath with [`bloom_core::classify_crash`].
//! The scenarios are built from the poisoning/withdrawing forms, so the
//! required invariant is sharp: a mid-protocol panic classifies as
//! *contained* or *poisoned*, **never** *wedged* — on either backend.
//! Every real crash run must also satisfy the poison protocol
//! ([`bloom_core::check_poison_propagation`]) unchanged: the laws layer
//! does not know or care that the trace came from OS threads.
//!
//! Everything here is quarantined from the deterministic golden report:
//! real-thread results never feed `docs/report.txt`.

use bloom_channel::{select, Channel};
use bloom_core::checks::check_alternation;
use bloom_core::laws::{eventual_service, exclusion, no_failure, Law, LawSet};
use bloom_core::{check_poison_propagation, classify_crash, CrashOutcome, Violation};
use bloom_monitor::{Cond, Monitor};
use bloom_pathexpr::PathResource;
use bloom_rt::{
    select as rt_select, KillPoint, RtChannel, RtCond, RtConfig, RtMonitor, RtPathResource,
    RtSemaphore, RtSerializer, RtSim, TryResult as RtTryResult,
};
use bloom_semaphore::{Lock, Semaphore, TryResult};
use bloom_serializer::Serializer;
use bloom_sim::{ExploreConfig, Sim, SimError, SimReport};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Stress iterations per scenario when `RT_CONFORMANCE_ITERS` is unset.
pub const DEFAULT_ITERS: usize = 100;

/// Schedule budget for each envelope exploration; the scenarios are
/// sized to exhaust their trees well under it ([`sim_envelope`] asserts
/// completeness — an incomplete envelope would make containment
/// vacuous).
pub const ENVELOPE_BUDGET: usize = 400_000;

/// Stress iterations per scenario: `RT_CONFORMANCE_ITERS` if set (the
/// CI knob), [`DEFAULT_ITERS`] otherwise.
pub fn stress_iters() -> usize {
    std::env::var("RT_CONFORMANCE_ITERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS)
}

/// One workload written against both backends, with a shared verdict.
pub struct Scenario {
    /// Stable scenario key (report and assertion labels).
    pub name: &'static str,
    /// Which of the five mechanisms the scenario exercises.
    pub mechanism: &'static str,
    /// Builds the simulator twin.
    pub sim: fn() -> Sim,
    /// Populates the real-thread twin.
    pub rt: fn(&mut RtSim),
    /// Backend-agnostic verdict over a run result.
    pub verdict: fn(&Result<SimReport, SimError>) -> String,
}

/// A fault-injection workload written against both backends. The victim
/// dies at a swept 1-based point: the Nth *scheduling point* in the
/// simulator (`FaultPlan::kill`), the Nth *instrumented chaos point* on
/// real threads ([`KillPoint`]). The coordinates need not correspond
/// 1:1 — conformance is on the classified aftermath, not the timing.
pub struct CrashScenario {
    /// Stable scenario key.
    pub name: &'static str,
    /// Which of the five mechanisms the scenario exercises.
    pub mechanism: &'static str,
    /// Name of the process the sweep kills.
    pub victim: &'static str,
    /// Upper bound of the kill-point sweep (loose bounds are free: both
    /// sweeps stop once the victim no longer reaches the point).
    pub max_points: u64,
    /// Builds the simulator twin (without a fault plan; the sweep arms
    /// it).
    pub sim: fn() -> Sim,
    /// Populates the real-thread twin.
    pub rt: fn(&mut RtSim),
}

/// Renders a law-set verdict: `law-clean`, or the sorted violated law
/// names.
fn law_string(set: &LawSet, result: &Result<SimReport, SimError>) -> String {
    let mut names = set.violated(result);
    names.sort();
    names.dedup();
    if names.is_empty() {
        "law-clean".to_string()
    } else {
        format!("violated:{}", names.join("+"))
    }
}

fn report_of(result: &Result<SimReport, SimError>) -> &SimReport {
    match result {
        Ok(report) => report,
        Err(err) => &err.report,
    }
}

// --- scenario 1: semaphore mutual exclusion --------------------------------

fn sem_mutex_sim() -> Sim {
    let mut sim = Sim::new();
    let gate = Arc::new(Semaphore::strong("gate", 1));
    for i in 0..2 {
        let gate = Arc::clone(&gate);
        sim.spawn(&format!("p{i}"), move |ctx| {
            for _ in 0..2 {
                ctx.emit("req:crit", &[]);
                gate.p(ctx);
                ctx.emit("enter:crit", &[]);
                ctx.yield_now();
                ctx.emit("exit:crit", &[]);
                gate.v(ctx);
            }
        });
    }
    sim
}

fn sem_mutex_rt(rt: &mut RtSim) {
    let gate = Arc::new(RtSemaphore::strong("gate", 1));
    for i in 0..2 {
        let gate = Arc::clone(&gate);
        rt.spawn(&format!("p{i}"), move |ctx| {
            for _ in 0..2 {
                ctx.emit("req:crit", &[]);
                gate.p(ctx);
                ctx.emit("enter:crit", &[]);
                ctx.chaos();
                ctx.emit("exit:crit", &[]);
                gate.v(ctx);
            }
        });
    }
}

fn sem_mutex_verdict(result: &Result<SimReport, SimError>) -> String {
    let laws = LawSet::new()
        .with(no_failure())
        .with(exclusion(&[("crit", "crit")]))
        .with(eventual_service());
    law_string(&laws, result)
}

// --- scenario 2: semaphore timed acquire (`p_by` branch) -------------------

fn sem_timeout_sim() -> Sim {
    let mut sim = Sim::new();
    let gate = Arc::new(Semaphore::strong("gate", 1));
    let holder = Arc::clone(&gate);
    sim.spawn("holder", move |ctx| {
        holder.p(ctx);
        ctx.emit("enter:hold", &[]);
        // Sleep *while holding*: simulator timers only fire once the
        // ready set drains, so the contender's deadline is reachable only
        // if the holder occupies the permit without occupying the CPU.
        ctx.sleep(8);
        ctx.emit("exit:hold", &[]);
        holder.v(ctx);
    });
    sim.spawn("contender", move |ctx| match gate.p_by(ctx, 4u64) {
        TryResult::Acquired => {
            ctx.emit("enter:crit", &[]);
            ctx.emit("exit:crit", &[]);
            gate.v(ctx);
        }
        TryResult::TimedOut => ctx.emit("timed-out:gate", &[]),
    });
    sim
}

fn sem_timeout_rt(rt: &mut RtSim) {
    let gate = Arc::new(RtSemaphore::strong("gate", 1));
    let holder = Arc::clone(&gate);
    rt.spawn("holder", move |ctx| {
        holder.p(ctx);
        ctx.emit("enter:hold", &[]);
        ctx.sleep(8);
        ctx.emit("exit:hold", &[]);
        holder.v(ctx);
    });
    rt.spawn("contender", move |ctx| match gate.p_by(ctx, 4u64) {
        RtTryResult::Acquired => {
            ctx.emit("enter:crit", &[]);
            ctx.emit("exit:crit", &[]);
            gate.v(ctx);
        }
        RtTryResult::TimedOut => ctx.emit("timed-out:gate", &[]),
    });
}

fn sem_timeout_verdict(result: &Result<SimReport, SimError>) -> String {
    // No `eventual_service`: a withdrawn request is the point of the
    // scenario, not a stranded waiter.
    let laws = LawSet::new().with(no_failure()).with(exclusion(&[
        ("crit", "crit"),
        ("crit", "hold"),
        ("hold", "hold"),
    ]));
    let branch = if report_of(result).trace.count_user("timed-out:gate") > 0 {
        "timed-out"
    } else {
        "acquired"
    };
    format!("{}+{branch}", law_string(&laws, result))
}

// --- scenario 3: monitor one-slot buffer -----------------------------------

fn mon_oneslot_sim() -> Sim {
    let mut sim = Sim::new();
    let buf = Arc::new(Monitor::hoare("buf", None::<i64>));
    let notfull = Arc::new(Cond::new("notfull"));
    let notempty = Arc::new(Cond::new("notempty"));
    buf.register_cond(&notfull);
    buf.register_cond(&notempty);
    {
        let buf = Arc::clone(&buf);
        let notfull = Arc::clone(&notfull);
        let notempty = Arc::clone(&notempty);
        sim.spawn("producer", move |ctx| {
            for i in 0..2 {
                ctx.emit("req:deposit", &[i]);
                buf.enter(ctx, |mc| {
                    while mc.state(|slot| slot.is_some()) {
                        mc.wait(&notfull);
                    }
                    mc.state(|slot| *slot = Some(i));
                    ctx.emit("enter:deposit", &[i]);
                    ctx.emit("exit:deposit", &[i]);
                    mc.signal(&notempty);
                });
            }
        });
    }
    sim.spawn("consumer", move |ctx| {
        for _ in 0..2 {
            ctx.emit("req:remove", &[]);
            buf.enter(ctx, |mc| {
                while mc.state(|slot| slot.is_none()) {
                    mc.wait(&notempty);
                }
                let got = mc.state(|slot| slot.take().expect("slot is full"));
                ctx.emit("enter:remove", &[got]);
                ctx.emit("exit:remove", &[got]);
                mc.signal(&notfull);
            });
        }
    });
    sim
}

fn mon_oneslot_rt(rt: &mut RtSim) {
    let buf = Arc::new(RtMonitor::hoare("buf", None::<i64>));
    let notfull = Arc::new(RtCond::new("notfull"));
    let notempty = Arc::new(RtCond::new("notempty"));
    buf.register_cond(&notfull);
    buf.register_cond(&notempty);
    {
        let buf = Arc::clone(&buf);
        let notfull = Arc::clone(&notfull);
        let notempty = Arc::clone(&notempty);
        rt.spawn("producer", move |ctx| {
            for i in 0..2 {
                ctx.emit("req:deposit", &[i]);
                buf.enter(ctx, |mc| {
                    while mc.state(|slot| slot.is_some()) {
                        mc.wait(&notfull);
                    }
                    mc.state(|slot| *slot = Some(i));
                    ctx.emit("enter:deposit", &[i]);
                    ctx.emit("exit:deposit", &[i]);
                    mc.signal(&notempty);
                });
            }
        });
    }
    rt.spawn("consumer", move |ctx| {
        for _ in 0..2 {
            ctx.emit("req:remove", &[]);
            buf.enter(ctx, |mc| {
                while mc.state(|slot| slot.is_none()) {
                    mc.wait(&notempty);
                }
                let got = mc.state(|slot| slot.take().expect("slot is full"));
                ctx.emit("enter:remove", &[got]);
                ctx.emit("exit:remove", &[got]);
                mc.signal(&notfull);
            });
        }
    });
}

fn mon_oneslot_verdict(result: &Result<SimReport, SimError>) -> String {
    let laws = LawSet::new()
        .with(no_failure())
        .with(eventual_service())
        .with(Law::new("alternation", |view| {
            check_alternation(&view.events, "deposit", "remove")
        }));
    law_string(&laws, result)
}

// --- scenario 4: serializer readers/writer ---------------------------------

fn ser_rw_sim() -> Sim {
    let mut sim = Sim::new();
    let db = Arc::new(Serializer::new("db", ()));
    let q = db.queue("main");
    let readers = db.crowd("readers");
    let writers = db.crowd("writers");
    for i in 0..2 {
        let db = Arc::clone(&db);
        sim.spawn(&format!("reader{i}"), move |ctx| {
            ctx.emit("req:read", &[]);
            db.enter(ctx, |sc| {
                sc.enqueue(q, move |g| g.crowd_is_empty(writers));
                sc.join_crowd(readers, || {
                    ctx.emit("enter:read", &[]);
                    ctx.yield_now();
                    ctx.emit("exit:read", &[]);
                });
            });
        });
    }
    sim.spawn("writer", move |ctx| {
        ctx.emit("req:write", &[]);
        db.enter(ctx, |sc| {
            sc.enqueue(q, move |g| {
                g.crowd_is_empty(readers) && g.crowd_is_empty(writers)
            });
            sc.join_crowd(writers, || {
                ctx.emit("enter:write", &[]);
                ctx.yield_now();
                ctx.emit("exit:write", &[]);
            });
        });
    });
    sim
}

fn ser_rw_rt(rt: &mut RtSim) {
    let db = Arc::new(RtSerializer::new("db", ()));
    let q = db.queue("main");
    let readers = db.crowd("readers");
    let writers = db.crowd("writers");
    for i in 0..2 {
        let db = Arc::clone(&db);
        rt.spawn(&format!("reader{i}"), move |ctx| {
            ctx.emit("req:read", &[]);
            db.enter(ctx, |sc| {
                sc.enqueue(q, move |g| g.crowd_is_empty(writers));
                sc.join_crowd(readers, || {
                    ctx.emit("enter:read", &[]);
                    ctx.chaos();
                    ctx.emit("exit:read", &[]);
                });
            });
        });
    }
    rt.spawn("writer", move |ctx| {
        ctx.emit("req:write", &[]);
        db.enter(ctx, |sc| {
            sc.enqueue(q, move |g| {
                g.crowd_is_empty(readers) && g.crowd_is_empty(writers)
            });
            sc.join_crowd(writers, || {
                ctx.emit("enter:write", &[]);
                ctx.chaos();
                ctx.emit("exit:write", &[]);
            });
        });
    });
}

fn ser_rw_verdict(result: &Result<SimReport, SimError>) -> String {
    let laws = LawSet::new()
        .with(no_failure())
        .with(exclusion(&[("read", "write"), ("write", "write")]))
        .with(eventual_service());
    law_string(&laws, result)
}

// --- scenario 5: path-expression reader/writer exclusion -------------------

fn path_rw_sim() -> Sim {
    let mut sim = Sim::new();
    let res = Arc::new(
        PathResource::parse("res", "path 2:(read), write end").expect("static path source"),
    );
    for i in 0..2 {
        let res = Arc::clone(&res);
        sim.spawn(&format!("reader{i}"), move |ctx| {
            ctx.emit("req:read", &[]);
            res.perform(ctx, "read", || {
                ctx.emit("enter:read", &[]);
                ctx.yield_now();
                ctx.emit("exit:read", &[]);
            });
        });
    }
    sim.spawn("writer", move |ctx| {
        ctx.emit("req:write", &[]);
        res.perform(ctx, "write", || {
            ctx.emit("enter:write", &[]);
            ctx.yield_now();
            ctx.emit("exit:write", &[]);
        });
    });
    sim
}

fn path_rw_rt(rt: &mut RtSim) {
    let res = Arc::new(
        RtPathResource::parse("res", "path 2:(read), write end").expect("static path source"),
    );
    for i in 0..2 {
        let res = Arc::clone(&res);
        rt.spawn(&format!("reader{i}"), move |ctx| {
            ctx.emit("req:read", &[]);
            res.perform(ctx, "read", || {
                ctx.emit("enter:read", &[]);
                ctx.chaos();
                ctx.emit("exit:read", &[]);
            });
        });
    }
    rt.spawn("writer", move |ctx| {
        ctx.emit("req:write", &[]);
        res.perform(ctx, "write", || {
            ctx.emit("enter:write", &[]);
            ctx.chaos();
            ctx.emit("exit:write", &[]);
        });
    });
}

fn path_rw_verdict(result: &Result<SimReport, SimError>) -> String {
    let laws = LawSet::new()
        .with(no_failure())
        .with(exclusion(&[("read", "write"), ("write", "write")]))
        .with(eventual_service());
    law_string(&laws, result)
}

// --- scenario 6: channel select --------------------------------------------

fn chan_select_sim() -> Sim {
    let mut sim = Sim::new();
    let a = Arc::new(Channel::<i64>::new("a"));
    let b = Arc::new(Channel::<i64>::new("b"));
    {
        let a = Arc::clone(&a);
        sim.spawn("client-a", move |ctx| a.send(ctx, 1));
    }
    {
        let b = Arc::clone(&b);
        sim.spawn("client-b", move |ctx| b.send(ctx, 2));
    }
    sim.spawn("server", move |ctx| {
        for _ in 0..2 {
            let (_, v) = select(ctx, &mut [(&a, true), (&b, true)]);
            ctx.emit("enter:serve", &[v]);
            ctx.emit("exit:serve", &[v]);
        }
    });
    sim
}

fn chan_select_rt(rt: &mut RtSim) {
    let a = Arc::new(RtChannel::<i64>::new("a"));
    let b = Arc::new(RtChannel::<i64>::new("b"));
    {
        let a = Arc::clone(&a);
        rt.spawn("client-a", move |ctx| a.send(ctx, 1));
    }
    {
        let b = Arc::clone(&b);
        rt.spawn("client-b", move |ctx| b.send(ctx, 2));
    }
    rt.spawn("server", move |ctx| {
        for _ in 0..2 {
            let (_, v) = rt_select(ctx, &mut [(&a, true), (&b, true)]);
            ctx.emit("enter:serve", &[v]);
            ctx.emit("exit:serve", &[v]);
        }
    });
}

fn chan_select_verdict(result: &Result<SimReport, SimError>) -> String {
    let laws = LawSet::new().with(no_failure());
    // The service *order* is genuinely schedule-dependent: include it,
    // so the envelope itself demonstrates a multi-verdict containment.
    let order: String = report_of(result)
        .trace
        .user_events()
        .filter(|(_, label, _)| *label == "enter:serve")
        .flat_map(|(_, _, params)| params.iter().map(|v| v.to_string()))
        .collect();
    format!("{}+served:{order}", law_string(&laws, result))
}

/// The five-mechanism conformance suite (the semaphore contributes two
/// scenarios: plain mutual exclusion and the timed-acquire branch).
pub fn scenarios() -> Vec<Scenario> {
    vec![
        Scenario {
            name: "semaphore-mutex",
            mechanism: "semaphore",
            sim: sem_mutex_sim,
            rt: sem_mutex_rt,
            verdict: sem_mutex_verdict,
        },
        Scenario {
            name: "semaphore-timeout",
            mechanism: "semaphore",
            sim: sem_timeout_sim,
            rt: sem_timeout_rt,
            verdict: sem_timeout_verdict,
        },
        Scenario {
            name: "monitor-oneslot",
            mechanism: "monitor",
            sim: mon_oneslot_sim,
            rt: mon_oneslot_rt,
            verdict: mon_oneslot_verdict,
        },
        Scenario {
            name: "serializer-rw",
            mechanism: "serializer",
            sim: ser_rw_sim,
            rt: ser_rw_rt,
            verdict: ser_rw_verdict,
        },
        Scenario {
            name: "pathexpr-rw",
            mechanism: "path expressions",
            sim: path_rw_sim,
            rt: path_rw_rt,
            verdict: path_rw_verdict,
        },
        Scenario {
            name: "channel-select",
            mechanism: "channels",
            sim: chan_select_sim,
            rt: chan_select_rt,
            verdict: chan_select_verdict,
        },
    ]
}

// --- crash scenarios -------------------------------------------------------

fn lock_crash_sim() -> Sim {
    let mut sim = Sim::new();
    let lock = Arc::new(Lock::new("l"));
    {
        let lock = Arc::clone(&lock);
        sim.spawn("victim", move |ctx| {
            lock.with(ctx, || {
                ctx.yield_now();
                ctx.yield_now();
            });
        });
    }
    sim.spawn("survivor", move |ctx| {
        ctx.yield_now();
        match lock.try_with(ctx, || ()) {
            Ok(()) => ctx.emit("worked", &[]),
            Err(_) => ctx.emit("skipped", &[]),
        }
    });
    sim
}

fn lock_crash_rt(rt: &mut RtSim) {
    let lock = Arc::new(bloom_rt::RtLock::new("l"));
    {
        let lock = Arc::clone(&lock);
        rt.spawn("victim", move |ctx| {
            lock.with(ctx, || {
                ctx.chaos();
                ctx.chaos();
            });
        });
    }
    rt.spawn("survivor", move |ctx| {
        ctx.chaos();
        match lock.try_with(ctx, || ()) {
            Ok(()) => ctx.emit("worked", &[]),
            Err(_) => ctx.emit("skipped", &[]),
        }
    });
}

fn monitor_crash_sim() -> Sim {
    let mut sim = Sim::new();
    let m = Arc::new(Monitor::hoare("m", 0i64));
    {
        let m = Arc::clone(&m);
        sim.spawn("victim", move |ctx| {
            m.enter(ctx, |mc| {
                ctx.yield_now();
                mc.state(|n| *n += 1);
                ctx.yield_now();
            });
        });
    }
    sim.spawn("survivor", move |ctx| {
        ctx.yield_now();
        match m.try_enter(ctx, |mc| mc.state(|n| *n += 1)) {
            Ok(_) => ctx.emit("worked", &[]),
            Err(_) => ctx.emit("skipped", &[]),
        }
    });
    sim
}

fn monitor_crash_rt(rt: &mut RtSim) {
    let m = Arc::new(RtMonitor::hoare("m", 0i64));
    {
        let m = Arc::clone(&m);
        rt.spawn("victim", move |ctx| {
            m.enter(ctx, |mc| {
                ctx.chaos();
                mc.state(|n| *n += 1);
                ctx.chaos();
            });
        });
    }
    rt.spawn("survivor", move |ctx| {
        ctx.chaos();
        match m.try_enter(ctx, |mc| mc.state(|n| *n += 1)) {
            Ok(_) => ctx.emit("worked", &[]),
            Err(_) => ctx.emit("skipped", &[]),
        }
    });
}

fn serializer_crash_sim() -> Sim {
    let mut sim = Sim::new();
    let s = Arc::new(Serializer::new("s", 0i64));
    {
        let s = Arc::clone(&s);
        sim.spawn("victim", move |ctx| {
            s.enter(ctx, |sc| {
                ctx.yield_now();
                sc.state(|n| *n += 1);
                ctx.yield_now();
            });
        });
    }
    sim.spawn("survivor", move |ctx| {
        ctx.yield_now();
        match s.try_enter(ctx, |sc| sc.state(|n| *n += 1)) {
            Ok(_) => ctx.emit("worked", &[]),
            Err(_) => ctx.emit("skipped", &[]),
        }
    });
    sim
}

fn serializer_crash_rt(rt: &mut RtSim) {
    let s = Arc::new(RtSerializer::new("s", 0i64));
    {
        let s = Arc::clone(&s);
        rt.spawn("victim", move |ctx| {
            s.enter(ctx, |sc| {
                ctx.chaos();
                sc.state(|n| *n += 1);
                ctx.chaos();
            });
        });
    }
    rt.spawn("survivor", move |ctx| {
        ctx.chaos();
        match s.try_enter(ctx, |sc| sc.state(|n| *n += 1)) {
            Ok(_) => ctx.emit("worked", &[]),
            Err(_) => ctx.emit("skipped", &[]),
        }
    });
}

fn path_crash_sim() -> Sim {
    let mut sim = Sim::new();
    let res = Arc::new(PathResource::parse("res", "path op end").expect("static path source"));
    {
        let res = Arc::clone(&res);
        sim.spawn("victim", move |ctx| {
            res.perform(ctx, "op", || {
                ctx.yield_now();
                ctx.yield_now();
            });
        });
    }
    sim.spawn("survivor", move |ctx| {
        ctx.yield_now();
        match res.try_perform(ctx, "op", || ()) {
            Ok(()) => ctx.emit("worked", &[]),
            Err(_) => ctx.emit("skipped", &[]),
        }
    });
    sim
}

fn path_crash_rt(rt: &mut RtSim) {
    let res = Arc::new(RtPathResource::parse("res", "path op end").expect("static path source"));
    {
        let res = Arc::clone(&res);
        rt.spawn("victim", move |ctx| {
            res.perform(ctx, "op", || {
                ctx.chaos();
                ctx.chaos();
            });
        });
    }
    rt.spawn("survivor", move |ctx| {
        ctx.chaos();
        match res.try_perform(ctx, "op", || ()) {
            Ok(()) => ctx.emit("worked", &[]),
            Err(_) => ctx.emit("skipped", &[]),
        }
    });
}

fn chan_crash_sim() -> Sim {
    let mut sim = Sim::new();
    let a = Arc::new(Channel::<i64>::new("a"));
    {
        let a = Arc::clone(&a);
        sim.spawn("victim", move |ctx| {
            ctx.yield_now();
            let got = a.recv(ctx);
            ctx.emit("got", &[got]);
        });
    }
    sim.spawn("sender", move |ctx| match a.send_by(ctx, 7, 6u64) {
        Ok(()) => ctx.emit("delivered", &[]),
        Err(_) => ctx.emit("undelivered", &[]),
    });
    sim
}

fn chan_crash_rt(rt: &mut RtSim) {
    let a = Arc::new(RtChannel::<i64>::new("a"));
    {
        let a = Arc::clone(&a);
        rt.spawn("victim", move |ctx| {
            ctx.chaos();
            let got = a.recv(ctx);
            ctx.emit("got", &[got]);
        });
    }
    rt.spawn("sender", move |ctx| match a.send_by(ctx, 7, 6u64) {
        Ok(()) => ctx.emit("delivered", &[]),
        Err(_) => ctx.emit("undelivered", &[]),
    });
}

/// The five-mechanism crash-conformance suite: every scenario is built
/// from poisoning (or withdrawing) forms, so *wedged* is never an
/// acceptable aftermath on either backend.
pub fn crash_scenarios() -> Vec<CrashScenario> {
    vec![
        CrashScenario {
            name: "lock-crash",
            mechanism: "semaphore",
            victim: "victim",
            max_points: 6,
            sim: lock_crash_sim,
            rt: lock_crash_rt,
        },
        CrashScenario {
            name: "monitor-crash",
            mechanism: "monitor",
            victim: "victim",
            max_points: 6,
            sim: monitor_crash_sim,
            rt: monitor_crash_rt,
        },
        CrashScenario {
            name: "serializer-crash",
            mechanism: "serializer",
            victim: "victim",
            max_points: 6,
            sim: serializer_crash_sim,
            rt: serializer_crash_rt,
        },
        CrashScenario {
            name: "pathexpr-crash",
            mechanism: "path expressions",
            victim: "victim",
            max_points: 6,
            sim: path_crash_sim,
            rt: path_crash_rt,
        },
        CrashScenario {
            name: "channel-crash",
            mechanism: "channels",
            victim: "victim",
            max_points: 6,
            sim: chan_crash_sim,
            rt: chan_crash_rt,
        },
    ]
}

// --- envelope computation and real-thread sampling -------------------------

/// Exhaustively explores a scenario's simulator twin and returns every
/// verdict any schedule can produce. Panics if the tree exceeds
/// [`ENVELOPE_BUDGET`] — an incomplete envelope proves nothing.
pub fn sim_envelope(s: &Scenario) -> BTreeSet<String> {
    let (journal, stats) = ExploreConfig::new(ENVELOPE_BUDGET)
        .prune(true)
        .run(s.sim, |_, result| (s.verdict)(result));
    let verdicts: BTreeSet<String> = journal.into_iter().map(|r| r.value).collect();
    assert!(
        stats.complete,
        "scenario {}: envelope exploration exceeded its budget \
         ({} schedules) — the envelope would be incomplete",
        s.name, stats.schedules
    );
    verdicts
}

/// One seeded-jitter real-thread run of a scenario's twin, reduced to
/// its verdict.
pub fn rt_verdict(s: &Scenario, seed: u64) -> String {
    let mut rt = RtSim::with_config(RtConfig {
        jitter_seed: Some(seed),
        ..RtConfig::default()
    });
    (s.rt)(&mut rt);
    (s.verdict)(&rt.run())
}

/// Exhaustively explores the (schedule × kill-point) space of a crash
/// scenario's simulator twin and returns every [`CrashOutcome`] it can
/// produce.
pub fn sim_crash_envelope(c: &CrashScenario) -> BTreeSet<CrashOutcome> {
    let (journal, stats) = ExploreConfig::new(ENVELOPE_BUDGET)
        .prune(true)
        .run_kill_points(c.victim, c.max_points, c.sim, |_, _, result| {
            classify_crash(result)
        });
    let outcomes: BTreeSet<CrashOutcome> = journal.into_iter().map(|(_, r)| r.value).collect();
    assert!(
        stats.complete,
        "crash scenario {}: kill-point exploration exceeded its budget",
        c.name
    );
    outcomes
}

/// One real-thread crash run: jittered, with the victim killed at the
/// given chaos point.
pub struct RtCrashRun {
    /// The injected kill point.
    pub point: u64,
    /// The classified aftermath.
    pub outcome: CrashOutcome,
    /// Poison-protocol violations of the run's trace (must be empty:
    /// the laws layer runs on real traces unchanged).
    pub protocol: Vec<Violation>,
}

/// Runs a crash scenario's real twin once with seeded jitter and a kill
/// at `point`, classifying the aftermath.
pub fn rt_crash_run(c: &CrashScenario, point: u64, seed: u64) -> RtCrashRun {
    let mut rt = RtSim::with_config(RtConfig {
        jitter_seed: Some(seed),
        kill: Some(KillPoint {
            process: c.victim.to_string(),
            at_point: point,
        }),
        ..RtConfig::default()
    });
    (c.rt)(&mut rt);
    let result = rt.run();
    let outcome = classify_crash(&result);
    let protocol = check_poison_propagation(&report_of(&result).trace);
    RtCrashRun {
        point,
        outcome,
        protocol,
    }
}
