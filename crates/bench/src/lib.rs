#![forbid(unsafe_code)]
#![deny(deprecated)]
//! The evaluation harness: regenerates every figure and finding of the
//! paper as machine-readable reports.
//!
//! Each `*_report` function corresponds to a row of the experiment index
//! in `DESIGN.md` / `EXPERIMENTS.md`:
//!
//! * [`coverage_report`] — T2: taxonomy coverage and the minimal test set;
//! * [`expressiveness_report`] — T3: the (mechanism × information type)
//!   matrix, *derived from the implemented solutions* and cross-checked
//!   against the paper's claims;
//! * [`independence_report`] — T4: constraint-independence scores and
//!   modification costs across the readers/writers family;
//! * [`anomaly_report`] — F1a: exhaustive-exploration statistics for the
//!   footnote-3 anomaly;
//! * [`crash_robustness_report`] — R1: the crash-robustness matrix
//!   (mechanism × problem → contained/poisoned/wedged) under deterministic
//!   fault injection;
//! * [`liveness_robustness_report`] — R2: the liveness-robustness matrix
//!   (mechanism × scenario → recovers/degrades/wedges) under deadlines,
//!   deadlock recovery and the starvation watchdog;
//! * [`r3_report`] — R3: measured law-violation rates under seeded
//!   sampled schedules (PCT and random walks) across the workload-DSL
//!   population ladder, with a shrunk minimal counterexample;
//! * [`solution_matrix_report`] — T1: every solution validated against
//!   its constraint checkers;
//! * [`modularity_report`] — §2/T6: the modularity assessment;
//! * [`run_anatomy_report`] — O1: the per-run `SimMetrics` (dispatches,
//!   context switches, parks/wakes, queue depths, sync-op counts) across
//!   the solution matrix.
//!
//! The `report` binary prints them all; `EXPERIMENTS.md` archives the
//! output.

pub mod hostmeta;
pub mod rt_conformance;

use bloom_core::checks::{
    check_alarm, check_all_served, check_alternation, check_buffer_bounds, check_elevator,
    check_exclusion, check_fifo, check_no_later_overtake, check_priority_over, Violation,
};
use bloom_core::events::extract;
use bloom_core::liveness::{classify_liveness, LivenessOutcome};
use bloom_core::report::{section, table};
use bloom_core::CrashOutcome;
use bloom_core::{
    catalog, classify_rate, full_target, independence, minimal_cover, modification_cost,
    paper_profile, Directness, InfoType, MechanismId, ProblemId,
};
use bloom_problems::drivers::{
    alarm_scenario, buffer_scenario, disk_scenario, fcfs_scenario, oneslot_scenario, rw_scenario,
};
use bloom_problems::faults::{outcome_sweep, CrashMechanism, CrashProblem};
use bloom_problems::liveness::{
    liveness_outcome, timeout_withdrawal_sim, LiveMechanism, LiveScenario, HOLD,
};
use bloom_problems::r3::{
    nested_monitor_at_scale, nested_monitor_laws, starvation_at_scale, starvation_laws,
};
use bloom_problems::registry::{all_descs, derived_ratings};
use bloom_problems::rw::{self, RwVariant};
use bloom_problems::symbolic::{compare_andler, compare_csp, SymbolicComparison};
use bloom_problems::workload::{Arrival, Think, WorkloadSpec};
use bloom_sim::{shrink_prefix, ExploreConfig, SampleStrategy, Sim};
use std::sync::Arc;

/// T2: catalog coverage and the minimal evaluation set.
pub fn coverage_report() -> String {
    let cat = catalog();
    let target = full_target(&cat);
    let rows: Vec<Vec<String>> = cat
        .iter()
        .map(|p| {
            let features: Vec<String> = p
                .features()
                .iter()
                .map(|(k, i)| format!("{k}×{i}"))
                .collect();
            vec![p.id.label().to_string(), features.join(", ")]
        })
        .collect();
    let mut out = table(&["problem", "features exercised (kind × info)"], &rows);
    let cover = minimal_cover(&cat, &target).expect("catalog covers itself");
    let names: Vec<&str> = cover.iter().map(|&i| cat[i].id.label()).collect();
    out.push_str(&format!(
        "\nMinimal covering set ({} of {} problems): {}\n",
        cover.len(),
        cat.len(),
        names.join(", ")
    ));
    section(
        "T2 — Coverage and minimal test-set selection (paper §1/§4.1)",
        &out,
    )
}

/// T3: the expressive-power matrix, derived from the solutions.
pub fn expressiveness_report() -> String {
    let headers: Vec<&str> = std::iter::once("mechanism")
        .chain(InfoType::ALL.iter().map(|i| i.label()))
        .collect();
    let rows: Vec<Vec<String>> = MechanismId::ALL
        .iter()
        .map(|&mech| {
            let derived = derived_ratings(mech);
            let paper = paper_profile(mech);
            let mut row = vec![mech.label().to_string()];
            for info in InfoType::ALL {
                let cell = match derived.get(&info) {
                    Some(rating) => rating.to_string(),
                    None => match paper.rating(info) {
                        // Not exercised by a solution: show the paper's
                        // claim, marked as such.
                        Directness::Inaccessible => "—".to_string(),
                        claimed => format!("({claimed})"),
                    },
                };
                row.push(cell);
            }
            row
        })
        .collect();
    let mut out = table(&headers, &rows);
    out.push_str(
        "\nRatings derived from the 41 implemented solutions; parenthesised cells are \
         paper-profile claims not exercised by a solution (e.g. the bounded buffer is \
         inexpressible in v1 paths, so path-v1 never exercises local state).\n",
    );
    section("T3 — Expressive power matrix (paper §4.1/§5)", &out)
}

/// T4: constraint independence across the readers/writers family.
pub fn independence_report() -> String {
    let mechs = [
        MechanismId::Semaphore,
        MechanismId::Monitor,
        MechanismId::Serializer,
        MechanismId::PathV1,
    ];
    let rows: Vec<Vec<String>> = mechs
        .iter()
        .map(|&mech| {
            let rp = rw::make(mech, RwVariant::ReadersPriority).desc();
            let wp = rw::make(mech, RwVariant::WritersPriority).desc();
            let fc = rw::make(mech, RwVariant::Fcfs).desc();
            let fmt_score = |s: Option<f64>| match s {
                Some(x) => format!("{x:.2}"),
                None => "n/a".to_string(),
            };
            vec![
                mech.label().to_string(),
                fmt_score(independence(&rp, &wp).score),
                fmt_score(independence(&rp, &fc).score),
                format!("{:.2}", modification_cost(&rp, &wp).fraction()),
                format!("{:.2}", modification_cost(&rp, &fc).fraction()),
            ]
        })
        .collect();
    let mut out = table(
        &[
            "mechanism",
            "indep. rp↔wp",
            "indep. rp↔fcfs",
            "mod. cost rp→wp",
            "mod. cost rp→fcfs",
        ],
        &rows,
    );
    out.push_str(
        "\nIndependence = fraction of shared constraints implemented identically \
         (1.00 = the paper's additivity ideal). Monitors and serializers preserve the \
         exclusion constraint across every priority change; path expressions and \
         semaphores rewrite everything — §5.1.2's finding, quantified.\n",
    );
    section("T4 — Constraint independence (paper §4.2/§5.1.2)", &out)
}

/// Outcome of exploring one mechanism's readers-priority solution.
#[derive(Debug, Clone, Copy)]
pub struct AnomalyStats {
    /// Schedules explored (tree fully covered).
    pub schedules: usize,
    /// Schedules violating the readers-priority constraint.
    pub violations: usize,
}

/// Exhaustively explores the footnote-3 scenario for one mechanism.
///
/// Runs on the work-sharing parallel engine — the per-schedule counts
/// are thread-count-independent by construction, so the report text stays
/// machine-independent.
pub fn explore_anomaly(mech: MechanismId) -> AnomalyStats {
    let (journal, _) = ExploreConfig::new(500_000).threads(4).run(
        || {
            let mut sim = Sim::new();
            let db = rw::make(mech, RwVariant::ReadersPriority);
            for i in 0..2 {
                let db = Arc::clone(&db);
                sim.spawn(&format!("writer{i}"), move |ctx| {
                    db.write(ctx, &mut || ctx.yield_now());
                });
            }
            let db2 = Arc::clone(&db);
            sim.spawn("reader", move |ctx| {
                db2.read(ctx, &mut || ctx.yield_now());
            });
            sim
        },
        |_, result| {
            if let Ok(report) = result {
                let events = extract(&report.trace);
                !check_priority_over(&events, "read", "write").is_empty()
            } else {
                false
            }
        },
    );
    AnomalyStats {
        schedules: journal.len(),
        violations: journal.iter().filter(|r| r.value).count(),
    }
}

/// F1a: the footnote-3 anomaly, quantified by exhaustive exploration.
pub fn anomaly_report() -> String {
    let rows: Vec<Vec<String>> = [
        MechanismId::PathV1,
        MechanismId::PathV3,
        MechanismId::Semaphore,
        MechanismId::Monitor,
        MechanismId::Serializer,
        MechanismId::Csp,
    ]
    .iter()
    .map(|&mech| {
        let s = explore_anomaly(mech);
        vec![
            mech.label().to_string(),
            s.schedules.to_string(),
            s.violations.to_string(),
            if s.violations > 0 {
                "ANOMALOUS (footnote 3)"
            } else {
                "correct"
            }
            .to_string(),
        ]
    })
    .collect();
    let mut out = table(
        &[
            "readers-priority solution",
            "schedules (all)",
            "violating",
            "verdict",
        ],
        &rows,
    );
    out.push_str(
        "\nScenario: two writers and one reader, every interleaving explored. Figure 1's \
         path solution lets the second writer beat the waiting reader in some schedules; \
         the other mechanisms never do — including path-expr v3, where one Andler \
         predicate (blocked(read) == 0 on write) repairs Figure 1's defect.\n",
    );
    section("F1a — Footnote-3 anomaly, exhaustively verified", &out)
}

/// Exploration budget per E5 tree (both trees finish far below it).
const SYMBOLIC_BUDGET: usize = 500_000;

/// E5: symbolic data nondeterminism — `Ctx::choose_value` guard inputs
/// explored as constraint classes instead of concrete values.
///
/// Each scenario is explored twice in revisit mode: once per concrete
/// domain value (schedules summed) and once symbolically, where runs
/// whose guard outcomes agree collapse into a single class
/// representative. The symbolic exploration must reproduce exactly the
/// concrete behavior set — every guard valuation verified — while
/// executing strictly fewer schedules.
pub fn symbolic_report() -> String {
    let row = |label: &str, c: &SymbolicComparison| {
        vec![
            label.to_string(),
            c.domain.to_string(),
            c.concrete_schedules.to_string(),
            c.symbolic_schedules.to_string(),
            c.sym_grants.to_string(),
            if c.behaviors_match && c.clean && c.symbolic_schedules < c.concrete_schedules {
                "verified (all valuations)".to_string()
            } else {
                "FAIL".to_string()
            },
        ]
    };
    let andler = compare_andler(SYMBOLIC_BUDGET);
    let csp = compare_csp(SYMBOLIC_BUDGET);
    let mut out = table(
        &[
            "scenario",
            "domain",
            "concrete scheds (sum)",
            "symbolic scheds",
            "classes granted",
            "verdict",
        ],
        &[
            row("path-v3 Andler reader burst", &andler),
            row("CSP buffer, symbolic capacity", &csp),
        ],
    );
    out.push_str(
        "\nScenarios: a load generator draws a reader-burst size t in 1..=8 and spawns \
         reader i while t > i (three readers max) against the Andler predicate-path \
         solution with a writer in flight; a CSP bounded-buffer server draws its \
         capacity in 1..=8 and guards deposits with the symbolic comparison \
         capacity > len. Concrete = one revisit-mode exploration per domain value; \
         symbolic = one exploration of the choose_value version, which only forks a \
         sibling value when it flips a recorded guard (classes granted). The verdict \
         checks the symbolic behavior set equals the concrete union, every schedule \
         passes the scenario's correctness check (readers priority + exclusion; FIFO \
         delivery), and the symbolic count is strictly below concrete enumeration.\n",
    );
    section(
        "E5 — Symbolic data nondeterminism (choose_value guard classes)",
        &out,
    )
}

/// Kill points swept per crash-robustness cell — past the victim's last
/// scheduling point in every scenario, so the whole fault surface is hit.
const CRASH_KILL_POINTS: u64 = 8;

/// R1: the crash-robustness matrix. Each cell kills the victim at every
/// scheduling point `1..=8` of the canonical schedule and classifies the
/// aftermath (see `bloom_core::crash`): *contained* — survivors finish,
/// or the loss is reported as a named deadlock; *poisoned* — the primitive
/// records the crash and survivors observe it as a value; *wedged* —
/// survivors hang on state the corpse can no longer repair.
pub fn crash_robustness_report() -> String {
    let summarize = |outcomes: &[(u64, CrashOutcome)]| {
        let worst = outcomes
            .iter()
            .map(|&(_, o)| o)
            .max()
            .expect("at least one kill point");
        let count = |kind: CrashOutcome| outcomes.iter().filter(|&&(_, o)| o == kind).count();
        format!(
            "{worst}  ({}c/{}p/{}w)",
            count(CrashOutcome::Contained),
            count(CrashOutcome::Poisoned),
            count(CrashOutcome::Wedged),
        )
    };
    let rows: Vec<Vec<String>> = CrashMechanism::ALL
        .iter()
        .map(|&mech| {
            let mut row = vec![mech.label().to_string()];
            for &problem in CrashProblem::ALL.iter() {
                row.push(summarize(&outcome_sweep(mech, problem, CRASH_KILL_POINTS)));
            }
            row
        })
        .collect();
    let mut out = table(&["mechanism", "readers/writers", "bounded buffer"], &rows);
    out.push_str(&format!(
        "\nEach cell: worst outcome over kill points 1..={CRASH_KILL_POINTS} \
         (contained/poisoned/wedged tally). Bare P/V wedges — a dead holder's \
         permit is unrecoverable. Lock, monitor and path expressions poison: \
         the crash becomes a value survivors can observe. Serializer crowds \
         contain reader/writer crashes outright (membership cleanup re-runs \
         the guards); its possession-held bodies poison like a monitor. CSP \
         contains whenever the server owns the state, but wedges when a \
         granted writer dies mid-protocol — the server is mid-rendezvous \
         with a corpse.\n",
    ));
    section(
        "R1 — Crash robustness under deterministic fault injection",
        &out,
    )
}

/// Patience values swept per timeout-withdrawal cell — below and above
/// the holder's occupancy, so every cell sees both the withdrawal path
/// and the deadline-met path.
const LIVENESS_PATIENCE_SWEEP: [u64; 4] = [1, 2, HOLD, HOLD + 4];

/// R2: the liveness-robustness matrix. The *timeout withdrawal* column
/// sweeps contender patience below and above the holder's occupancy and
/// tallies the classifications (see `bloom_core::liveness`): *recovers* —
/// served within the first patience window; *recovers-after-retry* —
/// served, but only after a clean withdrawal (the visible cost of a
/// bounded retry loop, kept distinct from degradation); *degrades* —
/// poison, a starvation flag or a permanent give-up; *wedges* — the run
/// dies. The
/// other two columns run one canonical schedule each: a genuine cyclic
/// deadlock with kernel victim-abort recovery on, and a writer retrying
/// under two resource hogs with the starvation watchdog armed.
pub fn liveness_robustness_report() -> String {
    let rows: Vec<Vec<String>> = LiveMechanism::ALL
        .iter()
        .map(|&mech| {
            let outcomes: Vec<LivenessOutcome> = LIVENESS_PATIENCE_SWEEP
                .iter()
                .map(|&patience| classify_liveness(&timeout_withdrawal_sim(mech, patience).run()))
                .collect();
            let worst = *outcomes.iter().max().expect("at least one patience");
            let count = |kind: LivenessOutcome| outcomes.iter().filter(|&&o| o == kind).count();
            vec![
                mech.label().to_string(),
                format!(
                    "{worst}  ({}r/{}ar/{}d/{}w)",
                    count(LivenessOutcome::Recovers),
                    count(LivenessOutcome::RecoversAfterRetry),
                    count(LivenessOutcome::Degrades),
                    count(LivenessOutcome::Wedges),
                ),
                liveness_outcome(mech, LiveScenario::DeadlockRecovery).to_string(),
                liveness_outcome(mech, LiveScenario::StarvationWatchdog).to_string(),
            ]
        })
        .collect();
    let mut out = table(
        &[
            "mechanism",
            "timeout withdrawal",
            "deadlock recovery",
            "starvation watchdog",
        ],
        &rows,
    );
    out.push_str(&format!(
        "\nTimeout cell: worst outcome over patience {LIVENESS_PATIENCE_SWEEP:?} \
         (recovers/recovers-after-retry/degrades/wedges tally) — every mechanism \
         withdraws cleanly and retries to success: impatient contenders end \
         recovers-after-retry (served on a later attempt), patient ones plain \
         recovers. Deadlock recovery: aborting the victim recovers \
         outright where unwinding fully restores what it held (semaphore permits, \
         serializer crowd seats) but degrades to poison where the victim died \
         inside a monitor or mid-operation in a path expression, and to a dead \
         rendezvous cycle in CSP. Starvation watchdog: the weak semaphore starves \
         the writer under two polling hogs — flagged on a concrete replayable \
         schedule — while the FIFO disciplines all serve it.\n",
    ));
    section(
        "R2 — Liveness robustness: deadlines, cancellation and recovery",
        &out,
    )
}

/// The R3 workload ladder: one rung per population decade. The shapes
/// change with scale on purpose — everybody-at-once keeps small
/// populations saturated, while the thousand-client rung arrives in
/// bursts with heavy-tailed think times, so the contention calibration
/// tracks the burst (16), not the population.
fn r3_spec(n: usize) -> WorkloadSpec {
    match n {
        10 => WorkloadSpec::new(0xB10)
            .clients(10)
            .ops(6)
            .arrival(Arrival::Together)
            .think(Think::None),
        100 => WorkloadSpec::new(0xB100)
            .clients(100)
            .ops(3)
            .arrival(Arrival::Together)
            .think(Think::None),
        // The burst gap must exceed a burst's service time (~3600 ticks:
        // 32 critical sections, each costing the active set's spin
        // budget) or bursts pile up until the whole population polls at
        // once and the step budget explodes quadratically.
        _ => WorkloadSpec::new(0xB1000)
            .clients(1000)
            .ops(2)
            .arrival(Arrival::Bursts {
                size: 16,
                gap: 4000,
            })
            .think(Think::Zipf {
                max: 6,
                exponent: 1,
            }),
    }
}

/// Iterations sampled per rung: runs get longer as populations grow, so
/// the budget shifts from breadth to depth (the report must stay cheap
/// enough to regenerate inside the debug-mode golden test).
const R3_LADDER: [(usize, u64); 3] = [(10, 40), (100, 6), (1000, 4)];

/// R3: measured violation rates under sampled schedules, at populations
/// far beyond the exhaustive explorers.
///
/// Each rung of the [`r3_spec`] ladder samples the scaled starvation
/// scenario under PCT for both semaphore disciplines, and the
/// nested-monitor race under seeded random walks at the 100-client
/// rung, checking every run against its law set
/// ([`bloom_problems::r3`]). Sampled journals are seeded and
/// worker-count-independent, so the table is deterministic and
/// machine-independent. The first weak-semaphore counterexample is
/// shrunk to a locally minimal decision-vector prefix as a closing
/// exhibit. In nomercy fashion, an unobserved rate means "no
/// counterexample found at this budget" — never "impossible"; the
/// strong semaphore's zero is backed by the structural hand-off
/// argument in `bloom_problems::r3`, not by the sampling.
pub fn r3_report() -> String {
    let starvation = starvation_laws();
    let nested = nested_monitor_laws();
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut shrink_note = String::new();

    let mut push_row =
        |scenario: &str, n: usize, runs: usize, law: &str, hits: u64, first: Option<u64>| {
            rows.push(vec![
                scenario.to_string(),
                n.to_string(),
                runs.to_string(),
                law.to_string(),
                format!("{hits}/{runs}"),
                classify_rate(hits, runs).to_string(),
                first.map_or_else(|| "—".to_string(), |i| format!("iter {i}")),
            ]);
        };

    for &(n, iters) in &R3_LADDER {
        let spec = r3_spec(n);
        for (label, mech) in [
            ("starvation, weak sem", LiveMechanism::SemaphoreWeak),
            ("starvation, strong sem", LiveMechanism::SemaphoreStrong),
        ] {
            let (journal, stats) = ExploreConfig::new(0).sample(
                SampleStrategy::Pct {
                    change_points: 4,
                    depth_hint: 2048,
                },
                iters as usize,
                0x000B_100F + n as u64,
                || starvation_at_scale(mech, &spec),
                |_, result| {
                    let violated = starvation.violated(result);
                    (violated.clone(), violated)
                },
            );
            let sampling = stats.sampling.expect("sampler always fills stats");
            let hits = sampling
                .violations
                .get("starvation-free")
                .copied()
                .unwrap_or(0);
            let first = sampling.first_hits.get("starvation-free").copied();
            push_row(label, n, sampling.runs, "starvation-free", hits, first);

            if n == 10 && mech == LiveMechanism::SemaphoreWeak && hits > 0 {
                let witness = journal
                    .iter()
                    .find(|r| r.value.iter().any(|k| k == "starvation-free"))
                    .expect("hits > 0 implies a journaled witness");
                let minimal = shrink_prefix(
                    || starvation_at_scale(mech, &spec),
                    &witness.choices,
                    |result| {
                        starvation
                            .violated(result)
                            .iter()
                            .any(|k| k == "starvation-free")
                    },
                );
                shrink_note = format!(
                    "Shrunk witness (weak, n=10, iter {}): {} contested decisions \
                     → {}-decision minimal prefix, still starving on replay.\n",
                    witness.iteration,
                    witness.choices.len(),
                    minimal.len()
                );
            }
        }
    }

    let nested_spec = r3_spec(100);
    let (_, stats) = ExploreConfig::new(0).sample(
        SampleStrategy::Walk,
        20,
        0x000B_100E,
        || nested_monitor_at_scale(&nested_spec),
        |_, result| ((), nested.violated(result)),
    );
    let sampling = stats.sampling.expect("sampler always fills stats");
    let hits = sampling.violations.get("no-deadlock").copied().unwrap_or(0);
    let first = sampling.first_hits.get("no-deadlock").copied();
    push_row(
        "nested-monitor race",
        100,
        sampling.runs,
        "no-deadlock",
        hits,
        first,
    );

    let mut out = table(
        &[
            "scenario",
            "n",
            "runs",
            "law",
            "violations",
            "rate",
            "first hit",
        ],
        &rows,
    );
    out.push('\n');
    out.push_str(&shrink_note);
    out.push_str(
        "PCT sampling (4 change points) over the workload-DSL population ladder; \
         nested-monitor row sampled by seeded random walks. The weak semaphore's \
         starvation rate survives every population decade while the strong \
         discipline's direct hand-off keeps its rate unobserved at the same \
         budgets — the paper's §5.1 weak/strong distinction, now measured rather \
         than exhibited. Rates are schedule-sampling frequencies under one seeded \
         sampler, not probabilities under any natural scheduler.\n",
    );
    section(
        "R3 — Violation rates at scale: sampled schedules, law checking",
        &out,
    )
}

fn run_checks(tag: &str, violations: Vec<Violation>, failures: &mut Vec<String>) {
    for v in violations {
        failures.push(format!("{tag}: {v}"));
    }
}

/// T1: runs every solution against its checkers; returns (row per
/// problem×mechanism, failures).
pub fn solution_matrix() -> (Vec<Vec<String>>, Vec<String>) {
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let seeds: Vec<Option<u64>> = vec![None, Some(41), Some(42)];

    let mut push_row = |problem: &str, mech: MechanismId, checks: &str, ok: bool| {
        rows.push(vec![
            problem.to_string(),
            mech.label().to_string(),
            checks.to_string(),
            if ok {
                "pass".to_string()
            } else {
                "FAIL".to_string()
            },
        ]);
    };

    for mech in bloom_problems::oneslot::MECHANISMS {
        let before = failures.len();
        for &seed in &seeds {
            let events = extract(&oneslot_scenario(mech, 6, seed).trace);
            run_checks(
                "one-slot",
                check_alternation(&events, "deposit", "remove"),
                &mut failures,
            );
            run_checks("one-slot", check_all_served(&events), &mut failures);
        }
        push_row(
            "one-slot buffer",
            mech,
            "alternation, liveness",
            failures.len() == before,
        );
    }
    for mech in bloom_problems::buffer::MECHANISMS {
        let before = failures.len();
        for &seed in &seeds {
            let (report, _, _) = buffer_scenario(mech, 3, 2, 2, 4, seed);
            let events = extract(&report.trace);
            run_checks(
                "buffer",
                check_buffer_bounds(&events, "deposit", "remove", 3),
                &mut failures,
            );
            run_checks("buffer", check_all_served(&events), &mut failures);
        }
        push_row(
            "bounded buffer",
            mech,
            "bounds, liveness",
            failures.len() == before,
        );
    }
    for mech in bloom_problems::fcfs::MECHANISMS {
        let before = failures.len();
        for &seed in &seeds {
            let events = extract(&fcfs_scenario(mech, 5, 3, seed).trace);
            run_checks("fcfs", check_fifo(&events, &["use"]), &mut failures);
            run_checks(
                "fcfs",
                check_exclusion(&events, &[("use", "use")]),
                &mut failures,
            );
        }
        push_row(
            "FCFS resource",
            mech,
            "fifo, exclusion",
            failures.len() == before,
        );
    }
    for mech in rw::MECHANISMS {
        for variant in RwVariant::ALL {
            let before = failures.len();
            let mut checks = "exclusion, liveness".to_string();
            for &seed in &seeds {
                let events = extract(&rw_scenario(mech, variant, 3, 2, 3, seed).trace);
                run_checks(
                    "rw",
                    check_exclusion(&events, &[("read", "write"), ("write", "write")]),
                    &mut failures,
                );
                run_checks("rw", check_all_served(&events), &mut failures);
                match (variant, mech) {
                    (RwVariant::ReadersPriority, MechanismId::PathV1) => {
                        checks = "exclusion, liveness (priority: see F1a)".to_string();
                    }
                    (RwVariant::ReadersPriority, _) => {
                        checks = "exclusion, liveness, strict priority".to_string();
                        run_checks(
                            "rw",
                            check_priority_over(&events, "read", "write"),
                            &mut failures,
                        );
                    }
                    (RwVariant::WritersPriority, MechanismId::PathV1) => {
                        checks = "exclusion, liveness, arrival-relative priority".to_string();
                        run_checks(
                            "rw",
                            check_no_later_overtake(&events, "write", "read"),
                            &mut failures,
                        );
                    }
                    (RwVariant::WritersPriority, _) => {
                        checks = "exclusion, liveness, strict priority".to_string();
                        run_checks(
                            "rw",
                            check_priority_over(&events, "write", "read"),
                            &mut failures,
                        );
                    }
                    (RwVariant::Fcfs, _) => {
                        checks = "exclusion, liveness, fifo".to_string();
                        run_checks("rw", check_fifo(&events, &["read", "write"]), &mut failures);
                    }
                }
            }
            let label = match variant {
                RwVariant::ReadersPriority => "readers-priority DB",
                RwVariant::WritersPriority => "writers-priority DB",
                RwVariant::Fcfs => "FCFS readers/writers",
            };
            push_row(label, mech, &checks, failures.len() == before);
        }
    }
    for mech in bloom_problems::disk::MECHANISMS {
        let before = failures.len();
        for workload in 1..4u64 {
            let events = extract(&disk_scenario(mech, 4, 3, workload, None).trace);
            run_checks("disk", check_elevator(&events, "seek"), &mut failures);
            run_checks(
                "disk",
                check_exclusion(&events, &[("seek", "seek")]),
                &mut failures,
            );
        }
        push_row(
            "disk scheduler",
            mech,
            "elevator, exclusion",
            failures.len() == before,
        );
    }
    for mech in bloom_problems::alarm::MECHANISMS {
        let before = failures.len();
        for workload in 1..4u64 {
            let events = extract(&alarm_scenario(mech, 5, workload, None).trace);
            run_checks("alarm", check_alarm(&events, "wake", 1), &mut failures);
            run_checks("alarm", check_all_served(&events), &mut failures);
        }
        push_row(
            "alarm clock",
            mech,
            "deadlines, liveness",
            failures.len() == before,
        );
    }
    (rows, failures)
}

/// T1 rendered.
pub fn solution_matrix_report() -> String {
    let (rows, failures) = solution_matrix();
    let mut out = table(&["problem", "mechanism", "checks", "verdict"], &rows);
    if failures.is_empty() {
        out.push_str("\nAll solutions satisfy all constraint checkers.\n");
    } else {
        out.push_str(&format!("\n{} FAILURES:\n", failures.len()));
        for f in &failures {
            out.push_str(&format!("  {f}\n"));
        }
    }
    section(
        "T1 — Solution matrix (footnote 2's suite × mechanisms)",
        &out,
    )
}

/// §2/T6: the modularity assessment.
pub fn modularity_report() -> String {
    let rows: Vec<Vec<String>> = MechanismId::ALL
        .iter()
        .map(|&m| {
            let p = paper_profile(m);
            vec![
                m.label().to_string(),
                p.modularity.encapsulated.to_string(),
                p.modularity.separable.to_string(),
                p.notes.first().cloned().unwrap_or_default(),
            ]
        })
        .collect();
    let out = table(
        &[
            "mechanism",
            "encapsulated with resource",
            "resource/sync separable",
            "note",
        ],
        &rows,
    );
    section("T6 — Modularity requirements (paper §2)", &out)
}

/// Workaround census: where each mechanism had to escape its own style.
pub fn workaround_report() -> String {
    let mut rows = Vec::new();
    for desc in all_descs() {
        if !desc.workarounds.is_empty() {
            rows.push(vec![
                desc.problem.label().to_string(),
                desc.mechanism.label().to_string(),
                desc.workarounds.join("; "),
            ]);
        }
    }
    let out = table(&["problem", "mechanism", "workaround"], &rows);
    section(
        "T3b — Workaround census (the paper's synchronization procedures)",
        &out,
    )
}

/// O1: run anatomy — the `SimMetrics` of one canonical (FIFO) run of each
/// problem × mechanism cell, side by side. Metrics are non-authoritative
/// observability counters recorded by the simulator on every run; the
/// table makes mechanism overhead visible (context switches, parks, peak
/// wait-queue depth, mechanism-labelled sync operations) without touching
/// any correctness machinery.
pub fn run_anatomy_report() -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut push = |problem: &str, mech: MechanismId, report: &bloom_sim::SimReport| {
        let m = &report.metrics;
        rows.push(vec![
            problem.to_string(),
            mech.label().to_string(),
            m.dispatches.to_string(),
            m.context_switches.to_string(),
            m.total_parks().to_string(),
            m.total_wakes().to_string(),
            m.max_queue_depth().to_string(),
            m.total_sync_ops().to_string(),
        ]);
    };
    for mech in bloom_problems::oneslot::MECHANISMS {
        push("one-slot buffer", mech, &oneslot_scenario(mech, 6, None));
    }
    for mech in bloom_problems::buffer::MECHANISMS {
        let (report, _, _) = buffer_scenario(mech, 3, 2, 2, 4, None);
        push("bounded buffer", mech, &report);
    }
    for mech in bloom_problems::fcfs::MECHANISMS {
        push("FCFS resource", mech, &fcfs_scenario(mech, 5, 3, None));
    }
    for mech in rw::MECHANISMS {
        push(
            "readers-priority DB",
            mech,
            &rw_scenario(mech, RwVariant::ReadersPriority, 3, 2, 3, None),
        );
    }
    for mech in bloom_problems::disk::MECHANISMS {
        push("disk scheduler", mech, &disk_scenario(mech, 4, 3, 2, None));
    }
    for mech in bloom_problems::alarm::MECHANISMS {
        push("alarm clock", mech, &alarm_scenario(mech, 5, 2, None));
    }
    let mut out = table(
        &[
            "problem",
            "mechanism",
            "disp",
            "switch",
            "parks",
            "wakes",
            "peak q",
            "sync ops",
        ],
        &rows,
    );
    out.push_str(
        "\nOne canonical FIFO run per cell. disp/switch: dispatches and context \
         switches; parks/wakes: blocking episodes entered/ended (by any cause); \
         peak q: deepest wait queue observed; sync ops: mechanism-labelled \
         synchronization-state touches (the same instrumentation that powers the \
         explorer's purity tracking, so recording it adds no scheduling points). \
         Metrics are non-authoritative: they observe scheduling, never influence \
         it, and are byte-identical across explorer thread counts.\n",
    );
    section(
        "O1 — Run anatomy (SimMetrics across the solution matrix)",
        &out,
    )
}

/// The complete report, in experiment-index order.
pub fn full_report() -> String {
    let mut out = String::new();
    out.push_str("# bloom-eval report — Evaluating Synchronization Mechanisms (SOSP 1979)\n\n");
    out.push_str(&coverage_report());
    out.push('\n');
    out.push_str(&expressiveness_report());
    out.push('\n');
    out.push_str(&workaround_report());
    out.push('\n');
    out.push_str(&independence_report());
    out.push('\n');
    out.push_str(&anomaly_report());
    out.push('\n');
    out.push_str(&symbolic_report());
    out.push('\n');
    out.push_str(&crash_robustness_report());
    out.push('\n');
    out.push_str(&liveness_robustness_report());
    out.push('\n');
    out.push_str(&r3_report());
    out.push('\n');
    out.push_str(&modularity_report());
    out.push('\n');
    out.push_str(&solution_matrix_report());
    out.push('\n');
    out.push_str(&run_anatomy_report());
    out
}

/// All problems used by the benchmark suite, for reference.
pub fn problem_list() -> Vec<ProblemId> {
    ProblemId::ALL.to_vec()
}

/// The fixed two-process semaphore run behind the trace-export golden
/// files (`docs/trace_export.jsonl`, `docs/trace_export.chrome.json`):
/// two processes contend for one strong-semaphore permit under the
/// default FIFO policy, so the run parks, wakes, and context-switches
/// deterministically. `examples/trace_export.rs` exports this run; the
/// `trace_export` integration test pins its exact exported bytes.
pub fn trace_export_sample() -> bloom_sim::SimReport {
    let sem = Arc::new(bloom_semaphore::Semaphore::strong("gate", 1));
    let mut sim = Sim::new();
    for (name, base) in [("ping", 0i64), ("pong", 10i64)] {
        let sem = Arc::clone(&sem);
        sim.spawn(name, move |ctx| {
            for i in 0..2 {
                sem.p(ctx);
                ctx.emit("enter", &[base + i]);
                ctx.yield_now();
                ctx.emit("exit", &[base + i]);
                sem.v(ctx);
            }
        });
    }
    sim.run().expect("sample run cannot deadlock")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solution_matrix_is_all_green() {
        let (rows, failures) = solution_matrix();
        assert!(failures.is_empty(), "failures: {failures:?}");
        assert_eq!(rows.len(), 5 + 5 + 5 + 15 + 5 + 5);
        assert!(rows.iter().all(|r| r[3] == "pass"));
    }

    #[test]
    fn anomaly_exploration_matches_the_paper() {
        let fig1 = explore_anomaly(MechanismId::PathV1);
        assert!(fig1.violations > 0);
        let monitor = explore_anomaly(MechanismId::Monitor);
        assert_eq!(monitor.violations, 0);
    }

    #[test]
    fn full_report_renders_every_section() {
        let report = full_report();
        for heading in [
            "T1", "T2", "T3", "T4", "F1a", "E5", "R1", "R2", "R3", "T6", "O1",
        ] {
            assert!(report.contains(heading), "missing section {heading}");
        }
        assert!(report.contains("ANOMALOUS (footnote 3)"));
        assert!(!report.contains("FAIL"), "report contains failures");
    }

    #[test]
    fn liveness_matrix_matches_the_expected_verdicts() {
        let report = liveness_robustness_report();
        // The R2 headline cells: only the weak semaphore fails the
        // watchdog, and no cell of the matrix wedges.
        assert!(report.contains("semaphore (weak)"));
        assert!(report.contains("degrades"));
        assert!(!report.contains("wedges  ("), "a timeout cell wedged");
    }
}
