//! Property-based tests of the simulator kernel.

#![deny(deprecated)]

use bloom_sim::{RandomPolicy, ReplayPolicy, Sim, SimConfig};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

/// Shared operation log: `(process, op index)` entries in execution order.
type OpLog = Arc<Mutex<Vec<(i64, i64)>>>;

/// Builds a contended scenario: `procs` processes each emit `ops` events
/// with yields in between.
fn scenario(procs: usize, ops: usize) -> (Sim, OpLog) {
    let mut sim = Sim::with_config(SimConfig {
        max_steps: 100_000,
        record_sched_events: false,
        ..SimConfig::default()
    });
    let log = Arc::new(Mutex::new(Vec::new()));
    for p in 0..procs {
        let log = Arc::clone(&log);
        sim.spawn(&format!("p{p}"), move |ctx| {
            for o in 0..ops {
                log.lock().push((p as i64, o as i64));
                ctx.yield_now();
            }
        });
    }
    (sim, log)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Whatever the schedule, every operation of every process happens
    /// exactly once and per-process order is preserved.
    #[test]
    fn schedules_conserve_and_order_work(
        procs in 1usize..8,
        ops in 1usize..8,
        seed in any::<u64>(),
    ) {
        let (mut sim, log) = scenario(procs, ops);
        sim.set_policy(RandomPolicy::new(seed));
        sim.run().expect("no blocking in this scenario");
        let log = log.lock();
        prop_assert_eq!(log.len(), procs * ops);
        for p in 0..procs as i64 {
            let seen: Vec<i64> = log.iter().filter(|(q, _)| *q == p).map(|(_, o)| *o).collect();
            let expected: Vec<i64> = (0..ops as i64).collect();
            prop_assert_eq!(seen, expected, "per-process program order violated");
        }
    }

    /// An arbitrary replay script (possibly out of range, possibly short)
    /// never breaks the kernel: the run completes and is deterministic.
    #[test]
    fn arbitrary_replay_scripts_are_safe(
        procs in 1usize..6,
        ops in 1usize..6,
        script in prop::collection::vec(0u32..8, 0..40),
    ) {
        let run = |script: Vec<u32>| {
            let (mut sim, log) = scenario(procs, ops);
            sim.set_policy(ReplayPolicy::new(script));
            sim.run().expect("scenario cannot deadlock");
            let out = log.lock().clone();
            out
        };
        let a = run(script.clone());
        let b = run(script);
        prop_assert_eq!(&a, &b, "same script, same schedule");
        prop_assert_eq!(a.len(), procs * ops);
    }

    /// Recording a random run's decisions and replaying them reproduces
    /// the trace exactly, for any seed and shape.
    #[test]
    fn record_replay_round_trip(
        procs in 2usize..6,
        ops in 1usize..6,
        seed in any::<u64>(),
    ) {
        let (mut sim, log) = scenario(procs, ops);
        sim.set_policy(RandomPolicy::new(seed));
        let report = sim.run().unwrap();
        let original = log.lock().clone();
        let script: Vec<u32> = report.decisions.iter().map(|d| d.chosen).collect();

        let (mut sim2, log2) = scenario(procs, ops);
        sim2.set_policy(ReplayPolicy::new(script));
        sim2.run().unwrap();
        prop_assert_eq!(original, log2.lock().clone());
    }

    /// Sleeping processes always resume at or after their deadline.
    #[test]
    fn sleep_never_wakes_early(
        delays in prop::collection::vec(1u64..60, 1..6),
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(seed));
        let ok = Arc::new(Mutex::new(true));
        for (i, &d) in delays.iter().enumerate() {
            let ok = Arc::clone(&ok);
            sim.spawn(&format!("s{i}"), move |ctx| {
                let before = ctx.now();
                ctx.sleep(d);
                if ctx.now().0 < before.0 + d {
                    *ok.lock() = false;
                }
            });
        }
        sim.run().unwrap();
        prop_assert!(*ok.lock());
    }
}
