//! End-to-end behavioral tests of the simulator kernel.

#![deny(deprecated)]

use bloom_sim::{
    EventKind, FifoPolicy, LifoPolicy, Pid, ProcessStatus, RandomPolicy, ReplayPolicy, Sim,
    SimConfig, SimErrorKind, Time, WaitQueue,
};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn empty_simulation_completes() {
    let report = Sim::new().run().expect("empty sim runs");
    assert_eq!(report.steps, 0);
    assert_eq!(report.final_time, Time::ZERO);
    assert!(report.processes.is_empty());
}

#[test]
fn single_process_runs_to_completion() {
    let mut sim = Sim::new();
    let hits = Arc::new(Mutex::new(0));
    let hits2 = Arc::clone(&hits);
    sim.spawn("solo", move |ctx| {
        *hits2.lock() += 1;
        ctx.emit("done", &[]);
    });
    let report = sim.run().unwrap();
    assert_eq!(*hits.lock(), 1);
    assert_eq!(report.processes[0].status, ProcessStatus::Finished);
    assert_eq!(report.trace.count_user("done"), 1);
}

#[test]
fn virtual_clock_advances_one_per_dispatch() {
    let mut sim = Sim::new();
    let times = Arc::new(Mutex::new(Vec::new()));
    let t2 = Arc::clone(&times);
    sim.spawn("ticker", move |ctx| {
        for _ in 0..3 {
            t2.lock().push(ctx.now());
            ctx.yield_now();
        }
    });
    sim.run().unwrap();
    assert_eq!(*times.lock(), vec![Time(1), Time(2), Time(3)]);
}

#[test]
fn sleep_orders_by_deadline_not_spawn_order() {
    let mut sim = Sim::new();
    let order = Arc::new(Mutex::new(Vec::new()));
    for (name, ticks) in [("late", 50u64), ("early", 10)] {
        let order = Arc::clone(&order);
        sim.spawn(name, move |ctx| {
            ctx.sleep(ticks);
            order.lock().push(name);
        });
    }
    sim.run().unwrap();
    assert_eq!(*order.lock(), vec!["early", "late"]);
}

#[test]
fn sleep_advances_clock_to_deadline() {
    let mut sim = Sim::new();
    let observed = Arc::new(Mutex::new(Time::ZERO));
    let o2 = Arc::clone(&observed);
    sim.spawn("sleeper", move |ctx| {
        let before = ctx.now();
        ctx.sleep(100);
        let after = ctx.now();
        assert!(
            after.0 >= before.0 + 100,
            "woke at {after} after sleeping 100 from {before}"
        );
        *o2.lock() = after;
    });
    sim.run().unwrap();
    assert!(observed.lock().0 >= 100);
}

#[test]
fn sleep_zero_is_yield() {
    let mut sim = Sim::new();
    let order = Arc::new(Mutex::new(Vec::new()));
    let o1 = Arc::clone(&order);
    sim.spawn("a", move |ctx| {
        ctx.sleep(0);
        o1.lock().push("a");
    });
    let o2 = Arc::clone(&order);
    sim.spawn("b", move |_| {
        o2.lock().push("b");
    });
    sim.run().unwrap();
    assert_eq!(*order.lock(), vec!["b", "a"], "sleep(0) let b run first");
}

#[test]
fn daemons_do_not_prevent_completion() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("forever"));
    let q2 = Arc::clone(&q);
    sim.spawn_daemon("background", move |ctx| {
        q2.wait(ctx); // blocks forever
        unreachable!("daemon must be cancelled, not woken");
    });
    sim.spawn("worker", |ctx| ctx.emit("work", &[]));
    let report = sim.run().expect("daemons alone don't deadlock");
    assert_eq!(report.processes[0].status, ProcessStatus::Cancelled);
    assert_eq!(report.processes[1].status, ProcessStatus::Finished);
}

#[test]
fn daemon_loop_with_sleep_is_cancelled_cleanly() {
    let mut sim = Sim::new();
    let ticks = Arc::new(Mutex::new(0u64));
    let t2 = Arc::clone(&ticks);
    sim.spawn_daemon("ticker", move |ctx| loop {
        *t2.lock() += 1;
        ctx.sleep(10);
    });
    sim.spawn("worker", |ctx| ctx.sleep(35));
    let report = sim.run().unwrap();
    // Ticker fires at t≈0,10,20,30 while worker sleeps until 35.
    assert!(
        *ticks.lock() >= 3,
        "ticker ran while worker slept: {}",
        *ticks.lock()
    );
    assert_eq!(report.processes[0].status, ProcessStatus::Cancelled);
}

#[test]
fn process_panic_is_reported_with_message() {
    let mut sim = Sim::new();
    sim.spawn("bomb", |_| panic!("boom-42"));
    sim.spawn("bystander", |ctx| {
        for _ in 0..100 {
            ctx.yield_now();
        }
    });
    let err = sim.run().expect_err("panic must fail the run");
    match err.kind {
        SimErrorKind::ProcessPanicked { pid, ref message } => {
            assert_eq!(pid, Pid(0));
            assert!(message.contains("boom-42"));
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn deadlock_lists_all_blocked_processes() {
    let mut sim = Sim::new();
    let a = Arc::new(WaitQueue::new("qa"));
    let b = Arc::new(WaitQueue::new("qb"));
    let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
    sim.spawn("p0", move |ctx| a2.wait(ctx));
    sim.spawn("p1", move |ctx| b2.wait(ctx));
    let err = sim.run().expect_err("deadlock");
    match err.kind {
        SimErrorKind::Deadlock { blocked } => {
            assert_eq!(blocked.len(), 2);
            let reasons: Vec<&str> = blocked.iter().map(|(_, _, r)| r.as_str()).collect();
            assert!(reasons.contains(&"qa") && reasons.contains(&"qb"));
        }
        other => panic!("unexpected error: {other:?}"),
    }
}

#[test]
fn max_steps_catches_livelock() {
    let mut sim = Sim::with_config(SimConfig {
        max_steps: 50,
        record_sched_events: false,
        ..SimConfig::default()
    });
    sim.spawn("spinner", |ctx| loop {
        ctx.yield_now();
    });
    let err = sim.run().expect_err("livelock");
    assert!(matches!(
        err.kind,
        SimErrorKind::MaxStepsExceeded { limit: 50 }
    ));
}

#[test]
fn spawn_during_run_schedules_child() {
    let mut sim = Sim::new();
    let seen = Arc::new(Mutex::new(Vec::new()));
    let s2 = Arc::clone(&seen);
    sim.spawn("parent", move |ctx| {
        let s3 = Arc::clone(&s2);
        ctx.spawn("child", move |cctx| {
            s3.lock().push(format!("child {}", cctx.pid()));
        });
        s2.lock().push("parent".to_string());
    });
    let report = sim.run().unwrap();
    assert_eq!(report.processes.len(), 2);
    assert_eq!(report.name_of(Pid(1)), "child");
    assert_eq!(seen.lock().len(), 2);
}

fn schedule_signature(policy_seed: Option<u64>) -> Vec<String> {
    let mut sim = Sim::new();
    if let Some(seed) = policy_seed {
        sim.set_policy(RandomPolicy::new(seed));
    }
    for i in 0..4 {
        sim.spawn(&format!("p{i}"), move |ctx| {
            for j in 0..3 {
                ctx.emit("op", &[i, j]);
                ctx.yield_now();
            }
        });
    }
    let report = sim.run().unwrap();
    report
        .trace
        .user_events()
        .map(|(e, _, params)| format!("{}:{:?}", e.pid, params))
        .collect()
}

#[test]
fn runs_are_deterministic_per_policy() {
    assert_eq!(schedule_signature(None), schedule_signature(None));
    assert_eq!(schedule_signature(Some(9)), schedule_signature(Some(9)));
    assert_ne!(
        schedule_signature(Some(1)),
        schedule_signature(Some(2)),
        "different seeds should produce different interleavings for this scenario"
    );
}

#[test]
fn recorded_decisions_replay_identically() {
    let build = || {
        let mut sim = Sim::new();
        for i in 0..3 {
            sim.spawn(&format!("p{i}"), move |ctx| {
                for j in 0..2 {
                    ctx.emit("op", &[i, j]);
                    ctx.yield_now();
                }
            });
        }
        sim
    };
    let mut original = build();
    original.set_policy(RandomPolicy::new(1234));
    let report = original.run().unwrap();
    let script: Vec<u32> = report.decisions.iter().map(|d| d.chosen).collect();

    let mut replay = build();
    replay.set_policy(ReplayPolicy::new(script));
    let replayed = replay.run().unwrap();

    let sig = |r: &bloom_sim::SimReport| -> Vec<String> {
        r.trace
            .user_events()
            .map(|(e, _, p)| format!("{}:{:?}", e.pid, p))
            .collect()
    };
    assert_eq!(sig(&report), sig(&replayed));
}

#[test]
fn lifo_policy_reverses_fifo_order() {
    let run = |fifo: bool| -> Vec<i64> {
        let mut sim = Sim::new();
        if fifo {
            sim.set_policy(FifoPolicy);
        } else {
            sim.set_policy(LifoPolicy);
        }
        for i in 0..3 {
            sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
        }
        sim.run()
            .unwrap()
            .trace
            .user_events()
            .map(|(_, _, p)| p[0])
            .collect()
    };
    assert_eq!(run(true), vec![0, 1, 2]);
    assert_eq!(run(false), vec![2, 1, 0]);
}

#[test]
fn trace_records_block_and_unpark_ordering() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("gate"));
    let q2 = Arc::clone(&q);
    sim.spawn("waiter", move |ctx| q2.wait(ctx));
    let q3 = Arc::clone(&q);
    sim.spawn("waker", move |ctx| {
        ctx.yield_now();
        q3.wake_one(ctx);
    });
    let report = sim.run().unwrap();
    let block_seq = report
        .trace
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::Blocked { .. }))
        .expect("block event")
        .seq;
    let unpark_seq = report
        .trace
        .events()
        .iter()
        .find(|e| matches!(e.kind, EventKind::Unparked { .. }))
        .expect("unpark event")
        .seq;
    assert!(
        block_seq < unpark_seq,
        "block must precede unpark in the trace"
    );
}

#[test]
fn tickets_are_strictly_increasing() {
    let mut sim = Sim::new();
    let tickets = Arc::new(Mutex::new(Vec::new()));
    for i in 0..3 {
        let t = Arc::clone(&tickets);
        sim.spawn(&format!("p{i}"), move |ctx| {
            for _ in 0..5 {
                t.lock().push(ctx.fresh_ticket());
                ctx.yield_now();
            }
        });
    }
    sim.run().unwrap();
    let ts = tickets.lock();
    let mut sorted = ts.clone();
    sorted.sort_unstable();
    sorted.dedup();
    assert_eq!(sorted.len(), ts.len(), "tickets are unique");
}

#[test]
fn report_even_on_failure_contains_trace() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("q"));
    let q2 = Arc::clone(&q);
    sim.spawn("stuck", move |ctx| {
        ctx.emit("before", &[7]);
        q2.wait(ctx);
    });
    let err = sim.run().expect_err("deadlock");
    assert_eq!(err.report.trace.count_user("before"), 1);
}

#[test]
fn park_timeout_fires_when_nobody_wakes() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("patient"));
    let q2 = Arc::clone(&q);
    sim.spawn("waiter", move |ctx| {
        let before = ctx.now();
        let woken = q2.wait_by(ctx, 40u64);
        assert!(!woken, "nobody woke us: must time out");
        assert!(ctx.now().0 >= before.0 + 40, "woke only after the deadline");
        assert!(q2.is_empty(), "timed-out entry removed");
        ctx.emit("timed-out", &[]);
    });
    let report = sim.run().expect("timeout prevents the deadlock");
    assert_eq!(report.trace.count_user("timed-out"), 1);
}

#[test]
fn park_timeout_cancelled_by_normal_wake() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("q"));
    let q2 = Arc::clone(&q);
    sim.spawn("waiter", move |ctx| {
        let woken = q2.wait_by(ctx, 1000u64);
        assert!(woken, "explicit wake beats the timer");
        ctx.emit("woken", &[]);
    });
    let q3 = Arc::clone(&q);
    sim.spawn("waker", move |ctx| {
        ctx.yield_now();
        assert!(q3.wake_one(ctx).is_some());
    });
    let report = sim.run().unwrap();
    assert_eq!(report.trace.count_user("woken"), 1);
    // The stale timer must not resurrect the process or corrupt later parks.
    assert!(report
        .processes
        .iter()
        .all(|p| p.status == bloom_sim::ProcessStatus::Finished));
}

#[test]
fn stale_timer_does_not_disturb_a_later_park() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("q"));
    let q2 = Arc::clone(&q);
    sim.spawn("waiter", move |ctx| {
        // First park with a short timeout, woken explicitly.
        assert!(q2.wait_by(ctx, 5u64));
        // Second, plain park: the old timer (due at ~t5) must not wake it.
        q2.wait(ctx);
        ctx.emit("legit-wake", &[]);
    });
    let q3 = Arc::clone(&q);
    sim.spawn("waker", move |ctx| {
        ctx.yield_now();
        assert!(q3.wake_one(ctx).is_some());
        // Sleep well past the stale deadline, then wake again.
        ctx.sleep(50);
        assert!(
            q3.wake_one(ctx).is_some(),
            "waiter still parked despite stale timer"
        );
    });
    let report = sim.run().unwrap();
    assert_eq!(report.trace.count_user("legit-wake"), 1);
}

#[test]
fn wake_one_skips_stale_entries_of_timed_out_waiters() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("q"));
    let order = Arc::new(Mutex::new(Vec::new()));
    let (q1, o1) = (Arc::clone(&q), Arc::clone(&order));
    sim.spawn("impatient", move |ctx| {
        let woken = q1.wait_by(ctx, 10u64);
        o1.lock().push(("impatient", woken));
    });
    let (q2, o2) = (Arc::clone(&q), Arc::clone(&order));
    sim.spawn("patient", move |ctx| {
        let woken = q2.wait_by(ctx, 10_000u64);
        o2.lock().push(("patient", woken));
    });
    let q3 = Arc::clone(&q);
    sim.spawn("waker", move |ctx| {
        // Wait past the first waiter's timeout, then wake once: the wake
        // must reach the patient waiter, not the stale front entry.
        ctx.sleep(100);
        assert!(q3.wake_one(ctx).is_some());
    });
    sim.run().unwrap();
    let order = order.lock();
    assert!(order.contains(&("impatient", false)));
    assert!(order.contains(&("patient", true)));
}
