//! Behavioral tests for the liveness layer of the kernel: deadlines,
//! the starvation watchdog, deadlock recovery, and the end-of-run wait
//! queue hygiene assertion.

#![deny(deprecated)]

use bloom_sim::{Deadline, EventKind, ProcessStatus, Sim, Time, WaitQueue};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn deadline_arithmetic() {
    let d = Deadline::after(Time(10), 5);
    assert_eq!(d.absolute(), Some(Time(15)));
    assert!(!d.expired(Time(14)));
    assert!(d.expired(Time(15)), "deadline at now is expired");
    assert_eq!(d.remaining(Time(12)), Some(3));
    assert_eq!(d.remaining(Time(15)), None);
    assert_eq!(d.to_string(), "by t15");
    assert_eq!(Deadline::at(Time(15)), d);
    let w = Deadline::within(3);
    assert_eq!(w.absolute(), None);
    assert_eq!(
        w.remaining(Time(999)),
        Some(3),
        "relative ignores the clock"
    );
    assert_eq!(Deadline::from(3u64), w);
    assert_eq!(Deadline::from(std::time::Duration::from_nanos(3)), w);
}

#[test]
fn wait_deadline_times_out_at_the_deadline() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("q"));
    let q2 = Arc::clone(&q);
    let seen = Arc::new(Mutex::new(None));
    let seen2 = Arc::clone(&seen);
    sim.spawn("waiter", move |ctx| {
        let deadline = ctx.deadline_after(4);
        let woken = q2.wait_by(ctx, deadline);
        *seen2.lock() = Some((woken, ctx.now(), deadline));
    });
    sim.run().expect("clean run");
    let (woken, now, deadline) = seen.lock().expect("waiter ran");
    assert!(!woken, "nobody woke the waiter");
    // The timer fires exactly at the deadline; the re-dispatch that resumes
    // the waiter costs one more quantum.
    assert_eq!(now, deadline.absolute().expect("absolute").plus(1));
}

#[test]
fn expired_deadline_fails_without_parking() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("q"));
    let q2 = Arc::clone(&q);
    sim.spawn("late", move |ctx| {
        let before = ctx.now();
        assert!(!q2.wait_by(ctx, Deadline::at(Time::ZERO)));
        assert_eq!(ctx.now(), before, "no scheduling point consumed");
        assert!(q2.is_empty(), "no registration left behind");
    });
    sim.run().expect("clean run");
}

#[test]
fn is_parked_tracks_block_state() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("q"));
    let target = Arc::new(Mutex::new(None));
    let target2 = Arc::clone(&target);
    let q2 = Arc::clone(&q);
    sim.spawn("prober", move |ctx| {
        let sleeper = target2.lock().expect("sleeper spawned before any run");
        assert!(!ctx.is_parked(sleeper), "not yet parked");
        ctx.yield_now();
        assert!(ctx.is_parked(sleeper), "parked after its first dispatch");
        q2.wake_one(ctx);
        assert!(!ctx.is_parked(sleeper), "ready again after the wake");
    });
    let q3 = Arc::clone(&q);
    *target.lock() = Some(sim.spawn("sleeper", move |ctx| q3.wait(ctx)));
    sim.run().expect("clean run");
}

/// A waiter bypassed for longer than the bound is flagged exactly once,
/// with its wait age, while the rest of the system keeps running.
#[test]
fn watchdog_flags_long_wait() {
    let mut sim = Sim::new();
    sim.set_starvation_bound(5);
    let q = Arc::new(WaitQueue::new("starved-q"));
    let q2 = Arc::clone(&q);
    let victim = sim.spawn("victim", move |ctx| q2.wait(ctx));
    let q3 = Arc::clone(&q);
    sim.spawn("cycler", move |ctx| {
        for _ in 0..20 {
            ctx.yield_now();
        }
        q3.wake_one(ctx);
    });
    let report = sim.run().expect("clean run");
    assert_eq!(report.starvation.len(), 1, "flagged exactly once");
    let flag = &report.starvation[0];
    assert_eq!(flag.pid, victim);
    assert_eq!(flag.name, "victim");
    assert_eq!(flag.reason, "starved-q");
    assert!(flag.age > 5, "age {} exceeds the bound", flag.age);
    assert!(report
        .trace
        .events()
        .iter()
        .any(|e| matches!(e.kind, EventKind::StarvationFlagged { .. })));
    assert_eq!(
        report.processes[victim.index()].status,
        ProcessStatus::Finished,
        "detection only: the victim still completes"
    );
}

/// Re-parking on the *same* reason continues the wait episode, so barging
/// starvation (many short parks on one queue) accumulates age and is
/// flagged even though each individual park is brief.
#[test]
fn watchdog_accumulates_age_across_reparks() {
    let mut sim = Sim::new();
    sim.set_starvation_bound(6);
    let q = Arc::new(WaitQueue::new("barged"));
    let q2 = Arc::clone(&q);
    sim.spawn("victim", move |ctx| {
        for _ in 0..5 {
            q2.wait(ctx); // woken each round, immediately re-parks
        }
    });
    let q3 = Arc::clone(&q);
    sim.spawn("cycler", move |ctx| {
        for _ in 0..5 {
            ctx.yield_now();
            ctx.yield_now();
            q3.wake_one(ctx);
        }
    });
    let report = sim.run().expect("clean run");
    assert_eq!(
        report.starvation.len(),
        1,
        "episode spans the re-parks and is flagged once: {:?}",
        report.starvation
    );
}

/// Parking on a *different* queue starts a fresh episode; a process that
/// alternates between two queues, each served promptly, is never flagged.
#[test]
fn watchdog_resets_on_different_reason() {
    let mut sim = Sim::new();
    sim.set_starvation_bound(6);
    let qa = Arc::new(WaitQueue::new("qa"));
    let qb = Arc::new(WaitQueue::new("qb"));
    let (qa2, qb2) = (Arc::clone(&qa), Arc::clone(&qb));
    sim.spawn("hopper", move |ctx| {
        for _ in 0..4 {
            qa2.wait(ctx);
            qb2.wait(ctx);
        }
    });
    sim.spawn("server", move |ctx| {
        for _ in 0..4 {
            ctx.yield_now();
            qa.wake_one(ctx);
            ctx.yield_now();
            qb.wake_one(ctx);
        }
    });
    let report = sim.run().expect("clean run");
    assert!(
        report.starvation.is_empty(),
        "each episode is short: {:?}",
        report.starvation
    );
}

/// Daemons legitimately park forever (server loops); the watchdog ignores
/// them.
#[test]
fn watchdog_ignores_daemons() {
    let mut sim = Sim::new();
    sim.set_starvation_bound(2);
    let q = Arc::new(WaitQueue::new("daemon-q"));
    let q2 = Arc::clone(&q);
    sim.spawn_daemon("server", move |ctx| q2.wait(ctx));
    sim.spawn("worker", move |ctx| {
        for _ in 0..10 {
            ctx.yield_now();
        }
    });
    let report = sim.run().expect("clean run");
    assert!(report.starvation.is_empty());
}

/// With recovery off (the default), mutual waiting is a deadlock error;
/// with recovery on, the kernel sheds victims one at a time — most
/// recently blocked first — until the system can proceed, and records
/// them as cancelled, not crashed.
#[test]
fn deadlock_recovery_aborts_victims_until_run_completes() {
    let build = |recovery: bool| {
        let mut sim = Sim::new();
        if recovery {
            sim.enable_deadlock_recovery();
        }
        let qa = Arc::new(WaitQueue::new("qa"));
        let qb = Arc::new(WaitQueue::new("qb"));
        let qa2 = Arc::clone(&qa);
        sim.spawn("first", move |ctx| qa2.wait(ctx));
        let qb2 = Arc::clone(&qb);
        sim.spawn("second", move |ctx| qb2.wait(ctx));
        sim
    };

    let err = build(false).run().expect_err("must deadlock");
    assert!(err.is_deadlock());

    let report = build(true).run().expect("recovery completes the run");
    // "second" parked later, so it is the first victim; removing it leaves
    // "first" still wedged, so recovery sheds it too.
    assert_eq!(report.recovered.len(), 2);
    assert_eq!(report.name_of(report.recovered[0]), "second");
    assert_eq!(report.name_of(report.recovered[1]), "first");
    for &pid in &report.recovered {
        assert_eq!(
            report.processes[pid.index()].status,
            ProcessStatus::Cancelled,
            "a recovery victim is cancelled, not crashed"
        );
        assert!(report
            .trace
            .events_for(pid)
            .any(|e| e.kind == EventKind::Aborted));
    }
    assert!(report.killed().is_empty(), "an abort is not a kill");
}

/// The queue-hygiene assertion: a mechanism that times out of a park but
/// forgets to deregister (the `park_timeout` footgun) fails the run
/// loudly at the end instead of silently absorbing a future grant.
#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "stale registration")]
fn leaked_timed_registration_fails_loudly() {
    let mut sim = Sim::new();
    let q = Arc::new(WaitQueue::new("leaky"));
    let q2 = Arc::clone(&q);
    sim.spawn("leaker", move |ctx| {
        q2.enqueue_current(ctx, 0);
        let woken = ctx.park_timeout("leaky", 2);
        assert!(!woken);
        // Deliberate bug: no remove_current — the registration leaks.
    });
    let _ = sim.run();
}
