//! Behavioral tests for the deterministic fault-injection plane:
//! kill-points, spurious wakeups, delayed wakes, and their determinism.

#![deny(deprecated)]

use bloom_sim::{EventKind, FaultPlan, Pid, ProcessStatus, RandomPolicy, Sim, WaitQueue};
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn kill_at_point_terminates_process_there() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 2));
    let progress = Arc::new(Mutex::new(Vec::new()));
    let p2 = Arc::clone(&progress);
    sim.spawn("victim", move |ctx| {
        p2.lock().push(1);
        ctx.yield_now(); // scheduling point 1
        p2.lock().push(2);
        ctx.yield_now(); // scheduling point 2: killed here
        p2.lock().push(3);
    });
    let report = sim.run().expect("kill is not an error");
    assert_eq!(
        *progress.lock(),
        vec![1, 2],
        "work after the kill never runs"
    );
    assert_eq!(report.killed(), vec![Pid(0)]);
    assert_eq!(report.processes[0].status, ProcessStatus::Killed);
    assert!(
        report
            .trace
            .events()
            .iter()
            .any(|e| e.kind == EventKind::Killed),
        "trace records the kill"
    );
}

#[test]
fn kill_is_not_conflated_with_panic() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    sim.spawn("victim", |ctx| {
        ctx.yield_now();
        panic!("never reached");
    });
    let report = sim.run().expect("a kill must not surface as a panic error");
    assert!(matches!(report.processes[0].status, ProcessStatus::Killed));
}

#[test]
fn kill_beyond_last_point_never_fires() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 100));
    sim.spawn("victim", |ctx| {
        ctx.yield_now();
        ctx.emit("done", &[]);
    });
    let report = sim.run().unwrap();
    assert!(report.killed().is_empty());
    assert_eq!(report.processes[0].status, ProcessStatus::Finished);
    assert_eq!(report.trace.count_user("done"), 1);
}

#[test]
fn killed_while_parked_is_dequeued_and_never_granted() {
    let mut sim = Sim::new();
    // The victim's first scheduling point is its park.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let q = Arc::new(WaitQueue::new("q"));
    let woken = Arc::new(Mutex::new(Vec::new()));
    let (q2, w2) = (Arc::clone(&q), Arc::clone(&woken));
    sim.spawn("victim", move |ctx| {
        q2.wait(ctx);
        w2.lock().push("victim");
    });
    let (q3, w3) = (Arc::clone(&q), Arc::clone(&woken));
    sim.spawn("other", move |ctx| {
        q3.wait(ctx);
        w3.lock().push("other");
    });
    let q4 = Arc::clone(&q);
    sim.spawn("waker", move |ctx| {
        for _ in 0..3 {
            ctx.yield_now();
        }
        // The victim is dead; its entry must be gone, so the single wake
        // reaches "other" and nothing dangles.
        assert_eq!(q4.len(), 1, "victim's queue entry was removed on unwind");
        assert!(q4.wake_one(ctx).is_some());
        assert!(q4.wake_one(ctx).is_none());
    });
    let report = sim.run().expect("contained: no deadlock");
    assert_eq!(
        *woken.lock(),
        vec!["other"],
        "the dead victim is never granted"
    );
    assert_eq!(report.killed(), vec![Pid(0)]);
}

#[test]
fn spurious_wake_is_absorbed_transparently() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().spurious_wake("sleeper", 1));
    let q = Arc::new(WaitQueue::new("q"));
    let q2 = Arc::clone(&q);
    sim.spawn("sleeper", move |ctx| {
        q2.wait(ctx);
        ctx.emit("woken", &[]);
    });
    let q3 = Arc::clone(&q);
    sim.spawn("waker", move |ctx| {
        for _ in 0..4 {
            ctx.yield_now();
        }
        q3.wake_one(ctx);
    });
    let report = sim.run().expect("clean run");
    assert_eq!(
        report.trace.count_user("woken"),
        1,
        "exactly one real wake is observed"
    );
    let spurious = report
        .trace
        .events()
        .iter()
        .filter(|e| e.kind == EventKind::SpuriousWake)
        .count();
    assert_eq!(spurious, 1, "the spurious wake is in the trace");
    let blocked = report
        .trace
        .events_for(Pid(0))
        .filter(|e| matches!(e.kind, EventKind::Blocked { .. }))
        .count();
    assert_eq!(blocked, 2, "the sleeper re-parked after the spurious wake");
}

#[test]
fn real_unpark_during_spurious_window_is_not_lost() {
    // The spurious wake fires the instant the sleeper parks; the waker
    // then wakes it before the sleeper is rescheduled. The pending
    // spurious wake must convert into the real one — not eat it.
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().spurious_wake("sleeper", 1));
    let q = Arc::new(WaitQueue::new("q"));
    let q2 = Arc::clone(&q);
    sim.spawn("waker", move |ctx| {
        ctx.yield_now(); // let the sleeper park (and go spuriously ready)
        q2.wake_one(ctx);
    });
    let q3 = Arc::clone(&q);
    sim.spawn("sleeper", move |ctx| {
        q3.wait(ctx);
        ctx.emit("woken", &[]);
    });
    let report = sim.run().expect("no lost wakeup");
    assert_eq!(report.trace.count_user("woken"), 1);
}

#[test]
fn delayed_wake_shifts_resume_time_only() {
    let run = |delay: Option<u64>| {
        let mut sim = Sim::new();
        if let Some(ticks) = delay {
            sim.set_fault_plan(FaultPlan::new().delay_wake("sleeper", 1, ticks));
        }
        let q = Arc::new(WaitQueue::new("q"));
        let q2 = Arc::clone(&q);
        sim.spawn("sleeper", move |ctx| {
            q2.wait(ctx);
            ctx.emit("resumed", &[]);
        });
        let q3 = Arc::clone(&q);
        sim.spawn("waker", move |ctx| {
            ctx.yield_now();
            q3.wake_one(ctx);
        });
        sim.run().expect("clean run")
    };
    let base = run(None);
    let delayed = run(Some(50));
    assert_eq!(base.trace.count_user("resumed"), 1);
    assert_eq!(
        delayed.trace.count_user("resumed"),
        1,
        "the wake still lands"
    );
    let resume_at = |r: &bloom_sim::SimReport| r.trace.first_user("resumed").unwrap().time;
    assert!(
        resume_at(&delayed).0 >= resume_at(&base).0 + 50,
        "resume is pushed out by at least the injected delay"
    );
    assert!(
        delayed
            .trace
            .events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::DelayedWake { .. })),
        "trace records the delayed wake"
    );
}

#[test]
fn same_plan_same_seed_identical_trace() {
    let run = || {
        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(0xFA57));
        sim.set_fault_plan(
            FaultPlan::new()
                .kill("b", 2)
                .spurious_wake("a", 1)
                .delay_wake("c", 1, 7),
        );
        let q = Arc::new(WaitQueue::new("q"));
        for name in ["a", "b", "c"] {
            let q = Arc::clone(&q);
            sim.spawn(name, move |ctx| {
                ctx.yield_now();
                q.wait(ctx);
            });
        }
        let q2 = Arc::clone(&q);
        sim.spawn("waker", move |ctx| {
            for _ in 0..6 {
                ctx.yield_now();
            }
            q2.wake_all(ctx);
        });
        sim.run()
    };
    let (a, b) = (run(), run());
    let render = |r: &Result<bloom_sim::SimReport, bloom_sim::SimError>| match r {
        Ok(rep) => rep.trace.render(),
        Err(e) => e.report.trace.render(),
    };
    assert_eq!(render(&a), render(&b), "fault injection is deterministic");
}

#[test]
fn kill_point_explorer_covers_schedules_and_points() {
    use bloom_sim::Explorer;
    let outcomes = Arc::new(Mutex::new(Vec::new()));
    let outcomes2 = Arc::clone(&outcomes);
    let stats = Explorer::new(10_000).run_kill_points(
        "victim",
        3,
        || {
            let mut sim = Sim::new();
            sim.spawn("victim", |ctx| {
                ctx.yield_now();
                ctx.emit("victim-done", &[]);
            });
            sim.spawn("peer", |ctx| {
                ctx.yield_now();
                ctx.emit("peer-done", &[]);
            });
            sim
        },
        move |point, _decisions, result| {
            let report = result.as_ref().expect("no deadlock possible here");
            outcomes2.lock().push((point, !report.killed().is_empty()));
        },
    );
    assert!(
        stats.complete,
        "tiny scenario fully explored at every point"
    );
    let outcomes = outcomes.lock();
    assert!(
        outcomes.iter().any(|&(p, killed)| p == 1 && killed),
        "kill at the victim's only yield fires in some schedule"
    );
    // The victim has exactly one scheduling point (its yield), so point 2
    // never fires in any schedule — and the sweep proves that and stops
    // there rather than exploring point 3.
    assert_eq!(
        stats.per_point.len(),
        2,
        "sweep must stop once a point can no longer fire"
    );
    assert_eq!(stats.per_point[0].point, 1);
    assert!(stats.per_point[0].kills > 0);
    assert_eq!(stats.per_point[1].point, 2);
    assert_eq!(stats.per_point[1].kills, 0);
    assert!(
        !outcomes.iter().any(|&(p, _)| p == 3),
        "a kill point past the victim's last stop is not explored"
    );
}
