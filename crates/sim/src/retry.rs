//! Deterministic retry-with-backoff over the unified timed-wait API.
//!
//! Every mechanism in the workspace exposes its timed waits through one
//! `*_by(ctx, impl Into<Deadline>)` shape (PR 4). The natural client of
//! that shape is a retry loop — attempt with bounded patience, withdraw,
//! pause, try again with more patience — and the R2 liveness scenarios
//! each hand-roll one. [`retry_with_backoff`] is that loop, made
//! deterministic and inspectable:
//!
//! * the schedule is a fixed vector of virtual-tick patiences (no
//!   randomized jitter — determinism is load-bearing for exploration);
//! * attempts are bounded, so a retry loop can *give up*, which the R2
//!   classifier must see (`gave-up:` degrades the cell);
//! * every withdrawal and re-attempt is emitted in the standard liveness
//!   vocabulary (`timed-out:`/`retry:`/`gave-up:`), so
//!   `bloom_core::liveness` can classify a run that recovered only after
//!   retrying separately from one that was served outright.

use crate::ctx::Ctx;

/// A bounded virtual-tick backoff schedule: one patience value per
/// attempt, plus an optional fixed pause slept between attempts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Backoff {
    patience: Vec<u64>,
    pause: u64,
}

impl Backoff {
    /// The same patience for every attempt.
    pub fn fixed(patience: u64, attempts: usize) -> Self {
        Backoff {
            patience: vec![patience; attempts],
            pause: 0,
        }
    }

    /// Doubling patience, starting at `first` (saturating): the classic
    /// exponential schedule, truncated to `attempts` tries.
    pub fn exponential(first: u64, attempts: usize) -> Self {
        let mut patience = Vec::with_capacity(attempts);
        let mut p = first;
        for _ in 0..attempts {
            patience.push(p);
            p = p.saturating_mul(2);
        }
        Backoff { patience, pause: 0 }
    }

    /// An explicit per-attempt schedule.
    pub fn schedule(patience: &[u64]) -> Self {
        Backoff {
            patience: patience.to_vec(),
            pause: 0,
        }
    }

    /// Sleeps `ticks` of virtual time between attempts (default 0: the
    /// re-attempt is immediate, keeping the wait episode open for the
    /// starvation watchdog exactly like the hand-rolled R2 loops).
    pub fn pause(mut self, ticks: u64) -> Self {
        self.pause = ticks;
        self
    }

    /// Number of attempts in the schedule.
    pub fn attempts(&self) -> usize {
        self.patience.len()
    }

    /// Patience for the given attempt (clamped to the last entry).
    pub fn patience_for(&self, attempt: usize) -> u64 {
        self.patience
            .get(attempt)
            .or(self.patience.last())
            .copied()
            .unwrap_or(0)
    }
}

/// How a [`retry_with_backoff`] loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryOutcome {
    /// An attempt succeeded; `retries` counts the withdrawn attempts
    /// before it (0 = served outright, never timed out).
    Acquired {
        /// Withdrawn attempts before the successful one.
        retries: usize,
    },
    /// The schedule ran dry without an attempt succeeding; the loop
    /// emitted `gave-up:<label>` (an R2 *degrades* verdict).
    GaveUp {
        /// Total attempts made (the schedule length).
        attempts: usize,
    },
}

impl RetryOutcome {
    /// Whether the resource was acquired.
    pub fn acquired(&self) -> bool {
        matches!(self, RetryOutcome::Acquired { .. })
    }

    /// Whether at least one attempt was withdrawn before the outcome.
    pub fn retried(&self) -> bool {
        match self {
            RetryOutcome::Acquired { retries } => *retries > 0,
            RetryOutcome::GaveUp { .. } => true,
        }
    }
}

/// Runs `attempt` under `backoff`'s schedule until it returns `true` or
/// the attempts run dry.
///
/// `attempt` receives the patience (virtual ticks) for the current try
/// and returns whether the timed wait succeeded — the natural fit for
/// any `*_by` operation: `|ctx, p| sem.p_by(ctx, p) == TryResult::Acquired`,
/// `|ctx, p| queue.wait_by(ctx, p)`, `|ctx, p| chan.send_by(ctx, v, p).is_ok()`.
///
/// Emission contract (the R2 vocabulary, see `bloom_core::liveness`):
/// `timed-out:<label> [n]` after each withdrawn attempt `n`,
/// `retry:<label> [n]` before re-attempt `n`, and `gave-up:<label>` if the
/// schedule is exhausted. A first-try success emits nothing.
pub fn retry_with_backoff(
    ctx: &Ctx,
    label: &str,
    backoff: &Backoff,
    mut attempt: impl FnMut(&Ctx, u64) -> bool,
) -> RetryOutcome {
    for (i, &patience) in backoff.patience.iter().enumerate() {
        if i > 0 {
            if backoff.pause > 0 {
                ctx.sleep(backoff.pause);
            }
            ctx.emit(&format!("retry:{label}"), &[i as i64]);
        }
        if attempt(ctx, patience) {
            return RetryOutcome::Acquired { retries: i };
        }
        ctx.emit(&format!("timed-out:{label}"), &[i as i64]);
    }
    ctx.emit(&format!("gave-up:{label}"), &[]);
    RetryOutcome::GaveUp {
        attempts: backoff.patience.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use crate::waitq::WaitQueue;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[test]
    fn schedules_are_what_they_say() {
        let b = Backoff::exponential(2, 4);
        assert_eq!(b.attempts(), 4);
        assert_eq!(
            (0..4).map(|i| b.patience_for(i)).collect::<Vec<_>>(),
            vec![2, 4, 8, 16]
        );
        assert_eq!(b.patience_for(99), 16, "clamped to the last entry");
        assert_eq!(Backoff::fixed(3, 2), Backoff::schedule(&[3, 3]));
    }

    #[test]
    fn acquires_after_retry_with_the_full_paper_trail() {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("slot"));
        let outcome = Arc::new(Mutex::new(None));
        let (q2, out) = (Arc::clone(&q), Arc::clone(&outcome));
        sim.spawn("contender", move |ctx| {
            let r = retry_with_backoff(ctx, "slot", &Backoff::exponential(1, 5), |ctx, p| {
                q2.wait_by(ctx, p)
            });
            *out.lock() = Some(r);
        });
        let q3 = Arc::clone(&q);
        sim.spawn("releaser", move |ctx| {
            ctx.sleep(4); // outlast the first couple of patiences
            q3.wake_one(ctx);
        });
        let report = sim.run().expect("clean run");
        let r = outcome.lock().expect("contender ran");
        assert!(r.acquired() && r.retried(), "acquired only after retrying");
        assert!(report.trace.count_user("timed-out:slot") >= 1);
        assert!(report.trace.count_user("retry:slot") >= 1);
        assert_eq!(report.trace.count_user("gave-up:slot"), 0);
    }

    #[test]
    fn gives_up_loudly_when_the_schedule_runs_dry() {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("slot"));
        let outcome = Arc::new(Mutex::new(None));
        let out = Arc::clone(&outcome);
        sim.spawn("contender", move |ctx| {
            let r = retry_with_backoff(ctx, "slot", &Backoff::fixed(2, 3).pause(1), |ctx, p| {
                q.wait_by(ctx, p)
            });
            *out.lock() = Some(r);
        });
        let report = sim.run().expect("withdrawals prevent the wedge");
        assert_eq!(
            *outcome.lock(),
            Some(RetryOutcome::GaveUp { attempts: 3 }),
            "nobody ever wakes the queue"
        );
        assert_eq!(report.trace.count_user("timed-out:slot"), 3);
        assert_eq!(report.trace.count_user("gave-up:slot"), 1);
    }

    #[test]
    fn first_try_success_emits_nothing() {
        let mut sim = Sim::new();
        let outcome = Arc::new(Mutex::new(None));
        let out = Arc::clone(&outcome);
        sim.spawn("lucky", move |ctx| {
            let r = retry_with_backoff(ctx, "slot", &Backoff::fixed(5, 2), |_, _| true);
            *out.lock() = Some(r);
        });
        let report = sim.run().expect("clean run");
        assert_eq!(*outcome.lock(), Some(RetryOutcome::Acquired { retries: 0 }));
        assert_eq!(report.trace.user_events().count(), 0);
    }
}
