//! Object-granular access footprints for the explorers' dependency-aware
//! equivalence prune.
//!
//! PR 3's prune classified a quantum as either *pure* (touched nothing) or
//! opaque (touched "something"), so one sync-touching quantum disabled
//! pruning for sibling subtrees that touched entirely different objects.
//! This module refines the instrumentation contract: every synchronization
//! object (a semaphore, a monitor, a wait queue, …) carries a stable
//! [`ObjId`], mechanisms report *which* objects a quantum read or wrote
//! (see [`crate::Ctx::note_sync_obj`]), and the kernel records one
//! [`QuantumRecord`] per dispatch. Two quanta *conflict* when their
//! footprints intersect on an object at least one side wrote — writes
//! conflict with anything, reads commute — and the explorers use the
//! conflict relation for a sleep-set prune (see `DESIGN.md` §2.10).
//!
//! [`crate::Ctx::note_sync`] remains the conservative fallback: it marks
//! the quantum as touching *everything* ([`Footprint::All`]), which
//! conflicts with every non-empty footprint. Over-marking is always safe —
//! it only costs pruning.

use crate::types::Pid;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Stable identity of one synchronization object.
///
/// An `ObjId` is a kind-prefixed name (`"semaphore:forks0"`): mechanisms
/// allocate one at construction from their diagnostic name, so the id of
/// an object is identical across the repeated runs of an exploration —
/// which is what lets a sleep set recorded in one run prune siblings in
/// another. Two objects with the same kind and name are deliberately the
/// *same* object: a collision only merges footprints, which is
/// conservative, never unsound.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjId(Arc<str>);

impl ObjId {
    /// An object id for a mechanism instance: `kind` is the mechanism
    /// family (used as the metrics key by
    /// [`crate::Ctx::note_sync_obj_op`]), `name` its diagnostic name.
    pub fn new(kind: &str, name: &str) -> ObjId {
        ObjId(Arc::from(format!("{kind}:{name}")))
    }

    /// A kernel-internal pseudo-object (the global ticket dispenser, the
    /// user-event trace, a process's park slot). Pseudo-objects model
    /// cross-mechanism ordering the conflict relation must not lose.
    pub(crate) fn pseudo(name: &str) -> ObjId {
        ObjId(Arc::from(name))
    }

    /// The full `kind:name` string.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The kind prefix (everything before the first `:`), used as the
    /// per-mechanism metrics key.
    pub fn kind(&self) -> &str {
        self.0.split(':').next().unwrap_or(&self.0)
    }
}

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// How a quantum touched an object.
///
/// Reads commute with reads: two quanta that only *read* the same object
/// leave it — and each other's behavior — unchanged in either order.
/// A write conflicts with any other access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Access {
    /// The object's state was read but not changed.
    Read,
    /// The object's state was (or may have been) changed.
    Write,
}

/// The set of objects one quantum accessed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Footprint {
    /// Exactly these objects, each with the strongest access performed.
    /// An empty map is the footprint of a pure stutter.
    Objs(BTreeMap<ObjId, Access>),
    /// The conservative fallback ([`crate::Ctx::note_sync`]): the quantum
    /// may have touched anything. Conflicts with every non-empty
    /// footprint (but commutes with a pure stutter, which touches
    /// nothing at all).
    All,
}

impl Default for Footprint {
    fn default() -> Self {
        Footprint::Objs(BTreeMap::new())
    }
}

impl Footprint {
    /// Whether this is the conservative "touches everything" footprint.
    pub fn is_all(&self) -> bool {
        matches!(self, Footprint::All)
    }

    /// Whether the quantum touched nothing (a pure stutter).
    pub fn is_empty(&self) -> bool {
        match self {
            Footprint::Objs(objs) => objs.is_empty(),
            Footprint::All => false,
        }
    }

    /// The object that makes the two footprints conflict, if any: an
    /// object both quanta touched with at least one write (or `"*"` when
    /// both sides are [`Footprint::All`]). `None` means the quanta are
    /// independent — executing them in either order yields the same
    /// mechanism state and the same user-event trace.
    pub fn conflict_with<'a>(&'a self, other: &'a Footprint) -> Option<&'a str> {
        match (self, other) {
            (Footprint::All, Footprint::All) => Some("*"),
            (Footprint::All, Footprint::Objs(objs)) | (Footprint::Objs(objs), Footprint::All) => {
                objs.keys().next().map(|o| o.as_str())
            }
            (Footprint::Objs(a), Footprint::Objs(b)) => {
                let (small, big) = if a.len() <= b.len() { (a, b) } else { (b, a) };
                for (obj, access) in small {
                    if let Some(other_access) = big.get(obj) {
                        if *access == Access::Write || *other_access == Access::Write {
                            return Some(obj.as_str());
                        }
                    }
                }
                None
            }
        }
    }

    /// Whether the two footprints conflict (see
    /// [`Footprint::conflict_with`]).
    pub fn conflicts(&self, other: &Footprint) -> bool {
        self.conflict_with(other).is_some()
    }
}

/// Adds an access to a footprint map, keeping the strongest access per
/// object (a write is never downgraded by a later read).
pub(crate) fn merge_access(objs: &mut BTreeMap<ObjId, Access>, obj: ObjId, access: Access) {
    let slot = objs.entry(obj).or_insert(access);
    if access == Access::Write {
        *slot = Access::Write;
    }
}

/// What one dispatch of the scheduler loop did, as far as the dependency
/// analysis is concerned. Recorded for *every* dispatch (forced and
/// contested) when [`crate::SimConfig::record_quanta`] is on; the
/// explorers consume the log via [`crate::SimReport::quanta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantumRecord {
    /// The dispatched process.
    pub pid: Pid,
    /// The objects the quantum accessed. Forced to [`Footprint::All`] for
    /// every quantum of a run that was not prune-safe (timers, faults,
    /// watchdog — see [`crate::SimReport::prune_safe`]), so a stale
    /// footprint can never license a prune.
    pub footprint: Footprint,
    /// For a contested dispatch: the ready list the policy chose from, in
    /// enqueue order (index `c` is the process sibling choice `c` would
    /// dispatch). `None` for forced dispatches and unwind bookkeeping.
    /// Records with `Some` align 1:1, in order, with
    /// [`crate::SimReport::decisions`].
    pub ready: Option<Vec<Pid>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn objs(entries: &[(&str, Access)]) -> Footprint {
        let mut map = BTreeMap::new();
        for (name, access) in entries {
            merge_access(&mut map, ObjId::pseudo(name), *access);
        }
        Footprint::Objs(map)
    }

    #[test]
    fn reads_commute_writes_conflict() {
        let r = objs(&[("a", Access::Read)]);
        let w = objs(&[("a", Access::Write)]);
        let other = objs(&[("b", Access::Write)]);
        assert!(!r.conflicts(&r), "read/read commutes");
        assert!(r.conflicts(&w), "read/write conflicts");
        assert!(w.conflicts(&w), "write/write conflicts");
        assert!(!w.conflicts(&other), "distinct objects commute");
        assert_eq!(w.conflict_with(&w), Some("a"));
    }

    #[test]
    fn all_conflicts_with_everything_but_stutters() {
        let w = objs(&[("a", Access::Write)]);
        let empty = Footprint::default();
        assert!(Footprint::All.conflicts(&w));
        assert!(w.conflicts(&Footprint::All));
        assert!(Footprint::All.conflicts(&Footprint::All));
        assert!(
            !Footprint::All.conflicts(&empty),
            "stutters commute with anything"
        );
        assert!(!empty.conflicts(&empty));
    }

    #[test]
    fn merge_keeps_strongest_access() {
        let mut map = BTreeMap::new();
        merge_access(&mut map, ObjId::pseudo("a"), Access::Read);
        merge_access(&mut map, ObjId::pseudo("a"), Access::Write);
        merge_access(&mut map, ObjId::pseudo("a"), Access::Read);
        assert_eq!(map[&ObjId::pseudo("a")], Access::Write);
    }

    #[test]
    fn obj_id_kind_and_display() {
        let id = ObjId::new("semaphore", "forks0");
        assert_eq!(id.kind(), "semaphore");
        assert_eq!(id.as_str(), "semaphore:forks0");
        assert_eq!(id.to_string(), "semaphore:forks0");
        assert_eq!(ObjId::pseudo("ticket").kind(), "ticket");
    }
}
