//! Pluggable scheduling policies.
//!
//! The kernel consults a [`SchedPolicy`] only when more than one process is
//! runnable; with a single candidate the dispatch is forced. All provided
//! policies are deterministic functions of their own state, so an entire run
//! is reproducible from the policy construction parameters (e.g. the random
//! seed), and any run can be replayed exactly from its recorded
//! [`crate::Decision`] list via [`ReplayPolicy`].

use crate::metrics::ReplayDivergence;
use crate::types::Pid;

/// The workspace's one pseudo-random generator: tiny, high-quality,
/// dependency-free, and — like everything else near scheduling —
/// deterministic per seed. [`RandomPolicy`], the samplers, and the
/// workload generators all draw from this so that a seed pins down an
/// entire experiment.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`0` when `bound == 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        self.next_u64() % bound
    }
}

/// Chooses which runnable process to dispatch next.
///
/// `ready` is the runnable set in enqueue order (index 0 has been runnable
/// the longest). The kernel consults a policy only at *contested* decision
/// points — `ready` then has at least two entries, and the dispatch loop
/// debug-asserts it — but implementations must still be **total**: tests
/// and tools call `choose` directly with arbitrary slices, so a policy
/// must return a valid index (0 for an empty or single-entry slice) rather
/// than panic. Returns an index `< ready.len()` (`0` if `ready` is empty;
/// the kernel additionally clamps out-of-range picks).
pub trait SchedPolicy: Send {
    /// Picks the index of the process to dispatch.
    fn choose(&mut self, ready: &[Pid], step: u64) -> usize;

    /// Picks the index of the value a [`crate::Ctx::choose_value`] call
    /// observes, out of `arity` domain values in ascending order. Like
    /// [`SchedPolicy::choose`], this is consulted only at *contested*
    /// points (`arity > 1`) and must return an index `< arity` (the
    /// kernel additionally clamps). The default takes the canonical
    /// first value, which is what the explorers' past-prefix descent
    /// relies on; [`ReplayPolicy`] consumes a script entry (the decision
    /// vector interleaves both kinds in the order they were made) and
    /// [`RandomPolicy`] draws from its generator.
    fn choose_data(&mut self, arity: u32, step: u64) -> u32 {
        let _ = (arity, step);
        0
    }

    /// Human-readable policy name for reports.
    fn name(&self) -> &str {
        "custom"
    }

    /// Replay divergence accumulated by this policy, if it is a replay
    /// policy (see [`ReplayPolicy::diverged`]). The kernel copies this
    /// into [`crate::SimMetrics::replay`] at the end of every run; the
    /// default for non-replay policies is `None` (reported as zero).
    fn replay_divergence(&self) -> Option<ReplayDivergence> {
        None
    }

    /// Downcast hook used by held-run resume (see [`crate::HeldRun`]):
    /// a paused run's replay script can only be retargeted if the policy
    /// actually is a [`ReplayPolicy`]. `None` for everything else.
    fn as_replay_mut(&mut self) -> Option<&mut ReplayPolicy> {
        None
    }
}

/// First-come-first-served round-robin: always dispatches the process that
/// has been runnable the longest. This is the "fair" baseline policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoPolicy;

impl SchedPolicy for FifoPolicy {
    fn choose(&mut self, _ready: &[Pid], _step: u64) -> usize {
        0
    }

    fn name(&self) -> &str {
        "fifo"
    }
}

/// Adversarially unfair policy: always dispatches the most recently
/// runnable process. Useful for provoking starvation in mechanisms whose
/// fairness depends on the underlying scheduler (e.g. weak semaphores).
#[derive(Debug, Default, Clone, Copy)]
pub struct LifoPolicy;

impl SchedPolicy for LifoPolicy {
    fn choose(&mut self, ready: &[Pid], _step: u64) -> usize {
        ready.len().saturating_sub(1)
    }

    fn name(&self) -> &str {
        "lifo"
    }
}

/// Seeded pseudo-random policy ([`SplitMix64`]), deterministic per seed.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    rng: SplitMix64,
    name: String,
}

impl RandomPolicy {
    /// Creates a random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            rng: SplitMix64::new(seed),
            name: format!("random(seed={seed})"),
        }
    }
}

impl SchedPolicy for RandomPolicy {
    fn choose(&mut self, ready: &[Pid], _step: u64) -> usize {
        self.rng.next_below(ready.len() as u64) as usize
    }

    fn choose_data(&mut self, arity: u32, _step: u64) -> u32 {
        self.rng.next_below(arity as u64) as u32
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Replays a recorded decision script; beyond the script it behaves like
/// [`FifoPolicy`]. This is the workhorse of [`crate::Explorer`].
///
/// Two modes, differing only in what counts as *divergence*:
///
/// * [`ReplayPolicy::new`] — **strict** replay of a complete recorded
///   decision vector. An out-of-range entry is clamped *and counted*, and
///   running past the script while more than one process is runnable is
///   counted as an underrun: both mean the script no longer matches the
///   tree it is replayed against (a stale or corrupted vector), which
///   used to be masked silently.
/// * [`ReplayPolicy::prefix`] — replay of a branch *prefix*, as the
///   explorers use it: decisions past the prefix deliberately take the
///   canonical choice 0, so script exhaustion is expected and only
///   clamping counts as divergence.
///
/// Either way the pick itself is unchanged (clamped, then FIFO fallback);
/// divergence is *recorded*, in [`ReplayPolicy::diverged`] and — via
/// [`SchedPolicy::replay_divergence`] — in [`crate::SimMetrics::replay`].
#[derive(Debug, Clone)]
pub struct ReplayPolicy {
    script: Vec<u32>,
    pos: usize,
    strict: bool,
    divergence: ReplayDivergence,
}

impl ReplayPolicy {
    /// Creates a strict replay policy from a complete recorded decision
    /// vector (one entry per decision point with more than one runnable
    /// process). Divergence from the script — clamped entries or script
    /// exhaustion at a contested decision — is recorded.
    pub fn new(script: Vec<u32>) -> Self {
        ReplayPolicy {
            script,
            pos: 0,
            strict: true,
            divergence: ReplayDivergence::default(),
        }
    }

    /// Creates a prefix replay policy: past the script, decisions take the
    /// canonical choice 0 *by design* (the explorers' branch descent), so
    /// only clamped entries count as divergence.
    pub fn prefix(script: Vec<u32>) -> Self {
        ReplayPolicy {
            strict: false,
            ..ReplayPolicy::new(script)
        }
    }

    /// The divergence recorded so far (see the type-level docs for what
    /// counts in each mode).
    pub fn divergence(&self) -> ReplayDivergence {
        self.divergence
    }

    /// Whether the replay has diverged from the script.
    pub fn diverged(&self) -> bool {
        self.divergence.diverged()
    }

    /// Replaces the *unconsumed* rest of the script with `tail`, keeping
    /// the consumed prefix (those decisions have already been replayed).
    /// This is how a held run at decision depth *k* is pointed at any
    /// schedule sharing its first *k* decisions (see [`crate::HeldRun`]);
    /// position, mode, and accumulated divergence are untouched.
    pub fn retarget(&mut self, tail: &[u32]) {
        self.script.truncate(self.pos);
        self.script.extend_from_slice(tail);
    }

    /// Consumes the next script entry against a point with `arity`
    /// alternatives — the shared core of [`SchedPolicy::choose`] and
    /// [`SchedPolicy::choose_data`]: scheduler and data decisions
    /// interleave in one script, with the same clamping and divergence
    /// accounting for both kinds.
    fn next_entry(&mut self, arity: u32) -> u32 {
        let pick = match self.script.get(self.pos) {
            Some(&i) => {
                if i >= arity {
                    self.divergence.clamped += 1;
                    arity.saturating_sub(1)
                } else {
                    i
                }
            }
            None => {
                if self.strict && arity > 1 {
                    self.divergence.underruns += 1;
                }
                0
            }
        };
        self.pos += 1;
        pick
    }
}

impl SchedPolicy for ReplayPolicy {
    fn choose(&mut self, ready: &[Pid], _step: u64) -> usize {
        self.next_entry(ready.len() as u32) as usize
    }

    fn choose_data(&mut self, arity: u32, _step: u64) -> u32 {
        self.next_entry(arity)
    }

    fn name(&self) -> &str {
        "replay"
    }

    fn replay_divergence(&self) -> Option<ReplayDivergence> {
        Some(self.divergence)
    }

    fn as_replay_mut(&mut self) -> Option<&mut ReplayPolicy> {
        Some(self)
    }
}

/// Spacing policy for the explorers' checkpoint spine: which decision
/// depths hold a parked twin run ([`crate::HeldRun`]) for later resume,
/// and how many may be held at once (see
/// [`crate::ExploreConfig::checkpoint`] and DESIGN.md §2.13).
///
/// Every variant explores the *same* schedules with byte-identical
/// journals and stats — checkpointing only changes which run instance
/// executes a schedule, never the schedule itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckpointSpacing {
    /// No spine: every schedule replays its whole prefix from the root.
    /// The default, and the baseline the equivalence tests compare
    /// against.
    #[default]
    Replay,
    /// Hold a run at every branch depth on the current DFS path, up to
    /// `budget` held runs (the shallowest is dropped on overflow, since
    /// the deepest checkpoints serve the imminent schedules).
    Dense { budget: usize },
    /// Hold runs only at power-of-two depths, up to `budget`: a
    /// geometrically thinned spine for deep trees where holding every
    /// level would blow the budget on neighbouring depths.
    Geometric { budget: usize },
}

impl CheckpointSpacing {
    /// Whether the spine wants a checkpoint deposited at `depth`.
    pub(crate) fn wants(&self, depth: usize) -> bool {
        if depth == 0 || self.budget() == 0 {
            return false; // the root needs no checkpoint; zero budget holds nothing
        }
        match self {
            CheckpointSpacing::Replay => false,
            CheckpointSpacing::Dense { .. } => true,
            CheckpointSpacing::Geometric { .. } => depth.is_power_of_two(),
        }
    }

    /// The maximum number of simultaneously held runs.
    pub(crate) fn budget(&self) -> usize {
        match self {
            CheckpointSpacing::Replay => 0,
            CheckpointSpacing::Dense { budget } | CheckpointSpacing::Geometric { budget } => {
                *budget
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(n: u32) -> Vec<Pid> {
        (0..n).map(Pid).collect()
    }

    #[test]
    fn fifo_picks_oldest() {
        let mut p = FifoPolicy;
        assert_eq!(p.choose(&pids(3), 0), 0);
    }

    #[test]
    fn lifo_picks_newest() {
        let mut p = LifoPolicy;
        assert_eq!(p.choose(&pids(3), 0), 2);
    }

    /// The trait contract requires totality: policies are called directly
    /// by tests and tools with slices the kernel would never pass.
    #[test]
    fn policies_are_total_on_degenerate_inputs() {
        let empty: Vec<Pid> = Vec::new();
        assert_eq!(FifoPolicy.choose(&empty, 0), 0);
        assert_eq!(LifoPolicy.choose(&empty, 0), 0);
        assert_eq!(RandomPolicy::new(1).choose(&empty, 0), 0);
        assert_eq!(ReplayPolicy::new(vec![5]).choose(&empty, 0), 0);
        assert_eq!(FifoPolicy.choose(&pids(1), 0), 0);
        assert_eq!(LifoPolicy.choose(&pids(1), 0), 0);
        assert!(RandomPolicy::new(1).choose(&pids(1), 0) < 1);
        assert_eq!(ReplayPolicy::new(vec![0]).choose(&pids(1), 0), 0);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let r = pids(5);
        let mut a = RandomPolicy::new(42);
        let mut b = RandomPolicy::new(42);
        let seq_a: Vec<_> = (0..20).map(|s| a.choose(&r, s)).collect();
        let seq_b: Vec<_> = (0..20).map(|s| b.choose(&r, s)).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = RandomPolicy::new(43);
        let seq_c: Vec<_> = (0..20).map(|s| c.choose(&r, s)).collect();
        assert_ne!(seq_a, seq_c, "different seeds should diverge");
    }

    #[test]
    fn random_stays_in_bounds() {
        let mut p = RandomPolicy::new(7);
        for step in 0..1000 {
            let n = 2 + (step as usize % 7);
            let pick = p.choose(&pids(n as u32), step);
            assert!(pick < n);
        }
    }

    #[test]
    fn replay_follows_script_then_fifo() {
        let mut p = ReplayPolicy::new(vec![2, 1]);
        assert_eq!(p.choose(&pids(4), 0), 2);
        assert_eq!(p.choose(&pids(4), 1), 1);
        assert_eq!(
            p.choose(&pids(4), 2),
            0,
            "past script end falls back to fifo"
        );
    }

    #[test]
    fn replay_clamps_and_records_out_of_range_entries() {
        let mut p = ReplayPolicy::new(vec![9]);
        assert!(!p.diverged());
        assert_eq!(p.choose(&pids(2), 0), 1, "pick is still clamped");
        assert!(p.diverged(), "but the divergence is recorded");
        assert_eq!(p.divergence().clamped, 1);
        assert_eq!(p.replay_divergence(), Some(p.divergence()));
    }

    #[test]
    fn strict_replay_counts_underruns_prefix_replay_does_not() {
        let mut strict = ReplayPolicy::new(vec![1]);
        assert_eq!(strict.choose(&pids(3), 0), 1);
        assert!(!strict.diverged(), "in-script choices are not divergence");
        assert_eq!(strict.choose(&pids(3), 1), 0);
        assert_eq!(
            strict.divergence().underruns,
            1,
            "script exhausted while choices remained"
        );

        let mut prefix = ReplayPolicy::prefix(vec![1]);
        assert_eq!(prefix.choose(&pids(3), 0), 1);
        assert_eq!(prefix.choose(&pids(3), 1), 0);
        assert!(
            !prefix.diverged(),
            "prefix replay treats exhaustion as the canonical choice"
        );
    }

    #[test]
    fn uncontested_consults_past_script_end_are_not_underruns() {
        // The kernel never consults a policy with < 2 candidates, but if a
        // caller does, a forced pick past the script is no divergence.
        let mut p = ReplayPolicy::new(vec![]);
        assert_eq!(p.choose(&pids(1), 0), 0);
        assert!(!p.diverged());
    }

    #[test]
    fn non_replay_policies_report_no_divergence() {
        assert_eq!(FifoPolicy.replay_divergence(), None);
        assert_eq!(LifoPolicy.replay_divergence(), None);
        assert_eq!(RandomPolicy::new(3).replay_divergence(), None);
    }
}
