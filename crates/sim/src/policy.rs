//! Pluggable scheduling policies.
//!
//! The kernel consults a [`SchedPolicy`] only when more than one process is
//! runnable; with a single candidate the dispatch is forced. All provided
//! policies are deterministic functions of their own state, so an entire run
//! is reproducible from the policy construction parameters (e.g. the random
//! seed), and any run can be replayed exactly from its recorded
//! [`crate::Decision`] list via [`ReplayPolicy`].

use crate::types::Pid;

/// Chooses which runnable process to dispatch next.
///
/// `ready` is the runnable set in enqueue order (index 0 has been runnable
/// the longest) and always has at least two entries. Implementations must
/// return an index `< ready.len()`.
pub trait SchedPolicy: Send {
    /// Picks the index of the process to dispatch.
    fn choose(&mut self, ready: &[Pid], step: u64) -> usize;

    /// Human-readable policy name for reports.
    fn name(&self) -> &str {
        "custom"
    }
}

/// First-come-first-served round-robin: always dispatches the process that
/// has been runnable the longest. This is the "fair" baseline policy.
#[derive(Debug, Default, Clone, Copy)]
pub struct FifoPolicy;

impl SchedPolicy for FifoPolicy {
    fn choose(&mut self, _ready: &[Pid], _step: u64) -> usize {
        0
    }

    fn name(&self) -> &str {
        "fifo"
    }
}

/// Adversarially unfair policy: always dispatches the most recently
/// runnable process. Useful for provoking starvation in mechanisms whose
/// fairness depends on the underlying scheduler (e.g. weak semaphores).
#[derive(Debug, Default, Clone, Copy)]
pub struct LifoPolicy;

impl SchedPolicy for LifoPolicy {
    fn choose(&mut self, ready: &[Pid], _step: u64) -> usize {
        ready.len() - 1
    }

    fn name(&self) -> &str {
        "lifo"
    }
}

/// Seeded pseudo-random policy (SplitMix64), deterministic per seed.
#[derive(Debug, Clone)]
pub struct RandomPolicy {
    state: u64,
    name: String,
}

impl RandomPolicy {
    /// Creates a random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        RandomPolicy {
            state: seed,
            name: format!("random(seed={seed})"),
        }
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64: tiny, high-quality, dependency-free.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SchedPolicy for RandomPolicy {
    fn choose(&mut self, ready: &[Pid], _step: u64) -> usize {
        (self.next_u64() % ready.len() as u64) as usize
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Replays a recorded decision script; beyond the script it behaves like
/// [`FifoPolicy`]. This is the workhorse of [`crate::Explorer`].
#[derive(Debug, Clone)]
pub struct ReplayPolicy {
    script: Vec<u32>,
    pos: usize,
}

impl ReplayPolicy {
    /// Creates a replay policy from a decision prefix (one entry per
    /// decision point with more than one runnable process).
    pub fn new(script: Vec<u32>) -> Self {
        ReplayPolicy { script, pos: 0 }
    }
}

impl SchedPolicy for ReplayPolicy {
    fn choose(&mut self, ready: &[Pid], _step: u64) -> usize {
        let pick = match self.script.get(self.pos) {
            Some(&i) => (i as usize).min(ready.len() - 1),
            None => 0,
        };
        self.pos += 1;
        pick
    }

    fn name(&self) -> &str {
        "replay"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pids(n: u32) -> Vec<Pid> {
        (0..n).map(Pid).collect()
    }

    #[test]
    fn fifo_picks_oldest() {
        let mut p = FifoPolicy;
        assert_eq!(p.choose(&pids(3), 0), 0);
    }

    #[test]
    fn lifo_picks_newest() {
        let mut p = LifoPolicy;
        assert_eq!(p.choose(&pids(3), 0), 2);
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let r = pids(5);
        let mut a = RandomPolicy::new(42);
        let mut b = RandomPolicy::new(42);
        let seq_a: Vec<_> = (0..20).map(|s| a.choose(&r, s)).collect();
        let seq_b: Vec<_> = (0..20).map(|s| b.choose(&r, s)).collect();
        assert_eq!(seq_a, seq_b);
        let mut c = RandomPolicy::new(43);
        let seq_c: Vec<_> = (0..20).map(|s| c.choose(&r, s)).collect();
        assert_ne!(seq_a, seq_c, "different seeds should diverge");
    }

    #[test]
    fn random_stays_in_bounds() {
        let mut p = RandomPolicy::new(7);
        for step in 0..1000 {
            let n = 2 + (step as usize % 7);
            let pick = p.choose(&pids(n as u32), step);
            assert!(pick < n);
        }
    }

    #[test]
    fn replay_follows_script_then_fifo() {
        let mut p = ReplayPolicy::new(vec![2, 1]);
        assert_eq!(p.choose(&pids(4), 0), 2);
        assert_eq!(p.choose(&pids(4), 1), 1);
        assert_eq!(
            p.choose(&pids(4), 2),
            0,
            "past script end falls back to fifo"
        );
    }

    #[test]
    fn replay_clamps_out_of_range_entries() {
        let mut p = ReplayPolicy::new(vec![9]);
        assert_eq!(p.choose(&pids(2), 0), 1);
    }
}
