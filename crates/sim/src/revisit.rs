//! Race-driven revisit planning for the near-optimal DPOR prune mode.
//!
//! The `granular` sleep-set prune (DESIGN.md §2.10) expands *every*
//! sibling of every contested decision and then prunes the ones whose
//! dispatched process is asleep. That forward expansion is the fat the
//! `revisit` mode removes: instead of branching eagerly, each executed run
//! is analysed for **reversible races** — pairs of quanta by different
//! processes whose footprints conflict and that no third quantum orders —
//! and only the sibling branches that *reverse a detected race* are
//! scheduled. A sibling never named by any race commutes, footprint-wise,
//! with everything the canonical subtree already executes, so its whole
//! subtree is Mazurkiewicz-equivalent to explored schedules and is counted
//! as pruned without ever running.
//!
//! This is the classical happens-before DPOR backtracking rule
//! (Flanagan–Godefroid), in the reads-from-revisit formulation the
//! TraceForge line of work uses: the revisit targets the earlier side of
//! the race and asks for the later side's process to be dispatched there.
//! Everything is computed from *one run's own log* — decisions, per-quantum
//! footprints, and the recorded ready lists — which is what lets the
//! serial worklist and the work-sharing parallel frontier arrive at the
//! byte-identical explored set: the set of executed schedules is the least
//! fixed point of "the root schedule, plus every revisit any executed
//! schedule requests", and that fixed point does not depend on the order
//! requests are discovered in. See `DESIGN.md` §2.14 for the soundness
//! argument and the interaction with checkpointed execution.

use crate::footprint::QuantumRecord;
use crate::trace::Decision;
use std::collections::{BTreeMap, BTreeSet};

/// What one executed run's race analysis wants explored.
#[derive(Debug, Default)]
pub(crate) struct RevisitPlan {
    /// Deduplicated `(decision index, sibling choice)` branch requests:
    /// dispatching `ready[choice]` at that decision reverses at least one
    /// detected race. Choices equal to the run's own chosen branch are
    /// never requested.
    pub(crate) requests: BTreeSet<(usize, u32)>,
    /// How many reversible races the analysis found (before the per-run
    /// request dedup). A pure function of the run, so summing it over all
    /// executed runs is identical for every exploration strategy.
    pub(crate) races: u64,
}

/// Row-major dense bitset: `rows` quanta × `rows` quanta happens-before
/// matrix, one `u64` word per 64 columns.
struct HbMatrix {
    words: usize,
    bits: Vec<u64>,
}

impl HbMatrix {
    fn new(n: usize) -> Self {
        let words = n.div_ceil(64).max(1);
        HbMatrix {
            words,
            bits: vec![0; words * n],
        }
    }

    #[inline]
    fn get(&self, row: usize, col: usize) -> bool {
        (self.bits[row * self.words + col / 64] >> (col % 64)) & 1 == 1
    }

    #[inline]
    fn set(&mut self, row: usize, col: usize) {
        self.bits[row * self.words + col / 64] |= 1 << (col % 64);
    }

    /// `row dst |= row src` — requires `src < dst` (happens-before only
    /// flows forward in the run).
    fn union_row(&mut self, dst: usize, src: usize) {
        debug_assert!(src < dst);
        let (head, tail) = self.bits.split_at_mut(dst * self.words);
        let src = &head[src * self.words..(src + 1) * self.words];
        for (d, s) in tail[..self.words].iter_mut().zip(src) {
            *d |= *s;
        }
    }
}

/// Requests every sibling of every decision: the sound fallback when the
/// run carries no usable footprint log (and for the conservative
/// "racing process was not ready" case at a single node).
fn request_all_siblings(requests: &mut BTreeSet<(usize, u32)>, i: usize, d: &Decision) {
    for c in 0..d.arity {
        if c != d.chosen {
            requests.insert((i, c));
        }
    }
}

/// Analyses one executed run for reversible races and returns the revisit
/// requests that reverse them.
///
/// `prefix_len` is the length of the replay prefix the run was launched
/// with: quanta at or after the contested quantum of decision
/// `prefix_len - 1` are *new* (first executed by this run); races whose
/// later side is older than that were already analysed — identically —
/// by the ancestor run that shared the prefix, so they are skipped to
/// keep the request tally a disjoint sum over runs.
///
/// A race is a pair of quanta `(t, u)`, `t` before `u`, such that:
///
/// * `t` is a *contested* dispatch (a decision was taken; a forced
///   dispatch has no sibling to revisit — its ready list was a
///   singleton, so the reversal is unreachable at that point and is
///   found, when real, at the nearest contested ancestor by another
///   pair);
/// * the two quanta belong to different processes and their footprints
///   conflict (same object, at least one write — [`crate::Footprint`]);
/// * no intermediate quantum `v` orders them (`t` happens-before `v`
///   happens-before `u`): the race is *adjacent* in the happens-before
///   relation, i.e. actually reversible without reordering anything else
///   first. Non-adjacent conflicting pairs are reversed transitively by
///   chains of adjacent reversals.
///
/// For each race the request is "dispatch `u`'s process at `t`'s
/// decision". If that process was not in the recorded ready list (it was
/// parked or not yet spawned at `t` — its later enabledness was created
/// by an intermediate quantum), the classical conservative rule applies:
/// every sibling of the node is requested. Happens-before is the
/// transitive closure of per-process program order plus footprint
/// conflicts, so a run that was not prune-safe (timers, faults, watchdog
/// — every footprint forced to [`crate::Footprint::All`]) degrades to
/// requesting every sibling everywhere: exhaustive exploration, never a
/// lost behavior.
///
/// Each found race is also tallied per conflicting object into
/// `race_objs` (the `revisit`-mode meaning of
/// [`crate::ExploreStats::conflicts`]).
pub(crate) fn plan_revisits(
    decisions: &[Decision],
    quanta: &[QuantumRecord],
    prefix_len: usize,
    race_objs: &mut BTreeMap<String, u64>,
) -> RevisitPlan {
    let mut plan = RevisitPlan::default();
    let sched_total = decisions.iter().filter(|d| d.is_sched()).count();
    let contested = quanta.iter().filter(|q| q.ready.is_some()).count();
    if contested != sched_total {
        // No usable footprint log (the explorers force `record_quanta` on,
        // so this is only reachable through a hand-built `Sim` path):
        // degrade to exhaustive sibling expansion.
        debug_assert!(quanta.is_empty(), "partial quantum log");
        for (i, d) in decisions.iter().enumerate() {
            request_all_siblings(&mut plan.requests, i, d);
        }
        return plan;
    }
    if decisions.is_empty() {
        return plan;
    }

    // Map contested quanta to their decision indices and back. `Data`-kind
    // decisions (value choices) own no scheduling quantum: `quantum_of`
    // stays `usize::MAX` for them and the race loop skips them — their
    // siblings are requested by the symbolic-collapse logic in the
    // explorers, not by race analysis.
    let m = quanta.len();
    let mut decision_at = vec![usize::MAX; m];
    let mut quantum_of = vec![usize::MAX; decisions.len()];
    let mut sched_idx = decisions
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_sched())
        .map(|(i, _)| i);
    for (t, q) in quanta.iter().enumerate() {
        if q.ready.is_some() {
            let i = sched_idx.next().expect("counted above");
            decision_at[t] = i;
            quantum_of[i] = t;
        }
    }
    // The first quantum this run executed beyond the shared prefix: the
    // contested quantum of the branch decision itself (its dispatched
    // process differs from the ancestor run's, so pairs ending there are
    // new too). A branch at a `Data`-kind decision (a symbolic-collapse
    // grant) owns no quantum; fall back to the nearest scheduling decision
    // at or before it.
    let new_from = if prefix_len == 0 {
        0
    } else {
        (0..prefix_len)
            .rev()
            .map(|i| quantum_of[i])
            .find(|&t| t != usize::MAX)
            .unwrap_or(0)
    };

    // Happens-before closure: hb[u] ⊇ {t} ∪ hb[t] for every t < u whose
    // quantum is program-order or footprint dependent with u's.
    let mut hb = HbMatrix::new(m);
    for u in 1..m {
        for t in 0..u {
            if quanta[t].pid == quanta[u].pid || quanta[t].footprint.conflicts(&quanta[u].footprint)
            {
                hb.union_row(u, t);
                hb.set(u, t);
            }
        }
    }

    // Races: earlier side contested, later side new, conflicting,
    // adjacent in happens-before.
    for (i, &t) in quantum_of.iter().enumerate() {
        if t == usize::MAX {
            continue; // data decision: no quantum, no race to reverse
        }
        let d = &decisions[i];
        for u in new_from.max(t + 1)..m {
            if quanta[t].pid == quanta[u].pid {
                continue;
            }
            let Some(obj) = quanta[t].footprint.conflict_with(&quanta[u].footprint) else {
                continue;
            };
            if ((t + 1)..u).any(|v| hb.get(v, t) && hb.get(u, v)) {
                continue; // ordered through an intermediary: not reversible here
            }
            plan.races += 1;
            *race_objs.entry(obj.to_string()).or_insert(0) += 1;
            let ready = quanta[t].ready.as_ref().expect("contested quantum");
            match ready.iter().position(|p| *p == quanta[u].pid) {
                Some(c) => {
                    let c = c as u32;
                    debug_assert_ne!(c, d.chosen, "a process cannot race itself");
                    plan.requests.insert((i, c));
                }
                // The racing process was not dispatchable at the decision:
                // classical DPOR's conservative rule — request everything
                // enabled there.
                None => request_all_siblings(&mut plan.requests, i, d),
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::footprint::{merge_access, Access, Footprint, ObjId};
    use crate::types::Pid;

    fn objs(entries: &[(&str, Access)]) -> Footprint {
        let mut map = std::collections::BTreeMap::new();
        for (name, access) in entries {
            merge_access(&mut map, ObjId::pseudo(name), *access);
        }
        Footprint::Objs(map)
    }

    fn quantum(pid: u32, footprint: Footprint, ready: Option<&[u32]>) -> QuantumRecord {
        QuantumRecord {
            pid: Pid(pid),
            footprint,
            ready: ready.map(|pids| pids.iter().map(|&p| Pid(p)).collect()),
        }
    }

    fn decision(chosen: u32, arity: u32) -> Decision {
        Decision::sched(arity, chosen)
    }

    /// Two writers of one object, dispatched 0-then-1: one race, one
    /// request to run process 1 first.
    #[test]
    fn conflicting_writes_request_the_reversal() {
        let w = |name| objs(&[(name, Access::Write)]);
        let decisions = [decision(0, 2), decision(0, 1)];
        let quanta = [
            quantum(0, w("a"), Some(&[0, 1])),
            quantum(1, w("a"), Some(&[1])),
        ];
        let mut race_objs = BTreeMap::new();
        let plan = plan_revisits(&decisions, &quanta, 0, &mut race_objs);
        assert_eq!(plan.races, 1);
        assert_eq!(
            plan.requests.into_iter().collect::<Vec<_>>(),
            vec![(0usize, 1u32)]
        );
        assert_eq!(race_objs.get("a"), Some(&1));
    }

    /// Disjoint objects never race: nothing is requested, the whole
    /// sibling subtree is (later) counted as pruned.
    #[test]
    fn independent_quanta_request_nothing() {
        let decisions = [decision(0, 2), decision(0, 1)];
        let quanta = [
            quantum(0, objs(&[("a", Access::Write)]), Some(&[0, 1])),
            quantum(1, objs(&[("b", Access::Write)]), Some(&[1])),
        ];
        let mut race_objs = BTreeMap::new();
        let plan = plan_revisits(&decisions, &quanta, 0, &mut race_objs);
        assert_eq!(plan.races, 0);
        assert!(plan.requests.is_empty());
        assert!(race_objs.is_empty());
    }

    /// A race ordered through an intermediary is not adjacent: process 2's
    /// write is ordered after process 0's by process 1's intervening write
    /// to the same object, so only the adjacent pairs are requested.
    #[test]
    fn transitively_ordered_pairs_are_not_races() {
        let w = objs(&[("a", Access::Write)]);
        let decisions = [decision(0, 3), decision(0, 2), decision(0, 1)];
        let quanta = [
            quantum(0, w.clone(), Some(&[0, 1, 2])),
            quantum(1, w.clone(), Some(&[1, 2])),
            quantum(2, w.clone(), Some(&[2])),
        ];
        let mut race_objs = BTreeMap::new();
        let plan = plan_revisits(&decisions, &quanta, 0, &mut race_objs);
        // (0,1) and (1,2) are adjacent races; (0,2) is ordered through 1.
        assert_eq!(plan.races, 2);
        assert_eq!(
            plan.requests.into_iter().collect::<Vec<_>>(),
            vec![(0, 1), (1, 1)]
        );
    }

    /// Races entirely before the run's own branch quantum are the
    /// ancestor run's to report: `prefix_len` masks them, keeping the
    /// request tally a disjoint sum over runs.
    #[test]
    fn old_races_are_not_reanalysed() {
        let w = |name| objs(&[(name, Access::Write)]);
        let decisions = [decision(0, 3), decision(1, 2), decision(1, 2)];
        let quanta = [
            quantum(0, w("a"), Some(&[0, 1, 2])),
            quantum(2, w("a"), Some(&[1, 2])),
            quantum(1, w("b"), Some(&[0, 1])),
        ];
        // prefix [0, 1, 1]: only the third contested quantum on is new, so
        // the (q0, q1) race on "a" is old news and nothing else conflicts.
        let mut race_objs = BTreeMap::new();
        let plan = plan_revisits(&decisions, &quanta, 3, &mut race_objs);
        assert_eq!(plan.races, 0, "prefix-internal races are not re-reported");
        assert!(plan.requests.is_empty());
        // The same log analysed as the root run sees the race.
        let mut all_objs = BTreeMap::new();
        let root = plan_revisits(&decisions, &quanta, 0, &mut all_objs);
        assert_eq!(root.races, 1);
        assert_eq!(
            root.requests.into_iter().collect::<Vec<_>>(),
            vec![(0, 2)],
            "dispatch the racing process (ready index 2) at the decision"
        );
    }

    /// A racing process missing from the ready list triggers the
    /// conservative everything-enabled fallback.
    #[test]
    fn unready_racer_requests_all_siblings() {
        let w = objs(&[("a", Access::Write)]);
        let decisions = [decision(0, 3), decision(0, 1)];
        let quanta = [
            quantum(0, w.clone(), Some(&[0, 1, 2])),
            // pid 9 was not in the ready list at the decision.
            quantum(9, w, Some(&[9])),
        ];
        let mut race_objs = BTreeMap::new();
        let plan = plan_revisits(&decisions, &quanta, 0, &mut race_objs);
        assert_eq!(
            plan.requests.into_iter().collect::<Vec<_>>(),
            vec![(0, 1), (0, 2)]
        );
    }

    /// No usable quantum log: every sibling everywhere, exhaustively.
    #[test]
    fn missing_log_degrades_to_exhaustive() {
        let decisions = [decision(0, 2), decision(0, 3)];
        let mut race_objs = BTreeMap::new();
        let plan = plan_revisits(&decisions, &[], 0, &mut race_objs);
        assert_eq!(
            plan.requests.into_iter().collect::<Vec<_>>(),
            vec![(0, 1), (1, 1), (1, 2)]
        );
    }
}
