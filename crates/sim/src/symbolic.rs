//! Symbolic data nondeterminism: value decision points and the
//! hand-rolled constraint domain behind [`crate::Ctx::choose_value`]
//! (DESIGN.md §2.15).
//!
//! A `choose_value` call registers a *data decision*: a point whose
//! outcome is a value drawn from a finite integer domain rather than a
//! scheduler pick. Data decisions live in the same decision vector as
//! scheduling decisions ([`crate::DecisionKind`] tags them apart), so
//! replay, journaling, shrinking, and export all handle them with no
//! special cases — a decision vector is still just a `Vec<u32>`.
//!
//! The payoff is the constraint log. Every comparison a run makes
//! against a drawn [`SymValue`] is recorded as an `(op, rhs)` pair on the
//! run's [`DataChoice`] record. Two values that agree on the outcome of
//! every comparison a run recorded are indistinguishable *to that run*:
//! replaying the same decisions with the other value yields a
//! step-for-step identical execution (values reach a program only through
//! `SymValue` observations, each of which is logged). The revisit
//! explorer exploits this to execute one representative per constraint
//! class instead of one run per concrete value — see
//! [`DataChoice::collapse_requests`] and `PruneMode::Revisit`. The
//! depth-first modes enumerate every value concretely; they see only the
//! facts of their own discovery run, which is not enough to collapse
//! soundly.
//!
//! No external solver: domains are finite `i64` sets and constraints are
//! the six integer comparisons, so "solving" is evaluating each candidate
//! value against the recorded comparisons.

use crate::kernel::Shared;
use crate::trace::{Decision, EventKind};
use crate::types::Pid;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// One of the six integer comparisons a [`SymValue`] can record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    /// Evaluates `lhs OP rhs`.
    pub fn eval(self, lhs: i64, rhs: i64) -> bool {
        match self {
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        })
    }
}

/// Everything one run recorded about one contested data decision point:
/// the k-th entry of [`crate::SimReport::data_choices`] describes the
/// k-th `Data`-kind entry of the report's decision vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataChoice {
    /// The label passed to [`crate::Ctx::choose_value`].
    pub label: String,
    /// The domain, sorted ascending and deduplicated; `chosen` indexes it.
    pub domain: Vec<i64>,
    /// Index into `domain` of the value this run observed.
    pub chosen: u32,
    /// Every comparison the run made against the drawn value, as
    /// `(op, rhs)` pairs. A [`SymValue::get`] call sets `concretized`
    /// instead: the exact value escaped the constraint log.
    pub constraints: BTreeSet<(CmpOp, i64)>,
    /// Whether the run observed the exact value ([`SymValue::get`]),
    /// which partitions the domain into singletons: no two values can be
    /// collapsed once one of them has been read out raw.
    pub concretized: bool,
}

impl DataChoice {
    /// The constraint signature of a domain value under this run's
    /// recorded observations. Two values with equal signatures are
    /// indistinguishable to this run.
    fn signature(&self, value: i64) -> Vec<bool> {
        self.constraints
            .iter()
            .map(|&(op, rhs)| op.eval(value, rhs))
            .collect()
    }

    /// Domain indices the revisit explorer should schedule from this run:
    /// the minimal representative of every constraint class other than
    /// the chosen value's. Values in the chosen class are collapsed —
    /// this run already is their representative. With `concretized` set,
    /// every class is a singleton and all siblings are returned (raw
    /// reads defeat collapse by construction).
    pub fn collapse_requests(&self) -> Vec<u32> {
        if self.concretized {
            return (0..self.domain.len() as u32)
                .filter(|&i| i != self.chosen)
                .collect();
        }
        let chosen_sig = self.signature(self.domain[self.chosen as usize]);
        let mut seen: BTreeSet<Vec<bool>> = BTreeSet::from([chosen_sig]);
        let mut reps = Vec::new();
        for (i, &v) in self.domain.iter().enumerate() {
            if seen.insert(self.signature(v)) {
                reps.push(i as u32);
            }
        }
        reps
    }
}

/// A value drawn from a [`crate::Ctx::choose_value`] domain.
///
/// Carries the concrete value of *this* run plus a handle back to the
/// kernel so every observation is logged on the run's [`DataChoice`]
/// record. Clone it freely and hand it to other processes — observations
/// from any process land on the same record. Prefer the comparison
/// methods over [`SymValue::get`]: a comparison records exactly what the
/// program learned, which is what lets the revisit explorer collapse
/// indistinguishable valuations; `get` concedes the exact value and
/// forces concrete enumeration of the whole domain.
#[derive(Clone)]
pub struct SymValue {
    shared: Arc<Shared>,
    /// `None` for a singleton domain: no decision was recorded and no
    /// observation can distinguish anything.
    slot: Option<usize>,
    value: i64,
}

impl fmt::Debug for SymValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymValue")
            .field("value", &self.value)
            .field("slot", &self.slot)
            .finish()
    }
}

impl SymValue {
    fn observe(&self, op: CmpOp, rhs: i64) -> bool {
        if let Some(slot) = self.slot {
            let mut st = self.shared.state.lock();
            if let Some(dc) = st.data_choices.get_mut(slot) {
                dc.constraints.insert((op, rhs));
            }
        }
        op.eval(self.value, rhs)
    }

    /// `self < rhs`, recording the comparison.
    pub fn lt(&self, rhs: i64) -> bool {
        self.observe(CmpOp::Lt, rhs)
    }

    /// `self <= rhs`, recording the comparison.
    pub fn le(&self, rhs: i64) -> bool {
        self.observe(CmpOp::Le, rhs)
    }

    /// `self > rhs`, recording the comparison.
    pub fn gt(&self, rhs: i64) -> bool {
        self.observe(CmpOp::Gt, rhs)
    }

    /// `self >= rhs`, recording the comparison.
    pub fn ge(&self, rhs: i64) -> bool {
        self.observe(CmpOp::Ge, rhs)
    }

    /// `self == rhs`, recording the comparison. (Inherent by design —
    /// this is an observation with a side effect, not `PartialEq`.)
    #[allow(clippy::should_implement_trait)]
    pub fn eq(&self, rhs: i64) -> bool {
        self.observe(CmpOp::Eq, rhs)
    }

    /// `self != rhs`, recording the comparison.
    pub fn ne(&self, rhs: i64) -> bool {
        self.observe(CmpOp::Ne, rhs)
    }

    /// The drawn value interpreted as a boolean (`!= 0`), recording the
    /// comparison — the boolean face of the domain.
    pub fn truth(&self) -> bool {
        self.observe(CmpOp::Ne, 0)
    }

    /// The exact concrete value. This marks the decision point as
    /// *concretized*: the raw value escaped into arbitrary program logic,
    /// so no two domain values can soundly be collapsed afterwards.
    /// Prefer the comparison methods when the program only needs a
    /// predicate of the value.
    pub fn get(&self) -> i64 {
        if let Some(slot) = self.slot {
            let mut st = self.shared.state.lock();
            if let Some(dc) = st.data_choices.get_mut(slot) {
                dc.concretized = true;
            }
        }
        self.value
    }
}

/// Kernel-side implementation of [`crate::Ctx::choose_value`]: record the
/// data decision (policy-picked, replayable) and open its constraint
/// slot. Runs synchronously under the state lock — a data decision is
/// *not* a scheduling point; the calling process keeps the CPU.
pub(crate) fn choose(
    shared: &Arc<Shared>,
    pid: Pid,
    label: &str,
    mut domain: Vec<i64>,
) -> SymValue {
    domain.sort_unstable();
    domain.dedup();
    assert!(
        !domain.is_empty(),
        "choose_value(\"{label}\"): empty domain"
    );
    if domain.len() == 1 {
        // Uncontested: a singleton domain decides nothing, exactly as a
        // one-candidate dispatch records no scheduling decision.
        return SymValue {
            shared: Arc::clone(shared),
            slot: None,
            value: domain[0],
        };
    }
    let (value, slot) = {
        let mut st = shared.state.lock();
        let arity = domain.len() as u32;
        let step = st.step;
        let pick = st.policy.choose_data(arity, step).min(arity - 1);
        st.decisions.push(Decision::data(arity, pick));
        let value = domain[pick as usize];
        let slot = st.data_choices.len();
        st.data_choices.push(DataChoice {
            label: label.to_string(),
            domain,
            chosen: pick,
            constraints: BTreeSet::new(),
            concretized: false,
        });
        if st.record_sched_events {
            let clock = st.clock;
            st.trace.push(
                clock,
                pid,
                EventKind::ChoseValue {
                    label: label.to_string(),
                    value,
                },
            );
        }
        (value, slot)
    };
    // A contested data decision is an observable effect of its quantum —
    // it extends the decision vector — so the quantum must never be
    // treated as a pure stutter or commuted across siblings.
    shared.quantum_dirty.store(true, Ordering::Relaxed);
    SymValue {
        shared: Arc::clone(shared),
        slot: Some(slot),
        value,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dc(domain: Vec<i64>, chosen: u32, constraints: &[(CmpOp, i64)]) -> DataChoice {
        DataChoice {
            label: "x".into(),
            domain,
            chosen,
            constraints: constraints.iter().copied().collect(),
            concretized: false,
        }
    }

    #[test]
    fn cmp_ops_evaluate() {
        assert!(CmpOp::Lt.eval(1, 2));
        assert!(CmpOp::Le.eval(2, 2));
        assert!(CmpOp::Gt.eval(3, 2));
        assert!(CmpOp::Ge.eval(2, 2));
        assert!(CmpOp::Eq.eval(2, 2));
        assert!(CmpOp::Ne.eval(1, 2));
        assert!(!CmpOp::Lt.eval(2, 2));
    }

    #[test]
    fn no_constraints_collapse_everything() {
        // A run that never observes the value cannot be distinguished by
        // it: one class, no requests.
        let d = dc(vec![1, 2, 3, 4], 0, &[]);
        assert!(d.collapse_requests().is_empty());
    }

    #[test]
    fn classes_partition_by_constraint_outcomes() {
        // gt(0), gt(1), gt(2) over 1..=8: classes {1}, {2}, {3..8}.
        let d = dc(
            (1..=8).collect(),
            0,
            &[(CmpOp::Gt, 0), (CmpOp::Gt, 1), (CmpOp::Gt, 2)],
        );
        // Chosen value 1 is its own class; representatives of the other
        // two classes are value 2 (index 1) and value 3 (index 2).
        assert_eq!(d.collapse_requests(), vec![1, 2]);
    }

    #[test]
    fn chosen_class_is_never_requested() {
        // eq(2) over {1,2,3}: classes {1,3} and {2}. From the run that
        // chose 3, only 2's class needs a representative — 1 is collapsed
        // into 3's.
        let d = dc(vec![1, 2, 3], 2, &[(CmpOp::Eq, 2)]);
        assert_eq!(d.collapse_requests(), vec![1]);
    }

    #[test]
    fn concretized_requests_every_sibling() {
        let d = DataChoice {
            concretized: true,
            ..dc(vec![1, 2, 3], 1, &[(CmpOp::Gt, 0)])
        };
        assert_eq!(d.collapse_requests(), vec![0, 2]);
    }
}
