//! Small value types shared across the simulator: process ids and virtual time.

use std::fmt;

/// Identifier of a simulated process, assigned densely from zero in spawn order.
///
/// `Pid`s are stable for the lifetime of a simulation and index directly into
/// the kernel's process table. They are `Copy` and cheap to store in traces
/// and wait queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl Pid {
    /// Returns the raw index of this pid.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Virtual time, measured in scheduler quanta.
///
/// The clock advances by one each time a process is dispatched, and jumps
/// forward when all runnable work is exhausted and a sleeping process's timer
/// is due. Virtual time is deterministic: two runs with the same policy see
/// identical timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(pub u64);

impl Time {
    /// The instant at which every simulation starts.
    pub const ZERO: Time = Time(0);

    /// Returns this time advanced by `ticks` quanta.
    #[must_use]
    pub fn plus(self, ticks: u64) -> Time {
        Time(self.0 + ticks)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A virtual-time wait budget: either an absolute point on the virtual
/// clock or a relative tick count resolved at the use site.
///
/// Every timed wait in the mechanism crates takes `impl Into<Deadline>`,
/// so callers pass whichever form is natural:
///
/// * a plain tick count (`u64`, via `From`) — "give up `n` quanta after
///   the wait starts"; resolving it never reads the clock, so it cannot
///   disturb the explorers' prune-safety gate;
/// * an absolute [`Deadline::at`] / [`Ctx::deadline_after`] — composes
///   across nested calls (each layer re-computes the *remaining* budget
///   instead of restarting the clock);
/// * a `std::time::Duration` (via `From`), read as virtual ticks at
///   1 tick = 1 nanosecond.
///
/// A deadline is pure virtual-time data, so it is deterministic and
/// replayable like everything else.
///
/// [`Ctx::deadline_after`]: crate::Ctx::deadline_after
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Deadline(Repr);

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Repr {
    At(Time),
    After(u64),
}

impl Deadline {
    /// A deadline at the given absolute virtual time.
    pub fn at(time: Time) -> Deadline {
        Deadline(Repr::At(time))
    }

    /// A deadline `ticks` quanta after `now`.
    pub fn after(now: Time, ticks: u64) -> Deadline {
        Deadline(Repr::At(now.plus(ticks)))
    }

    /// A relative deadline: `ticks` quanta after the wait begins.
    /// Equivalent to the `From<u64>` conversion.
    pub fn within(ticks: u64) -> Deadline {
        Deadline(Repr::After(ticks))
    }

    /// The absolute virtual time of this deadline, or `None` for a
    /// relative one (which has no fixed point until a wait resolves it).
    pub fn absolute(self) -> Option<Time> {
        match self.0 {
            Repr::At(t) => Some(t),
            Repr::After(_) => None,
        }
    }

    /// Whether the deadline has passed (inclusive: a deadline *at* `now`
    /// is expired — there is no budget left to wait with). A relative
    /// deadline is expired only when its budget is zero.
    pub fn expired(self, now: Time) -> bool {
        self.remaining(now).is_none()
    }

    /// Ticks left until the deadline, or `None` if it has expired.
    /// For a relative deadline the answer ignores `now`: the budget is
    /// whatever was asked for.
    pub fn remaining(self, now: Time) -> Option<u64> {
        match self.0 {
            Repr::At(t) => {
                if now >= t {
                    None
                } else {
                    Some(t.0 - now.0)
                }
            }
            Repr::After(n) => (n > 0).then_some(n),
        }
    }
}

/// A relative deadline: "give up `ticks` quanta after the wait starts".
impl From<u64> for Deadline {
    fn from(ticks: u64) -> Deadline {
        Deadline::within(ticks)
    }
}

/// A relative deadline from wall-clock-style units, read as virtual time
/// at 1 tick = 1 nanosecond (saturating at `u64::MAX` ticks).
impl From<std::time::Duration> for Deadline {
    fn from(d: std::time::Duration) -> Deadline {
        Deadline::within(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
    }
}

impl fmt::Display for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Repr::At(t) => write!(f, "by {t}"),
            Repr::After(n) => write!(f, "within {n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display_and_index() {
        assert_eq!(Pid(3).to_string(), "P3");
        assert_eq!(Pid(3).index(), 3);
    }

    #[test]
    fn time_ordering_and_arithmetic() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::ZERO.plus(5), Time(5));
        assert_eq!(Time(7).to_string(), "t7");
    }

    #[test]
    fn absolute_deadline_expiry_is_inclusive() {
        let d = Deadline::after(Time(10), 5);
        assert_eq!(d.absolute(), Some(Time(15)));
        assert_eq!(d.remaining(Time(10)), Some(5));
        assert_eq!(d.remaining(Time(14)), Some(1));
        assert!(d.expired(Time(15)));
        assert!(d.expired(Time(20)));
        assert_eq!(d.to_string(), "by t15");
    }

    #[test]
    fn relative_deadline_ignores_now() {
        let d = Deadline::from(3u64);
        assert_eq!(d, Deadline::within(3));
        assert_eq!(d.absolute(), None);
        assert_eq!(d.remaining(Time(999)), Some(3));
        assert!(!d.expired(Time(999)));
        assert!(Deadline::within(0).expired(Time::ZERO));
        assert_eq!(d.to_string(), "within 3");
    }

    #[test]
    fn duration_converts_at_one_tick_per_nanosecond() {
        let d: Deadline = std::time::Duration::from_nanos(42).into();
        assert_eq!(d, Deadline::within(42));
        let huge: Deadline = std::time::Duration::from_secs(u64::MAX).into();
        assert_eq!(huge, Deadline::within(u64::MAX));
    }
}
