//! Small value types shared across the simulator: process ids and virtual time.

use std::fmt;

/// Identifier of a simulated process, assigned densely from zero in spawn order.
///
/// `Pid`s are stable for the lifetime of a simulation and index directly into
/// the kernel's process table. They are `Copy` and cheap to store in traces
/// and wait queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl Pid {
    /// Returns the raw index of this pid.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Virtual time, measured in scheduler quanta.
///
/// The clock advances by one each time a process is dispatched, and jumps
/// forward when all runnable work is exhausted and a sleeping process's timer
/// is due. Virtual time is deterministic: two runs with the same policy see
/// identical timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(pub u64);

impl Time {
    /// The instant at which every simulation starts.
    pub const ZERO: Time = Time(0);

    /// Returns this time advanced by `ticks` quanta.
    #[must_use]
    pub fn plus(self, ticks: u64) -> Time {
        Time(self.0 + ticks)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An absolute virtual-time deadline.
///
/// Timed waits throughout the mechanism crates accept either a relative
/// tick count or a `Deadline`; the deadline form composes across nested
/// calls (each layer re-computes the *remaining* budget instead of
/// restarting the clock). A deadline is just a point on the virtual
/// clock, so it is deterministic and replayable like everything else.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Deadline(pub Time);

impl Deadline {
    /// A deadline at the given absolute virtual time.
    pub fn at(time: Time) -> Deadline {
        Deadline(time)
    }

    /// A deadline `ticks` quanta after `now`.
    pub fn after(now: Time, ticks: u64) -> Deadline {
        Deadline(now.plus(ticks))
    }

    /// The absolute virtual time of this deadline.
    pub fn time(self) -> Time {
        self.0
    }

    /// Whether the deadline has passed (inclusive: a deadline *at* `now`
    /// is expired — there is no budget left to wait with).
    pub fn expired(self, now: Time) -> bool {
        now >= self.0
    }

    /// Ticks left until the deadline, or `None` if it has expired.
    pub fn remaining(self, now: Time) -> Option<u64> {
        if self.expired(now) {
            None
        } else {
            Some(self.0 .0 - now.0)
        }
    }
}

impl fmt::Display for Deadline {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "by {}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display_and_index() {
        assert_eq!(Pid(3).to_string(), "P3");
        assert_eq!(Pid(3).index(), 3);
    }

    #[test]
    fn time_ordering_and_arithmetic() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::ZERO.plus(5), Time(5));
        assert_eq!(Time(7).to_string(), "t7");
    }
}
