//! Small value types shared across the simulator: process ids and virtual time.

use std::fmt;

/// Identifier of a simulated process, assigned densely from zero in spawn order.
///
/// `Pid`s are stable for the lifetime of a simulation and index directly into
/// the kernel's process table. They are `Copy` and cheap to store in traces
/// and wait queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pid(pub u32);

impl Pid {
    /// Returns the raw index of this pid.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// Virtual time, measured in scheduler quanta.
///
/// The clock advances by one each time a process is dispatched, and jumps
/// forward when all runnable work is exhausted and a sleeping process's timer
/// is due. Virtual time is deterministic: two runs with the same policy see
/// identical timestamps.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Time(pub u64);

impl Time {
    /// The instant at which every simulation starts.
    pub const ZERO: Time = Time(0);

    /// Returns this time advanced by `ticks` quanta.
    #[must_use]
    pub fn plus(self, ticks: u64) -> Time {
        Time(self.0 + ticks)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_display_and_index() {
        assert_eq!(Pid(3).to_string(), "P3");
        assert_eq!(Pid(3).index(), 3);
    }

    #[test]
    fn time_ordering_and_arithmetic() {
        assert!(Time(1) < Time(2));
        assert_eq!(Time::ZERO.plus(5), Time(5));
        assert_eq!(Time(7).to_string(), "t7");
    }
}
