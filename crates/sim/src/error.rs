//! Simulation failure reporting.

use crate::kernel::SimReport;
use crate::types::Pid;
use std::fmt;

/// Why a run failed.
#[derive(Debug, Clone)]
pub enum SimErrorKind {
    /// No process is runnable, no timers are pending, and at least one
    /// non-daemon process is blocked. `blocked` lists `(pid, name, reason)`.
    Deadlock { blocked: Vec<(Pid, String, String)> },
    /// A process closure panicked.
    ProcessPanicked {
        /// The panicking process.
        pid: Pid,
        /// The panic message.
        message: String,
    },
    /// The configured step budget was exhausted (likely a livelock).
    MaxStepsExceeded {
        /// The configured limit.
        limit: u64,
    },
}

/// A failed run, including everything recorded up to the failure.
#[derive(Debug, Clone)]
pub struct SimError {
    /// What went wrong.
    pub kind: SimErrorKind,
    /// The partial run report (trace, decisions, process states). Boxed
    /// so `Result<SimReport, SimError>` stays cheap to return by value.
    pub report: Box<SimReport>,
}

impl SimError {
    /// Whether this error is a deadlock.
    pub fn is_deadlock(&self) -> bool {
        matches!(self.kind, SimErrorKind::Deadlock { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            SimErrorKind::Deadlock { blocked } => {
                write!(f, "deadlock: ")?;
                let mut first = true;
                for (pid, name, reason) in blocked {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "{pid} \"{name}\" blocked on {reason}")?;
                }
                Ok(())
            }
            SimErrorKind::ProcessPanicked { pid, message } => {
                write!(f, "process {pid} panicked: {message}")
            }
            SimErrorKind::MaxStepsExceeded { limit } => {
                write!(f, "exceeded max steps ({limit}); possible livelock")
            }
        }
    }
}

impl std::error::Error for SimError {}
