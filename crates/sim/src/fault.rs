//! Deterministic fault injection: kill-points, spurious wakeups, and
//! delayed wakes.
//!
//! A [`FaultPlan`] names the faults of a run up front, in terms that are a
//! pure function of the program: the victim's *name* and a 1-based count of
//! its own scheduling points. Because the simulator's virtual time and
//! scheduling points are deterministic, the same plan plus the same policy
//! yields the identical trace on every run — a crash scenario can be
//! replayed, shrunk, and explored exactly like a schedule.
//!
//! * **Kill-points** terminate a process at its Nth scheduling point (its
//!   Nth yield/park/sleep). The victim's thread unwinds, running its RAII
//!   guards — which is how the mechanism crates release or poison whatever
//!   the victim held — and is recorded as [`crate::ProcessStatus::Killed`],
//!   distinct from a panic.
//! * **Spurious wakeups** make a park return without a matching unpark.
//!   [`crate::Ctx::park`] absorbs them transparently (re-parking), so they
//!   validate the kernel's park protocol without requiring mechanisms to
//!   carry defensive re-check loops the cooperative invariant forbids.
//! * **Delayed wakes** turn the Nth unpark of a process into a timed sleep,
//!   shifting *when* the wakee runs without changing any hand-off decision.

use crate::types::Pid;
use std::fmt;

/// Kill a named process at its `at_point`-th scheduling point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillSpec {
    /// Spawn-time name of the victim.
    pub process: String,
    /// 1-based count of the victim's own scheduling points (yields, parks,
    /// sleeps); the kill takes effect at that stop, before the victim would
    /// resume.
    pub at_point: u64,
}

/// Wake a named process spuriously at its `at_park`-th plain park.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpuriousSpec {
    /// Spawn-time name of the process to wake.
    pub process: String,
    /// 1-based count of the process's plain (untimed) parks.
    pub at_park: u64,
}

/// Delay the `at_unpark`-th unpark of a named process by `ticks`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelaySpec {
    /// Spawn-time name of the process whose wake is delayed.
    pub process: String,
    /// 1-based count of unparks delivered to the process.
    pub at_unpark: u64,
    /// Virtual-time delay applied to that wake.
    pub ticks: u64,
}

/// A deterministic schedule of faults for one simulation run.
///
/// Build with the chainable methods and install via
/// [`crate::SimConfig::faults`] or [`crate::Sim::set_fault_plan`]:
///
/// ```
/// use bloom_sim::{FaultPlan, Sim};
///
/// let mut sim = Sim::new();
/// sim.set_fault_plan(FaultPlan::new().kill("worker", 2));
/// sim.spawn("worker", |ctx| {
///     ctx.yield_now(); // scheduling point 1
///     ctx.yield_now(); // scheduling point 2: killed here
///     ctx.emit("never", &[]);
/// });
/// let report = sim.run().unwrap();
/// assert_eq!(report.killed(), vec![bloom_sim::Pid(0)]);
/// assert_eq!(report.trace.count_user("never"), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Kill-points, each fired at most once.
    pub kills: Vec<KillSpec>,
    /// Spurious wakeups, each fired at most once.
    pub spurious_wakes: Vec<SpuriousSpec>,
    /// Delayed wakes, each fired at most once.
    pub delayed_wakes: Vec<DelaySpec>,
}

impl FaultPlan {
    /// An empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a kill-point: terminate `process` at its `at_point`-th
    /// scheduling point (1-based).
    pub fn kill(mut self, process: &str, at_point: u64) -> Self {
        assert!(at_point > 0, "kill points are 1-based");
        self.kills.push(KillSpec {
            process: process.to_string(),
            at_point,
        });
        self
    }

    /// Adds a spurious wakeup at `process`'s `at_park`-th plain park
    /// (1-based).
    pub fn spurious_wake(mut self, process: &str, at_park: u64) -> Self {
        assert!(at_park > 0, "park counts are 1-based");
        self.spurious_wakes.push(SpuriousSpec {
            process: process.to_string(),
            at_park,
        });
        self
    }

    /// Delays the `at_unpark`-th unpark of `process` (1-based) by `ticks`
    /// of virtual time.
    pub fn delay_wake(mut self, process: &str, at_unpark: u64, ticks: u64) -> Self {
        assert!(at_unpark > 0, "unpark counts are 1-based");
        assert!(ticks > 0, "a zero-tick delay is not a fault");
        self.delayed_wakes.push(DelaySpec {
            process: process.to_string(),
            at_unpark,
            ticks,
        });
        self
    }

    /// Whether the plan injects no faults at all.
    pub fn is_empty(&self) -> bool {
        self.kills.is_empty() && self.spurious_wakes.is_empty() && self.delayed_wakes.is_empty()
    }
}

/// A primitive was left poisoned by a process that died inside it.
///
/// Mechanism crates return this from their checked entry points when a
/// kill-point (or panic) unwound a process that held possession; see the
/// crash-safety sections of the mechanism crates. Defined here because the
/// mechanism crates must not depend on one another.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poisoned {
    /// Diagnostic name of the poisoned primitive.
    pub primitive: String,
    /// The process whose death poisoned it.
    pub by: Pid,
}

impl fmt::Display for Poisoned {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "primitive `{}` poisoned by crashed process {}",
            self.primitive, self.by
        )
    }
}

impl std::error::Error for Poisoned {}

/// Kernel-side fault bookkeeping: the plan plus per-process counters and
/// per-spec fired flags. Lives inside the kernel's `State`.
#[derive(Debug, Default)]
pub(crate) struct FaultRuntime {
    plan: FaultPlan,
    kill_fired: Vec<bool>,
    spurious_fired: Vec<bool>,
    delay_fired: Vec<bool>,
    stops: Vec<u64>,
    parks: Vec<u64>,
    unparks: Vec<u64>,
}

impl FaultRuntime {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        FaultRuntime {
            kill_fired: vec![false; plan.kills.len()],
            spurious_fired: vec![false; plan.spurious_wakes.len()],
            delay_fired: vec![false; plan.delayed_wakes.len()],
            plan,
            stops: Vec::new(),
            parks: Vec::new(),
            unparks: Vec::new(),
        }
    }

    /// Whether any fault could still fire (cheap guard for the hot path).
    pub(crate) fn active(&self) -> bool {
        !self.plan.is_empty()
    }

    fn bump(counters: &mut Vec<u64>, pid: Pid) -> u64 {
        if counters.len() <= pid.index() {
            counters.resize(pid.index() + 1, 0);
        }
        counters[pid.index()] += 1;
        counters[pid.index()]
    }

    /// Counts a scheduling point (yield/park/sleep) of `pid`; returns
    /// whether a kill-point fires here.
    pub(crate) fn on_stop(&mut self, pid: Pid, name: &str) -> bool {
        let n = Self::bump(&mut self.stops, pid);
        for (i, k) in self.plan.kills.iter().enumerate() {
            if !self.kill_fired[i] && k.at_point == n && k.process == name {
                self.kill_fired[i] = true;
                return true;
            }
        }
        false
    }

    /// Counts a plain park of `pid`; returns whether a spurious wake fires.
    pub(crate) fn on_park(&mut self, pid: Pid, name: &str) -> bool {
        let n = Self::bump(&mut self.parks, pid);
        for (i, s) in self.plan.spurious_wakes.iter().enumerate() {
            if !self.spurious_fired[i] && s.at_park == n && s.process == name {
                self.spurious_fired[i] = true;
                return true;
            }
        }
        false
    }

    /// Counts an unpark delivered to `pid`; returns the delay in ticks if a
    /// delayed wake fires on this unpark.
    pub(crate) fn on_unpark(&mut self, pid: Pid, name: &str) -> Option<u64> {
        let n = Self::bump(&mut self.unparks, pid);
        for (i, d) in self.plan.delayed_wakes.iter().enumerate() {
            if !self.delay_fired[i] && d.at_unpark == n && d.process == name {
                self.delay_fired[i] = true;
                return Some(d.ticks);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_builder_accumulates_specs() {
        let plan = FaultPlan::new()
            .kill("a", 3)
            .spurious_wake("b", 1)
            .delay_wake("c", 2, 10);
        assert_eq!(plan.kills.len(), 1);
        assert_eq!(plan.spurious_wakes.len(), 1);
        assert_eq!(plan.delayed_wakes.len(), 1);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn runtime_fires_each_spec_once() {
        let mut rt = FaultRuntime::new(FaultPlan::new().kill("v", 2));
        assert!(!rt.on_stop(Pid(0), "v"), "point 1: no fire");
        assert!(rt.on_stop(Pid(0), "v"), "point 2: fire");
        assert!(!rt.on_stop(Pid(0), "v"), "spec is one-shot");
    }

    #[test]
    fn runtime_counts_per_process() {
        let mut rt = FaultRuntime::new(FaultPlan::new().kill("v", 2));
        assert!(!rt.on_stop(Pid(0), "other"));
        assert!(!rt.on_stop(Pid(1), "v"));
        assert!(!rt.on_stop(Pid(0), "other"), "other's points don't count");
        assert!(rt.on_stop(Pid(1), "v"), "v's own second point fires");
    }

    #[test]
    fn delay_reports_ticks() {
        let mut rt = FaultRuntime::new(FaultPlan::new().delay_wake("w", 1, 7));
        assert_eq!(rt.on_unpark(Pid(3), "w"), Some(7));
        assert_eq!(rt.on_unpark(Pid(3), "w"), None);
    }
}
