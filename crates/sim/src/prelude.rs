//! One-stop imports for simulation-driving code.
//!
//! Examples, integration tests, and benchmark binaries all want the same
//! dozen names; `use bloom_sim::prelude::*;` brings them in without a
//! wall of `use` lines. Library crates should keep importing items
//! explicitly — a glob in a library obscures where names come from.

pub use crate::{
    replay_exact, replay_prefix, retry_with_backoff, shrink_prefix, Backoff, CheckpointSpacing,
    Ctx, Deadline, Engine, ExploreConfig, ExploreStats, Explorer, FaultPlan, FifoPolicy, HeldRun,
    KillPointStats, LifoPolicy, ParallelExplorer, Pid, PruneMode, RandomPolicy, ReplayPolicy,
    RetryOutcome, RunProgress, SampleStats, SampleStrategy, Sampler, SchedPolicy, ScheduleRecord,
    Sim, SimConfig, SimError, SimReport, SplitMix64, SymValue, Time, WaitQueue,
};
