//! Seeded schedule *sampling* for trees too big to enumerate.
//!
//! The [`crate::Explorer`] family proves properties by visiting every
//! schedule; past a few processes the tree is astronomically larger than
//! any budget, and exhaustive walks stop meaning anything. [`Sampler`] is
//! the third exploration mode: draw schedules at random — but *seeded*
//! random, so every run is a pure function of `(scenario, seed)` — and
//! search for counterexamples to declared laws instead of proving their
//! absence. A sampling run that finds nothing proves nothing; what it
//! finds, however, arrives as a concrete decision vector that replays
//! exactly, shrinks to a minimal prefix, and can be handed to the strict
//! [`ReplayPolicy`] forever after.
//!
//! Two strategies:
//!
//! * [`SampleStrategy::Pct`] — probabilistic concurrency testing: each
//!   iteration assigns every process a random high priority, always runs
//!   the highest-priority runnable process, and at `change_points`
//!   pre-sampled decision depths demotes the running process below all
//!   others. PCT's guarantee is that a bug of depth *d* is found with
//!   probability ≥ 1/(n·k^(d-1)) per iteration — the change points are
//!   exactly where the sampler "spends" its depth budget, so the
//!   per-change-depth histogram ([`SampleStats::change_depths`]) shows
//!   where the budget went.
//! * [`SampleStrategy::Walk`] — swarm of independent random walks: each
//!   iteration runs under [`RandomPolicy`] with a per-iteration seed
//!   derived from the master seed. No structure, maximal diversity; the
//!   swarm complements PCT the way fuzzing complements directed search.
//!
//! Iterations are independent, so the sampler runs them on a pool of
//! worker threads that claim iteration indices from an atomic counter.
//! Every per-iteration quantity (policy seed, schedule, journal entry,
//! violation keys) is a function of the iteration index alone, and the
//! merged journal is sorted by that index — results are byte-identical
//! for every worker count, exactly like the parallel explorer's.
//!
//! Each claimed iteration executes its processes on the shared host pool
//! (DESIGN.md §2.13): `setup()` builds the [`Sim`] with the default
//! `reuse_hosts: true`, so every PCT/walk run borrows pooled host
//! threads instead of spawning one OS thread per process per iteration —
//! the same hot path the explorers use. Thread identity is unobservable
//! to the simulation, so the journals are unchanged.
//!
//! # Replay is load-bearing
//!
//! Every sampled schedule is replayable through the existing
//! decision-vector machinery: the run's [`Decision`] list fed to
//! [`ReplayPolicy::new`] reproduces it event-for-event. Unlike the
//! explorers' `debug_assert`, the sampler-side replay helpers
//! ([`replay_exact`], [`shrink_prefix`]) treat divergence as a **hard
//! error**: a counterexample that does not replay is a corrupted or stale
//! vector, and silently clamping it would report a bug that nobody can
//! ever look at. See `DESIGN.md` §2.11 for the contract.

use crate::error::SimError;
use crate::explore::{bump_depth, ExploreError, ExploreStats};
use crate::kernel::SimReport;
use crate::policy::{RandomPolicy, ReplayPolicy, SchedPolicy, SplitMix64};
use crate::sim::Sim;
use crate::trace::Decision;
use crate::types::Pid;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// How one [`Sampler`] iteration picks its schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleStrategy {
    /// Probabilistic concurrency testing: random priorities plus
    /// `change_points` priority demotions at depths sampled uniformly
    /// below `depth_hint` (an estimate of the run's contested-decision
    /// count; depths past the actual run length simply never fire).
    Pct {
        /// Priority-change points per iteration (PCT's *d − 1*).
        change_points: usize,
        /// Upper bound for sampled change depths.
        depth_hint: usize,
    },
    /// Independent seeded random walks ([`RandomPolicy`] per iteration).
    Walk,
}

/// PCT scheduling policy for one iteration (see the module docs).
///
/// Priorities are lazily assigned from the iteration's own seeded stream
/// the first time a process appears in a contested ready set — encounter
/// order is deterministic, so the whole run is. All initial priorities
/// have the top bit set; change points demote to `1, 2, …`, so a demoted
/// process ranks below every undemoted one, and earlier demotions rank
/// below later ones (the PCT ordering).
pub struct PctPolicy {
    rng: SplitMix64,
    priorities: BTreeMap<Pid, u64>,
    /// Sorted, deduplicated contested-decision depths at which to demote.
    change_at: Vec<usize>,
    next_change: usize,
    decisions: usize,
    demotions: u64,
    /// Shared per-depth histogram of fired change points (merged across
    /// a sampler's iterations; elementwise adds commute, so the merged
    /// histogram is independent of worker scheduling).
    fired: Arc<Mutex<Vec<usize>>>,
    name: String,
}

impl PctPolicy {
    /// Creates a PCT policy with its own seed and change-point budget,
    /// folding fired change depths into `fired`.
    pub fn new(
        seed: u64,
        change_points: usize,
        depth_hint: usize,
        fired: Arc<Mutex<Vec<usize>>>,
    ) -> Self {
        let mut rng = SplitMix64::new(seed);
        let mut change_at: Vec<usize> = (0..change_points)
            .map(|_| rng.next_below(depth_hint.max(1) as u64) as usize)
            .collect();
        change_at.sort_unstable();
        change_at.dedup();
        PctPolicy {
            rng,
            priorities: BTreeMap::new(),
            change_at,
            next_change: 0,
            decisions: 0,
            demotions: 0,
            fired,
            name: format!("pct(seed={seed},d={change_points})"),
        }
    }
}

impl SchedPolicy for PctPolicy {
    fn choose(&mut self, ready: &[Pid], _step: u64) -> usize {
        if ready.len() <= 1 {
            return 0;
        }
        let depth = self.decisions;
        self.decisions += 1;
        let mut best = 0usize;
        let mut best_priority = 0u64;
        for (i, pid) in ready.iter().enumerate() {
            let rng = &mut self.rng;
            let priority = *self
                .priorities
                .entry(*pid)
                .or_insert_with(|| rng.next_u64() | (1 << 63));
            if i == 0 || priority > best_priority {
                best = i;
                best_priority = priority;
            }
        }
        if self
            .change_at
            .get(self.next_change)
            .is_some_and(|&at| at == depth)
        {
            self.next_change += 1;
            self.demotions += 1;
            self.priorities.insert(ready[best], self.demotions);
            let mut fired = self.fired.lock();
            if fired.len() <= depth {
                fired.resize(depth + 1, 0);
            }
            fired[depth] += 1;
        }
        best
    }

    fn choose_data(&mut self, arity: u32, _step: u64) -> u32 {
        // Data decisions ([`crate::Ctx::choose_value`]) draw uniformly
        // from the iteration's own stream — the same source as the
        // priorities, so the whole run stays a pure function of the
        // iteration seed. Demotion depths count contested *scheduler*
        // decisions only, exactly like the explorers' revisit plan.
        if arity <= 1 {
            return 0;
        }
        self.rng.next_below(arity as u64) as u32
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// One sampled schedule's entry in the merged journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleRecord<T> {
    /// The iteration that produced this schedule (the journal is sorted
    /// by it, which is what makes the merge worker-count-independent).
    pub iteration: u64,
    /// The schedule's full decision vector (its replay coordinates).
    pub choices: Vec<u32>,
    /// Whatever the map closure produced for this schedule.
    pub value: T,
}

/// Bug-finding statistics of one sampling campaign, folded into
/// [`ExploreStats::sampling`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SampleStats {
    /// Iterations executed (equals [`ExploreStats::schedules`]).
    pub runs: usize,
    /// Violating runs per law key: how many sampled schedules violated
    /// each law at least once. `violations.len()` is the number of
    /// *distinct* violations found.
    pub violations: BTreeMap<String, u64>,
    /// First-hit iteration per law key (the lowest iteration index whose
    /// run violated the law).
    pub first_hits: BTreeMap<String, u64>,
    /// Per-depth histogram of fired PCT priority-change points:
    /// `change_depths[d]` counts demotions at contested decision `d`
    /// across all iterations. Empty for [`SampleStrategy::Walk`].
    pub change_depths: Vec<usize>,
}

impl SampleStats {
    /// Number of distinct law keys violated.
    pub fn distinct_violations(&self) -> usize {
        self.violations.len()
    }

    /// The earliest iteration that violated any law, if any did.
    pub fn first_hit(&self) -> Option<u64> {
        self.first_hits.values().copied().min()
    }

    /// Violating-run fraction for one law key.
    pub fn rate(&self, key: &str) -> f64 {
        if self.runs == 0 {
            return 0.0;
        }
        self.violations.get(key).copied().unwrap_or(0) as f64 / self.runs as f64
    }
}

/// Seeded schedule sampler: the third exploration mode, beside the serial
/// and parallel DFS explorers (see the module docs).
#[derive(Debug, Clone)]
pub struct Sampler {
    iterations: usize,
    seed: u64,
    strategy: SampleStrategy,
    threads: usize,
}

impl Sampler {
    /// Creates a PCT sampler with the default budget (3 change points,
    /// depth hint 1024) and one worker per available core (capped at 8).
    pub fn pct(iterations: usize, seed: u64) -> Self {
        Sampler {
            iterations,
            seed,
            strategy: SampleStrategy::Pct {
                change_points: 3,
                depth_hint: 1024,
            },
            threads: default_threads(),
        }
    }

    /// Creates a swarm/random-walk sampler.
    pub fn walk(iterations: usize, seed: u64) -> Self {
        Sampler {
            iterations,
            seed,
            strategy: SampleStrategy::Walk,
            threads: default_threads(),
        }
    }

    /// Overrides the strategy wholesale.
    pub fn strategy(mut self, strategy: SampleStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the PCT change-point budget (no effect on a walk sampler).
    pub fn change_points(mut self, change_points: usize) -> Self {
        if let SampleStrategy::Pct {
            depth_hint: hint, ..
        } = self.strategy
        {
            self.strategy = SampleStrategy::Pct {
                change_points,
                depth_hint: hint,
            };
        }
        self
    }

    /// Sets the PCT depth hint (no effect on a walk sampler).
    pub fn depth_hint(mut self, depth_hint: usize) -> Self {
        if let SampleStrategy::Pct { change_points, .. } = self.strategy {
            self.strategy = SampleStrategy::Pct {
                change_points,
                depth_hint,
            };
        }
        self
    }

    /// Sets the worker count (min 1). Results are identical for every
    /// worker count; this only tunes throughput.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The policy seed iteration `i` runs under: a SplitMix64-mixed
    /// function of the master seed and the index, so iterations are
    /// independent streams yet the whole campaign is one seed.
    pub fn iteration_seed(&self, iteration: u64) -> u64 {
        SplitMix64::new(
            self.seed
                .wrapping_add(iteration.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
        .next_u64()
    }

    /// Samples `iterations` schedules of the scenario produced by `setup`.
    ///
    /// `map` is invoked once per run with the decision vector taken and
    /// the outcome; it returns the journal value plus the *law keys* this
    /// run violated (empty when clean — see `bloom-core`'s law layer for
    /// the canonical producer). Violation keys feed the bug-finding
    /// statistics in [`ExploreStats::sampling`].
    ///
    /// Returns the journal sorted by iteration index together with the
    /// stats. `first_error` is the failing run with the lowest iteration
    /// index. Both are byte-identical across worker counts.
    pub fn run<S, M, T>(&self, setup: S, map: M) -> (Vec<SampleRecord<T>>, ExploreStats)
    where
        S: Fn() -> Sim + Sync,
        M: Fn(&[Decision], &Result<SimReport, SimError>) -> (T, Vec<String>) + Sync,
        T: Send,
    {
        let next = AtomicUsize::new(0);
        let fired: Arc<Mutex<Vec<usize>>> = Arc::new(Mutex::new(Vec::new()));
        let violations: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
        let first_hits: Mutex<BTreeMap<String, u64>> = Mutex::new(BTreeMap::new());
        let first_error: Mutex<Option<(u64, ExploreError)>> = Mutex::new(None);
        let journals: Mutex<Vec<Vec<SampleRecord<T>>>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let mut journal = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= self.iterations {
                            break;
                        }
                        let iteration = i as u64;
                        let mut sim = setup();
                        let iter_seed = self.iteration_seed(iteration);
                        match self.strategy {
                            SampleStrategy::Pct {
                                change_points,
                                depth_hint,
                            } => {
                                sim.set_policy(PctPolicy::new(
                                    iter_seed,
                                    change_points,
                                    depth_hint,
                                    Arc::clone(&fired),
                                ));
                            }
                            SampleStrategy::Walk => {
                                sim.set_policy(RandomPolicy::new(iter_seed));
                            }
                        }
                        let result = sim.run();
                        let decisions: &[Decision] = match &result {
                            Ok(report) => &report.decisions,
                            Err(err) => &err.report.decisions,
                        };
                        let (value, keys) = map(decisions, &result);
                        if !keys.is_empty() {
                            let mut v = violations.lock();
                            let mut f = first_hits.lock();
                            for key in &keys {
                                *v.entry(key.clone()).or_insert(0) += 1;
                                f.entry(key.clone())
                                    .and_modify(|first| *first = (*first).min(iteration))
                                    .or_insert(iteration);
                            }
                        }
                        if let Err(err) = &result {
                            let candidate = ExploreError {
                                choices: decisions.iter().map(|d| d.chosen).collect(),
                                error: err.clone(),
                            };
                            let mut slot = first_error.lock();
                            match &*slot {
                                Some((first, _)) if *first <= iteration => {}
                                _ => *slot = Some((iteration, candidate)),
                            }
                        }
                        journal.push(SampleRecord {
                            iteration,
                            choices: decisions.iter().map(|d| d.chosen).collect(),
                            value,
                        });
                    }
                    journals.lock().push(journal);
                });
            }
        });

        let mut journal: Vec<SampleRecord<T>> =
            journals.into_inner().into_iter().flatten().collect();
        journal.sort_unstable_by_key(|r| r.iteration);
        let mut depth_schedules = Vec::new();
        for r in &journal {
            bump_depth(&mut depth_schedules, r.choices.len(), 1);
        }
        let sampling = SampleStats {
            runs: journal.len(),
            violations: violations.into_inner(),
            first_hits: first_hits.into_inner(),
            change_depths: Arc::try_unwrap(fired).expect("workers joined").into_inner(),
        };
        let stats = ExploreStats {
            schedules: journal.len(),
            complete: true, // every requested iteration ran; nothing is "covered"
            depth_schedules,
            first_error: first_error.into_inner().map(|(_, e)| e),
            sampling: Some(sampling),
            ..ExploreStats::default()
        };
        (journal, stats)
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Replays a sampled decision vector **strictly** and returns the run.
///
/// Divergence — a clamped entry or a script underrun — is a **hard
/// error** (panic), not a silent fallback: a sampler counterexample that
/// no longer matches its tree is stale or corrupted, and a clamped
/// "replay" of it would exhibit some other schedule entirely. This is the
/// sampler-side mirror of the explorers' nondeterminism `debug_assert`,
/// promoted to a release-mode check because sampled vectors cross API
/// boundaries (reports, shrunk counterexamples, archived repros) where a
/// debug assert would never fire.
pub fn replay_exact(setup: impl FnOnce() -> Sim, choices: &[u32]) -> Result<SimReport, SimError> {
    let mut sim = setup();
    sim.set_policy(ReplayPolicy::new(choices.to_vec()));
    let result = sim.run();
    let metrics = match &result {
        Ok(report) => &report.metrics,
        Err(err) => &err.report.metrics,
    };
    assert!(
        !metrics.replay.diverged(),
        "sampled decision vector diverged on strict re-run ({:?}): the vector is stale \
         or the scenario is nondeterministic",
        metrics.replay
    );
    result
}

/// Replays a decision-vector *prefix* (canonical choice 0 past it) with
/// the same hard-error contract as [`replay_exact`]: clamping — the only
/// divergence a prefix replay can exhibit — panics instead of silently
/// rerouting the schedule.
pub fn replay_prefix(setup: impl FnOnce() -> Sim, prefix: &[u32]) -> Result<SimReport, SimError> {
    let mut sim = setup();
    sim.set_policy(ReplayPolicy::prefix(prefix.to_vec()));
    let result = sim.run();
    let metrics = match &result {
        Ok(report) => &report.metrics,
        Err(err) => &err.report.metrics,
    };
    assert!(
        !metrics.replay.diverged(),
        "decision-vector prefix diverged on re-run ({:?}): the vector is stale or the \
         scenario is nondeterministic",
        metrics.replay
    );
    result
}

/// Shrinks a sampled counterexample to a minimal decision-vector prefix.
///
/// `fails` is the oracle: it must return `true` for the outcome of the
/// full vector (asserted), and the shrinker searches for the shortest
/// prefix whose replay (canonical choice 0 past the prefix, via
/// [`replay_prefix`] — hard error on divergence) still fails it. The
/// result is minimal in the shrink order: it fails, and dropping its last
/// decision no longer fails — the property-testing notion of a local
/// minimum. Trailing canonical zeros are always dropped first (a prefix
/// replay supplies them anyway), then a bisection finds the failure
/// boundary and a downward walk certifies minimality.
pub fn shrink_prefix<S, F>(mut setup: S, choices: &[u32], mut fails: F) -> Vec<u32>
where
    S: FnMut() -> Sim,
    F: FnMut(&Result<SimReport, SimError>) -> bool,
{
    let mut probe =
        |setup: &mut S, prefix: &[u32]| -> bool { fails(&replay_prefix(&mut *setup, prefix)) };
    let mut vector = choices.to_vec();
    while vector.last() == Some(&0) {
        vector.pop();
    }
    assert!(
        probe(&mut setup, &vector),
        "counterexample does not reproduce under prefix replay; nothing to shrink"
    );
    // Bisect on prefix length, maintaining "hi fails". Failure need not be
    // monotone in the prefix length, so the bisection only localises a
    // boundary; the downward walk below establishes the local minimum.
    let (mut lo, mut hi) = (0usize, vector.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(&mut setup, &vector[..mid]) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    let mut len = hi;
    while len > 0 && probe(&mut setup, &vector[..len - 1]) {
        len -= 1;
    }
    vector.truncate(len);
    debug_assert!(probe(&mut setup, &vector));
    vector
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::waitq::WaitQueue;
    use std::collections::BTreeSet;

    fn three_emitters() -> Sim {
        let mut sim = Sim::new();
        for i in 0..3 {
            sim.spawn(&format!("p{i}"), move |ctx| {
                ctx.yield_now();
                ctx.emit("go", &[i]);
            });
        }
        sim
    }

    /// Wake-before-wait loses the wakeup: some schedules deadlock.
    fn racy_gate() -> Sim {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("gate"));
        let q2 = Arc::clone(&q);
        sim.spawn("waiter", move |ctx| q2.wait(ctx));
        let q3 = Arc::clone(&q);
        sim.spawn("waker", move |ctx| {
            q3.wake_one(ctx);
        });
        sim
    }

    fn journal_of(sampler: &Sampler) -> (Vec<SampleRecord<Vec<i64>>>, ExploreStats) {
        sampler.run(three_emitters, |_, result| {
            let Ok(report) = result else {
                return (Vec::new(), vec!["failed".into()]);
            };
            (
                report
                    .trace
                    .user_events()
                    .map(|(_, _, params)| params[0])
                    .collect(),
                Vec::new(),
            )
        })
    }

    #[test]
    fn same_seed_same_journal_across_worker_counts() {
        for strategy in [
            SampleStrategy::Pct {
                change_points: 2,
                depth_hint: 16,
            },
            SampleStrategy::Walk,
        ] {
            let base = Sampler::walk(40, 7).strategy(strategy).threads(1);
            let (reference, ref_stats) = journal_of(&base);
            assert_eq!(reference.len(), 40);
            for threads in [2, 4, 8] {
                let (journal, stats) = journal_of(&base.clone().threads(threads));
                assert_eq!(
                    journal, reference,
                    "{strategy:?} journal at {threads} workers"
                );
                assert_eq!(stats.schedules, ref_stats.schedules);
                assert_eq!(stats.depth_schedules, ref_stats.depth_schedules);
                assert_eq!(stats.sampling, ref_stats.sampling);
            }
        }
    }

    #[test]
    fn different_seeds_sample_different_schedules() {
        let (a, _) = journal_of(&Sampler::walk(30, 1).threads(2));
        let (b, _) = journal_of(&Sampler::walk(30, 2).threads(2));
        assert_ne!(
            a.iter().map(|r| &r.choices).collect::<Vec<_>>(),
            b.iter().map(|r| &r.choices).collect::<Vec<_>>(),
        );
        let distinct: BTreeSet<&Vec<i64>> = a.iter().map(|r| &r.value).collect();
        assert!(distinct.len() > 1, "a swarm must not sample one schedule");
    }

    #[test]
    fn violations_first_hits_and_first_error_are_recorded() {
        let (journal, stats) = Sampler::walk(50, 11)
            .threads(4)
            .run(racy_gate, |_, result| {
                let keys = if result.is_err() {
                    vec!["no-deadlock".to_string()]
                } else {
                    Vec::new()
                };
                (result.is_ok(), keys)
            });
        let sampling = stats.sampling.as_ref().expect("sampler stats present");
        assert_eq!(sampling.runs, 50);
        let hits = sampling.violations.get("no-deadlock").copied().unwrap_or(0);
        assert!(hits > 0, "the lost-wakeup deadlock must be sampled");
        assert!(hits < 50, "some schedules must succeed");
        let first = sampling.first_hits["no-deadlock"];
        assert_eq!(Some(first), sampling.first_hit());
        let first_failing = journal
            .iter()
            .find(|r| !r.value)
            .expect("a failing run is journaled");
        assert_eq!(first_failing.iteration, first);
        let err = stats.first_error.expect("failure propagated");
        assert_eq!(err.choices, first_failing.choices);
        assert!(err.error.is_deadlock());
        assert!(sampling.rate("no-deadlock") > 0.0);
    }

    #[test]
    fn pct_change_depth_histogram_is_populated() {
        let (_, stats) = Sampler::pct(20, 3)
            .change_points(2)
            .depth_hint(4)
            .run(three_emitters, |_, _| ((), Vec::new()));
        let sampling = stats.sampling.expect("pct stats");
        assert!(
            sampling.change_depths.iter().sum::<usize>() > 0,
            "with depth hint 4 on a deeper tree, change points must fire"
        );
        assert!(sampling.change_depths.len() <= 4, "depths bounded by hint");
    }

    #[test]
    fn sampled_schedules_replay_exactly() {
        let (journal, _) = Sampler::pct(10, 5).run(three_emitters, |_, result| {
            let report = result.as_ref().expect("no failure possible");
            (
                report
                    .trace
                    .user_events()
                    .map(|(_, _, p)| p[0])
                    .collect::<Vec<i64>>(),
                Vec::new(),
            )
        });
        for record in &journal {
            let report = replay_exact(three_emitters, &record.choices).expect("clean replay");
            let order: Vec<i64> = report.trace.user_events().map(|(_, _, p)| p[0]).collect();
            assert_eq!(order, record.value, "replay must reproduce the schedule");
        }
    }

    /// One process races a data choice against an emitter: vectors mix
    /// `Sched` and `Data` decisions.
    fn chooser_pair() -> Sim {
        let mut sim = Sim::new();
        sim.spawn("chooser", |ctx| {
            ctx.yield_now();
            let v = ctx.choose_value("v", 0..4);
            ctx.emit("chose", &[v.get()]);
        });
        sim.spawn("other", |ctx| {
            ctx.yield_now();
            ctx.emit("other", &[]);
        });
        sim
    }

    #[test]
    fn samplers_draw_data_choices_and_replay_them() {
        for sampler in [Sampler::pct(30, 9).depth_hint(4), Sampler::walk(30, 9)] {
            let (journal, _) = sampler.run(chooser_pair, |_, result| {
                let report = result.as_ref().expect("no failure possible");
                let value = report
                    .trace
                    .user_events()
                    .find(|(_, label, _)| *label == "chose")
                    .map(|(_, _, p)| p[0])
                    .expect("chooser ran");
                (value, Vec::new())
            });
            let distinct: BTreeSet<i64> = journal.iter().map(|r| r.value).collect();
            assert!(
                distinct.len() > 1,
                "{} iterations must sample more than one data value",
                journal.len()
            );
            for record in &journal {
                let report = replay_exact(chooser_pair, &record.choices).expect("clean replay");
                let replayed = report
                    .trace
                    .user_events()
                    .find(|(_, label, _)| *label == "chose")
                    .map(|(_, _, p)| p[0]);
                assert_eq!(replayed, Some(record.value), "replay reproduces the value");
            }
        }
    }

    #[test]
    #[should_panic(expected = "diverged on strict re-run")]
    fn stale_vector_is_a_hard_error() {
        // 9 can never be a valid choice in a 3-process scenario: strict
        // replay must fail loudly, not clamp.
        let _ = replay_exact(three_emitters, &[9, 9, 9]);
    }

    #[test]
    fn shrink_finds_a_locally_minimal_failing_prefix() {
        // Find a failing schedule by sampling, then shrink it.
        let (_, stats) = Sampler::walk(50, 11).run(racy_gate, |_, result| {
            (
                (),
                if result.is_err() {
                    vec!["dl".into()]
                } else {
                    vec![]
                },
            )
        });
        let full = stats.first_error.expect("deadlock sampled").choices;
        let shrunk = shrink_prefix(racy_gate, &full, |r| r.is_err());
        assert!(shrunk.len() <= full.len());
        assert!(
            replay_prefix(racy_gate, &shrunk).is_err(),
            "shrunk prefix must still deadlock"
        );
        if !shrunk.is_empty() {
            assert!(
                replay_prefix(racy_gate, &shrunk[..shrunk.len() - 1]).is_ok(),
                "dropping the last decision must lose the failure (local minimum)"
            );
        }
    }

    #[test]
    #[should_panic(expected = "does not reproduce")]
    fn shrink_rejects_a_vector_that_does_not_fail() {
        // The canonical schedule of the gate scenario succeeds (waiter
        // parks first), so an all-zero "counterexample" reproduces nothing.
        let _ = shrink_prefix(racy_gate, &[0, 0, 0], |r| r.is_err());
    }
}
