//! The simulation kernel: process table, ready list, timers, and the
//! scheduler loop that enforces the one-running-process invariant.

use crate::baton::{Baton, Go, Report};
use crate::ctx::Ctx;
use crate::error::{SimError, SimErrorKind};
use crate::fault::FaultRuntime;
use crate::footprint::{merge_access, Access, Footprint, ObjId, QuantumRecord};
use crate::metrics::{PidMetrics, SimMetrics};
use crate::policy::{FifoPolicy, SchedPolicy};
use crate::pool::{self, Job, PendingJob};
use crate::sim::SimConfig;
use crate::trace::{Decision, EventKind, Trace};
use crate::types::{Pid, Time};
use parking_lot::{Condvar, Mutex};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Lifecycle state of a simulated process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProcessStatus {
    /// Runnable, waiting to be dispatched.
    Ready,
    /// Currently holding the CPU.
    Running,
    /// Parked on a wait queue.
    Blocked { reason: String },
    /// Sleeping until a virtual-time deadline.
    Sleeping { until: Time },
    /// Closure returned normally.
    Finished,
    /// Closure panicked.
    Panicked { message: String },
    /// Daemon cancelled at shutdown.
    Cancelled,
    /// Terminated by a fault-plan kill-point (see [`crate::FaultPlan`]).
    /// Distinct from [`ProcessStatus::Panicked`]: a kill is an injected
    /// fault, not a bug in the process closure.
    Killed,
}

impl ProcessStatus {
    /// Whether the process still exists (has not finished or died).
    pub fn is_live(&self) -> bool {
        matches!(
            self,
            ProcessStatus::Ready
                | ProcessStatus::Running
                | ProcessStatus::Blocked { .. }
                | ProcessStatus::Sleeping { .. }
        )
    }
}

/// What a pending timer does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum TimerKind {
    /// Wake a sleeping process.
    Sleep,
    /// Wake a process parked with a timeout, if it is still parked in the
    /// same park "generation" (the token detects staleness).
    ParkTimeout { token: u64 },
}

/// Per-process bookkeeping.
pub(crate) struct ProcSlot {
    pub name: String,
    pub daemon: bool,
    pub status: ProcessStatus,
    pub baton: Arc<Baton<Go>>,
    /// The process body, queued until the kernel first dispatches this
    /// process: the first dispatch hands it to a pooled host thread (see
    /// [`crate::pool`]) instead of sending `Go::Run`. `None` once
    /// dispatched — and always `None` in legacy mode
    /// ([`SimConfig::reuse_hosts`]` == false`), where a dedicated thread
    /// is spawned eagerly and waits on the baton as the seed kernel did.
    pub pending: Option<PendingJob>,
    /// Incremented at every park; timeout timers carry the token of the
    /// park they belong to so stale timers are ignored.
    pub park_token: u64,
    /// Set when the last park ended by timeout rather than unpark.
    pub timed_out: bool,
    /// Set when a fault-plan spurious wake made this process runnable
    /// without a matching unpark; [`Ctx::park`] absorbs it by re-parking.
    pub spurious_wake: bool,
    /// Start of the current *wait episode* for the starvation watchdog:
    /// `(reason, first park time)`. Re-parking on the same reason (the
    /// re-contend loop of a weak semaphore, a Mesa-style recheck) keeps the
    /// episode open, so barging starvation accumulates age even though each
    /// individual park is short. Any other stop — a yield, a sleep, a park
    /// on a different queue, finishing — closes the episode.
    pub wait_started: Option<(String, Time)>,
    /// Whether the watchdog has already flagged the current wait episode
    /// (each episode is flagged at most once).
    pub starvation_flagged: bool,
    /// When the process last became `Blocked`, for the blocked-time metric
    /// ([`crate::PidMetrics::blocked_ticks`]). Metrics bookkeeping only —
    /// never consulted by scheduling decisions.
    pub blocked_since: Option<Time>,
}

/// All mutable kernel state, guarded by one mutex.
pub(crate) struct State {
    pub procs: Vec<ProcSlot>,
    /// Runnable pids in enqueue order (index 0 waited longest).
    pub ready: Vec<Pid>,
    /// Timers: `(deadline, tiebreak, pid, kind)` min-heap.
    pub timers: BinaryHeap<Reverse<(Time, u64, Pid, TimerKind)>>,
    pub timer_tiebreak: u64,
    pub clock: Time,
    pub step: u64,
    pub running: Option<Pid>,
    pub trace: Trace,
    pub decisions: Vec<Decision>,
    pub record_sched_events: bool,
    /// Fault-plan bookkeeping (counters and fired flags).
    pub faults: FaultRuntime,
    /// Wait episodes flagged by the starvation watchdog, in flag order.
    pub starvation: Vec<StarvationFlag>,
    /// Victims aborted by deadlock recovery, in abort order.
    pub recovered: Vec<Pid>,
    /// Whether the run has stayed within the contract of the explorers'
    /// equivalence prune. Commuting a pure quantum across its siblings
    /// shifts the virtual times of the events in between by one tick, so
    /// anything time-sensitive voids the prune: setting any timer, reading
    /// the clock from a process ([`Ctx::now`]), injecting faults, or
    /// running the starvation watchdog clears this flag, and `snapshot`
    /// then strips the `pure` bit from every recorded decision.
    pub prune_safe: bool,
    /// Run-anatomy counters (see [`SimMetrics`]). Strictly
    /// non-authoritative: written throughout the run, read only by
    /// `snapshot`.
    pub metrics: SimMetrics,
    /// The previously dispatched pid, for the context-switch count.
    /// Metrics bookkeeping only.
    pub last_dispatched: Option<Pid>,
    /// Object accesses reported for the *current* quantum via
    /// [`Ctx::note_sync_obj`]; drained into a [`QuantumRecord`] when the
    /// quantum ends, cleared at each dispatch. (The coarse companion bits
    /// live in [`Shared::quantum_dirty`]/[`Shared::quantum_all`], which
    /// processes can set without taking this lock.)
    pub quantum_objs: BTreeMap<ObjId, Access>,
    /// The per-dispatch footprint log (see [`SimReport::quanta`]).
    pub quanta: Vec<QuantumRecord>,
    /// Whether to record `quanta`. On by default; the explorers force it
    /// on when their object-granular prune is enabled.
    pub record_quanta: bool,
    /// The scheduling policy consulted at contested dispatches. Lives in
    /// the kernel state rather than the [`crate::Sim`] builder so a held
    /// run can retarget its replay script between drives (see
    /// [`crate::HeldRun`]).
    pub policy: Box<dyn SchedPolicy>,
    /// Copied from [`SimConfig::max_steps`] at construction.
    pub max_steps: u64,
    /// Copied from [`SimConfig::starvation_bound`]; kept in sync by
    /// [`crate::Sim::set_starvation_bound`].
    pub starvation_bound: Option<u64>,
    /// Copied from [`SimConfig::deadlock_recovery`]; kept in sync by
    /// [`crate::Sim::enable_deadlock_recovery`].
    pub deadlock_recovery: bool,
    /// Copied from [`SimConfig::reuse_hosts`] at construction.
    pub reuse_hosts: bool,
    /// The active [`drive`] call's pause budget, stored in state (rather
    /// than on the scheduler loop's stack) so the inline continuation path
    /// can honor held-run pause points too.
    pub pause_at: Option<usize>,
    /// Whether the quantum currently holding the CPU came from a
    /// *contested* dispatch. Set by `pick_and_dispatch`, consumed by
    /// `account_stop` — kernel state rather than a scheduler-loop local so
    /// phase 3 can run on whichever thread the quantum stopped on.
    pub cur_decided: bool,
    /// Index (into `decisions`) of the current quantum's scheduling
    /// decision when it was contested. `decisions.last_mut()` is *not*
    /// equivalent: a data decision ([`Ctx::choose_value`]) recorded
    /// mid-quantum appends after the dispatch's entry, so purity
    /// classification must address the dispatch decision by index.
    pub cur_sched_decision: Option<usize>,
    /// One record per [`Ctx::choose_value`] call with a contested domain,
    /// in call order: the k-th entry describes the k-th `Data`-kind entry
    /// of `decisions`. Drained into [`SimReport::data_choices`].
    pub data_choices: Vec<crate::symbolic::DataChoice>,
    /// The candidate list of the current quantum's contested dispatch
    /// (`None` for forced dispatches or when `record_quanta` is off).
    /// Same lifecycle as `cur_decided`.
    pub cur_ready: Option<Vec<Pid>>,
}

impl State {
    pub(crate) fn new(cfg: &SimConfig, faults: FaultRuntime) -> Self {
        // Capacity hints sized for the explorers' workloads: hundreds of
        // thousands of short runs, where the first few doublings of each
        // per-run vector are measurable.
        State {
            procs: Vec::with_capacity(8),
            ready: Vec::with_capacity(8),
            timers: BinaryHeap::new(),
            timer_tiebreak: 0,
            clock: Time::ZERO,
            step: 0,
            running: None,
            trace: Trace::new(),
            decisions: Vec::with_capacity(32),
            record_sched_events: cfg.record_sched_events,
            faults,
            starvation: Vec::new(),
            recovered: Vec::new(),
            prune_safe: true,
            metrics: SimMetrics::default(),
            last_dispatched: None,
            quantum_objs: BTreeMap::new(),
            quanta: Vec::with_capacity(32),
            record_quanta: cfg.record_quanta,
            policy: Box::new(FifoPolicy),
            max_steps: cfg.max_steps,
            starvation_bound: cfg.starvation_bound,
            deadlock_recovery: cfg.deadlock_recovery,
            reuse_hosts: cfg.reuse_hosts,
            pause_at: None,
            cur_decided: false,
            cur_sched_decision: None,
            cur_ready: None,
            data_choices: Vec::new(),
        }
    }

    /// Closes the pid's blocked episode (if one is open) and adds its
    /// duration to the blocked-time metric. Called wherever a process
    /// stops being `Blocked`: unpark delivery, park-timeout fire, abort,
    /// spurious wake, and end-of-run finalization.
    pub(crate) fn settle_blocked_time(&mut self, pid: Pid) {
        if let Some(since) = self.procs[pid.index()].blocked_since.take() {
            self.metrics.per_pid[pid.index()].blocked_ticks += self.clock.0 - since.0;
        }
    }
}

/// One wait episode flagged by the kernel starvation watchdog: the process
/// had been waiting longer than [`crate::SimConfig::starvation_bound`]
/// quanta while other processes kept being dispatched (a bounded-bypass
/// violation, measured in the kernel rather than per-checker).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StarvationFlag {
    /// The starved process.
    pub pid: Pid,
    /// Its spawn-time name.
    pub name: String,
    /// What it was waiting on (the park reason).
    pub reason: String,
    /// When the wait episode began.
    pub since: Time,
    /// When the watchdog flagged it.
    pub flagged_at: Time,
    /// `flagged_at - since`, for convenience.
    pub age: u64,
}

/// State shared between the scheduler thread and all process threads.
pub(crate) struct Shared {
    pub state: Mutex<State>,
    /// The scheduler's inbox: the running process reports here when it stops.
    pub sched_baton: Baton<Report>,
    /// Global ticket dispenser used by wait queues for FIFO ordering.
    pub tickets: AtomicU64,
    /// Set by every [`Ctx`] operation with an observable effect (and by
    /// [`Ctx::note_sync`], through which the mechanism crates report state
    /// accesses the kernel cannot see). The scheduler clears it at each
    /// dispatch and reads it back when the quantum ends, classifying the
    /// quantum as pure or not — see [`crate::Decision::pure`].
    pub quantum_dirty: AtomicBool,
    /// Set by [`Ctx::note_sync`] (the conservative fallback of the
    /// footprint contract): the current quantum may have touched *any*
    /// object, so its footprint is [`Footprint::All`] regardless of what
    /// [`State::quantum_objs`] collected. Cleared at each dispatch.
    pub quantum_all: AtomicBool,
    /// Set (before any cancellation) when the run is shutting down. Unwind
    /// guards in the mechanism crates consult this via
    /// [`Ctx::cancelling`]: a shutdown unwind is not a crash, and multiple
    /// threads unwind concurrently then, so guards must not touch shared
    /// state or the trace.
    pub cancelling: AtomicBool,
    /// Every [`crate::WaitQueue`] that has ever enqueued a process in this
    /// simulation registers its cell here (see `WaitQueue::bind`). At the
    /// end of a non-panicked run, after shutdown unwinds have dequeued all
    /// cancelled waiters, a debug assertion checks that every registered
    /// queue is empty — catching mechanisms whose timed paths leak a stale
    /// registration after `park_timeout` returns `false`.
    pub queues: Mutex<Vec<Arc<crate::waitq::QueueCell>>>,
    /// Count of *started* process bodies that have not yet returned or
    /// finished unwinding, with [`Shared::jobs_cv`] signalled when it hits
    /// zero. This gate replaces the seed's per-thread joins: `shutdown`
    /// waits on it so cancellation unwinds are complete (and pooled hosts
    /// released) before the report is snapshotted.
    pub jobs: Mutex<usize>,
    pub jobs_cv: Condvar,
    /// Whether the *inline continuation* fast path is armed for the active
    /// [`drive`] call: a stopping process runs phase 3 and the common case
    /// of phase 1 itself (see [`stop_process`]) instead of waking the
    /// scheduler loop, halving the context switches per quantum. Armed
    /// only when pooled hosts are in use and neither fault injection nor
    /// the starvation watchdog is active — those paths need the scheduler
    /// loop's hand-shakes, and legacy mode (`reuse_hosts == false`) keeps
    /// the seed protocol as the honest exploration baseline.
    pub inline: AtomicBool,
}

impl Shared {
    pub(crate) fn new(cfg: &SimConfig, faults: FaultRuntime) -> Arc<Self> {
        Arc::new(Shared {
            state: Mutex::new(State::new(cfg, faults)),
            sched_baton: Baton::new(),
            tickets: AtomicU64::new(0),
            quantum_dirty: AtomicBool::new(false),
            quantum_all: AtomicBool::new(false),
            cancelling: AtomicBool::new(false),
            queues: Mutex::new(Vec::new()),
            jobs: Mutex::new(0),
            jobs_cv: Condvar::new(),
            inline: AtomicBool::new(false),
        })
    }

    /// Draws a fresh, strictly increasing ticket.
    pub(crate) fn fresh_ticket(&self) -> u64 {
        self.tickets.fetch_add(1, Ordering::Relaxed)
    }

    /// Raises the job gate for one started process body.
    pub(crate) fn job_begin(&self) {
        *self.jobs.lock() += 1;
    }

    /// Lowers the job gate; wakes [`Shared::wait_jobs`] waiters at zero.
    pub(crate) fn job_done(&self) {
        let mut jobs = self.jobs.lock();
        *jobs -= 1;
        if *jobs == 0 {
            self.jobs_cv.notify_all();
        }
    }

    /// Blocks until every started process body has returned or unwound.
    pub(crate) fn wait_jobs(&self) {
        let mut jobs = self.jobs.lock();
        while *jobs > 0 {
            self.jobs_cv.wait(&mut jobs);
        }
    }

    /// Registers a new process (from the builder or a running process).
    ///
    /// In the default pooled mode the body is queued in the slot and no
    /// thread is touched until the process is first dispatched (so a
    /// simulation that is built but never run engages no host at all). In
    /// legacy mode (`reuse_hosts == false`) a dedicated thread is spawned
    /// eagerly, exactly as the seed kernel did, and idles on the baton
    /// until first dispatched — kept as the honest baseline for the
    /// exploration benchmarks.
    pub(crate) fn spawn_process<F>(self: &Arc<Self>, name: &str, daemon: bool, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let baton = Arc::new(Baton::new());
        let mut body: Option<PendingJob> = Some(Box::new(f));
        let pid;
        {
            let mut st = self.state.lock();
            pid = Pid(st.procs.len() as u32);
            let pending = if st.reuse_hosts { body.take() } else { None };
            st.procs.push(ProcSlot {
                name: name.to_string(),
                daemon,
                status: ProcessStatus::Ready,
                baton: Arc::clone(&baton),
                pending,
                park_token: 0,
                timed_out: false,
                spurious_wake: false,
                wait_started: None,
                starvation_flagged: false,
                blocked_since: None,
            });
            st.metrics.per_pid.push(PidMetrics::default());
            st.ready.push(pid);
            let clock = st.clock;
            st.trace.push(
                clock,
                pid,
                EventKind::Spawned {
                    name: name.to_string(),
                    daemon,
                },
            );
        }
        if let Some(f) = body {
            // Legacy eager spawn. The gate rises at spawn time (the thread
            // exists now) and falls when `legacy_process_main` returns,
            // cancellation included.
            self.job_begin();
            let shared = Arc::clone(self);
            std::thread::Builder::new()
                .name(format!("sim-{name}"))
                .spawn(move || legacy_process_main(shared, pid, baton, f))
                .expect("failed to spawn simulator process thread");
        }
        pid
    }
}

/// Marker payload used to unwind a process thread cleanly at shutdown.
struct Cancelled;

/// Marker payload used to unwind a process thread at a fault-plan
/// kill-point. Unlike [`Cancelled`], the scheduler *is* waiting for the
/// unwind to complete (guards may release or poison primitives) and the
/// process is recorded as [`ProcessStatus::Killed`].
struct KilledMarker;

/// Marker payload used to unwind a deadlock-recovery victim. Identical in
/// mechanics to [`KilledMarker`] — the scheduler waits for the unwind, drop
/// guards roll registrations back — but the process is recorded as
/// [`ProcessStatus::Cancelled`]: an abort is a recovery action, not a crash.
struct AbortedMarker;

/// Entry point of a legacy (`reuse_hosts == false`) per-process thread:
/// the seed protocol, waiting on the baton for its first command.
fn legacy_process_main(shared: Arc<Shared>, pid: Pid, baton: Arc<Baton<Go>>, f: PendingJob) {
    match baton.take() {
        Go::Cancel => {}
        Go::Run => run_process(&shared, pid, f),
        // A kill-point counts scheduling points, and a process that has
        // never run has none, so a kill cannot be its first command.
        Go::Kill => unreachable!("kill delivered to a never-dispatched process"),
        // Deadlock recovery only aborts *blocked* processes, which have run.
        Go::Abort => unreachable!("abort delivered to a never-dispatched process"),
    }
    shared.job_done();
}

/// Runs one process body to completion on the current thread — a pooled
/// host (see [`crate::pool`]) or a legacy per-process thread — and reports
/// how it ended. The caller has already been dispatched: unlike the seed
/// protocol there is no initial `Go::Run` wait in the pooled path (the job
/// handoff *is* the first dispatch).
pub(crate) fn run_process(shared: &Arc<Shared>, pid: Pid, f: PendingJob) {
    let ctx = Ctx::new(Arc::clone(shared), pid);
    let result = catch_unwind(AssertUnwindSafe(|| f(&ctx)));
    match result {
        Ok(()) => {
            // Finished goes through `stop_process` so the inline
            // continuation path can account the finish and dispatch the
            // next process without bouncing through the scheduler loop.
            match stop_process(shared, pid, Report::Finished) {
                StopOutcome::Handed => {}
                StopOutcome::SelfResume => {
                    unreachable!("a finished process cannot be re-picked")
                }
            }
        }
        Err(payload) => {
            if payload.is::<Cancelled>() {
                // Shutdown unwind: the scheduler is not waiting for a report.
                return;
            }
            if payload.is::<KilledMarker>() {
                // Kill-point unwind complete (all drop guards have run);
                // the scheduler is blocked waiting for exactly this report.
                shared.sched_baton.put(Report::Killed);
                return;
            }
            if payload.is::<AbortedMarker>() {
                // Deadlock-recovery unwind complete; the scheduler is
                // blocked waiting for exactly this report.
                shared.sched_baton.put(Report::Aborted);
                return;
            }
            let message = panic_message(payload);
            shared.sched_baton.put(Report::Panicked { pid, message });
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Called from [`Ctx::park`]: unwinds the process thread if cancelled or
/// killed.
pub(crate) fn obey(go: Go) {
    match go {
        Go::Run => {}
        // `resume_unwind` (not `panic_any`) so the panic hook stays silent:
        // neither cancellation nor an injected kill is an error.
        Go::Cancel => std::panic::resume_unwind(Box::new(Cancelled)),
        Go::Kill => std::panic::resume_unwind(Box::new(KilledMarker)),
        Go::Abort => std::panic::resume_unwind(Box::new(AbortedMarker)),
    }
}

/// Summary of one process at the end of a run.
#[derive(Debug, Clone)]
pub struct ProcessSummary {
    /// The process id.
    pub pid: Pid,
    /// The name given at spawn time.
    pub name: String,
    /// Whether the process was a daemon.
    pub daemon: bool,
    /// Final status.
    pub status: ProcessStatus,
}

/// Everything recorded about one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The full ordered event log.
    pub trace: Trace,
    /// Every contested scheduling decision, in order (replay coordinates).
    pub decisions: Vec<Decision>,
    /// Number of dispatches performed.
    pub steps: u64,
    /// Virtual time at which the run ended.
    pub final_time: Time,
    /// Final status of every process.
    pub processes: Vec<ProcessSummary>,
    /// Wait episodes flagged by the starvation watchdog (empty unless
    /// [`crate::SimConfig::starvation_bound`] was set), in flag order.
    pub starvation: Vec<StarvationFlag>,
    /// Victims aborted by deadlock recovery (empty unless
    /// [`crate::SimConfig::deadlock_recovery`] was enabled), in abort
    /// order. These processes end with status
    /// [`ProcessStatus::Cancelled`], not [`ProcessStatus::Killed`].
    pub recovered: Vec<Pid>,
    /// Whether the run stayed within the contract of the explorers'
    /// equivalence prune (no timers, no process-visible clock reads, no
    /// faults, no starvation watchdog). When `false`, every
    /// [`Decision::pure`] bit has been forced to `false`, so explorers need
    /// not consult this field separately.
    pub prune_safe: bool,
    /// Run-anatomy counters (dispatches, parks/wakes by reason, queue
    /// high-water marks, per-mechanism sync ops, replay divergence).
    /// Strictly non-authoritative: recorded on every run, never consulted
    /// by scheduling. See [`SimMetrics`] and [`crate::export`].
    pub metrics: SimMetrics,
    /// Per-dispatch access footprints in dispatch order (empty when
    /// [`crate::SimConfig::record_quanta`] is off). Records whose `ready`
    /// is `Some` align 1:1 with the `Sched`-kind entries of `decisions`
    /// (data decisions happen *inside* a quantum and have no record of
    /// their own); when the run was not `prune_safe`, every footprint has
    /// been forced to [`Footprint::All`] so the explorers' dependency
    /// analysis can never act on footprints a timer or fault may have
    /// invalidated.
    pub quanta: Vec<QuantumRecord>,
    /// One record per contested [`crate::Ctx::choose_value`] call, in call
    /// order: the k-th entry describes the k-th `Data`-kind entry of
    /// `decisions` — its label, domain, the value taken, and every
    /// comparison the run made against the drawn [`crate::SymValue`].
    /// The revisit explorer partitions each domain by these constraint
    /// outcomes to collapse equivalent valuations (DESIGN.md §2.15).
    pub data_choices: Vec<crate::symbolic::DataChoice>,
}

impl SimReport {
    /// The name of the process with the given pid.
    pub fn name_of(&self, pid: Pid) -> &str {
        &self.processes[pid.index()].name
    }

    /// Pids of processes terminated by fault-plan kill-points, in pid order.
    pub fn killed(&self) -> Vec<Pid> {
        self.processes
            .iter()
            .filter(|p| p.status == ProcessStatus::Killed)
            .map(|p| p.pid)
            .collect()
    }
}

fn snapshot(st: &mut State) -> SimReport {
    let mut decisions = std::mem::take(&mut st.decisions);
    let mut quanta = std::mem::take(&mut st.quanta);
    if !st.prune_safe {
        // A pure quantum commutes with its siblings only up to a one-tick
        // shift of the intervening virtual times; once anything in the run
        // was time-sensitive, no decision may be treated as prunable.
        for d in &mut decisions {
            d.pure = false;
        }
        // Same hardening for the footprint log: timers and faults act
        // outside any quantum, so recorded footprints understate what a
        // quantum's reordering could perturb. Forcing them to `All` makes
        // the explorers' sleep-set analysis self-disable for this run.
        for q in &mut quanta {
            q.footprint = Footprint::All;
        }
    }
    // Metrics finalization: close the blocked episodes of processes that
    // never woke (deadlock victims, shutdown-cancelled waiters) and read
    // the policy's replay-divergence verdict.
    let still_blocked: Vec<Pid> = st
        .procs
        .iter()
        .enumerate()
        .filter(|(_, p)| matches!(p.status, ProcessStatus::Blocked { .. }))
        .map(|(i, _)| Pid(i as u32))
        .collect();
    for pid in still_blocked {
        st.settle_blocked_time(pid);
    }
    st.metrics.replay = st.policy.replay_divergence().unwrap_or_default();
    // Release the policy on *this* thread, now that the run is over and it
    // can never be consulted again. The kernel state itself is freed when
    // the last `Arc<Shared>` drops, which can be a beat later on a pooled
    // host thread (it holds its job's Arc until after it lowers the job
    // gate) — and policies may own caller-visible resources (e.g. the PCT
    // sampler's shared change-depth histogram) whose release callers
    // rightly expect to have happened once the run returns.
    st.policy = Box::new(FifoPolicy);
    SimReport {
        trace: std::mem::take(&mut st.trace),
        decisions,
        steps: st.step,
        final_time: st.clock,
        processes: st
            .procs
            .iter()
            .map(|p| ProcessSummary {
                pid: Pid(0), // patched below
                name: p.name.clone(),
                daemon: p.daemon,
                status: p.status.clone(),
            })
            .enumerate()
            .map(|(i, mut s)| {
                s.pid = Pid(i as u32);
                s
            })
            .collect(),
        starvation: std::mem::take(&mut st.starvation),
        recovered: std::mem::take(&mut st.recovered),
        prune_safe: st.prune_safe,
        metrics: std::mem::take(&mut st.metrics),
        quanta,
        data_choices: std::mem::take(&mut st.data_choices),
    }
}

/// What one [`drive`] call produced.
pub(crate) enum DriveOutcome {
    /// The run reached `pause_at` contested decisions and is parked at the
    /// next contested dispatch, nothing mutated for it yet: a frozen,
    /// resumable snapshot (see [`crate::HeldRun`]).
    Paused,
    /// The run finished (boxed: a report is large, a pause is nothing).
    Done(Box<Result<SimReport, SimError>>),
}

/// Result of the phase-1 dispatch tail ([`pick_and_dispatch`]).
enum Picked {
    /// The pause hook fired: `pause_at` contested decisions reached and
    /// nothing mutated for the next one (see [`crate::HeldRun`]).
    Paused,
    /// A process was chosen and all dispatch bookkeeping is done.
    Go {
        next: Pid,
        baton: Arc<Baton<Go>>,
        pending: Option<PendingJob>,
    },
}

/// The dispatch tail of phase 1, shared by the scheduler loop and the
/// inline continuation path ([`stop_process`]): consult the policy (or
/// take the forced pick), record the decision and the candidate snapshot,
/// and perform every per-dispatch state mutation. The caller has already
/// established that `ready` is non-empty, the run is not terminal, and the
/// step budget has room.
fn pick_and_dispatch(st: &mut State) -> Picked {
    let idx = if st.ready.len() == 1 {
        st.cur_decided = false;
        st.cur_sched_decision = None;
        0
    } else {
        // Pause hook for held runs: the policy has not been consulted and
        // nothing has been mutated for this decision yet, so the run can
        // resume later as if uninterrupted.
        if st.pause_at == Some(st.decisions.len()) {
            return Picked::Paused;
        }
        st.cur_decided = true;
        // The trait contract promises policies at least two candidates at
        // a contested dispatch; assert the kernel keeps that promise (the
        // len == 1 arm above handles the forced case, and an empty ready
        // list never reaches here).
        debug_assert!(
            st.ready.len() >= 2,
            "policy consulted with {} candidates",
            st.ready.len()
        );
        let step = st.step;
        let arity = st.ready.len() as u32;
        let state = &mut *st;
        let pick = state
            .policy
            .choose(&state.ready, step)
            .min(state.ready.len() - 1);
        st.cur_sched_decision = Some(st.decisions.len());
        st.decisions.push(Decision::sched(arity, pick as u32));
        pick
    };
    // Footprint bookkeeping for the quantum about to run: remember the
    // candidate list of a contested dispatch (index c is what sibling
    // choice c would have dispatched) and reset the per-quantum access
    // collection.
    st.cur_ready = if st.cur_decided && st.record_quanta {
        Some(st.ready.clone())
    } else {
        None
    };
    st.quantum_objs.clear();
    let next = st.ready.remove(idx);
    st.clock = st.clock.plus(1);
    st.step += 1;
    st.running = Some(next);
    st.procs[next.index()].status = ProcessStatus::Running;
    // Run-anatomy metrics (non-authoritative; nothing below reads them
    // back).
    st.metrics.dispatches += 1;
    if st.last_dispatched != Some(next) {
        st.metrics.context_switches += 1;
    }
    st.last_dispatched = Some(next);
    st.metrics.per_pid[next.index()].dispatches += 1;
    st.metrics.per_pid[next.index()].run_ticks += 1;
    // Starvation watchdog: a dispatch means *somebody* is making progress;
    // any non-daemon still blocked whose current wait episode is older
    // than the bound has been bypassed that whole time. Flag it (once per
    // episode) — detection, not recovery. (A set bound disarms the inline
    // path, so this only ever runs on the scheduler loop.)
    if let Some(bound) = st.starvation_bound {
        let clock = st.clock;
        let mut flagged = Vec::new();
        for (i, p) in st.procs.iter_mut().enumerate() {
            if p.daemon
                || p.starvation_flagged
                || !matches!(p.status, ProcessStatus::Blocked { .. })
            {
                continue;
            }
            let Some((reason, since)) = p.wait_started.clone() else {
                continue;
            };
            let age = clock.0 - since.0;
            if age > bound {
                p.starvation_flagged = true;
                flagged.push(StarvationFlag {
                    pid: Pid(i as u32),
                    name: p.name.clone(),
                    reason,
                    since,
                    flagged_at: clock,
                    age,
                });
            }
        }
        for flag in flagged {
            st.trace.push(
                clock,
                flag.pid,
                EventKind::StarvationFlagged { age: flag.age },
            );
            st.starvation.push(flag);
        }
    }
    if st.record_sched_events {
        let clock = st.clock;
        st.trace.push(clock, next, EventKind::Scheduled);
    }
    Picked::Go {
        baton: Arc::clone(&st.procs[next.index()].baton),
        pending: st.procs[next.index()].pending.take(),
        next,
    }
}

/// Phase 2: hands the CPU to `next` (without holding the state lock). The
/// first dispatch of a pooled process hands its queued body to a host
/// thread; every later dispatch sends `Go::Run`.
fn hand_cpu(shared: &Arc<Shared>, next: Pid, baton: &Baton<Go>, pending: Option<PendingJob>) {
    shared.quantum_dirty.store(false, Ordering::Relaxed);
    shared.quantum_all.store(false, Ordering::Relaxed);
    match pending {
        Some(f) => {
            shared.job_begin();
            pool::dispatch(Job {
                shared: Arc::clone(shared),
                pid: next,
                f,
            });
        }
        None => baton.put(Go::Run),
    }
}

/// The read-side of phase 3, shared by the scheduler loop and the inline
/// continuation path: classify the just-ended quantum's purity and record
/// its footprint. Consumes `cur_decided`/`cur_ready` (set at dispatch).
fn account_stop(shared: &Shared, st: &mut State, pid: Pid, report: &Report) {
    st.running = None;
    // Purity classification (see `Decision::pure`): the quantum must have
    // touched nothing observable and stopped with a plain yield. A pure
    // *finish* is also a stutter, except when daemons exist — deferring
    // the last non-daemon's finish would give a daemon an extra quantum,
    // which is an observably different schedule.
    if st.cur_decided {
        let dirty = shared.quantum_dirty.load(Ordering::Relaxed);
        let pure = !dirty
            && match report {
                Report::Yielded => true,
                Report::Finished => !st.procs.iter().any(|p| p.daemon),
                _ => false,
            };
        if pure {
            // Addressed by index, not `last_mut`: a `choose_value` call
            // inside the quantum appends data decisions after the
            // dispatch's entry (and itself marks the quantum dirty, so
            // this branch is then unreachable — the index is still the
            // only correct target).
            if let Some(i) = st.cur_sched_decision {
                st.decisions[i].pure = true;
            }
        }
    }
    // Footprint log: drain what the quantum reported, add the
    // kernel-implicit accesses, and record. A parking quantum writes its
    // own park slot (the same pseudo-object `Ctx::is_parked` reads and
    // `Ctx::unpark` writes); under deadlock recovery it also writes the
    // global `park` pseudo-object, because the victim choice depends on
    // the relative order in which *any* two processes blocked, so park
    // quanta must never be commuted then.
    if st.record_quanta {
        let ready_snapshot = st.cur_ready.take();
        let mut objs = if shared.quantum_all.load(Ordering::Relaxed) {
            None
        } else {
            Some(std::mem::take(&mut st.quantum_objs))
        };
        if matches!(report, Report::Parked { .. } | Report::ParkedTimeout { .. }) {
            if let Some(objs) = objs.as_mut() {
                merge_access(objs, ObjId::pseudo(&format!("park:{pid}")), Access::Write);
                if st.deadlock_recovery {
                    merge_access(objs, ObjId::pseudo("park"), Access::Write);
                }
            }
        }
        let footprint = match objs {
            None => Footprint::All,
            Some(map) => Footprint::Objs(map),
        };
        st.quanta.push(QuantumRecord {
            pid,
            footprint,
            ready: ready_snapshot,
        });
    }
}

/// The write-side of phase 3 for the ordinary stop reports: apply the
/// status transition and its bookkeeping. The terminal reports (Panicked,
/// and the Killed/Aborted hand-shake acknowledgements) never reach here.
fn apply_stop(st: &mut State, pid: Pid, report: Report) {
    let clock = st.clock;
    match report {
        Report::Yielded => {
            let slot = &mut st.procs[pid.index()];
            slot.status = ProcessStatus::Ready;
            slot.wait_started = None;
            slot.starvation_flagged = false;
            st.ready.push(pid);
            if st.record_sched_events {
                st.trace.push(clock, pid, EventKind::Yielded);
            }
        }
        Report::Parked { reason } => {
            // The Blocked trace event was already pushed by Ctx::park so
            // that it is ordered before any subsequent unpark.
            SimMetrics::bump(&mut st.metrics.parks, &reason);
            let slot = &mut st.procs[pid.index()];
            // Watchdog bookkeeping: re-parking on the same reason (a
            // re-contend or recheck loop) continues the current wait
            // episode; anything else starts a fresh one.
            match &slot.wait_started {
                Some((r, _)) if *r == reason => {}
                _ => {
                    slot.wait_started = Some((reason.clone(), clock));
                    slot.starvation_flagged = false;
                }
            }
            slot.status = ProcessStatus::Blocked { reason };
            slot.park_token += 1;
            slot.timed_out = false;
            slot.blocked_since = Some(clock);
            // Fault plane: a spurious wake makes the process runnable
            // again with no matching unpark; Ctx::park absorbs it. (An
            // active fault plan disarms the inline path, so this only
            // ever runs on the scheduler loop.)
            if st.faults.active() {
                let name = st.procs[pid.index()].name.clone();
                if st.faults.on_park(pid, &name) {
                    st.settle_blocked_time(pid);
                    let slot = &mut st.procs[pid.index()];
                    slot.status = ProcessStatus::Ready;
                    slot.spurious_wake = true;
                    st.ready.push(pid);
                    st.trace.push(clock, pid, EventKind::SpuriousWake);
                }
            }
        }
        Report::ParkedTimeout { reason, ticks } => {
            st.prune_safe = false; // timers are time-sensitive: no prune
            SimMetrics::bump(&mut st.metrics.parks, &reason);
            let until = clock.plus(ticks);
            let slot = &mut st.procs[pid.index()];
            match &slot.wait_started {
                Some((r, _)) if *r == reason => {}
                _ => {
                    slot.wait_started = Some((reason.clone(), clock));
                    slot.starvation_flagged = false;
                }
            }
            slot.status = ProcessStatus::Blocked { reason };
            slot.park_token += 1;
            slot.timed_out = false;
            slot.blocked_since = Some(clock);
            let token = slot.park_token;
            let tiebreak = st.timer_tiebreak;
            st.timer_tiebreak += 1;
            st.timers.push(Reverse((
                until,
                tiebreak,
                pid,
                TimerKind::ParkTimeout { token },
            )));
        }
        Report::Slept { ticks } => {
            st.prune_safe = false; // timers are time-sensitive: no prune
            let until = clock.plus(ticks);
            let slot = &mut st.procs[pid.index()];
            slot.wait_started = None;
            slot.starvation_flagged = false;
            slot.status = ProcessStatus::Sleeping { until };
            let tiebreak = st.timer_tiebreak;
            st.timer_tiebreak += 1;
            st.timers
                .push(Reverse((until, tiebreak, pid, TimerKind::Sleep)));
            if st.record_sched_events {
                st.trace.push(clock, pid, EventKind::Slept { until });
            }
        }
        Report::Finished => {
            let slot = &mut st.procs[pid.index()];
            slot.wait_started = None;
            slot.status = ProcessStatus::Finished;
            if st.record_sched_events {
                st.trace.push(clock, pid, EventKind::Finished);
            }
        }
        Report::Panicked { .. } | Report::Killed | Report::Aborted | Report::Rescan => {
            unreachable!("terminal report in apply_stop")
        }
    }
}

/// Where the CPU went after a [`stop_process`] call.
pub(crate) enum StopOutcome {
    /// The inline continuation picked the stopping process right back
    /// (only possible after a yield): keep running, zero hand-offs.
    SelfResume,
    /// The CPU went elsewhere — to the next process directly, or back to
    /// the scheduler loop via [`Report::Rescan`]. A still-live caller must
    /// now wait on its own baton.
    Handed,
}

/// A running process stops here (yield, park, sleep, finish).
///
/// In the seed protocol every stop wakes the scheduler loop, which does
/// phase 3 (account the stop) and phase 1 (pick next) and then wakes the
/// chosen process: two thread hand-offs per quantum even when the pick is
/// forced. When [`Shared::inline`] is armed, the stopping process instead
/// runs both phases itself under the state lock — the one-running-process
/// invariant makes it the only executing process, so the state it sees and
/// the mutations it applies are exactly the ones the scheduler loop would
/// have seen and applied, in the same order — and hands the CPU directly
/// to the next process (or keeps it, if the pick comes back to itself).
/// The scheduler loop stays parked in `sched_baton.take()` the whole time
/// and is only woken, via [`Report::Rescan`], for the cases it alone can
/// handle: run termination, an empty ready list (timer firing, deadlock
/// detection and recovery), the step budget, and held-run pause points.
pub(crate) fn stop_process(shared: &Arc<Shared>, pid: Pid, report: Report) -> StopOutcome {
    if !shared.inline.load(Ordering::Relaxed) {
        // Seed protocol: hand the report to the scheduler loop, which does
        // all accounting and the next dispatch.
        shared.sched_baton.put(report);
        return StopOutcome::Handed;
    }
    let mut st = shared.state.lock();
    // Phase 3 inline. The kill-point check of the scheduler loop is
    // soundly skipped: an active fault plan never arms the inline path.
    account_stop(shared, &mut st, pid, &report);
    apply_stop(&mut st, pid, report);
    // Phase 1 inline, common case only. Defer to the scheduler loop for
    // everything else; it re-runs phase 1 from scratch (and must not run
    // phase 3 again — Rescan tells it so).
    if st.ready.is_empty()
        || st.step >= st.max_steps
        || st.procs.iter().all(|p| p.daemon || !p.status.is_live())
    {
        drop(st);
        shared.sched_baton.put(Report::Rescan);
        return StopOutcome::Handed;
    }
    match pick_and_dispatch(&mut st) {
        Picked::Paused => {
            drop(st);
            shared.sched_baton.put(Report::Rescan);
            StopOutcome::Handed
        }
        Picked::Go {
            next,
            baton: _,
            pending,
        } if next == pid => {
            // Picked right back: skip both hand-offs. Only a yield can
            // land here (any other stop leaves the caller off the ready
            // list), so the body was dispatched long ago.
            debug_assert!(pending.is_none());
            drop(st);
            shared.quantum_dirty.store(false, Ordering::Relaxed);
            shared.quantum_all.store(false, Ordering::Relaxed);
            StopOutcome::SelfResume
        }
        Picked::Go {
            next,
            baton,
            pending,
        } => {
            drop(st);
            hand_cpu(shared, next, &baton, pending);
            StopOutcome::Handed
        }
    }
}

/// The scheduler loop. Runs on the thread that called [`crate::Sim::run`]
/// (or [`crate::HeldRun::finish`]/[`crate::HeldRun::advance_to`], which
/// re-enter it — the loop is resumable because everything it needs lives
/// in [`State`], not on this stack).
///
/// With `pause_at == Some(k)` the loop returns [`DriveOutcome::Paused`]
/// just before consulting the policy for contested decision `k`; the
/// one-running-process invariant means no process is mid-quantum then, so
/// a later call picks up exactly where this one stopped.
pub(crate) fn drive(shared: &Arc<Shared>, pause_at: Option<usize>) -> DriveOutcome {
    let error: Option<SimErrorKind>;
    {
        // Static prune-safety gate: fault plans reorder effects around kill
        // points and the starvation watchdog's verdicts depend on absolute
        // wait ages, so both void the commutation argument behind
        // `Decision::pure` for the whole run. (Re-running the gate on
        // resume is an idempotent store.)
        let mut st = shared.state.lock();
        if st.faults.active() || st.starvation_bound.is_some() {
            st.prune_safe = false;
        }
        st.pause_at = pause_at;
        // Arm the inline continuation fast path (see `stop_process`).
        // Fault plans need the kill/spurious hand-shakes of the scheduler
        // loop, the watchdog must run at every dispatch on the loop's
        // clock, and legacy mode keeps the seed protocol byte-for-byte.
        let inline = st.reuse_hosts && !st.faults.active() && st.starvation_bound.is_none();
        shared.inline.store(inline, Ordering::Relaxed);
    }
    loop {
        // Phase 1: pick the next process (or detect termination/deadlock).
        let next: Pid;
        let baton: Arc<Baton<Go>>;
        let pending: Option<PendingJob>;
        {
            let mut st = shared.state.lock();
            // The run is complete once no non-daemon process is live, even
            // if daemon processes are still runnable or sleeping.
            if st.procs.iter().all(|p| p.daemon || !p.status.is_live()) {
                error = None;
                break;
            }
            // Fire due timers, jumping the clock forward as often as
            // needed: a batch may consist entirely of stale timers, in
            // which case the next deadline must be tried too.
            while st.ready.is_empty() {
                let Some(&Reverse((deadline, _, _, _))) = st.timers.peek() else {
                    break;
                };
                {
                    if deadline > st.clock {
                        st.clock = deadline;
                    }
                    while let Some(&Reverse((d, _, pid, kind))) = st.timers.peek() {
                        if d > st.clock {
                            break;
                        }
                        st.timers.pop();
                        let fire = match kind {
                            TimerKind::Sleep => {
                                matches!(
                                    st.procs[pid.index()].status,
                                    ProcessStatus::Sleeping { .. }
                                )
                            }
                            TimerKind::ParkTimeout { token } => {
                                let slot = &st.procs[pid.index()];
                                slot.park_token == token
                                    && matches!(slot.status, ProcessStatus::Blocked { .. })
                            }
                        };
                        if !fire {
                            continue; // stale timer from an earlier park/sleep
                        }
                        if let TimerKind::ParkTimeout { .. } = kind {
                            st.procs[pid.index()].timed_out = true;
                            if let ProcessStatus::Blocked { reason } = &st.procs[pid.index()].status
                            {
                                let reason = reason.clone();
                                SimMetrics::bump(&mut st.metrics.timeout_wakes, &reason);
                            }
                            st.settle_blocked_time(pid);
                        }
                        st.procs[pid.index()].status = ProcessStatus::Ready;
                        st.ready.push(pid);
                        if st.record_sched_events {
                            let clock = st.clock;
                            st.trace.push(clock, pid, EventKind::TimerFired);
                        }
                    }
                }
            }
            if st.ready.is_empty() {
                let blocked: Vec<(Pid, String, String)> = st
                    .procs
                    .iter()
                    .enumerate()
                    .filter_map(|(i, p)| match &p.status {
                        ProcessStatus::Blocked { reason } if !p.daemon => {
                            Some((Pid(i as u32), p.name.clone(), reason.clone()))
                        }
                        _ => None,
                    })
                    .collect();
                if st.deadlock_recovery && !blocked.is_empty() {
                    // Deadlock recovery: abort one victim through the same
                    // unwind machinery as a fault-plan kill, so its RAII
                    // guards roll registrations back (releasing permits,
                    // dequeuing, poisoning held monitors), then resume
                    // scheduling — the rollback may have unparked survivors.
                    // Each abort removes one live non-daemon, so the loop
                    // terminates even if the survivors deadlock again.
                    //
                    // Victim choice: the most recently blocked process (its
                    // wait episode started last, so the least progress is
                    // discarded); ties broken by pid. Deterministic, and it
                    // adds no scheduling decision, so exploration and replay
                    // are unaffected.
                    let &(victim, _, _) = blocked
                        .iter()
                        .max_by_key(|(pid, _, _)| {
                            let since = st.procs[pid.index()]
                                .wait_started
                                .as_ref()
                                .map_or(Time::ZERO, |&(_, t)| t);
                            (since, *pid)
                        })
                        .expect("non-empty blocked list");
                    let clock = st.clock;
                    // The Aborted event goes in *before* the unwind so that
                    // poison events emitted by drop guards follow it.
                    st.trace.push(clock, victim, EventKind::Aborted);
                    st.recovered.push(victim);
                    let victim_baton = Arc::clone(&st.procs[victim.index()].baton);
                    // The unwind's guard effects (releases, poisons, wakes)
                    // are accounted to a bookkeeping quantum of the victim,
                    // recorded below; reset the footprint marks first.
                    st.quantum_objs.clear();
                    let record_abort = st.record_quanta;
                    drop(st);
                    shared.quantum_dirty.store(false, Ordering::Relaxed);
                    shared.quantum_all.store(false, Ordering::Relaxed);
                    // The victim is blocked in `obey(baton.take())`; while it
                    // unwinds it is the only executing process, exactly as in
                    // the kill hand-shake above.
                    victim_baton.put(Go::Abort);
                    match shared.sched_baton.take() {
                        Report::Aborted => {}
                        Report::Panicked { message, .. } => {
                            let mut st = shared.state.lock();
                            st.procs[victim.index()].status = ProcessStatus::Panicked {
                                message: message.clone(),
                            };
                            drop(st);
                            shutdown(shared);
                            let mut st = shared.state.lock();
                            let report = snapshot(&mut st);
                            return DriveOutcome::Done(Box::new(Err(SimError {
                                kind: SimErrorKind::ProcessPanicked {
                                    pid: victim,
                                    message,
                                },
                                report: Box::new(report),
                            })));
                        }
                        _ => unreachable!("abort unwind reports Aborted or Panicked"),
                    }
                    let mut st = shared.state.lock();
                    // Record the unwind as a forced bookkeeping quantum of
                    // the victim so the sleep-set walk sees its effects
                    // (`ready: None` keeps it out of the decision
                    // alignment). The victim also leaves the blocked set,
                    // which is a write of its park slot and of the global
                    // `park` order object.
                    if record_abort {
                        let mut objs = if shared.quantum_all.load(Ordering::Relaxed) {
                            None
                        } else {
                            Some(std::mem::take(&mut st.quantum_objs))
                        };
                        if let Some(objs) = objs.as_mut() {
                            merge_access(
                                objs,
                                ObjId::pseudo(&format!("park:{victim}")),
                                Access::Write,
                            );
                            merge_access(objs, ObjId::pseudo("park"), Access::Write);
                        }
                        let footprint = match objs {
                            None => Footprint::All,
                            Some(map) => Footprint::Objs(map),
                        };
                        st.quanta.push(QuantumRecord {
                            pid: victim,
                            footprint,
                            ready: None,
                        });
                    }
                    // Cancelled, not Killed: an abort is a recovery action,
                    // not a crash. The body has returned (gate lowered).
                    st.settle_blocked_time(victim);
                    st.procs[victim.index()].status = ProcessStatus::Cancelled;
                    st.procs[victim.index()].wait_started = None;
                    continue;
                }
                error = if blocked.is_empty() {
                    None // Only daemons (or nothing) remain: clean completion.
                } else {
                    Some(SimErrorKind::Deadlock { blocked })
                };
                break;
            }
            if st.step >= st.max_steps {
                error = Some(SimErrorKind::MaxStepsExceeded {
                    limit: st.max_steps,
                });
                break;
            }
            match pick_and_dispatch(&mut st) {
                Picked::Paused => return DriveOutcome::Paused,
                Picked::Go {
                    next: n,
                    baton: b,
                    pending: p,
                } => {
                    next = n;
                    baton = b;
                    pending = p;
                }
            }
        }

        // Phase 2: hand over the CPU and wait for a report. Under the
        // inline continuation path the running processes account their own
        // stops and hand the CPU among themselves; the take() below then
        // spans many quanta and only returns for a deferral (Rescan) or a
        // panic.
        hand_cpu(shared, next, &baton, pending);
        let report = shared.sched_baton.take();
        if matches!(report, Report::Rescan) {
            // The stop was already accounted inline; re-run phase 1 only.
            continue;
        }

        // Phase 3: account for how it stopped. `next` identifies the
        // stopping process except for an inline-mode panic, where the
        // loop's last dispatch is stale — the report carries the pid.
        let stop_pid = match &report {
            Report::Panicked { pid, .. } => *pid,
            _ => next,
        };
        let mut st = shared.state.lock();
        account_stop(shared, &mut st, stop_pid, &report);
        let clock = st.clock;
        // Fault plane: a yield/park/sleep is a scheduling point of the
        // stopping process. If the plan kills it here, the normal
        // bookkeeping for the report is skipped — the process unwinds
        // instead of ever resuming.
        let kill_due = st.faults.active()
            && matches!(
                report,
                Report::Yielded
                    | Report::Parked { .. }
                    | Report::ParkedTimeout { .. }
                    | Report::Slept { .. }
            )
            && {
                let name = st.procs[stop_pid.index()].name.clone();
                st.faults.on_stop(stop_pid, &name)
            };
        if kill_due {
            // The Killed event goes in *before* the unwind so that poison
            // events emitted by drop guards follow it in the trace.
            st.trace.push(clock, stop_pid, EventKind::Killed);
            let baton = Arc::clone(&st.procs[stop_pid.index()].baton);
            drop(st);
            // The victim is blocked in `obey(baton.take())`; Go::Kill makes
            // it unwind. While it unwinds it is the only executing process
            // (the scheduler blocks on the report), so drop guards may
            // lock state, emit trace events, and try_unpark — but must
            // never park or panic.
            baton.put(Go::Kill);
            match shared.sched_baton.take() {
                Report::Killed => {}
                Report::Panicked { message, .. } => {
                    // A drop guard panicked during the kill unwind: surface
                    // it as the mechanism bug it is.
                    let mut st = shared.state.lock();
                    st.procs[stop_pid.index()].status = ProcessStatus::Panicked {
                        message: message.clone(),
                    };
                    drop(st);
                    shutdown(shared);
                    let mut st = shared.state.lock();
                    let report = snapshot(&mut st);
                    return DriveOutcome::Done(Box::new(Err(SimError {
                        kind: SimErrorKind::ProcessPanicked {
                            pid: stop_pid,
                            message,
                        },
                        report: Box::new(report),
                    })));
                }
                _ => unreachable!("kill unwind reports Killed or Panicked"),
            }
            let mut st = shared.state.lock();
            // The victim's body has fully unwound (gate lowered).
            st.procs[stop_pid.index()].status = ProcessStatus::Killed;
            continue;
        }
        match report {
            Report::Panicked { pid, message } => {
                st.procs[pid.index()].status = ProcessStatus::Panicked {
                    message: message.clone(),
                };
                drop(st);
                shutdown(shared);
                let mut st = shared.state.lock();
                let report = snapshot(&mut st);
                return DriveOutcome::Done(Box::new(Err(SimError {
                    kind: SimErrorKind::ProcessPanicked { pid, message },
                    report: Box::new(report),
                })));
            }
            // Only ever sent in response to Go::Kill, which the kill path
            // above consumes directly.
            Report::Killed => unreachable!("Killed report outside a kill hand-shake"),
            // Only ever sent in response to Go::Abort, which the deadlock
            // recovery path in phase 1 consumes directly.
            Report::Aborted => unreachable!("Aborted report outside an abort hand-shake"),
            // Consumed right after the take() above.
            Report::Rescan => unreachable!("Rescan reached phase 3"),
            other => apply_stop(&mut st, stop_pid, other),
        }
    }

    shutdown(shared);
    // Queue hygiene (the `park_timeout` stale-registration footgun): by
    // now every registration must be gone — removed by a wake, by timeout
    // self-removal, or by an unwind guard when shutdown cancelled a still-
    // parked process. A leftover entry means some timed wait path returned
    // without deregistering and the corpse would absorb a future grant.
    // Checked on every non-panicked exit (clean, deadlock, max-steps); the
    // panic paths return early above since their guards may not have run.
    #[cfg(debug_assertions)]
    for cell in shared.queues.lock().iter() {
        let waiters = cell.waiters.lock();
        assert!(
            waiters.is_empty(),
            "wait queue '{}' still holds {:?} at end of run: \
             a timed wait path leaked a stale registration",
            cell.name,
            waiters.iter().map(|w| w.pid).collect::<Vec<_>>(),
        );
    }
    let mut st = shared.state.lock();
    let report = snapshot(&mut st);
    DriveOutcome::Done(Box::new(match error {
        None => Ok(report),
        Some(kind) => Err(SimError {
            kind,
            report: Box::new(report),
        }),
    }))
}

/// Cancels every still-live process and waits (via the job gate) for all
/// started process bodies to return or unwind — the seed's thread joins,
/// reformulated so it works for pooled hosts too. Idempotent: a second
/// call finds no live process, no pending body, and a zero gate, which is
/// what lets [`crate::HeldRun`]'s `Drop` call it unconditionally.
pub(crate) fn shutdown(shared: &Arc<Shared>) {
    // Raise the flag before any cancellation: cancelled threads unwind
    // concurrently, and their drop guards check it (via Ctx::cancelling)
    // to skip crash-handling work that is only valid for a kill.
    shared.cancelling.store(true, Ordering::SeqCst);
    let mut never_started = Vec::new();
    {
        let mut st = shared.state.lock();
        for p in st.procs.iter_mut() {
            if let Some(f) = p.pending.take() {
                // Never dispatched in pooled mode: no host is engaged, so
                // there is nothing to cancel — the body is simply dropped
                // (outside the lock below; closures own arbitrary state).
                p.status = ProcessStatus::Cancelled;
                never_started.push(f);
                continue;
            }
            if p.status.is_live() {
                p.baton.put(Go::Cancel);
                p.status = ProcessStatus::Cancelled;
            }
        }
    }
    drop(never_started);
    // A cancelled body unwinds with the private `Cancelled` payload, which
    // `run_process` catches, so the gate always falls; a genuine panic was
    // already reported via the baton before the body returned.
    shared.wait_jobs();
}
