//! The totally ordered event log of a simulation run.
//!
//! Every scheduling action and every user-emitted event is appended to a
//! single [`Trace`]. Higher-level crates (checkers, the evaluation harness)
//! consume the trace rather than instrumenting mechanisms directly, so one
//! log is the single source of truth for "what happened, in what order".

use crate::types::{Pid, Time};
use std::fmt;

/// What happened at one point in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A process was created (by the builder or by a running process).
    Spawned { name: String, daemon: bool },
    /// The scheduler dispatched the process.
    Scheduled,
    /// The process voluntarily yielded the CPU.
    Yielded,
    /// The process parked itself on a wait queue.
    Blocked { reason: String },
    /// A running process made this (parked) process runnable again.
    Unparked { by: Pid },
    /// The process began sleeping until the given virtual time.
    Slept { until: Time },
    /// The process's sleep timer fired and it became runnable.
    TimerFired,
    /// The process closure returned.
    Finished,
    /// A fault-plan kill-point fired: the process unwinds and never
    /// resumes. Poison events emitted by its drop guards follow this event.
    Killed,
    /// Deadlock recovery aborted the process (the chosen victim): it
    /// unwinds and never resumes, classified as cancelled rather than
    /// crashed. Poison events emitted by its drop guards follow this event.
    Aborted,
    /// The kernel starvation watchdog flagged the process: it had been
    /// waiting `age` quanta — longer than the configured bound — while
    /// other processes kept making progress.
    StarvationFlagged { age: u64 },
    /// A fault-plan spurious wake made the process runnable with no
    /// matching unpark ([`crate::Ctx::park`] absorbs it by re-parking).
    SpuriousWake,
    /// A fault plan converted an unpark of this process into a timed sleep
    /// ending at the given virtual time.
    DelayedWake { until: Time },
    /// A data decision point fired: the process drew `value` from the
    /// domain registered under `label` via [`crate::Ctx::choose_value`].
    ChoseValue { label: String, value: i64 },
    /// An application-level event emitted via [`crate::Ctx::emit`].
    User { label: String, params: Vec<i64> },
}

/// One entry in the trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Virtual time at which the event occurred.
    pub time: Time,
    /// Position in the trace; a strict total order over all events.
    pub seq: u64,
    /// The process the event concerns.
    pub pid: Pid,
    /// What happened.
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} #{}] {}: ", self.time, self.seq, self.pid)?;
        match &self.kind {
            EventKind::Spawned { name, daemon } => {
                write!(
                    f,
                    "spawned \"{name}\"{}",
                    if *daemon { " (daemon)" } else { "" }
                )
            }
            EventKind::Scheduled => write!(f, "scheduled"),
            EventKind::Yielded => write!(f, "yielded"),
            EventKind::Blocked { reason } => write!(f, "blocked on {reason}"),
            EventKind::Unparked { by } => write!(f, "unparked by {by}"),
            EventKind::Slept { until } => write!(f, "sleeping until {until}"),
            EventKind::TimerFired => write!(f, "timer fired"),
            EventKind::Finished => write!(f, "finished"),
            EventKind::Killed => write!(f, "killed (fault injection)"),
            EventKind::Aborted => write!(f, "aborted (deadlock recovery)"),
            EventKind::StarvationFlagged { age } => {
                write!(f, "starvation watchdog flagged (waiting {age} quanta)")
            }
            EventKind::SpuriousWake => write!(f, "spurious wake (fault injection)"),
            EventKind::DelayedWake { until } => {
                write!(f, "wake delayed until {until} (fault injection)")
            }
            EventKind::ChoseValue { label, value } => {
                write!(f, "chose {label} = {value}")
            }
            EventKind::User { label, params } => write!(f, "{label} {params:?}"),
        }
    }
}

/// What a [`Decision`]'s outcome decides (see DESIGN.md §2.15).
///
/// Decision vectors are a single interleaved sequence; the kind tag is
/// what lets the prune machinery treat the two spaces differently
/// (scheduling choices race-reverse, data choices partition by path
/// constraints) while replay, journaling, and shrinking stay oblivious.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecisionKind {
    /// A scheduler pick: which of the runnable processes to dispatch.
    Sched,
    /// A data pick: which value of a [`crate::Ctx::choose_value`] domain
    /// the run observed.
    Data,
}

/// A decision point: the outcome chose `chosen` out of `arity`
/// alternatives. Only points with `arity > 1` are recorded; they are
/// exactly the coordinates the [`crate::Explorer`] enumerates.
///
/// A `Sched` decision picks a runnable process at a contested dispatch; a
/// `Data` decision picks a value from a [`crate::Ctx::choose_value`]
/// domain mid-quantum. Both live in the same vector, in the order they
/// were made, and replay consumes one script entry for either kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decision {
    /// How many alternatives there were (runnable processes, or values in
    /// the chosen domain).
    pub arity: u32,
    /// Index (into the ready list in enqueue order, or into the value
    /// domain in ascending order) that was taken.
    pub chosen: u32,
    /// Whether the quantum this decision dispatched was *observably pure*:
    /// it performed no kernel-visible operation (no emit, unpark, ticket,
    /// clock read, spawn, …), no mechanism marked synchronization state as
    /// touched via [`crate::Ctx::note_sync`], and the process stopped with a
    /// plain yield (or finished, in a daemon-free simulation) — and the run
    /// as a whole stayed prune-safe (no timers, no faults, no starvation
    /// watchdog). A pure quantum is a stutter step: scheduling it earlier
    /// or later commutes with every other process, which is what licenses
    /// the explorers' sibling prune (see `Explorer::with_pruning`). Replay
    /// ignores this field. Data decisions are never pure: observing a
    /// value is the point of making one.
    pub pure: bool,
    /// Whether this is a scheduler pick or a data pick.
    pub kind: DecisionKind,
}

impl Decision {
    /// A scheduler decision (contested dispatch), initially impure.
    pub fn sched(arity: u32, chosen: u32) -> Self {
        Decision {
            arity,
            chosen,
            pure: false,
            kind: DecisionKind::Sched,
        }
    }

    /// A data decision ([`crate::Ctx::choose_value`]), always impure.
    pub fn data(arity: u32, chosen: u32) -> Self {
        Decision {
            arity,
            chosen,
            pure: false,
            kind: DecisionKind::Data,
        }
    }

    /// Whether this is a scheduler decision.
    pub fn is_sched(&self) -> bool {
        self.kind == DecisionKind::Sched
    }

    /// Whether this is a data decision.
    pub fn is_data(&self) -> bool {
        self.kind == DecisionKind::Data
    }
}

/// The event log of one run.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<Event>,
}

impl Trace {
    /// Creates an empty trace, preallocated for a typical short run —
    /// exploration executes hundreds of thousands of small runs, so the
    /// first few doublings of the event vector are worth skipping.
    pub fn new() -> Self {
        Trace {
            events: Vec::with_capacity(64),
        }
    }

    pub(crate) fn push(&mut self, time: Time, pid: Pid, kind: EventKind) {
        let seq = self.events.len() as u64;
        self.events.push(Event {
            time,
            seq,
            pid,
            kind,
        });
    }

    /// Appends an event, assigning the next dense `seq`.
    ///
    /// This is the append path for *external backends*: the real-thread
    /// runtime (`bloom-rt`) builds a [`Trace`] event by event so the
    /// checkers in `bloom-core` — which consume traces, not kernels — run
    /// on real executions unchanged. Inside the simulator the kernel is
    /// the only writer; external callers own their trace outright and
    /// serialize appends however they synchronize their log.
    pub fn record(&mut self, time: Time, pid: Pid, kind: EventKind) {
        self.push(time, pid, kind);
    }

    /// All events, in order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterates over user events as `(event, label, params)` triples.
    pub fn user_events(&self) -> impl Iterator<Item = (&Event, &str, &[i64])> {
        self.events.iter().filter_map(|e| match &e.kind {
            EventKind::User { label, params } => Some((e, label.as_str(), params.as_slice())),
            _ => None,
        })
    }

    /// All events concerning one process.
    pub fn events_for(&self, pid: Pid) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.pid == pid)
    }

    /// The first user event with the given label, if any.
    pub fn first_user(&self, label: &str) -> Option<&Event> {
        self.user_events()
            .find(|(_, l, _)| *l == label)
            .map(|(e, _, _)| e)
    }

    /// Counts user events with the given label.
    pub fn count_user(&self, label: &str) -> usize {
        self.user_events().filter(|(_, l, _)| *l == label).count()
    }

    /// Renders the full trace, one event per line (diagnostics).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.push(Time(0), Pid(0), EventKind::Scheduled);
        t.push(
            Time(1),
            Pid(0),
            EventKind::User {
                label: "enter".into(),
                params: vec![42],
            },
        );
        t.push(
            Time(2),
            Pid(1),
            EventKind::User {
                label: "enter".into(),
                params: vec![7],
            },
        );
        t.push(Time(3), Pid(0), EventKind::Finished);
        t
    }

    #[test]
    fn seq_is_dense_and_ordered() {
        let t = sample();
        for (i, e) in t.events().iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }

    #[test]
    fn user_event_queries() {
        let t = sample();
        assert_eq!(t.count_user("enter"), 2);
        assert_eq!(t.first_user("enter").unwrap().pid, Pid(0));
        assert!(t.first_user("missing").is_none());
    }

    #[test]
    fn events_for_filters_by_pid() {
        let t = sample();
        assert_eq!(t.events_for(Pid(1)).count(), 1);
        assert_eq!(t.events_for(Pid(0)).count(), 3);
    }

    #[test]
    fn render_contains_labels() {
        let t = sample();
        let s = t.render();
        assert!(s.contains("enter [42]"));
        assert!(s.contains("P1"));
    }
}
