//! Bounded exhaustive schedule exploration.
//!
//! Every contested scheduling decision in a run is recorded as a
//! [`Decision`]. The [`Explorer`] performs a depth-first walk over the tree
//! of such decisions: it reruns the scenario with a [`ReplayPolicy`] prefix,
//! reads back the full decision vector, and backtracks on the last decision
//! that still has unexplored branches. For scenarios with a few processes
//! and a few operations each, this *proves* properties over all
//! interleavings — which is exactly what Bloom's footnote-3 argument about
//! the Figure-1 path-expression solution requires.
//!
//! For large trees, [`crate::ParallelExplorer`] explores the same space
//! with a pool of worker threads and byte-identical results.
//!
//! # The equivalence prune
//!
//! With [`Explorer::with_pruning`], two layers of reduction apply; both
//! preserve the set of distinct user-event traces while shrinking the
//! schedule count, and skipped branches are counted in
//! [`ExploreStats::pruned`].
//!
//! 1. **Purity** ([`Decision::pure`], PR 3): when the canonical (choice-0)
//!    quantum of a decision was a stutter that touched nothing any other
//!    process can see, *all* sibling branches are skipped — deferring a
//!    stutter commutes with every intervening quantum, so the
//!    sibling-first subtree maps leaf-for-leaf into the visited
//!    stutter-first subtree. (In persistent-set terms, a globally
//!    independent transition is a singleton persistent set.)
//!
//! 2. **Sleep sets** (object-granular, this layer): each executed run
//!    carries a footprint log ([`crate::SimReport::quanta`]) of which
//!    objects every quantum read or wrote. The explorers maintain
//!    classical sleep sets over it: after branch `c` of a node is
//!    explored, the canonical quantum's `(pid, footprint)` joins the
//!    sleep set inherited by the later siblings, and a sibling whose
//!    dispatched process is still asleep when its node is reached is
//!    skipped — every schedule below it commutes, footprint-wise, into
//!    the subtree already explored. An entry leaves the sleep set as soon
//!    as any executed quantum's footprint *conflicts* with it (same
//!    object, at least one write — see [`crate::Footprint`]); those
//!    wake-ups are tallied per object in [`ExploreStats::conflicts`].
//!    When a run's *canonical* choice dispatches a sleeping process, the
//!    run past that point is a redundant probe and its continuation is
//!    cut (see `walk_run`).
//!
//! The run-level `prune_safe` gate is unchanged: timers, faults, clock
//! reads, and the starvation watchdog strip both the `pure` bits and the
//! footprints (forced to [`crate::Footprint::All`]) of the whole run, so
//! both layers self-disable. Pruning is off by default because exact
//! schedule counts are themselves findings in this repository's reports.
//! See `DESIGN.md` §2.10 for the full soundness argument.
//!
//! # The revisit mode
//!
//! [`PruneMode::Revisit`] replaces the expand-then-prune shape with
//! race-driven *revisits* (classical happens-before DPOR over the same
//! footprint log — see [`crate::revisit`] and `DESIGN.md` §2.14): a
//! sibling branch is scheduled only when some executed run detects a
//! reversible race that dispatching it would reverse. Siblings never
//! requested are counted as pruned without being expanded at all, which
//! is why the mode explores strictly fewer schedules than the sleep-set
//! prune on contended trees. The explored set is a least fixed point of
//! the per-run request function, so the serial worklist
//! ([`Explorer::run`] in this mode) and the parallel frontier
//! ([`crate::ParallelExplorer`]) execute the identical schedule set; only
//! the serial *visit order* is worklist order rather than depth-first
//! order (sort by decision vector to compare journals).

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::footprint::{Footprint, QuantumRecord};
use crate::kernel::{ProcessStatus, SimReport};
use crate::parallel::ScheduleRecord;
use crate::policy::{CheckpointSpacing, ReplayPolicy};
use crate::revisit::plan_revisits;
use crate::sample::{SampleRecord, SampleStrategy, Sampler};
use crate::sim::{HeldRun, RunProgress, Sim};
use crate::trace::Decision;
use crate::types::Pid;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Executes one schedule per call, resuming from a spine of checkpointed
/// runs instead of replaying each schedule's whole decision prefix from
/// the root when checkpointing is enabled.
///
/// The spine holds [`HeldRun`]s parked at branch points along the current
/// depth-first path, at strictly increasing depths whose choice vectors
/// form a prefix chain (each entry's choices extend the previous entry's).
/// Both invariants are maintained structurally: entries are only deposited
/// at the depth of the schedule being run, and entries that are not a
/// prefix of the next schedule are dropped before it runs — so the spine
/// is always sorted by depth without ever being sorted explicitly.
///
/// For each schedule the runner:
///
/// 1. drops spine entries that are not prefixes of the schedule (they
///    belong to subtrees the DFS has left for good),
/// 2. pops the deepest survivor — a live run whose first `k` decisions
///    match the schedule's — to resume (a held run is *consumed* by
///    driving it; it cannot serve two schedules),
/// 3. if the spacing policy wants a checkpoint at this schedule's depth,
///    starts a fresh twin run and parks it at that depth as a deposit for
///    the schedule's future siblings (enforcing the spine budget by
///    evicting the shallowest entry),
/// 4. finishes the resumed run with the schedule's residual decisions as
///    its continuation — or falls back to a fresh whole-prefix replay
///    when no checkpoint covered any prefix of this schedule.
///
/// Determinism is untouched: a resumed run has, by construction, already
/// made exactly the decisions the schedule prescribes up to its depth, and
/// replays the residual decisions through the same [`ReplayPolicy`]
/// machinery a fresh run would use, so journals, reports, and stats are
/// byte-identical between checkpointed and replay execution. The
/// equivalence prune, fault plans, and liveness gates live entirely in the
/// report-consuming layers above and are unaffected.
pub(crate) struct SpineRunner {
    spacing: CheckpointSpacing,
    spine: Vec<(Vec<u32>, HeldRun)>,
}

impl SpineRunner {
    pub(crate) fn new(spacing: CheckpointSpacing) -> Self {
        SpineRunner {
            spacing,
            spine: Vec::new(),
        }
    }

    /// Builds a fresh run set up to replay `prefix`.
    fn fresh<S: FnMut() -> Sim>(setup: &mut S, prefix: &[u32], record_quanta: Option<bool>) -> Sim {
        let mut sim = setup();
        sim.set_policy(ReplayPolicy::prefix(prefix.to_vec()));
        if let Some(granular) = record_quanta {
            sim.set_record_quanta(granular);
        }
        sim
    }

    /// Runs the schedule given by `prefix` (canonical choice 0 past its
    /// end) and returns its result, exactly as a whole-prefix replay
    /// would. `record_quanta` is `Some(granular)` when the caller's prune
    /// needs the footprint log (see [`Explorer::run`]).
    pub(crate) fn run_schedule<S: FnMut() -> Sim>(
        &mut self,
        setup: &mut S,
        prefix: &[u32],
        record_quanta: Option<bool>,
    ) -> Result<SimReport, SimError> {
        if matches!(self.spacing, CheckpointSpacing::Replay) {
            return Self::fresh(setup, prefix, record_quanta).run();
        }
        self.spine
            .retain(|(choices, _)| prefix.starts_with(choices));
        // The deepest survivor is strictly shallower than `prefix`: an
        // entry is deposited at the depth of a schedule, and any sibling
        // visited later diverges from that schedule at or before that
        // depth, so an entry as deep as `prefix` cannot be its prefix.
        let resumed = self.spine.pop();
        if self.spacing.wants(prefix.len()) {
            // Deposit a twin of this schedule, parked at the branch point,
            // for the siblings the DFS will visit under this node. The
            // schedule itself still runs to completion below.
            match Self::fresh(setup, prefix, record_quanta)
                .into_held()
                .advance_to(prefix.len())
            {
                RunProgress::Held(held) => {
                    if self.spine.len() >= self.spacing.budget() {
                        self.spine.remove(0); // evict the shallowest
                    }
                    self.spine.push((prefix.to_vec(), held));
                }
                RunProgress::Done(result) => {
                    // The run ended before reaching the branch point: the
                    // twin executed this whole schedule already, so return
                    // its result and put the unused survivor back.
                    if let Some(entry) = resumed {
                        self.spine.push(entry);
                    }
                    return *result;
                }
            }
        }
        match resumed {
            Some((choices, mut held)) => {
                held.set_continuation(&prefix[choices.len()..]);
                held.finish()
            }
            None => Self::fresh(setup, prefix, record_quanta).run(),
        }
    }
}

/// Which reduction the explorers apply when pruning is enabled.
///
/// All three modes preserve the set of distinct user-event traces; they
/// differ in how much of the schedule tree they must execute to cover it
/// (`Coarse` ⊇ `Granular` ⊇ `Revisit`, schedule-count-wise, on contended
/// trees) and in what [`ExploreStats::conflicts`] tallies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PruneMode {
    /// Pure-stutter siblings only (the PR 3 prune): a decision whose
    /// canonical quantum touched nothing prunes all its siblings. Kept
    /// addressable so the finer layers' contributions can be measured.
    Coarse,
    /// Object-granular sleep sets over the footprint log (the PR 5
    /// prune, `DESIGN.md` §2.10). Subsumes `Coarse`. The default.
    Granular,
    /// Race-driven revisits (classical happens-before DPOR, `DESIGN.md`
    /// §2.14): siblings are only ever *scheduled* when a detected race
    /// requests them, instead of being expanded and then put to sleep.
    /// Near-optimal — strictly fewer schedules than `Granular` on every
    /// benchmarked tree. The serial visit order is worklist order, not
    /// depth-first order (the executed *set* is identical).
    Revisit,
}

/// The first failed schedule of an exploration, with enough context to
/// replay it: the full decision vector that produced the failure and the
/// failure itself (whose report carries the partial trace and metrics).
///
/// "First" is deterministic regardless of exploration strategy or thread
/// count: it is the failing schedule whose decision vector comes first in
/// canonical depth-first order — the order [`Explorer`] visits natively
/// and [`crate::ParallelExplorer`] reconstructs by sorting.
#[derive(Debug, Clone)]
pub struct ExploreError {
    /// The decision vector (one chosen index per contested decision) of
    /// the failing schedule; feed it to [`ReplayPolicy::new`] to rerun it.
    pub choices: Vec<u32>,
    /// The failure.
    pub error: SimError,
}

/// Result summary of an exploration.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ExploreStats {
    /// How many distinct schedules were executed.
    pub schedules: usize,
    /// Whether the entire schedule tree was covered (no budget cut-off).
    /// Pruned branches count as covered: their behaviors are represented.
    pub complete: bool,
    /// How many branches (whole subtrees, not schedules) the equivalence
    /// prune skipped: sibling branches of pure decisions, siblings whose
    /// process was asleep, and abandoned canonical continuations of cut
    /// runs (see `walk_run`'s cut rule). Always 0 unless pruning was
    /// enabled.
    pub pruned: usize,
    /// Schedule histogram by depth: `depth_schedules[d]` counts executed
    /// schedules whose decision vector had exactly `d` contested
    /// decisions. Sums to `schedules`.
    pub depth_schedules: Vec<usize>,
    /// Prune histogram by depth: `depth_pruned[d]` counts sibling branches
    /// skipped at decision index `d`. Sums to `pruned`.
    pub depth_pruned: Vec<usize>,
    /// Per-object conflict tally of the prune, keyed by the conflicting
    /// object's full name (`"*"` when both sides were opaque
    /// [`crate::Footprint::All`]). In the sleep-set modes: how many times
    /// an executed quantum's footprint conflicted with (and so evicted) a
    /// sleeping entry. In [`PruneMode::Revisit`]: how many reversible
    /// races were detected on the object. Summed over every executed run;
    /// deterministic and identical across thread counts for complete
    /// explorations. Empty unless pruning was enabled. A hot object here
    /// is the object whose contention limits the reduction.
    pub conflicts: BTreeMap<String, u64>,
    /// [`PruneMode::Revisit`] only: total race-derived branch requests
    /// generated across all executed runs, *including* requests whose
    /// branch was already scheduled (each run's requests are a pure
    /// function of that run, so the sum is strategy-independent). Always
    /// 0 in the other modes.
    pub revisit_requests: u64,
    /// [`PruneMode::Revisit`] only: how many requested branches were
    /// fresh and actually scheduled. Every executed schedule except the
    /// root is a granted revisit or a granted symbolic value request, so
    /// a complete revisit exploration has
    /// `schedules == revisits + sym_grants + 1`. Always 0 in the other
    /// modes.
    pub revisits: u64,
    /// [`PruneMode::Revisit`] only: total value-sibling branch requests
    /// produced by the symbolic collapse over [`crate::Ctx::choose_value`]
    /// decisions, *including* requests whose branch was already scheduled
    /// (each run's requests are a pure function of that run). Value
    /// siblings in the same constraint class as an executed value are
    /// never requested — that is the collapse. Always 0 in the other
    /// modes, which enumerate every domain value concretely.
    pub sym_requests: u64,
    /// [`PruneMode::Revisit`] only: how many symbolic value requests were
    /// fresh and actually scheduled. Collapsed value siblings (discovered
    /// minus granted) are counted in [`ExploreStats::pruned`] at the
    /// decision's depth, next to the race-revisit tallies. Always 0 in
    /// the other modes.
    pub sym_grants: u64,
    /// The first failed schedule in canonical depth-first order, if any
    /// schedule failed. Exploration does not stop at a failure — the rest
    /// of the tree is still covered — but the canonical-first failure is
    /// kept for replay and is identical across explorer thread counts.
    pub first_error: Option<ExploreError>,
    /// Bug-finding statistics when the schedules were *sampled* rather
    /// than enumerated ([`crate::Sampler`]); `None` for the exhaustive
    /// explorers. A sampling run never proves absence — `complete` then
    /// means only "every requested iteration ran".
    pub sampling: Option<crate::sample::SampleStats>,
}

impl ExploreStats {
    /// Folds one schedule into the depth histogram.
    pub(crate) fn count_schedule_at_depth(&mut self, depth: usize) {
        bump_depth(&mut self.depth_schedules, depth, 1);
        self.schedules += 1;
    }

    /// Folds pruned sibling branches at `depth` into the prune histogram.
    pub(crate) fn count_pruned_at_depth(&mut self, depth: usize, branches: usize) {
        bump_depth(&mut self.depth_pruned, depth, branches);
        self.pruned += branches;
    }

    /// Asserts the accounting invariants that hold in every mode and
    /// through every execution strategy: the per-depth histograms are
    /// exact decompositions of their totals (no drift, no trailing empty
    /// buckets) and the revisit tallies are mutually consistent. Both
    /// explorers run this under `debug_assertions` on every stats value
    /// they return; tests call it directly on release builds.
    ///
    /// # Panics
    ///
    /// Panics if any tally has drifted from its histogram.
    pub fn assert_consistent(&self) {
        assert_eq!(
            self.depth_schedules.iter().sum::<usize>(),
            self.schedules,
            "depth_schedules must decompose schedules exactly"
        );
        assert_eq!(
            self.depth_pruned.iter().sum::<usize>(),
            self.pruned,
            "depth_pruned must decompose pruned exactly"
        );
        assert_ne!(
            self.depth_schedules.last(),
            Some(&0),
            "depth_schedules must not have trailing empty buckets"
        );
        assert_ne!(
            self.depth_pruned.last(),
            Some(&0),
            "depth_pruned must not have trailing empty buckets"
        );
        assert!(
            self.revisits <= self.revisit_requests,
            "every granted revisit was first requested ({} > {})",
            self.revisits,
            self.revisit_requests
        );
        assert!(
            self.sym_grants <= self.sym_requests,
            "every granted symbolic value was first requested ({} > {})",
            self.sym_grants,
            self.sym_requests
        );
        if (self.revisits > 0 || self.sym_grants > 0) && self.complete {
            assert_eq!(
                self.schedules,
                self.revisits as usize + self.sym_grants as usize + 1,
                "in revisit mode every non-root schedule is a granted revisit \
                 or a granted symbolic value"
            );
        }
    }
}

/// Adds `by` to `hist[depth]`, growing the histogram as needed.
pub(crate) fn bump_depth(hist: &mut Vec<usize>, depth: usize, by: usize) {
    if hist.len() <= depth {
        hist.resize(depth + 1, 0);
    }
    hist[depth] += by;
}

/// Elementwise-adds `src` into `dst` (histogram merge).
pub(crate) fn merge_depth(dst: &mut Vec<usize>, src: &[usize]) {
    for (depth, &by) in src.iter().enumerate() {
        if by > 0 {
            bump_depth(dst, depth, by);
        }
    }
}

/// Additively merges a per-object conflict tally into `dst`.
pub(crate) fn merge_conflicts(dst: &mut BTreeMap<String, u64>, src: &BTreeMap<String, u64>) {
    for (obj, &by) in src {
        *dst.entry(obj.clone()).or_insert(0) += by;
    }
}

/// A sleep set: processes whose dispatch at the current point is known to
/// commute into an already-explored sibling subtree, each with the
/// footprint its (explored) quantum had. An entry is evicted as soon as an
/// executed quantum's footprint conflicts with it — after a conflicting
/// write, the sleeping process's quantum might no longer do what the
/// explored branch saw it do.
///
/// A `Vec` in insertion order, not a map: sets are tiny (bounded by the
/// process count), cloning must be cheap, and deterministic iteration
/// order keeps the per-object conflict tallies identical across explorer
/// strategies.
#[derive(Debug, Clone, Default)]
pub(crate) struct SleepSet {
    entries: Vec<(Pid, Footprint)>,
}

impl SleepSet {
    pub(crate) fn contains(&self, pid: Pid) -> bool {
        self.entries.iter().any(|(p, _)| *p == pid)
    }

    fn insert(&mut self, pid: Pid, footprint: Footprint) {
        match self.entries.iter_mut().find(|(p, _)| *p == pid) {
            Some(slot) => slot.1 = footprint,
            None => self.entries.push((pid, footprint)),
        }
    }

    fn remove(&mut self, pid: Pid) {
        self.entries.retain(|(p, _)| *p != pid);
    }

    /// Evicts every entry whose footprint conflicts with `footprint`,
    /// tallying each eviction under the conflicting object's name.
    fn wake_filter(&mut self, footprint: &Footprint, conflicts: &mut BTreeMap<String, u64>) {
        self.entries
            .retain(|(_, fp)| match footprint.conflict_with(fp) {
                Some(obj) => {
                    *conflicts.entry(obj.to_string()).or_insert(0) += 1;
                    false
                }
                None => true,
            });
    }
}

/// What one run's walk learned about one newly discovered decision node.
#[derive(Debug, Clone)]
pub(crate) struct NodeInfo {
    /// The canonical quantum was a pure stutter: prune *all* siblings.
    pub(crate) pure: bool,
    /// `asleep[c]`: the process sibling choice `c` would dispatch was in
    /// the sleep set when the node was reached — prune that sibling.
    /// Indexed like the decision's ready list; entry 0 is unused.
    pub(crate) asleep: Vec<bool>,
    /// The sleep set sibling branches of this node inherit: the set at
    /// the node plus the canonical quantum's own `(pid, footprint)` entry
    /// (omitted when the footprint is opaque `All` — an unknowable
    /// quantum can vouch for no commutation). Identical for every sibling
    /// by construction, which is what keeps the serial and parallel
    /// explorers' pruned trees byte-identical: neither may use what a
    /// *sibling's* quantum turned out to touch, because the other
    /// explorer might expand the node before ever running that sibling.
    pub(crate) child_sleep: SleepSet,
}

/// Walks one executed run's footprint log, producing a [`NodeInfo`] for
/// every decision node the run discovered (index `start` onward) and
/// evolving the sleep set from `inherited` (the set in force at the run's
/// branch point — decision `start - 1`) through every executed quantum.
/// Conflict evictions along the walk are tallied into `conflicts`.
///
/// **The cut rule.** The replay policy always takes choice 0 past its
/// prefix, so a run cannot avoid dispatching a sleeping process when that
/// process heads the ready list. When a newly discovered node's executed
/// canonical choice dispatches a process still in the sleep set, every
/// behavior below that choice is covered by the earlier subtree that put
/// the process to sleep: the run from there on is a redundant probe. The
/// walk stops at that node (its `NodeInfo` is still emitted — its
/// *siblings* are not redundant), so the caller sees a short vector,
/// expands nothing deeper, and counts the abandoned canonical
/// continuation as one pruned branch at the cut node's depth.
///
/// Both explorers call this once per executed run with identical
/// arguments, so every derived quantity (prune verdicts, child sleep
/// sets, conflict tallies, the cut position) is independent of
/// exploration strategy.
pub(crate) fn walk_run(
    decisions: &[Decision],
    quanta: &[QuantumRecord],
    start: usize,
    inherited: &SleepSet,
    conflicts: &mut BTreeMap<String, u64>,
) -> Vec<NodeInfo> {
    // Contested quanta align 1:1 with the `Sched`-kind decisions; a
    // `Data`-kind decision ([`crate::Ctx::choose_value`]) was made *during*
    // some quantum and owns none. Data nodes get a conservative
    // [`NodeInfo`]: never pure, no value sibling ever asleep (the concrete
    // DFS modes enumerate every domain value), and a child sleep set taken
    // from the running set — which only shrinks along a walk, so any
    // snapshot at or after the choice is sound for the value siblings.
    let sched_indices: Vec<usize> = decisions
        .iter()
        .enumerate()
        .filter_map(|(i, d)| d.is_sched().then_some(i))
        .collect();
    let contested = quanta.iter().filter(|q| q.ready.is_some()).count();
    if contested != sched_indices.len() {
        // No usable footprint log (the explorers force `record_quanta` on,
        // so this is only reachable through a hand-built `Sim` path):
        // degrade to the pure-only prune with empty sleep sets.
        debug_assert!(quanta.is_empty(), "partial quantum log");
        return decisions[start..]
            .iter()
            .map(|d| NodeInfo {
                pure: d.pure,
                asleep: vec![false; d.arity as usize],
                child_sleep: SleepSet::default(),
            })
            .collect();
    }
    let data_node = |d: &Decision, sleep: &SleepSet| {
        debug_assert!(d.is_data());
        NodeInfo {
            pure: false,
            asleep: vec![false; d.arity as usize],
            child_sleep: sleep.clone(),
        }
    };
    let mut out = Vec::with_capacity(decisions.len().saturating_sub(start));
    let mut sleep = inherited.clone();
    // Quanta strictly before the branch quantum are part of the shared
    // prefix whose effects `inherited` already reflects; the branch
    // quantum itself and everything after must still be applied. The
    // branch quantum is the contested quantum of the nearest `Sched`
    // decision at or before `start - 1`: a branch at a data decision
    // re-executes from inside that quantum, and re-applying quanta only
    // shrinks the sleep set, which is conservative.
    let branch_sched = (0..start).rev().find(|&i| decisions[i].is_sched());
    let mut active = branch_sched.is_none();
    // The next decision index to emit; data decisions between contested
    // quanta are emitted when the walk reaches the next contested quantum
    // (or the end of the run), with the running set at that point.
    let mut emit_di = start;
    let mut next_sched = 0usize;
    for q in quanta {
        let index = q.ready.is_some().then(|| {
            let i = sched_indices[next_sched];
            next_sched += 1;
            i
        });
        if !active {
            match index {
                Some(i) if Some(i) == branch_sched => active = true,
                _ => continue,
            }
        }
        if let Some(i) = index {
            if i >= start {
                while emit_di < i {
                    out.push(data_node(&decisions[emit_di], &sleep));
                    emit_di += 1;
                }
                let d = &decisions[i];
                let ready = q
                    .ready
                    .as_ref()
                    .expect("contested quantum has a ready list");
                debug_assert_eq!(ready.len(), d.arity as usize);
                let asleep: Vec<bool> = if d.pure {
                    vec![false; ready.len()] // purity prunes all siblings anyway
                } else {
                    ready.iter().map(|pid| sleep.contains(*pid)).collect()
                };
                let cut = asleep[d.chosen as usize];
                let mut child_sleep = sleep.clone();
                if q.footprint.is_all() {
                    child_sleep.remove(q.pid);
                } else {
                    child_sleep.insert(q.pid, q.footprint.clone());
                }
                out.push(NodeInfo {
                    pure: d.pure,
                    asleep,
                    child_sleep,
                });
                emit_di = i + 1;
                if cut {
                    // The executed canonical choice dispatched a sleeping
                    // process: the rest of this run is a redundant probe.
                    return out;
                }
            }
        }
        // Effects of executing this quantum (contested, forced, or unwind
        // bookkeeping) on the running sleep set: the dispatched process is
        // no longer deferred, and conflicting entries wake up.
        sleep.remove(q.pid);
        sleep.wake_filter(&q.footprint, conflicts);
    }
    // Data decisions made during the final quanta, after the last
    // contested dispatch.
    while emit_di < decisions.len() {
        out.push(data_node(&decisions[emit_di], &sleep));
        emit_di += 1;
    }
    debug_assert_eq!(out.len(), decisions.len().saturating_sub(start));
    out
}

/// Result summary of a kill-point sweep ([`Explorer::run_kill_points`]).
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct KillPointStats {
    /// Total schedules executed across all explored kill points.
    pub schedules: usize,
    /// Whether every explored kill point covered its whole tree.
    pub complete: bool,
    /// Total sibling branches skipped by the equivalence prune.
    pub pruned: usize,
    /// Per-kill-point counts, in sweep order. Points past the victim's
    /// maximum observed scheduling-point count are not explored (they can
    /// never fire), so this may be shorter than `max_points`.
    pub per_point: Vec<KillPointCount>,
    /// Schedule histogram by depth, merged across kill points (see
    /// [`ExploreStats::depth_schedules`]).
    pub depth_schedules: Vec<usize>,
    /// Prune histogram by depth, merged across kill points.
    pub depth_pruned: Vec<usize>,
    /// Per-object conflict tally, merged across kill points (see
    /// [`ExploreStats::conflicts`]).
    pub conflicts: BTreeMap<String, u64>,
    /// Race-derived branch requests, merged across kill points (see
    /// [`ExploreStats::revisit_requests`]).
    pub revisit_requests: u64,
    /// Granted revisits, merged across kill points (see
    /// [`ExploreStats::revisits`]).
    pub revisits: u64,
    /// Symbolic value requests, merged across kill points (see
    /// [`ExploreStats::sym_requests`]).
    pub sym_requests: u64,
    /// Granted symbolic values, merged across kill points (see
    /// [`ExploreStats::sym_grants`]).
    pub sym_grants: u64,
    /// The first failed schedule: the canonical-first failure of the
    /// earliest kill point that had one (points are swept in order, so
    /// this too is deterministic across strategies and thread counts).
    pub first_error: Option<ExploreError>,
}

impl KillPointStats {
    /// Asserts the accounting invariants of a kill-point sweep: the depth
    /// histograms decompose the totals and the per-point counts sum to
    /// the schedule total (see [`ExploreStats::assert_consistent`]).
    ///
    /// # Panics
    ///
    /// Panics if any tally has drifted from its histogram.
    pub fn assert_consistent(&self) {
        assert_eq!(
            self.depth_schedules.iter().sum::<usize>(),
            self.schedules,
            "depth_schedules must decompose schedules exactly"
        );
        assert_eq!(
            self.depth_pruned.iter().sum::<usize>(),
            self.pruned,
            "depth_pruned must decompose pruned exactly"
        );
        assert_eq!(
            self.per_point.iter().map(|p| p.schedules).sum::<usize>(),
            self.schedules,
            "per-point schedule counts must sum to the total"
        );
        assert!(
            self.per_point.iter().all(|p| p.kills <= p.schedules),
            "a kill fires at most once per schedule"
        );
        assert!(
            self.revisits <= self.revisit_requests,
            "every granted revisit was first requested"
        );
        assert!(
            self.sym_grants <= self.sym_requests,
            "every granted symbolic value was first requested"
        );
    }
}

/// Exploration counts for one kill point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPointCount {
    /// The kill point (the victim's Nth scheduling point, 1-based).
    pub point: u64,
    /// Schedules executed with the kill armed at this point.
    pub schedules: usize,
    /// Schedules in which the kill actually fired (the victim died).
    pub kills: usize,
}

/// An optional progress callback, newtyped so the builders that hold one
/// can `#[derive(Debug)]` over *all* their fields instead of maintaining a
/// hand-written impl that silently goes stale when a field is added:
/// closures have no useful `Debug`, so this prints only whether a callback
/// is installed.
#[derive(Clone, Default)]
pub(crate) struct ProgressCallback(pub(crate) Option<Arc<dyn Fn(usize) + Send + Sync>>);

impl std::fmt::Debug for ProgressCallback {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "Some(..)" } else { "None" })
    }
}

/// Depth-first enumerator of all schedules of a scenario.
#[derive(Debug, Clone)]
pub struct Explorer {
    max_schedules: usize,
    prune: bool,
    mode: PruneMode,
    checkpoint: CheckpointSpacing,
    progress_every: usize,
    progress: ProgressCallback,
}

impl Explorer {
    /// Creates an explorer that runs at most `max_schedules` schedules.
    pub fn new(max_schedules: usize) -> Self {
        Explorer {
            max_schedules,
            prune: false,
            mode: PruneMode::Granular,
            checkpoint: CheckpointSpacing::default(),
            progress_every: 0,
            progress: ProgressCallback::default(),
        }
    }

    /// Selects how schedules are executed: by whole-prefix replay
    /// ([`CheckpointSpacing::Replay`]) or by resuming held runs parked at
    /// branch points along the depth-first path (see [`CheckpointSpacing`]
    /// and `DESIGN.md` §2.13). Results are byte-identical either way.
    pub fn with_checkpointing(mut self, spacing: CheckpointSpacing) -> Self {
        self.checkpoint = spacing;
        self
    }

    /// Enables the equivalence prune (see the module docs): branches whose
    /// subtrees are provably equivalent to already-explored ones are
    /// skipped and counted in [`ExploreStats::pruned`].
    pub fn with_pruning(mut self) -> Self {
        self.prune = true;
        self.mode = PruneMode::Granular;
        self
    }

    /// Enables only the *first* layer of the equivalence prune — pure
    /// stutter siblings — leaving the object-granular sleep-set layer
    /// off. This is the pre-footprint prune, kept addressable so the
    /// sleep-set layer's contribution can be measured (see
    /// `bench_explore`); for actual exploration prefer
    /// [`Explorer::with_pruning`], which subsumes it.
    pub fn with_coarse_pruning(mut self) -> Self {
        self.prune = true;
        self.mode = PruneMode::Coarse;
        self
    }

    /// Enables the race-driven revisit prune ([`PruneMode::Revisit`], see
    /// the module docs and `DESIGN.md` §2.14): only sibling branches that
    /// reverse a detected race are scheduled, every other sibling is
    /// counted as pruned without being expanded. Explores strictly fewer
    /// schedules than [`Explorer::with_pruning`] on contended trees;
    /// `visit` is invoked in deterministic worklist order rather than
    /// depth-first order.
    pub fn with_revisit_pruning(mut self) -> Self {
        self.prune = true;
        self.mode = PruneMode::Revisit;
        self
    }

    /// Installs a progress callback fired once per `every` executed
    /// schedules, with the running schedule count as argument (see
    /// [`crate::ParallelExplorer::with_progress`] — for the serial
    /// explorer the milestones are simply every `every`-th schedule in
    /// depth-first order). `every == 0` disables the callback.
    pub fn with_progress<F>(mut self, every: usize, callback: F) -> Self
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        self.progress_every = every;
        self.progress = ProgressCallback(Some(Arc::new(callback)));
        self
    }

    /// Explores the scenario produced by `setup`.
    ///
    /// `setup` must build an identical simulation each time it is called
    /// (the explorer overrides the policy). `visit` is invoked once per
    /// schedule with the decision vector taken and the run outcome.
    ///
    /// A failed schedule (deadlock, panic, step-budget overrun) does not
    /// abort the exploration: the failure is still passed to `visit`, the
    /// rest of the tree is covered, and the canonical-first failure is
    /// returned in [`ExploreStats::first_error`].
    ///
    /// # Panics
    ///
    /// Panics if `setup` produces runs whose decision structure is not a
    /// function of prior decisions (i.e. a nondeterministic scenario), which
    /// manifests as a replay prefix mismatch.
    pub fn run<S, V>(&self, mut setup: S, mut visit: V) -> ExploreStats
    where
        S: FnMut() -> Sim,
        V: FnMut(&[Decision], &Result<SimReport, SimError>),
    {
        if self.prune && self.mode == PruneMode::Revisit {
            return self.run_revisit(setup, visit);
        }
        let mut prefix: Vec<u32> = Vec::new();
        // Per-depth prune facts for the nodes on the current path, recorded
        // when each node is first discovered (by the run that first reached
        // it). Using the discovery run's verdicts — rather than any later
        // run's — keeps the pruned tree identical to ParallelExplorer's,
        // which can only consult the discovering run.
        let mut path: Vec<NodeInfo> = Vec::new();
        // The sleep set in force at the start of the next run: the
        // branched-from node's `child_sleep` (empty for the root run).
        let mut pending_sleep = SleepSet::default();
        let mut stats = ExploreStats::default();
        // The sleep-set layer needs the footprint log; the coarse mode
        // drops it, degrading `walk_run` to the pure-only prune with
        // empty sleep sets.
        let record_quanta = if self.prune {
            Some(self.mode == PruneMode::Granular)
        } else {
            None
        };
        let mut spine = SpineRunner::new(self.checkpoint);
        loop {
            let result = spine.run_schedule(&mut setup, &prefix, record_quanta);
            let (decisions, quanta, metrics): (&[Decision], &[QuantumRecord], _) = match &result {
                Ok(report) => (&report.decisions, &report.quanta, &report.metrics),
                Err(err) => (
                    &err.report.decisions,
                    &err.report.quanta,
                    &err.report.metrics,
                ),
            };
            // An exhaustive walk replays only prefixes of vectors the tree
            // itself produced, so any recorded divergence means the
            // scenario is not a function of its decisions.
            debug_assert!(
                !metrics.replay.diverged(),
                "replay diverged ({:?}) during exploration: scenario is nondeterministic",
                metrics.replay
            );
            for (i, want) in prefix.iter().enumerate() {
                assert!(
                    decisions.get(i).map(|d| d.chosen) == Some(*want),
                    "replay prefix diverged at decision {i}: scenario is nondeterministic"
                );
            }
            // Decisions past the replay prefix take the canonical choice 0;
            // this run discovers those nodes, so it fixes their prune facts.
            debug_assert!(decisions[prefix.len()..].iter().all(|d| d.chosen == 0));
            if self.prune {
                let start = path.len();
                path.extend(walk_run(
                    decisions,
                    quanta,
                    start,
                    &pending_sleep,
                    &mut stats.conflicts,
                ));
                if path.len() < decisions.len() {
                    // The walk cut this run at `path.len() - 1`: its
                    // canonical continuation is redundant. Count the
                    // abandoned continuation as one pruned branch; the
                    // backtrack scan below never looks past the cut.
                    stats.count_pruned_at_depth(path.len() - 1, 1);
                }
            }
            visit(decisions, &result);
            stats.count_schedule_at_depth(decisions.len());
            if self.progress_every > 0 && stats.schedules.is_multiple_of(self.progress_every) {
                if let Some(progress) = &self.progress.0 {
                    progress(stats.schedules);
                }
            }
            if let Err(err) = &result {
                // Depth-first order *is* canonical order, so the first
                // failure seen wins.
                if stats.first_error.is_none() {
                    stats.first_error = Some(ExploreError {
                        choices: decisions.iter().map(|d| d.chosen).collect(),
                        error: err.clone(),
                    });
                }
            }
            // Backtrack to the deepest decision with an unexplored,
            // unpruned branch — checked *before* the budget so a tree of
            // exactly `max_schedules` schedules still reports `complete`.
            // With the prune on, decisions past a cut are not on the path
            // and are never scanned (their subtrees are covered).
            let scan_len = if self.prune {
                path.len().min(decisions.len())
            } else {
                decisions.len()
            };
            let mut next_branch = None;
            'scan: for i in (0..scan_len).rev() {
                let (chosen, arity) = (decisions[i].chosen, decisions[i].arity);
                if chosen + 1 >= arity {
                    continue;
                }
                if !self.prune {
                    next_branch = Some((i, chosen + 1));
                    break;
                }
                if path[i].pure {
                    stats.count_pruned_at_depth(i, (arity - 1 - chosen) as usize);
                    continue;
                }
                for c in (chosen + 1)..arity {
                    if path[i].asleep[c as usize] {
                        stats.count_pruned_at_depth(i, 1);
                    } else {
                        next_branch = Some((i, c));
                        break 'scan;
                    }
                }
            }
            let Some((i, c)) = next_branch else {
                stats.complete = true;
                #[cfg(debug_assertions)]
                stats.assert_consistent();
                return stats;
            };
            if stats.schedules >= self.max_schedules {
                #[cfg(debug_assertions)]
                stats.assert_consistent();
                return stats;
            }
            // Advance the prefix in place: entries below `i` already match
            // the decision vector (asserted above).
            let keep = i.min(prefix.len());
            prefix.truncate(keep);
            prefix.extend(decisions[keep..i].iter().map(|d| d.chosen));
            prefix.push(c);
            if self.prune {
                pending_sleep = path[i].child_sleep.clone();
                path.truncate(i + 1);
            }
        }
    }

    /// The [`PruneMode::Revisit`] strategy: a deterministic worklist
    /// fixed point instead of a depth-first walk.
    ///
    /// The worklist starts with the root schedule. Each popped prefix is
    /// executed, its newly discovered decision nodes are registered (with
    /// a marker for their canonical choice-0 branch, which the run itself
    /// explores), and its race analysis ([`plan_revisits`]) produces the
    /// sibling branches to schedule; a request is granted only if its
    /// branch was never scheduled before. Because each run's requests are
    /// a pure function of that run, the executed set is the least fixed
    /// point of "the root, plus everything any executed run requests" —
    /// independent of pop order, which is what makes the parallel
    /// frontier execute the byte-identical set.
    ///
    /// Pruned-branch accounting is settled at the end: every sibling of
    /// every discovered contested node that was never granted is a pruned
    /// branch at that node's depth. (A granted-but-unexecuted branch
    /// under a budget cut is neither executed nor pruned, exactly like an
    /// unvisited frontier entry in the other modes.)
    fn run_revisit<S, V>(&self, mut setup: S, mut visit: V) -> ExploreStats
    where
        S: FnMut() -> Sim,
        V: FnMut(&[Decision], &Result<SimReport, SimError>),
    {
        let mut pending: BTreeSet<Vec<u32>> = BTreeSet::new();
        // Every branch prefix ever scheduled: granted revisits plus the
        // canonical choice-0 markers of discovered nodes. Grants are
        // fresh insertions, so a branch can never run (or be counted)
        // twice — in particular a race requesting choice 0 at a node
        // reached through a non-canonical prefix is recognised as already
        // covered by the run that discovered the node.
        let mut scheduled: BTreeSet<Vec<u32>> = BTreeSet::new();
        pending.insert(Vec::new());
        scheduled.insert(Vec::new());
        // Per-depth sibling capacity of discovered contested nodes
        // (arity - 1 each) and per-depth granted revisits; their
        // difference is the prune histogram. Data decisions are accounted
        // in their own pair so the symbolic-collapse tallies stay
        // separable from the race-revisit ones.
        let mut potential: Vec<usize> = Vec::new();
        let mut granted: Vec<usize> = Vec::new();
        let mut data_potential: Vec<usize> = Vec::new();
        let mut data_granted: Vec<usize> = Vec::new();
        let mut stats = ExploreStats::default();
        let mut spine = SpineRunner::new(self.checkpoint);
        while let Some(prefix) = pending.pop_first() {
            if stats.schedules >= self.max_schedules {
                pending.insert(prefix); // budget hit with work left
                break;
            }
            // The race analysis always needs the footprint log.
            let result = spine.run_schedule(&mut setup, &prefix, Some(true));
            let (decisions, quanta, metrics): (&[Decision], &[QuantumRecord], _) = match &result {
                Ok(report) => (&report.decisions, &report.quanta, &report.metrics),
                Err(err) => (
                    &err.report.decisions,
                    &err.report.quanta,
                    &err.report.metrics,
                ),
            };
            debug_assert!(
                !metrics.replay.diverged(),
                "replay diverged ({:?}) during exploration: scenario is nondeterministic",
                metrics.replay
            );
            for (i, want) in prefix.iter().enumerate() {
                assert!(
                    decisions.get(i).map(|d| d.chosen) == Some(*want),
                    "replay prefix diverged at decision {i}: scenario is nondeterministic"
                );
            }
            debug_assert!(decisions[prefix.len()..].iter().all(|d| d.chosen == 0));
            let choices: Vec<u32> = decisions.iter().map(|d| d.chosen).collect();
            // Register the nodes this run discovered, with their
            // canonical-branch markers.
            for (i, d) in decisions.iter().enumerate().skip(prefix.len()) {
                if d.arity > 1 {
                    let capacity = if d.is_sched() {
                        &mut potential
                    } else {
                        &mut data_potential
                    };
                    bump_depth(capacity, i, d.arity as usize - 1);
                    scheduled.insert(choices[..=i].to_vec());
                }
            }
            let plan = plan_revisits(decisions, quanta, prefix.len(), &mut stats.conflicts);
            stats.revisit_requests += plan.requests.len() as u64;
            for (i, c) in plan.requests {
                let mut branch = choices[..i].to_vec();
                branch.push(c);
                if scheduled.insert(branch.clone()) {
                    bump_depth(&mut granted, i, 1);
                    stats.revisits += 1;
                    pending.insert(branch);
                }
            }
            // Symbolic collapse over the run's data decisions: each
            // [`crate::DataChoice`] partitions its domain by the constraint
            // outcomes this run recorded, and one representative of every
            // class the chosen value does not cover is requested.
            // Constraints recorded *after* the branch point can split
            // classes at earlier slots, so every slot is re-examined on
            // every run — requests stay a pure function of the run, and
            // grants are fresh insertions into `scheduled`, preserving the
            // order-independent fixed point.
            let data_choices = match &result {
                Ok(report) => &report.data_choices,
                Err(err) => &err.report.data_choices,
            };
            let mut slot = 0usize;
            for (i, d) in decisions.iter().enumerate() {
                if !d.is_data() {
                    continue;
                }
                let requests = data_choices[slot].collapse_requests();
                slot += 1;
                stats.sym_requests += requests.len() as u64;
                for c in requests {
                    let mut branch = choices[..i].to_vec();
                    branch.push(c);
                    if scheduled.insert(branch.clone()) {
                        bump_depth(&mut data_granted, i, 1);
                        stats.sym_grants += 1;
                        pending.insert(branch);
                    }
                }
            }
            debug_assert_eq!(slot, data_choices.len(), "data decision/choice drift");
            visit(decisions, &result);
            stats.count_schedule_at_depth(decisions.len());
            if self.progress_every > 0 && stats.schedules.is_multiple_of(self.progress_every) {
                if let Some(progress) = &self.progress.0 {
                    progress(stats.schedules);
                }
            }
            if let Err(err) = &result {
                // Worklist pop order is not canonical depth-first order,
                // so keep the lexicographic minimum explicitly (the same
                // winner the parallel explorer's merge picks).
                let candidate = ExploreError {
                    choices,
                    error: err.clone(),
                };
                match &stats.first_error {
                    Some(cur) if cur.choices <= candidate.choices => {}
                    _ => stats.first_error = Some(candidate),
                }
            }
        }
        stats.complete = pending.is_empty();
        for (depth, &cap) in potential.iter().enumerate() {
            let taken = granted.get(depth).copied().unwrap_or(0);
            debug_assert!(taken <= cap, "granted more siblings than exist");
            if cap > taken {
                stats.count_pruned_at_depth(depth, cap - taken);
            }
        }
        for (depth, &cap) in data_potential.iter().enumerate() {
            let taken = data_granted.get(depth).copied().unwrap_or(0);
            debug_assert!(taken <= cap, "granted more value siblings than exist");
            if cap > taken {
                stats.count_pruned_at_depth(depth, cap - taken);
            }
        }
        #[cfg(debug_assertions)]
        stats.assert_consistent();
        stats
    }

    /// Explores the (schedule × kill-point) space of a scenario: for each
    /// kill point `k` in `1..=max_points`, every schedule of the scenario
    /// is run with `victim` killed at its `k`-th scheduling point.
    ///
    /// `visit` receives the kill point, the decision vector, and the run
    /// outcome. The sweep stops early once a kill point never fires in any
    /// schedule: the victim's scheduling-point count is then below `k` in
    /// every interleaving, and an armed-but-idle kill plan leaves the tree
    /// identical to the unfaulted one, so no later point can fire either.
    /// `max_points` may therefore be a loose upper bound at no cost. The
    /// per-call schedule budget applies to each kill point separately;
    /// `schedules` in the returned stats is the total.
    pub fn run_kill_points<S, V>(
        &self,
        victim: &str,
        max_points: u64,
        mut setup: S,
        mut visit: V,
    ) -> KillPointStats
    where
        S: FnMut() -> Sim,
        V: FnMut(u64, &[Decision], &Result<SimReport, SimError>),
    {
        let mut stats = KillPointStats {
            complete: true,
            ..KillPointStats::default()
        };
        for point in 1..=max_points {
            let mut kills = 0usize;
            let point_stats = self.run(
                || {
                    let mut sim = setup();
                    sim.set_fault_plan(FaultPlan::new().kill(victim, point));
                    sim
                },
                |decisions, result| {
                    if victim_killed(victim, result) {
                        kills += 1;
                    }
                    visit(point, decisions, result);
                },
            );
            stats.schedules += point_stats.schedules;
            stats.complete &= point_stats.complete;
            stats.pruned += point_stats.pruned;
            merge_depth(&mut stats.depth_schedules, &point_stats.depth_schedules);
            merge_depth(&mut stats.depth_pruned, &point_stats.depth_pruned);
            merge_conflicts(&mut stats.conflicts, &point_stats.conflicts);
            stats.revisit_requests += point_stats.revisit_requests;
            stats.revisits += point_stats.revisits;
            stats.sym_requests += point_stats.sym_requests;
            stats.sym_grants += point_stats.sym_grants;
            if stats.first_error.is_none() {
                stats.first_error = point_stats.first_error;
            }
            stats.per_point.push(KillPointCount {
                point,
                schedules: point_stats.schedules,
                kills,
            });
            if kills == 0 && point_stats.complete {
                break; // the victim never reaches `point` scheduling points
            }
        }
        #[cfg(debug_assertions)]
        stats.assert_consistent();
        stats
    }
}

/// Which execution engine [`ExploreConfig::run`] and
/// [`ExploreConfig::run_kill_points`] dispatch to.
///
/// The engines differ only in *how* they walk the tree; the journal (and,
/// in [`PruneMode::Revisit`], every statistic) is byte-identical across
/// engines and worker counts, so the choice is purely a throughput knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Engine {
    /// The in-process depth-first worklist ([`Explorer`]); the default.
    #[default]
    Serial,
    /// The work-sharing thread pool ([`crate::ParallelExplorer`]).
    Parallel,
}

/// Unified front door for exploration: one builder, one visitor
/// signature, three verbs.
///
/// Collects the knobs the exploration engines share — budget, prune mode,
/// checkpoint spacing, progress callback, thread count — once, then runs
/// the campaign with [`ExploreConfig::run`] (exhaustive),
/// [`ExploreConfig::run_kill_points`] (exhaustive × fault sweep), or
/// [`ExploreConfig::sample`] (seeded sampling for trees too big to
/// enumerate). All three verbs share the `(setup, map)` shape: `setup`
/// builds a fresh [`Sim`] per run, `map` sees each run's decision vector
/// and outcome, and the journal of mapped values comes back sorted — so
/// results are identical whichever [`Engine`] or worker count executes
/// them:
///
/// ```
/// use bloom_sim::{ExploreConfig, PruneMode};
/// let config = ExploreConfig::new(10_000).mode(PruneMode::Revisit);
/// let (serial, _) = config.run(
///     || {
///         let mut sim = bloom_sim::Sim::new();
///         sim.spawn("a", |ctx| ctx.emit("a", &[]));
///         sim.spawn("b", |ctx| ctx.emit("b", &[]));
///         sim
///     },
///     |decisions, _| decisions.len(),
/// );
/// let (parallel, _) = config.clone().threads(4).run(
///     || {
///         let mut sim = bloom_sim::Sim::new();
///         sim.spawn("a", |ctx| ctx.emit("a", &[]));
///         sim.spawn("b", |ctx| ctx.emit("b", &[]));
///         sim
///     },
///     |decisions, _| decisions.len(),
/// );
/// assert_eq!(serial, parallel);
/// ```
///
/// The materialisers [`ExploreConfig::serial`] and
/// [`ExploreConfig::parallel`] remain as the *engine-level* API: they
/// hand out the underlying [`Explorer`] / [`crate::ParallelExplorer`] for
/// call sites that need an engine-specific capability (the serial
/// engine's `FnMut` visitor, engine-identity tests, benchmarks timing the
/// engines against each other). New code should prefer the unified verbs.
#[derive(Debug, Clone)]
pub struct ExploreConfig {
    budget: usize,
    prune: bool,
    mode: PruneMode,
    checkpoint: CheckpointSpacing,
    engine: Engine,
    threads: Option<usize>,
    progress_every: usize,
    progress: ProgressCallback,
}

impl ExploreConfig {
    /// Creates a configuration with the given schedule budget; pruning
    /// off, granular mode, whole-prefix replay, default thread count, no
    /// progress callback.
    pub fn new(budget: usize) -> Self {
        ExploreConfig {
            budget,
            prune: false,
            mode: PruneMode::Granular,
            checkpoint: CheckpointSpacing::default(),
            engine: Engine::Serial,
            threads: None,
            progress_every: 0,
            progress: ProgressCallback::default(),
        }
    }

    /// Selects the execution engine the unified verbs dispatch to.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Selects the schedule execution strategy: whole-prefix replay or
    /// resume-from-checkpoint (see [`Explorer::with_checkpointing`]).
    pub fn checkpoint(mut self, spacing: CheckpointSpacing) -> Self {
        self.checkpoint = spacing;
        self
    }

    /// Enables or disables the equivalence prune (see
    /// [`Explorer::with_pruning`]).
    pub fn prune(mut self, on: bool) -> Self {
        self.prune = on;
        self
    }

    /// Selects between the object-granular sleep-set prune (`true`, the
    /// default) and the coarse pure-stutter-only layer (`false`; see
    /// [`Explorer::with_coarse_pruning`]). Shorthand for
    /// [`ExploreConfig::mode`] with [`PruneMode::Granular`] or
    /// [`PruneMode::Coarse`]. No effect while pruning is off.
    pub fn granular(mut self, on: bool) -> Self {
        self.mode = if on {
            PruneMode::Granular
        } else {
            PruneMode::Coarse
        };
        self
    }

    /// Selects a prune mode and enables pruning (see [`PruneMode`]; for
    /// [`PruneMode::Revisit`] see [`Explorer::with_revisit_pruning`]).
    pub fn mode(mut self, mode: PruneMode) -> Self {
        self.prune = true;
        self.mode = mode;
        self
    }

    /// Sets the worker count and selects [`Engine::Parallel`] (the way
    /// [`ExploreConfig::mode`] selects pruning). The count also carries
    /// to [`ExploreConfig::sample`]'s worker pool. To run parallel with
    /// the default per-core count (capped at 8), use
    /// [`ExploreConfig::engine`] without calling this.
    pub fn threads(mut self, threads: usize) -> Self {
        self.engine = Engine::Parallel;
        self.threads = Some(threads.max(1));
        self
    }

    /// Installs a progress callback fired every `every` schedules (see
    /// [`Explorer::with_progress`] and
    /// [`crate::ParallelExplorer::with_progress`] for each strategy's
    /// milestone semantics). `every == 0` disables it.
    pub fn progress<F>(mut self, every: usize, callback: F) -> Self
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        self.progress_every = every;
        self.progress = ProgressCallback(Some(Arc::new(callback)));
        self
    }

    /// Explores every schedule (up to the budget) on the configured
    /// engine and returns the journal of mapped values plus the campaign
    /// statistics.
    ///
    /// `map` is invoked once per executed schedule with the decision
    /// vector taken and the run outcome; the journal is sorted by
    /// decision vector, so it is identical across engines and worker
    /// counts (see [`crate::ParallelExplorer::run`] for the merge
    /// contract the parallel engine upholds).
    pub fn run<S, M, T>(&self, setup: S, map: M) -> (Vec<ScheduleRecord<T>>, ExploreStats)
    where
        S: Fn() -> Sim + Sync,
        M: Fn(&[Decision], &Result<SimReport, SimError>) -> T + Sync,
        T: Send,
    {
        match self.engine {
            Engine::Serial => {
                let mut journal = Vec::new();
                let stats = self.serial().run(setup, |decisions, result| {
                    journal.push(ScheduleRecord {
                        choices: decisions.iter().map(|d| d.chosen).collect(),
                        value: map(decisions, result),
                    });
                });
                journal.sort_unstable_by(|a, b| a.choices.cmp(&b.choices));
                (journal, stats)
            }
            Engine::Parallel => self.parallel().run(setup, map),
        }
    }

    /// Sweeps kill points `1..=max_points` for `victim`, exploring every
    /// schedule of every faulted scenario on the configured engine (see
    /// [`Explorer::run_kill_points`] for the sweep semantics and early
    /// exit). `map` additionally receives the kill point; the journal is
    /// sorted by `(point, decision vector)`.
    pub fn run_kill_points<S, M, T>(
        &self,
        victim: &str,
        max_points: u64,
        setup: S,
        map: M,
    ) -> (Vec<(u64, ScheduleRecord<T>)>, KillPointStats)
    where
        S: Fn() -> Sim + Sync,
        M: Fn(u64, &[Decision], &Result<SimReport, SimError>) -> T + Sync,
        T: Send,
    {
        match self.engine {
            Engine::Serial => {
                let mut journal = Vec::new();
                let stats = self.serial().run_kill_points(
                    victim,
                    max_points,
                    setup,
                    |point, decisions, result| {
                        journal.push((
                            point,
                            ScheduleRecord {
                                choices: decisions.iter().map(|d| d.chosen).collect(),
                                value: map(point, decisions, result),
                            },
                        ));
                    },
                );
                journal.sort_unstable_by(|a, b| (a.0, &a.1.choices).cmp(&(b.0, &b.1.choices)));
                (journal, stats)
            }
            Engine::Parallel => self
                .parallel()
                .run_kill_points(victim, max_points, setup, map),
        }
    }

    /// Samples `iterations` seeded schedules instead of enumerating (the
    /// third engine; see [`crate::Sampler`]). The schedule budget and
    /// prune knobs do not apply — `iterations` *is* the budget, and
    /// sampling proves nothing exhaustively — but the thread count does.
    ///
    /// Same visitor shape as [`ExploreConfig::run`], except `map` also
    /// returns the *law keys* the run violated (empty when clean), which
    /// feed [`ExploreStats::sampling`]. The journal is sorted by
    /// iteration index.
    pub fn sample<S, M, T>(
        &self,
        strategy: SampleStrategy,
        iterations: usize,
        seed: u64,
        setup: S,
        map: M,
    ) -> (Vec<SampleRecord<T>>, ExploreStats)
    where
        S: Fn() -> Sim + Sync,
        M: Fn(&[Decision], &Result<SimReport, SimError>) -> (T, Vec<String>) + Sync,
        T: Send,
    {
        let mut sampler = Sampler::walk(iterations, seed).strategy(strategy);
        if let Some(threads) = self.threads {
            sampler = sampler.threads(threads);
        }
        sampler.run(setup, map)
    }

    /// Materialises a serial [`Explorer`] with this configuration
    /// (engine-level API; prefer [`ExploreConfig::run`]).
    pub fn serial(&self) -> Explorer {
        let mut explorer = Explorer::new(self.budget).with_checkpointing(self.checkpoint);
        if self.prune {
            explorer = match self.mode {
                PruneMode::Coarse => explorer.with_coarse_pruning(),
                PruneMode::Granular => explorer.with_pruning(),
                PruneMode::Revisit => explorer.with_revisit_pruning(),
            };
        }
        if let Some(progress) = &self.progress.0 {
            let progress = Arc::clone(progress);
            explorer = explorer.with_progress(self.progress_every, move |n| progress(n));
        }
        explorer
    }

    /// Materialises a [`crate::ParallelExplorer`] with this configuration
    /// (engine-level API; prefer [`ExploreConfig::run`]).
    pub fn parallel(&self) -> crate::ParallelExplorer {
        let mut explorer =
            crate::ParallelExplorer::new(self.budget).with_checkpointing(self.checkpoint);
        if let Some(threads) = self.threads {
            explorer = explorer.threads(threads);
        }
        if self.prune {
            explorer = match self.mode {
                PruneMode::Coarse => explorer.with_coarse_pruning(),
                PruneMode::Granular => explorer.with_pruning(),
                PruneMode::Revisit => explorer.with_revisit_pruning(),
            };
        }
        if let Some(progress) = &self.progress.0 {
            let progress = Arc::clone(progress);
            explorer = explorer.with_progress(self.progress_every, move |n| progress(n));
        }
        explorer
    }
}

/// Whether the named victim ended the run killed by the fault plan.
pub(crate) fn victim_killed(victim: &str, result: &Result<SimReport, SimError>) -> bool {
    let report = match result {
        Ok(report) => report,
        Err(err) => &err.report,
    };
    report
        .processes
        .iter()
        .any(|p| p.name == victim && p.status == ProcessStatus::Killed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    /// Two processes emitting one event each: exactly 2 interleavings at the
    /// first decision point... but yields create more decision points, so we
    /// just check that both orders are observed and exploration terminates.
    #[test]
    fn explores_both_orders_of_two_processes() {
        let seen = Arc::new(Mutex::new(BTreeSet::new()));
        let seen2 = Arc::clone(&seen);
        let stats = Explorer::new(1000).run(
            || {
                let mut sim = Sim::new();
                sim.spawn("a", |ctx| ctx.emit("a", &[]));
                sim.spawn("b", |ctx| ctx.emit("b", &[]));
                sim
            },
            move |_, result| {
                let report = result.as_ref().expect("no failure possible");
                let order: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, l, _)| l.to_string())
                    .collect();
                seen2.lock().insert(order);
            },
        );
        assert!(stats.complete, "tiny scenario must be fully explored");
        let seen = seen.lock();
        assert!(seen.contains(&vec!["a".to_string(), "b".to_string()]));
        assert!(seen.contains(&vec!["b".to_string(), "a".to_string()]));
    }

    /// Exploration must cover n! orderings of n independent one-shot
    /// processes (each schedule is one permutation).
    #[test]
    fn covers_all_permutations_of_three() {
        let seen = Arc::new(Mutex::new(BTreeSet::new()));
        let seen2 = Arc::clone(&seen);
        let stats = Explorer::new(10_000).run(
            || {
                let mut sim = Sim::new();
                for i in 0..3 {
                    sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
                }
                sim
            },
            move |_, result| {
                let Ok(report) = result else { return };
                let order: Vec<i64> = report
                    .trace
                    .user_events()
                    .map(|(_, _, params)| params[0])
                    .collect();
                seen2.lock().insert(order);
            },
        );
        assert!(stats.complete);
        assert_eq!(seen.lock().len(), 6, "3! = 6 distinct orders");
    }

    /// The checkpointed execution strategies visit exactly the same
    /// schedules, with the same user-event traces and stats, as
    /// whole-prefix replay — including with the equivalence prune on.
    /// (The full byte-identity root test lives in `tests/parallel_explore`;
    /// this is the fast in-crate version.)
    #[test]
    fn checkpointing_is_observably_identical_to_replay() {
        let scenario = || {
            let mut sim = Sim::new();
            for i in 0..3 {
                sim.spawn(&format!("p{i}"), move |ctx| {
                    ctx.emit("a", &[i]);
                    ctx.yield_now();
                    ctx.emit("b", &[i]);
                });
            }
            sim
        };
        let journal_of = |explorer: Explorer| {
            let journal = Arc::new(Mutex::new(Vec::new()));
            let journal2 = Arc::clone(&journal);
            let stats = explorer.run(scenario, move |decisions, result| {
                let report = result.as_ref().expect("no failure possible");
                let events: Vec<(String, i64)> = report
                    .trace
                    .user_events()
                    .map(|(_, l, p)| (l.to_string(), p[0]))
                    .collect();
                journal2.lock().push((
                    decisions.iter().map(|d| d.chosen).collect::<Vec<u32>>(),
                    events,
                ));
            });
            (Arc::into_inner(journal).unwrap().into_inner(), stats)
        };
        for prune in [false, true] {
            let build = |spacing| {
                let mut e = Explorer::new(100_000).with_checkpointing(spacing);
                if prune {
                    e = e.with_pruning();
                }
                e
            };
            let (base_journal, base_stats) = journal_of(build(CheckpointSpacing::Replay));
            for spacing in [
                CheckpointSpacing::Dense { budget: 2 },
                CheckpointSpacing::Dense { budget: 64 },
                CheckpointSpacing::Geometric { budget: 4 },
            ] {
                let (journal, stats) = journal_of(build(spacing));
                assert_eq!(journal, base_journal, "{spacing:?} prune={prune}");
                assert_eq!(stats.schedules, base_stats.schedules);
                assert_eq!(stats.pruned, base_stats.pruned);
                assert_eq!(stats.depth_schedules, base_stats.depth_schedules);
                assert_eq!(stats.conflicts, base_stats.conflicts);
                assert!(stats.complete);
            }
        }
    }

    /// The depth histograms are exact decompositions of the totals.
    #[test]
    fn depth_histograms_sum_to_totals() {
        let stats = Explorer::new(10_000).run(
            || {
                let mut sim = Sim::new();
                for i in 0..3 {
                    sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
                }
                sim
            },
            |_, _| {},
        );
        assert_eq!(stats.depth_schedules.iter().sum::<usize>(), stats.schedules);
        assert_eq!(stats.depth_pruned.iter().sum::<usize>(), stats.pruned);
        assert!(
            stats.depth_schedules.last().copied().unwrap_or(0) > 0,
            "histogram must not have trailing empty buckets"
        );
    }

    /// A schedule-dependent deadlock (wake-before-wait loses the wakeup)
    /// must not abort exploration: the whole tree is still covered, both
    /// outcomes are visited, and the canonical-first failing decision
    /// vector is reported in `first_error`.
    #[test]
    fn failed_schedules_are_reported_not_fatal() {
        let scenario = || {
            let mut sim = Sim::new();
            let q = Arc::new(crate::waitq::WaitQueue::new("gate"));
            let q2 = Arc::clone(&q);
            sim.spawn("waiter", move |ctx| q2.wait(ctx));
            let q3 = Arc::clone(&q);
            sim.spawn("waker", move |ctx| {
                q3.wake_one(ctx);
            });
            sim
        };
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let outcomes2 = Arc::clone(&outcomes);
        let stats = Explorer::new(1000).run(scenario, move |decisions, result| {
            outcomes2.lock().push((
                decisions.iter().map(|d| d.chosen).collect::<Vec<u32>>(),
                result.is_ok(),
            ));
        });
        assert!(stats.complete, "a failure must not cut the walk short");
        let outcomes = outcomes.lock();
        assert!(outcomes.iter().any(|(_, ok)| *ok), "some schedule succeeds");
        assert!(
            outcomes.iter().any(|(_, ok)| !*ok),
            "some schedule deadlocks"
        );
        let first = stats.first_error.as_ref().expect("failure is propagated");
        assert!(first.error.is_deadlock());
        let canonical_first_failure = outcomes
            .iter()
            .find(|(_, ok)| !*ok)
            .map(|(choices, _)| choices.clone())
            .unwrap();
        assert_eq!(
            first.choices, canonical_first_failure,
            "first error is the first failure in depth-first order"
        );
    }

    #[test]
    fn budget_cutoff_reports_incomplete() {
        let stats = Explorer::new(2).run(
            || {
                let mut sim = Sim::new();
                for i in 0..4 {
                    sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
                }
                sim
            },
            |_, _| {},
        );
        assert_eq!(stats.schedules, 2);
        assert!(!stats.complete);
    }

    /// Regression: a budget of exactly the tree size must still prove
    /// completeness — the unexplored-branch check runs before the budget
    /// check. Two one-emit processes have exactly 2 schedules.
    #[test]
    fn exact_budget_still_reports_complete() {
        let stats = Explorer::new(2).run(
            || {
                let mut sim = Sim::new();
                sim.spawn("a", |ctx| ctx.emit("a", &[]));
                sim.spawn("b", |ctx| ctx.emit("b", &[]));
                sim
            },
            |_, _| {},
        );
        assert_eq!(stats.schedules, 2);
        assert!(
            stats.complete,
            "budget == tree size must report complete: true"
        );
    }

    /// Pure stutter quanta (bare yields between emits) license the prune;
    /// the pruned exploration must visit strictly fewer schedules but the
    /// identical set of user-event traces.
    #[test]
    fn pruning_preserves_observable_behaviors() {
        let scenario = || {
            let mut sim = Sim::new();
            sim.spawn("a", |ctx| {
                ctx.emit("a1", &[]);
                ctx.yield_now();
                ctx.yield_now();
                ctx.emit("a2", &[]);
            });
            sim.spawn("b", |ctx| {
                ctx.emit("b1", &[]);
                ctx.yield_now();
                ctx.yield_now();
                ctx.emit("b2", &[]);
            });
            sim
        };
        let traces = |prune: bool| {
            let seen = Arc::new(Mutex::new(BTreeSet::new()));
            let seen2 = Arc::clone(&seen);
            let explorer = if prune {
                Explorer::new(100_000).with_pruning()
            } else {
                Explorer::new(100_000)
            };
            let stats = explorer.run(scenario, move |_, result| {
                let report = result.as_ref().expect("no failure possible");
                let order: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, l, _)| l.to_string())
                    .collect();
                seen2.lock().insert(order);
            });
            assert!(stats.complete);
            let seen = Arc::try_unwrap(seen).unwrap().into_inner();
            (seen, stats)
        };
        let (full_traces, full) = traces(false);
        let (pruned_traces, pruned) = traces(true);
        assert_eq!(full.pruned, 0);
        assert!(pruned.pruned > 0, "the stutter yields must prune something");
        assert!(
            pruned.schedules < full.schedules,
            "pruning must cut schedules: {} vs {}",
            pruned.schedules,
            full.schedules
        );
        assert_eq!(
            pruned_traces, full_traces,
            "pruning must preserve the set of observable behaviors"
        );
    }

    /// Two processes working disjoint objects: every quantum is a real
    /// synchronization operation (never a pure stutter), so the purity
    /// layer cannot prune — only the object-granular sleep-set layer can
    /// see that the processes commute.
    #[test]
    fn sleep_sets_prune_disjoint_objects_where_purity_cannot() {
        let scenario = || {
            let mut sim = Sim::new();
            let qa = Arc::new(crate::waitq::WaitQueue::new("qa"));
            let qb = Arc::new(crate::waitq::WaitQueue::new("qb"));
            sim.spawn("a", move |ctx| {
                qa.wake_one(ctx);
                ctx.yield_now();
                qa.wake_one(ctx);
            });
            sim.spawn("b", move |ctx| {
                qb.wake_one(ctx);
                ctx.yield_now();
                qb.wake_one(ctx);
            });
            sim
        };
        let full = Explorer::new(100_000).run(scenario, |_, _| {});
        let pruned = Explorer::new(100_000)
            .with_pruning()
            .run(scenario, |_, _| {});
        assert!(full.complete && pruned.complete);
        assert_eq!(full.pruned, 0);
        assert!(
            pruned.schedules < full.schedules,
            "disjoint footprints must prune: {} vs {}",
            pruned.schedules,
            full.schedules
        );
        assert!(pruned.pruned > 0, "cut/asleep branches must be counted");
    }

    /// Sleep-set pruning with observable events: the per-process events
    /// conflict on the trace object, so event orderings are preserved
    /// while the disjoint queue operations commute away.
    #[test]
    fn sleep_set_prune_preserves_observable_behaviors() {
        let scenario = || {
            let mut sim = Sim::new();
            let qa = Arc::new(crate::waitq::WaitQueue::new("qa"));
            let qb = Arc::new(crate::waitq::WaitQueue::new("qb"));
            sim.spawn("a", move |ctx| {
                qa.wake_one(ctx);
                ctx.yield_now();
                qa.wake_one(ctx);
                ctx.yield_now();
                ctx.emit("a", &[]);
            });
            sim.spawn("b", move |ctx| {
                qb.wake_one(ctx);
                ctx.yield_now();
                qb.wake_one(ctx);
                ctx.yield_now();
                ctx.emit("b", &[]);
            });
            sim
        };
        let traces = |prune: bool| {
            let seen = Arc::new(Mutex::new(BTreeSet::new()));
            let seen2 = Arc::clone(&seen);
            let explorer = if prune {
                Explorer::new(100_000).with_pruning()
            } else {
                Explorer::new(100_000)
            };
            let stats = explorer.run(scenario, move |_, result| {
                let report = result.as_ref().expect("no failure possible");
                let order: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, l, _)| l.to_string())
                    .collect();
                seen2.lock().insert(order);
            });
            assert!(stats.complete);
            (Arc::try_unwrap(seen).unwrap().into_inner(), stats)
        };
        let (full_traces, full) = traces(false);
        let (pruned_traces, pruned) = traces(true);
        assert!(
            full_traces.contains(&vec!["a".to_string(), "b".to_string()])
                && full_traces.contains(&vec!["b".to_string(), "a".to_string()]),
            "both event orders are real behaviors"
        );
        assert_eq!(
            pruned_traces, full_traces,
            "sleep sets must preserve the set of observable behaviors"
        );
        assert!(
            pruned.schedules < full.schedules,
            "sleep sets must cut schedules: {} vs {}",
            pruned.schedules,
            full.schedules
        );
    }

    /// The conflict tally names the object whose contention woke sleeping
    /// entries: two writers of one queue conflict exactly there.
    #[test]
    fn conflicts_tally_names_the_contended_object() {
        let scenario = || {
            let mut sim = Sim::new();
            let q = Arc::new(crate::waitq::WaitQueue::new("gate"));
            let q2 = Arc::clone(&q);
            sim.spawn("a", move |ctx| {
                q2.wake_one(ctx);
            });
            let q3 = Arc::clone(&q);
            sim.spawn("b", move |ctx| {
                q3.wake_one(ctx);
            });
            sim
        };
        let stats = Explorer::new(1000).with_pruning().run(scenario, |_, _| {});
        assert!(stats.complete);
        assert!(
            stats.conflicts.get("queue:gate").copied().unwrap_or(0) > 0,
            "the contended queue must appear in the tally: {:?}",
            stats.conflicts
        );
        let unpruned = Explorer::new(1000).run(scenario, |_, _| {});
        assert!(unpruned.conflicts.is_empty(), "tally requires pruning");
    }

    /// One `ExploreConfig` materialises both strategies with the same
    /// knobs; serial progress milestones fire every `every` schedules.
    #[test]
    fn explore_config_builds_both_strategies() {
        let three = || {
            let mut sim = Sim::new();
            for i in 0..3 {
                sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
            }
            sim
        };
        let ticks = Arc::new(Mutex::new(Vec::new()));
        let ticks2 = Arc::clone(&ticks);
        let config = ExploreConfig::new(10_000)
            .prune(true)
            .threads(2)
            .progress(2, move |n| ticks2.lock().push(n));
        let serial = config.serial().run(three, |_, _| {});
        let mut serial_ticks = std::mem::take(&mut *ticks.lock());
        serial_ticks.sort_unstable();
        assert_eq!(
            serial_ticks,
            (1..=serial.schedules / 2)
                .map(|i| i * 2)
                .collect::<Vec<_>>(),
            "serial milestones fire every 2 schedules"
        );
        let (_, parallel) = config.parallel().run(three, |_, _| ());
        assert_eq!(parallel.schedules, serial.schedules);
        assert_eq!(parallel.pruned, serial.pruned);
        assert_eq!(parallel.conflicts, serial.conflicts);
        assert_eq!(parallel.depth_schedules, serial.depth_schedules);
    }

    /// A scenario with both real conflicts (a shared queue) and commuting
    /// work (disjoint queues, pure stutters) for the revisit tests.
    fn mixed_conflict_scenario() -> Sim {
        let mut sim = Sim::new();
        let shared = Arc::new(crate::waitq::WaitQueue::new("shared"));
        let qa = Arc::new(crate::waitq::WaitQueue::new("qa"));
        let s1 = Arc::clone(&shared);
        sim.spawn("a", move |ctx| {
            qa.wake_one(ctx);
            ctx.yield_now();
            s1.wake_one(ctx);
            ctx.emit("a", &[]);
        });
        let s2 = Arc::clone(&shared);
        sim.spawn("b", move |ctx| {
            s2.wake_one(ctx);
            ctx.yield_now();
            ctx.emit("b", &[]);
        });
        sim
    }

    /// The revisit mode observes exactly the behaviors of the full
    /// exploration, in no more schedules than the granular prune, and its
    /// accounting invariant holds: every schedule past the canonical root
    /// run is a granted revisit.
    #[test]
    fn revisit_preserves_behaviors_and_accounts_every_schedule() {
        let traces = |explorer: Explorer| {
            let seen = Arc::new(Mutex::new(BTreeSet::new()));
            let seen2 = Arc::clone(&seen);
            let stats = explorer.run(mixed_conflict_scenario, move |_, result| {
                let report = result.as_ref().expect("no failure possible");
                let order: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, l, _)| l.to_string())
                    .collect();
                seen2.lock().insert(order);
            });
            assert!(stats.complete);
            (Arc::try_unwrap(seen).unwrap().into_inner(), stats)
        };
        let (full_traces, full) = traces(Explorer::new(100_000));
        let (granular_traces, granular) = traces(Explorer::new(100_000).with_pruning());
        let (revisit_traces, revisit) = traces(Explorer::new(100_000).with_revisit_pruning());
        assert_eq!(granular_traces, full_traces);
        assert_eq!(
            revisit_traces, full_traces,
            "revisit mode must preserve the set of observable behaviors"
        );
        assert!(
            revisit.schedules <= granular.schedules,
            "revisit must not lose to granular: {} vs {}",
            revisit.schedules,
            granular.schedules
        );
        assert!(
            revisit.schedules < full.schedules,
            "the commuting work must prune something"
        );
        assert!(revisit.revisits > 0, "the shared queue must force revisits");
        assert_eq!(
            revisit.schedules,
            revisit.revisits as usize + 1,
            "every schedule past the root run is a granted revisit"
        );
        assert!(revisit.revisits <= revisit.revisit_requests);
        assert!(
            revisit.conflicts.contains_key("queue:shared"),
            "the race tally must name the contended queue: {:?}",
            revisit.conflicts
        );
        revisit.assert_consistent();
    }

    /// Revisit mode under the checkpoint spine: every spacing reproduces
    /// whole-prefix replay exactly — the race analysis feeds on footprints
    /// recorded during runs resumed from held checkpoints.
    #[test]
    fn revisit_checkpointing_is_observably_identical_to_replay() {
        let journal_of = |spacing| {
            let journal = Arc::new(Mutex::new(Vec::new()));
            let journal2 = Arc::clone(&journal);
            let stats = Explorer::new(100_000)
                .with_revisit_pruning()
                .with_checkpointing(spacing)
                .run(mixed_conflict_scenario, move |decisions, result| {
                    let report = result.as_ref().expect("no failure possible");
                    let events: Vec<String> = report
                        .trace
                        .user_events()
                        .map(|(_, l, _)| l.to_string())
                        .collect();
                    journal2.lock().push((
                        decisions.iter().map(|d| d.chosen).collect::<Vec<u32>>(),
                        events,
                    ));
                });
            assert!(stats.complete);
            (Arc::into_inner(journal).unwrap().into_inner(), stats)
        };
        let (base_journal, base) = journal_of(CheckpointSpacing::Replay);
        for spacing in [
            CheckpointSpacing::Dense { budget: 2 },
            CheckpointSpacing::Dense { budget: 64 },
            CheckpointSpacing::Geometric { budget: 4 },
        ] {
            let (journal, stats) = journal_of(spacing);
            assert_eq!(journal, base_journal, "{spacing:?}");
            assert_eq!(stats.schedules, base.schedules);
            assert_eq!(stats.pruned, base.pruned);
            assert_eq!(stats.revisit_requests, base.revisit_requests);
            assert_eq!(stats.revisits, base.revisits);
            assert_eq!(stats.conflicts, base.conflicts);
        }
    }

    /// Revisit mode composes with the kill-point sweep: the sweep stops at
    /// the same point as the granular one, fires the same points, and its
    /// merged accounting stays consistent. (Fault-injected runs are not
    /// prune-safe, so their race analysis degrades to exhaustive sibling
    /// requests — coverage, not optimality, is what is promised here.)
    #[test]
    fn revisit_kill_point_sweep_fires_the_same_points() {
        let scenario = || {
            let mut sim = Sim::new();
            let q = Arc::new(crate::waitq::WaitQueue::new("gate"));
            let q2 = Arc::clone(&q);
            sim.spawn("victim", move |ctx| {
                q2.wake_one(ctx);
                ctx.yield_now();
                ctx.emit("done", &[]);
            });
            let q3 = Arc::clone(&q);
            sim.spawn("peer", move |ctx| {
                q3.wake_one(ctx);
            });
            sim
        };
        let granular = Explorer::new(10_000).with_pruning().run_kill_points(
            "victim",
            8,
            scenario,
            |_, _, _| {},
        );
        let revisit = Explorer::new(10_000)
            .with_revisit_pruning()
            .run_kill_points("victim", 8, scenario, |_, _, _| {});
        assert!(granular.complete && revisit.complete);
        revisit.assert_consistent();
        let fired = |stats: &KillPointStats| {
            stats
                .per_point
                .iter()
                .map(|p| (p.point, p.kills > 0))
                .collect::<Vec<_>>()
        };
        assert_eq!(
            fired(&revisit),
            fired(&granular),
            "both modes must observe the same set of live kill points"
        );
    }

    /// A data choice raced against a peer: revisit mode collapses the
    /// `{2,3}` constraint class, so the symbolic tree is strictly smaller
    /// than concrete enumeration.
    fn chooser_scenario() -> Sim {
        let mut sim = Sim::new();
        sim.spawn("chooser", |ctx| {
            ctx.yield_now();
            let v = ctx.choose_value("n", 1..=3);
            if v.gt(1) {
                ctx.emit("big", &[]);
            }
        });
        sim.spawn("peer", |ctx| {
            ctx.yield_now();
            ctx.emit("peer", &[]);
        });
        sim
    }

    /// The unified verbs return byte-identical journals and statistics
    /// whichever engine executes them — including symbolic data
    /// decisions.
    #[test]
    fn unified_run_is_engine_independent() {
        let vector = |d: &[Decision]| d.iter().map(|x| x.chosen).collect::<Vec<u32>>();
        let config = ExploreConfig::new(100_000).mode(PruneMode::Revisit);
        let (reference, ref_stats) = config.run(chooser_scenario, |d, _| vector(d));
        assert!(ref_stats.complete);
        assert!(
            ref_stats.sym_grants > 0,
            "the guarded branch must grant value siblings"
        );
        assert!(
            ref_stats.pruned > 0,
            "the {{2,3}} class must collapse to one representative"
        );
        for threads in [1, 2, 4] {
            let (journal, stats) = config
                .clone()
                .threads(threads)
                .run(chooser_scenario, |d, _| vector(d));
            assert_eq!(journal, reference, "journal at {threads} workers");
            assert_eq!(stats.schedules, ref_stats.schedules);
            assert_eq!(stats.depth_schedules, ref_stats.depth_schedules);
            assert_eq!(stats.depth_pruned, ref_stats.depth_pruned);
            assert_eq!(stats.sym_requests, ref_stats.sym_requests);
            assert_eq!(stats.sym_grants, ref_stats.sym_grants);
            assert_eq!(stats.revisits, ref_stats.revisits);
        }
        // The explicit engine selector is equivalent to the default.
        let (explicit, _) = config
            .clone()
            .engine(Engine::Serial)
            .run(chooser_scenario, |d, _| vector(d));
        assert_eq!(explicit, reference);
    }

    /// The unified kill-point sweep agrees across engines too.
    #[test]
    fn unified_kill_points_are_engine_independent() {
        let scenario = || {
            let mut sim = Sim::new();
            sim.spawn("victim", |ctx| {
                ctx.yield_now();
                ctx.emit("done", &[]);
            });
            sim.spawn("peer", |ctx| ctx.emit("peer", &[]));
            sim
        };
        let config = ExploreConfig::new(10_000).mode(PruneMode::Revisit);
        let (reference, ref_stats) =
            config.run_kill_points("victim", 4, scenario, |point, d, _| (point, d.len()));
        let (journal, stats) =
            config
                .clone()
                .threads(2)
                .run_kill_points("victim", 4, scenario, |point, d, _| (point, d.len()));
        assert_eq!(journal, reference);
        assert_eq!(stats.schedules, ref_stats.schedules);
        assert_eq!(stats.per_point, ref_stats.per_point);
    }

    /// The sampling verb drives the third engine through the same config.
    #[test]
    fn unified_sample_smoke() {
        let (journal, stats) = ExploreConfig::new(0).threads(2).sample(
            crate::sample::SampleStrategy::Walk,
            12,
            7,
            chooser_scenario,
            |_, result| (result.is_ok(), Vec::new()),
        );
        assert_eq!(journal.len(), 12);
        let sampling = stats.sampling.expect("sampler stats present");
        assert_eq!(sampling.runs, 12);
        assert!(journal.iter().all(|r| r.value));
    }
}
