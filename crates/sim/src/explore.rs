//! Bounded exhaustive schedule exploration.
//!
//! Every contested scheduling decision in a run is recorded as a
//! [`Decision`]. The [`Explorer`] performs a depth-first walk over the tree
//! of such decisions: it reruns the scenario with a [`ReplayPolicy`] prefix,
//! reads back the full decision vector, and backtracks on the last decision
//! that still has unexplored branches. For scenarios with a few processes
//! and a few operations each, this *proves* properties over all
//! interleavings — which is exactly what Bloom's footnote-3 argument about
//! the Figure-1 path-expression solution requires.
//!
//! For large trees, [`crate::ParallelExplorer`] explores the same space
//! with a pool of worker threads and byte-identical results.
//!
//! # The equivalence prune
//!
//! With [`Explorer::with_pruning`], sibling branches of a decision whose
//! canonical (choice-0) quantum was *observably pure* — a stutter that
//! touched nothing any other process can see ([`Decision::pure`]) — are
//! skipped and counted in [`ExploreStats::pruned`]. Every skipped schedule
//! has the same user-event trace as a schedule that is still visited:
//! deferring a stutter commutes with every intervening quantum, so the
//! sibling-first subtree maps leaf-for-leaf into the visited stutter-first
//! subtree. Schedule *counts* therefore shrink under pruning, but the set
//! of distinct observable behaviors does not. Pruning is off by default
//! because exact schedule counts are themselves findings in this
//! repository's reports.

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::kernel::{ProcessStatus, SimReport};
use crate::policy::ReplayPolicy;
use crate::sim::Sim;
use crate::trace::Decision;

/// The first failed schedule of an exploration, with enough context to
/// replay it: the full decision vector that produced the failure and the
/// failure itself (whose report carries the partial trace and metrics).
///
/// "First" is deterministic regardless of exploration strategy or thread
/// count: it is the failing schedule whose decision vector comes first in
/// canonical depth-first order — the order [`Explorer`] visits natively
/// and [`crate::ParallelExplorer`] reconstructs by sorting.
#[derive(Debug, Clone)]
pub struct ExploreError {
    /// The decision vector (one chosen index per contested decision) of
    /// the failing schedule; feed it to [`ReplayPolicy::new`] to rerun it.
    pub choices: Vec<u32>,
    /// The failure.
    pub error: SimError,
}

/// Result summary of an exploration.
#[derive(Debug, Clone, Default)]
pub struct ExploreStats {
    /// How many distinct schedules were executed.
    pub schedules: usize,
    /// Whether the entire schedule tree was covered (no budget cut-off).
    /// Pruned branches count as covered: their behaviors are represented.
    pub complete: bool,
    /// How many sibling branches (whole subtrees, not schedules) the
    /// equivalence prune skipped. Always 0 unless pruning was enabled.
    pub pruned: usize,
    /// Schedule histogram by depth: `depth_schedules[d]` counts executed
    /// schedules whose decision vector had exactly `d` contested
    /// decisions. Sums to `schedules`.
    pub depth_schedules: Vec<usize>,
    /// Prune histogram by depth: `depth_pruned[d]` counts sibling branches
    /// skipped at decision index `d`. Sums to `pruned`.
    pub depth_pruned: Vec<usize>,
    /// The first failed schedule in canonical depth-first order, if any
    /// schedule failed. Exploration does not stop at a failure — the rest
    /// of the tree is still covered — but the canonical-first failure is
    /// kept for replay and is identical across explorer thread counts.
    pub first_error: Option<ExploreError>,
}

impl ExploreStats {
    /// Folds one schedule into the depth histogram.
    pub(crate) fn count_schedule_at_depth(&mut self, depth: usize) {
        bump_depth(&mut self.depth_schedules, depth, 1);
        self.schedules += 1;
    }

    /// Folds pruned sibling branches at `depth` into the prune histogram.
    pub(crate) fn count_pruned_at_depth(&mut self, depth: usize, branches: usize) {
        bump_depth(&mut self.depth_pruned, depth, branches);
        self.pruned += branches;
    }
}

/// Adds `by` to `hist[depth]`, growing the histogram as needed.
pub(crate) fn bump_depth(hist: &mut Vec<usize>, depth: usize, by: usize) {
    if hist.len() <= depth {
        hist.resize(depth + 1, 0);
    }
    hist[depth] += by;
}

/// Elementwise-adds `src` into `dst` (histogram merge).
pub(crate) fn merge_depth(dst: &mut Vec<usize>, src: &[usize]) {
    for (depth, &by) in src.iter().enumerate() {
        if by > 0 {
            bump_depth(dst, depth, by);
        }
    }
}

/// Result summary of a kill-point sweep ([`Explorer::run_kill_points`]).
#[derive(Debug, Clone, Default)]
pub struct KillPointStats {
    /// Total schedules executed across all explored kill points.
    pub schedules: usize,
    /// Whether every explored kill point covered its whole tree.
    pub complete: bool,
    /// Total sibling branches skipped by the equivalence prune.
    pub pruned: usize,
    /// Per-kill-point counts, in sweep order. Points past the victim's
    /// maximum observed scheduling-point count are not explored (they can
    /// never fire), so this may be shorter than `max_points`.
    pub per_point: Vec<KillPointCount>,
    /// Schedule histogram by depth, merged across kill points (see
    /// [`ExploreStats::depth_schedules`]).
    pub depth_schedules: Vec<usize>,
    /// Prune histogram by depth, merged across kill points.
    pub depth_pruned: Vec<usize>,
    /// The first failed schedule: the canonical-first failure of the
    /// earliest kill point that had one (points are swept in order, so
    /// this too is deterministic across strategies and thread counts).
    pub first_error: Option<ExploreError>,
}

/// Exploration counts for one kill point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPointCount {
    /// The kill point (the victim's Nth scheduling point, 1-based).
    pub point: u64,
    /// Schedules executed with the kill armed at this point.
    pub schedules: usize,
    /// Schedules in which the kill actually fired (the victim died).
    pub kills: usize,
}

/// Depth-first enumerator of all schedules of a scenario.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    max_schedules: usize,
    prune: bool,
}

impl Explorer {
    /// Creates an explorer that runs at most `max_schedules` schedules.
    pub fn new(max_schedules: usize) -> Self {
        Explorer {
            max_schedules,
            prune: false,
        }
    }

    /// Enables the equivalence prune (see the module docs): sibling
    /// branches of a decision whose canonical quantum was a pure stutter
    /// are skipped and counted in [`ExploreStats::pruned`].
    pub fn with_pruning(mut self) -> Self {
        self.prune = true;
        self
    }

    /// Explores the scenario produced by `setup`.
    ///
    /// `setup` must build an identical simulation each time it is called
    /// (the explorer overrides the policy). `visit` is invoked once per
    /// schedule with the decision vector taken and the run outcome.
    ///
    /// A failed schedule (deadlock, panic, step-budget overrun) does not
    /// abort the exploration: the failure is still passed to `visit`, the
    /// rest of the tree is covered, and the canonical-first failure is
    /// returned in [`ExploreStats::first_error`].
    ///
    /// # Panics
    ///
    /// Panics if `setup` produces runs whose decision structure is not a
    /// function of prior decisions (i.e. a nondeterministic scenario), which
    /// manifests as a replay prefix mismatch.
    pub fn run<S, V>(&self, mut setup: S, mut visit: V) -> ExploreStats
    where
        S: FnMut() -> Sim,
        V: FnMut(&[Decision], &Result<SimReport, SimError>),
    {
        let mut prefix: Vec<u32> = Vec::new();
        // Per-depth prunability of the node on the current path, recorded
        // when the node is first discovered (its choice-0 run). Using the
        // discovery run's verdict — rather than the backtracking run's —
        // keeps the pruned tree identical to ParallelExplorer's, which can
        // only consult the discovering run.
        let mut prunable: Vec<bool> = Vec::new();
        let mut stats = ExploreStats::default();
        loop {
            let mut sim = setup();
            sim.set_policy(ReplayPolicy::prefix(prefix.clone()));
            let result = sim.run();
            let (decisions, metrics): (&[Decision], _) = match &result {
                Ok(report) => (&report.decisions, &report.metrics),
                Err(err) => (&err.report.decisions, &err.report.metrics),
            };
            // An exhaustive walk replays only prefixes of vectors the tree
            // itself produced, so any recorded divergence means the
            // scenario is not a function of its decisions.
            debug_assert!(
                !metrics.replay.diverged(),
                "replay diverged ({:?}) during exploration: scenario is nondeterministic",
                metrics.replay
            );
            for (i, want) in prefix.iter().enumerate() {
                assert!(
                    decisions.get(i).map(|d| d.chosen) == Some(*want),
                    "replay prefix diverged at decision {i}: scenario is nondeterministic"
                );
            }
            // Decisions past the replay prefix take the canonical choice 0;
            // this run discovers those nodes, so it fixes their prunability.
            debug_assert!(decisions[prefix.len()..].iter().all(|d| d.chosen == 0));
            for d in &decisions[prunable.len()..] {
                prunable.push(self.prune && d.pure);
            }
            visit(decisions, &result);
            stats.count_schedule_at_depth(decisions.len());
            if let Err(err) = &result {
                // Depth-first order *is* canonical order, so the first
                // failure seen wins.
                if stats.first_error.is_none() {
                    stats.first_error = Some(ExploreError {
                        choices: decisions.iter().map(|d| d.chosen).collect(),
                        error: err.clone(),
                    });
                }
            }
            // Backtrack to the deepest decision with an unexplored branch —
            // checked *before* the budget so a tree of exactly
            // `max_schedules` schedules still reports `complete`.
            let mut next_branch = None;
            for i in (0..decisions.len()).rev() {
                if decisions[i].chosen + 1 < decisions[i].arity {
                    if prunable[i] {
                        stats.count_pruned_at_depth(
                            i,
                            (decisions[i].arity - 1 - decisions[i].chosen) as usize,
                        );
                        continue;
                    }
                    next_branch = Some(i);
                    break;
                }
            }
            let Some(i) = next_branch else {
                stats.complete = true;
                return stats;
            };
            if stats.schedules >= self.max_schedules {
                return stats;
            }
            // Advance the prefix in place: entries below `i` already match
            // the decision vector (asserted above).
            let keep = i.min(prefix.len());
            prefix.truncate(keep);
            prefix.extend(decisions[keep..i].iter().map(|d| d.chosen));
            prefix.push(decisions[i].chosen + 1);
            prunable.truncate(i + 1);
        }
    }

    /// Explores the (schedule × kill-point) space of a scenario: for each
    /// kill point `k` in `1..=max_points`, every schedule of the scenario
    /// is run with `victim` killed at its `k`-th scheduling point.
    ///
    /// `visit` receives the kill point, the decision vector, and the run
    /// outcome. The sweep stops early once a kill point never fires in any
    /// schedule: the victim's scheduling-point count is then below `k` in
    /// every interleaving, and an armed-but-idle kill plan leaves the tree
    /// identical to the unfaulted one, so no later point can fire either.
    /// `max_points` may therefore be a loose upper bound at no cost. The
    /// per-call schedule budget applies to each kill point separately;
    /// `schedules` in the returned stats is the total.
    pub fn run_kill_points<S, V>(
        &self,
        victim: &str,
        max_points: u64,
        mut setup: S,
        mut visit: V,
    ) -> KillPointStats
    where
        S: FnMut() -> Sim,
        V: FnMut(u64, &[Decision], &Result<SimReport, SimError>),
    {
        let mut stats = KillPointStats {
            complete: true,
            ..KillPointStats::default()
        };
        for point in 1..=max_points {
            let mut kills = 0usize;
            let point_stats = self.run(
                || {
                    let mut sim = setup();
                    sim.set_fault_plan(FaultPlan::new().kill(victim, point));
                    sim
                },
                |decisions, result| {
                    if victim_killed(victim, result) {
                        kills += 1;
                    }
                    visit(point, decisions, result);
                },
            );
            stats.schedules += point_stats.schedules;
            stats.complete &= point_stats.complete;
            stats.pruned += point_stats.pruned;
            merge_depth(&mut stats.depth_schedules, &point_stats.depth_schedules);
            merge_depth(&mut stats.depth_pruned, &point_stats.depth_pruned);
            if stats.first_error.is_none() {
                stats.first_error = point_stats.first_error;
            }
            stats.per_point.push(KillPointCount {
                point,
                schedules: point_stats.schedules,
                kills,
            });
            if kills == 0 && point_stats.complete {
                break; // the victim never reaches `point` scheduling points
            }
        }
        stats
    }
}

/// Whether the named victim ended the run killed by the fault plan.
pub(crate) fn victim_killed(victim: &str, result: &Result<SimReport, SimError>) -> bool {
    let report = match result {
        Ok(report) => report,
        Err(err) => &err.report,
    };
    report
        .processes
        .iter()
        .any(|p| p.name == victim && p.status == ProcessStatus::Killed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    /// Two processes emitting one event each: exactly 2 interleavings at the
    /// first decision point... but yields create more decision points, so we
    /// just check that both orders are observed and exploration terminates.
    #[test]
    fn explores_both_orders_of_two_processes() {
        let seen = Arc::new(Mutex::new(BTreeSet::new()));
        let seen2 = Arc::clone(&seen);
        let stats = Explorer::new(1000).run(
            || {
                let mut sim = Sim::new();
                sim.spawn("a", |ctx| ctx.emit("a", &[]));
                sim.spawn("b", |ctx| ctx.emit("b", &[]));
                sim
            },
            move |_, result| {
                let report = result.as_ref().expect("no failure possible");
                let order: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, l, _)| l.to_string())
                    .collect();
                seen2.lock().insert(order);
            },
        );
        assert!(stats.complete, "tiny scenario must be fully explored");
        let seen = seen.lock();
        assert!(seen.contains(&vec!["a".to_string(), "b".to_string()]));
        assert!(seen.contains(&vec!["b".to_string(), "a".to_string()]));
    }

    /// Exploration must cover n! orderings of n independent one-shot
    /// processes (each schedule is one permutation).
    #[test]
    fn covers_all_permutations_of_three() {
        let seen = Arc::new(Mutex::new(BTreeSet::new()));
        let seen2 = Arc::clone(&seen);
        let stats = Explorer::new(10_000).run(
            || {
                let mut sim = Sim::new();
                for i in 0..3 {
                    sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
                }
                sim
            },
            move |_, result| {
                let Ok(report) = result else { return };
                let order: Vec<i64> = report
                    .trace
                    .user_events()
                    .map(|(_, _, params)| params[0])
                    .collect();
                seen2.lock().insert(order);
            },
        );
        assert!(stats.complete);
        assert_eq!(seen.lock().len(), 6, "3! = 6 distinct orders");
    }

    /// The depth histograms are exact decompositions of the totals.
    #[test]
    fn depth_histograms_sum_to_totals() {
        let stats = Explorer::new(10_000).run(
            || {
                let mut sim = Sim::new();
                for i in 0..3 {
                    sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
                }
                sim
            },
            |_, _| {},
        );
        assert_eq!(stats.depth_schedules.iter().sum::<usize>(), stats.schedules);
        assert_eq!(stats.depth_pruned.iter().sum::<usize>(), stats.pruned);
        assert!(
            stats.depth_schedules.last().copied().unwrap_or(0) > 0,
            "histogram must not have trailing empty buckets"
        );
    }

    /// A schedule-dependent deadlock (wake-before-wait loses the wakeup)
    /// must not abort exploration: the whole tree is still covered, both
    /// outcomes are visited, and the canonical-first failing decision
    /// vector is reported in `first_error`.
    #[test]
    fn failed_schedules_are_reported_not_fatal() {
        let scenario = || {
            let mut sim = Sim::new();
            let q = Arc::new(crate::waitq::WaitQueue::new("gate"));
            let q2 = Arc::clone(&q);
            sim.spawn("waiter", move |ctx| q2.wait(ctx));
            let q3 = Arc::clone(&q);
            sim.spawn("waker", move |ctx| {
                q3.wake_one(ctx);
            });
            sim
        };
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        let outcomes2 = Arc::clone(&outcomes);
        let stats = Explorer::new(1000).run(scenario, move |decisions, result| {
            outcomes2.lock().push((
                decisions.iter().map(|d| d.chosen).collect::<Vec<u32>>(),
                result.is_ok(),
            ));
        });
        assert!(stats.complete, "a failure must not cut the walk short");
        let outcomes = outcomes.lock();
        assert!(outcomes.iter().any(|(_, ok)| *ok), "some schedule succeeds");
        assert!(
            outcomes.iter().any(|(_, ok)| !*ok),
            "some schedule deadlocks"
        );
        let first = stats.first_error.as_ref().expect("failure is propagated");
        assert!(first.error.is_deadlock());
        let canonical_first_failure = outcomes
            .iter()
            .find(|(_, ok)| !*ok)
            .map(|(choices, _)| choices.clone())
            .unwrap();
        assert_eq!(
            first.choices, canonical_first_failure,
            "first error is the first failure in depth-first order"
        );
    }

    #[test]
    fn budget_cutoff_reports_incomplete() {
        let stats = Explorer::new(2).run(
            || {
                let mut sim = Sim::new();
                for i in 0..4 {
                    sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
                }
                sim
            },
            |_, _| {},
        );
        assert_eq!(stats.schedules, 2);
        assert!(!stats.complete);
    }

    /// Regression: a budget of exactly the tree size must still prove
    /// completeness — the unexplored-branch check runs before the budget
    /// check. Two one-emit processes have exactly 2 schedules.
    #[test]
    fn exact_budget_still_reports_complete() {
        let stats = Explorer::new(2).run(
            || {
                let mut sim = Sim::new();
                sim.spawn("a", |ctx| ctx.emit("a", &[]));
                sim.spawn("b", |ctx| ctx.emit("b", &[]));
                sim
            },
            |_, _| {},
        );
        assert_eq!(stats.schedules, 2);
        assert!(
            stats.complete,
            "budget == tree size must report complete: true"
        );
    }

    /// Pure stutter quanta (bare yields between emits) license the prune;
    /// the pruned exploration must visit strictly fewer schedules but the
    /// identical set of user-event traces.
    #[test]
    fn pruning_preserves_observable_behaviors() {
        let scenario = || {
            let mut sim = Sim::new();
            sim.spawn("a", |ctx| {
                ctx.emit("a1", &[]);
                ctx.yield_now();
                ctx.yield_now();
                ctx.emit("a2", &[]);
            });
            sim.spawn("b", |ctx| {
                ctx.emit("b1", &[]);
                ctx.yield_now();
                ctx.yield_now();
                ctx.emit("b2", &[]);
            });
            sim
        };
        let traces = |prune: bool| {
            let seen = Arc::new(Mutex::new(BTreeSet::new()));
            let seen2 = Arc::clone(&seen);
            let explorer = if prune {
                Explorer::new(100_000).with_pruning()
            } else {
                Explorer::new(100_000)
            };
            let stats = explorer.run(scenario, move |_, result| {
                let report = result.as_ref().expect("no failure possible");
                let order: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, l, _)| l.to_string())
                    .collect();
                seen2.lock().insert(order);
            });
            assert!(stats.complete);
            let seen = Arc::try_unwrap(seen).unwrap().into_inner();
            (seen, stats)
        };
        let (full_traces, full) = traces(false);
        let (pruned_traces, pruned) = traces(true);
        assert_eq!(full.pruned, 0);
        assert!(pruned.pruned > 0, "the stutter yields must prune something");
        assert!(
            pruned.schedules < full.schedules,
            "pruning must cut schedules: {} vs {}",
            pruned.schedules,
            full.schedules
        );
        assert_eq!(
            pruned_traces, full_traces,
            "pruning must preserve the set of observable behaviors"
        );
    }
}
