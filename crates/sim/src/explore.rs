//! Bounded exhaustive schedule exploration.
//!
//! Every contested scheduling decision in a run is recorded as a
//! [`Decision`]. The [`Explorer`] performs a depth-first walk over the tree
//! of such decisions: it reruns the scenario with a [`ReplayPolicy`] prefix,
//! reads back the full decision vector, and backtracks on the last decision
//! that still has unexplored branches. For scenarios with a few processes
//! and a few operations each, this *proves* properties over all
//! interleavings — which is exactly what Bloom's footnote-3 argument about
//! the Figure-1 path-expression solution requires.

use crate::error::SimError;
use crate::fault::FaultPlan;
use crate::kernel::SimReport;
use crate::policy::ReplayPolicy;
use crate::sim::Sim;
use crate::trace::Decision;

/// Result summary of an exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// How many distinct schedules were executed.
    pub schedules: usize,
    /// Whether the entire schedule tree was covered (no budget cut-off).
    pub complete: bool,
}

/// Depth-first enumerator of all schedules of a scenario.
#[derive(Debug, Clone, Copy)]
pub struct Explorer {
    max_schedules: usize,
}

impl Explorer {
    /// Creates an explorer that runs at most `max_schedules` schedules.
    pub fn new(max_schedules: usize) -> Self {
        Explorer { max_schedules }
    }

    /// Explores the scenario produced by `setup`.
    ///
    /// `setup` must build an identical simulation each time it is called
    /// (the explorer overrides the policy). `visit` is invoked once per
    /// schedule with the decision vector taken and the run outcome.
    ///
    /// # Panics
    ///
    /// Panics if `setup` produces runs whose decision structure is not a
    /// function of prior decisions (i.e. a nondeterministic scenario), which
    /// manifests as a replay prefix mismatch.
    pub fn run<S, V>(&self, mut setup: S, mut visit: V) -> ExploreStats
    where
        S: FnMut() -> Sim,
        V: FnMut(&[Decision], &Result<SimReport, SimError>),
    {
        let mut prefix: Vec<u32> = Vec::new();
        let mut schedules = 0;
        loop {
            let mut sim = setup();
            sim.set_policy(ReplayPolicy::new(prefix.clone()));
            let result = sim.run();
            let decisions: Vec<Decision> = match &result {
                Ok(report) => report.decisions.clone(),
                Err(err) => err.report.decisions.clone(),
            };
            for (i, want) in prefix.iter().enumerate() {
                assert!(
                    decisions.get(i).map(|d| d.chosen) == Some(*want),
                    "replay prefix diverged at decision {i}: scenario is nondeterministic"
                );
            }
            visit(&decisions, &result);
            schedules += 1;
            if schedules >= self.max_schedules {
                return ExploreStats {
                    schedules,
                    complete: false,
                };
            }
            // Backtrack to the deepest decision with an unexplored branch.
            let mut advanced = false;
            for i in (0..decisions.len()).rev() {
                if decisions[i].chosen + 1 < decisions[i].arity {
                    prefix = decisions[..i].iter().map(|d| d.chosen).collect();
                    prefix.push(decisions[i].chosen + 1);
                    advanced = true;
                    break;
                }
            }
            if !advanced {
                return ExploreStats {
                    schedules,
                    complete: true,
                };
            }
        }
    }

    /// Explores the (schedule × kill-point) space of a scenario: for each
    /// kill point `k` in `1..=max_points`, every schedule of the scenario
    /// is run with `victim` killed at its `k`-th scheduling point.
    ///
    /// `visit` receives the kill point, the decision vector, and the run
    /// outcome. Kill points beyond the number of scheduling points the
    /// victim actually reaches in a given schedule simply never fire (the
    /// victim then runs to completion), so `max_points` may be a loose
    /// upper bound. The per-call schedule budget applies to each kill
    /// point separately; `schedules` in the returned stats is the total.
    pub fn run_kill_points<S, V>(
        &self,
        victim: &str,
        max_points: u64,
        mut setup: S,
        mut visit: V,
    ) -> ExploreStats
    where
        S: FnMut() -> Sim,
        V: FnMut(u64, &[Decision], &Result<SimReport, SimError>),
    {
        let mut schedules = 0;
        let mut complete = true;
        for point in 1..=max_points {
            let stats = self.run(
                || {
                    let mut sim = setup();
                    sim.set_fault_plan(FaultPlan::new().kill(victim, point));
                    sim
                },
                |decisions, result| visit(point, decisions, result),
            );
            schedules += stats.schedules;
            complete &= stats.complete;
        }
        ExploreStats {
            schedules,
            complete,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::collections::BTreeSet;
    use std::sync::Arc;

    /// Two processes emitting one event each: exactly 2 interleavings at the
    /// first decision point... but yields create more decision points, so we
    /// just check that both orders are observed and exploration terminates.
    #[test]
    fn explores_both_orders_of_two_processes() {
        let seen = Arc::new(Mutex::new(BTreeSet::new()));
        let seen2 = Arc::clone(&seen);
        let stats = Explorer::new(1000).run(
            || {
                let mut sim = Sim::new();
                sim.spawn("a", |ctx| ctx.emit("a", &[]));
                sim.spawn("b", |ctx| ctx.emit("b", &[]));
                sim
            },
            move |_, result| {
                let report = result.as_ref().expect("no failure possible");
                let order: Vec<String> = report
                    .trace
                    .user_events()
                    .map(|(_, l, _)| l.to_string())
                    .collect();
                seen2.lock().insert(order);
            },
        );
        assert!(stats.complete, "tiny scenario must be fully explored");
        let seen = seen.lock();
        assert!(seen.contains(&vec!["a".to_string(), "b".to_string()]));
        assert!(seen.contains(&vec!["b".to_string(), "a".to_string()]));
    }

    /// Exploration must cover n! orderings of n independent one-shot
    /// processes (each schedule is one permutation).
    #[test]
    fn covers_all_permutations_of_three() {
        let seen = Arc::new(Mutex::new(BTreeSet::new()));
        let seen2 = Arc::clone(&seen);
        let stats = Explorer::new(10_000).run(
            || {
                let mut sim = Sim::new();
                for i in 0..3 {
                    sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
                }
                sim
            },
            move |_, result| {
                let report = result.as_ref().unwrap();
                let order: Vec<i64> = report
                    .trace
                    .user_events()
                    .map(|(_, _, params)| params[0])
                    .collect();
                seen2.lock().insert(order);
            },
        );
        assert!(stats.complete);
        assert_eq!(seen.lock().len(), 6, "3! = 6 distinct orders");
    }

    #[test]
    fn budget_cutoff_reports_incomplete() {
        let stats = Explorer::new(2).run(
            || {
                let mut sim = Sim::new();
                for i in 0..4 {
                    sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
                }
                sim
            },
            |_, _| {},
        );
        assert_eq!(stats.schedules, 2);
        assert!(!stats.complete);
    }
}
