//! The one low-level blocking primitive: an ordered wait queue.
//!
//! Every mechanism crate (semaphores, monitors, serializers, path
//! expressions) builds its blocking behavior out of [`WaitQueue`]s. A queue
//! orders waiters by `(priority, arrival ticket)`: plain [`WaitQueue::wait`]
//! uses priority 0, so the order degenerates to FIFO; priority waits (as in
//! Hoare's disk-scheduler monitor) jump the queue.
//!
//! Thanks to the simulator's cooperative invariant, the registration of a
//! waiter and the subsequent park are atomic with respect to all other
//! processes — there is no lost-wakeup window to defend against.

use crate::ctx::Ctx;
use crate::footprint::{Access, ObjId};
use crate::kernel::Shared;
use crate::types::{Deadline, Pid};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::{Arc, Weak};

#[derive(Debug, Clone, Copy)]
pub(crate) struct Waiter {
    pub(crate) pid: Pid,
    ticket: u64,
    priority: i64,
}

/// The shareable interior of a [`WaitQueue`]: the kernel keeps a second
/// handle to every queue that has ever held a waiter, so it can assert at
/// the end of a run that no stale registration was leaked by a timed wait
/// path (see `run_kernel`'s queue-hygiene check).
#[derive(Debug)]
pub(crate) struct QueueCell {
    pub(crate) name: String,
    pub(crate) waiters: Mutex<VecDeque<Waiter>>,
}

/// An ordered queue of parked processes.
#[derive(Debug)]
pub struct WaitQueue {
    cell: Arc<QueueCell>,
    /// Footprint identity for the explorers' object-granular prune: every
    /// mutation of the queue is an access to this object (see
    /// [`Ctx::note_sync_obj`]). Derived from the diagnostic name, so two
    /// queues sharing a name share an identity — which only merges their
    /// footprints (conservative, never unsound).
    obj: ObjId,
    /// The kernel this queue last registered with (for the end-of-run
    /// hygiene check); re-bound lazily on enqueue, so one queue object can
    /// be reused across simulations.
    bound: Mutex<Weak<Shared>>,
}

impl WaitQueue {
    /// Creates an empty queue; `name` appears in traces and deadlock reports.
    pub fn new(name: &str) -> Self {
        WaitQueue {
            cell: Arc::new(QueueCell {
                name: name.to_string(),
                waiters: Mutex::new(VecDeque::new()),
            }),
            obj: ObjId::new("queue", name),
            bound: Mutex::new(Weak::new()),
        }
    }

    /// The queue's diagnostic name.
    pub fn name(&self) -> &str {
        &self.cell.name
    }

    /// Registers this queue's cell with the calling process's kernel (once
    /// per simulation), so the end-of-run hygiene assertion sees it.
    fn bind(&self, ctx: &Ctx) {
        let shared = ctx.shared();
        let mut bound = self.bound.lock();
        if Weak::as_ptr(&bound) == Arc::as_ptr(shared) {
            return;
        }
        *bound = Arc::downgrade(shared);
        shared.queues.lock().push(Arc::clone(&self.cell));
    }

    /// Parks the calling process at the back of the queue (FIFO order).
    pub fn wait(&self, ctx: &Ctx) {
        self.wait_priority(ctx, 0);
    }

    /// Parks the calling process ordered by `priority` (lower values are
    /// woken first), with FIFO arrival order breaking ties.
    ///
    /// If the process dies while parked (a fault-plan kill-point or a
    /// panic), its entry is removed from the queue during the unwind, so a
    /// later wake is never granted to a dead process.
    pub fn wait_priority(&self, ctx: &Ctx, priority: i64) {
        self.enqueue_current(ctx, priority);
        let cleanup = DequeueOnUnwind { queue: self, ctx };
        ctx.park(self.name());
        std::mem::forget(cleanup);
    }

    /// Registers the calling process on the queue *without* parking it.
    ///
    /// The caller must follow up with [`Ctx::park`] before any
    /// other process can run; under the simulator's cooperative invariant
    /// any non-blocking work done in between (such as releasing a monitor)
    /// is atomic with the enqueue, which is exactly what monitor `wait`
    /// needs: enqueue on the condition, release possession, park.
    pub fn enqueue_current(&self, ctx: &Ctx, priority: i64) {
        self.bind(ctx);
        ctx.note_sync_obj(&self.obj, Access::Write);
        let ticket = ctx.fresh_ticket();
        let depth = {
            let mut q = self.cell.waiters.lock();
            let at = q
                .iter()
                .position(|w| (w.priority, w.ticket) > (priority, ticket))
                .unwrap_or(q.len());
            q.insert(
                at,
                Waiter {
                    pid: ctx.pid(),
                    ticket,
                    priority,
                },
            );
            q.len() as u64
        };
        // Metrics only (queue-depth high-water mark); the queue lock is
        // released first so the kernel lock is never nested inside it.
        ctx.shared()
            .state
            .lock()
            .metrics
            .note_queue_depth(&self.cell.name, depth);
    }

    /// Wakes the frontmost waiter, if any, and returns its pid.
    ///
    /// Entries whose process already woke by timeout (see
    /// [`WaitQueue::wait_by`]) are discarded, so a wake is never
    /// wasted on a waiter that has given up.
    pub fn wake_one(&self, ctx: &Ctx) -> Option<Pid> {
        // Queue-state access (even when empty) — see Ctx::note_sync_obj.
        ctx.note_sync_obj(&self.obj, Access::Write);
        loop {
            let waiter = self.cell.waiters.lock().pop_front()?;
            if ctx.try_unpark(waiter.pid) {
                return Some(waiter.pid);
            }
            // Stale entry (timed out, not yet self-removed): skip it.
        }
    }

    /// Wakes every waiter (in queue order) and returns how many were woken.
    pub fn wake_all(&self, ctx: &Ctx) -> usize {
        ctx.note_sync_obj(&self.obj, Access::Write);
        let drained: Vec<Waiter> = self.cell.waiters.lock().drain(..).collect();
        drained.iter().filter(|w| ctx.try_unpark(w.pid)).count()
    }

    /// Wakes a specific pid if it is in this queue; returns whether it was
    /// woken (a stale timed-out entry is removed but not counted).
    pub fn wake_pid(&self, ctx: &Ctx, pid: Pid) -> bool {
        ctx.note_sync_obj(&self.obj, Access::Write);
        let removed = {
            let mut q = self.cell.waiters.lock();
            match q.iter().position(|w| w.pid == pid) {
                Some(at) => {
                    q.remove(at);
                    true
                }
                None => false,
            }
        };
        removed && ctx.try_unpark(pid)
    }

    /// Removes and returns the frontmost waiter *without* waking it; the
    /// caller becomes responsible for eventually unparking the process
    /// (used by deferred hand-offs such as signal-and-exit monitors).
    pub fn take_front(&self) -> Option<Pid> {
        self.cell.waiters.lock().pop_front().map(|w| w.pid)
    }

    /// Removes the calling process's own entry (timeout cleanup).
    pub fn remove_current(&self, ctx: &Ctx) {
        ctx.note_sync_obj(&self.obj, Access::Write);
        self.cell.waiters.lock().retain(|w| w.pid != ctx.pid());
    }

    /// Parks the calling process at the back of the queue until woken by a
    /// [`WaitQueue::wake_one`]/[`WaitQueue::wake_all`] or until `deadline`
    /// (a tick count, a [`Deadline`], or a `Duration` — see
    /// [`Deadline`]). Returns `true` if woken, `false` on timeout; an
    /// already-expired deadline fails immediately without parking. The
    /// queue entry is removed either way.
    pub fn wait_by(&self, ctx: &Ctx, deadline: impl Into<Deadline>) -> bool {
        let Some(ticks) = ctx.remaining(deadline) else {
            return false;
        };
        self.enqueue_current(ctx, 0);
        let cleanup = DequeueOnUnwind { queue: self, ctx };
        let woken = ctx.park_timeout(self.name(), ticks);
        std::mem::forget(cleanup);
        if !woken {
            // A waker may have skipped past our stale entry already; the
            // removal is idempotent.
            self.remove_current(ctx);
        }
        woken
    }

    /// Number of processes currently waiting.
    ///
    /// **Explore-unsafe probe**: records no footprint. A process that
    /// *branches* on the result during an explored schedule is invisible
    /// to the object-granular prune — the explorer may skip a sibling
    /// reordering that would change the answer. Solution code must use
    /// [`WaitQueue::len_ctx`]; this bare form exists for test assertions
    /// and post-run inspection.
    pub fn len(&self) -> usize {
        self.cell.waiters.lock().len()
    }

    /// Instrumented [`WaitQueue::len`]: records the read in the quantum's
    /// footprint so the explorers keep schedules that reorder around it.
    pub fn len_ctx(&self, ctx: &Ctx) -> usize {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.len()
    }

    /// Whether the queue has no waiters. This is Hoare's *condition queue
    /// interrogation* (`nonempty`/`queue` in the monitor paper).
    ///
    /// **Explore-unsafe probe** — see [`WaitQueue::len`]; solution code
    /// must use [`WaitQueue::is_empty_ctx`].
    pub fn is_empty(&self) -> bool {
        self.cell.waiters.lock().is_empty()
    }

    /// Instrumented [`WaitQueue::is_empty`] (footprint-recorded).
    pub fn is_empty_ctx(&self, ctx: &Ctx) -> bool {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.is_empty()
    }

    /// Priority of the frontmost waiter, if any (Hoare's `minrank`, used by
    /// the disk-scheduler and alarm-clock monitors).
    ///
    /// **Explore-unsafe probe** — see [`WaitQueue::len`]; solution code
    /// must use [`WaitQueue::min_priority_ctx`].
    pub fn min_priority(&self) -> Option<i64> {
        self.cell.waiters.lock().front().map(|w| w.priority)
    }

    /// Instrumented [`WaitQueue::min_priority`] (footprint-recorded).
    pub fn min_priority_ctx(&self, ctx: &Ctx) -> Option<i64> {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.min_priority()
    }

    /// The frontmost waiter's pid without waking it.
    pub fn front(&self) -> Option<Pid> {
        self.cell.waiters.lock().front().map(|w| w.pid)
    }

    /// Arrival ticket of the frontmost waiter, if any. Lower tickets arrived
    /// earlier; mechanisms use this for longest-waiting selection across
    /// several queues.
    pub fn front_ticket(&self) -> Option<u64> {
        self.cell.waiters.lock().front().map(|w| w.ticket)
    }
}

/// Removes the parked process's queue entry if the park unwinds (kill or
/// panic) instead of returning. Armed before the park and disarmed with
/// `mem::forget` on the normal path, so the `Drop` body runs only during
/// an unwind. Touches only this queue's own mutex — safe even during the
/// concurrent unwinds of shutdown.
struct DequeueOnUnwind<'a> {
    queue: &'a WaitQueue,
    ctx: &'a Ctx,
}

impl Drop for DequeueOnUnwind<'_> {
    fn drop(&mut self) {
        self.queue.remove_current(self.ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use std::sync::Arc;

    #[test]
    fn fifo_wake_order() {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("q"));
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let q = Arc::clone(&q);
            let order = Arc::clone(&order);
            sim.spawn(&format!("w{i}"), move |ctx| {
                q.wait(ctx);
                order.lock().push(i);
            });
        }
        let q2 = Arc::clone(&q);
        sim.spawn("waker", move |ctx| {
            // Let all three park first (each wait is a scheduling point).
            for _ in 0..4 {
                ctx.yield_now();
            }
            assert_eq!(q2.len(), 3);
            while q2.wake_one(ctx).is_some() {}
        });
        sim.run().expect("clean run");
        assert_eq!(*order.lock(), vec![0, 1, 2], "FIFO order preserved");
    }

    #[test]
    fn priority_orders_wakeups() {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("prio"));
        let order = Arc::new(Mutex::new(Vec::new()));
        for (i, prio) in [(0, 5i64), (1, 1), (2, 3)] {
            let q = Arc::clone(&q);
            let order = Arc::clone(&order);
            sim.spawn(&format!("w{i}"), move |ctx| {
                q.wait_priority(ctx, prio);
                order.lock().push(i);
            });
        }
        let q2 = Arc::clone(&q);
        sim.spawn("waker", move |ctx| {
            for _ in 0..4 {
                ctx.yield_now();
            }
            assert_eq!(q2.min_priority(), Some(1));
            while q2.wake_one(ctx).is_some() {}
        });
        sim.run().expect("clean run");
        assert_eq!(*order.lock(), vec![1, 2, 0], "woken in priority order");
    }

    #[test]
    fn wake_pid_plucks_from_middle() {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("q"));
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut pids = Vec::new();
        for i in 0..3 {
            let q = Arc::clone(&q);
            let order = Arc::clone(&order);
            pids.push(sim.spawn(&format!("w{i}"), move |ctx| {
                q.wait(ctx);
                order.lock().push(i);
            }));
        }
        let q2 = Arc::clone(&q);
        let target = pids[1];
        sim.spawn("waker", move |ctx| {
            for _ in 0..4 {
                ctx.yield_now();
            }
            assert!(q2.wake_pid(ctx, target));
            assert!(
                !q2.wake_pid(ctx, target),
                "second wake of same pid is a no-op"
            );
            q2.wake_all(ctx);
        });
        sim.run().expect("clean run");
        assert_eq!(*order.lock(), vec![1, 0, 2]);
    }

    #[test]
    fn empty_queue_wake_is_noop() {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("q"));
        let q2 = Arc::clone(&q);
        sim.spawn("solo", move |ctx| {
            assert!(q2.wake_one(ctx).is_none());
            assert_eq!(q2.wake_all(ctx), 0);
            assert!(q2.is_empty());
            assert_eq!(q2.min_priority(), None);
        });
        sim.run().expect("clean run");
    }

    #[test]
    fn deadlock_reported_when_everyone_waits() {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("abyss"));
        for i in 0..2 {
            let q = Arc::clone(&q);
            sim.spawn(&format!("w{i}"), move |ctx| q.wait(ctx));
        }
        let err = sim.run().expect_err("must deadlock");
        assert!(err.is_deadlock());
        assert!(err.to_string().contains("abyss"));
    }
}
