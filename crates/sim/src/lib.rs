#![forbid(unsafe_code)]
#![deny(deprecated)]
//! Deterministic cooperative concurrency simulator.
//!
//! `bloom-sim` is the substrate every synchronization mechanism in this
//! workspace is built on. Simulated *processes* are ordinary Rust closures,
//! each hosted on its own OS thread, but a baton protocol guarantees that
//! **exactly one process executes at any instant**. Every blocking operation
//! (parking, sleeping, yielding) is a scheduling point at which a pluggable
//! [`SchedPolicy`] picks the next process to run. Given a policy, an entire
//! execution — including its virtual-time stamps and event trace — is a pure
//! function of the program, so any run can be replayed, shrunk, or
//! exhaustively explored.
//!
//! This determinism is what makes the paper's *behavioral* claims testable:
//! Bloom's analysis of the Figure-1 path-expression solution (footnote 3)
//! hinges on one specific interleaving of three processes, which
//! [`Explorer`] can find mechanically.
//!
//! # Architecture
//!
//! * [`Sim`] — builder/owner of a simulation: spawn processes, pick a
//!   policy, [`Sim::run`] to completion.
//! * [`Ctx`] — the handle a process closure receives; all interaction with
//!   the kernel (parking, spawning, tracing) goes through it.
//! * [`WaitQueue`] — the one low-level blocking primitive; semaphores,
//!   monitors, serializers and path expressions are all built from it.
//! * [`Trace`] / [`Event`] — the totally ordered event log of a run;
//!   higher-level crates derive their correctness checks from it.
//! * [`Explorer`] — bounded exhaustive enumeration of schedules (and,
//!   via [`Explorer::run_kill_points`], of schedule × kill-point spaces).
//! * [`FaultPlan`] — deterministic fault injection: kill a named process
//!   at its Nth scheduling point, wake a park spuriously, delay a wake.
//!   Faults are part of the run's coordinates, so a crash scenario replays
//!   exactly like a schedule.
//! * [`SimMetrics`] — per-run observability counters (dispatches, parks,
//!   wakes, queue depths, sync ops, replay divergence) attached to every
//!   [`SimReport`]; strictly *non-authoritative* — metrics observe
//!   scheduling, never influence it.
//! * [`export`] — serializes any trace + metrics pair to JSONL or the
//!   Chrome trace-event format (Perfetto-loadable), dependency-free.
//!
//! # The cooperative invariant
//!
//! Because only one process runs at a time and control transfers only at
//! explicit scheduling points, a *check-then-park* sequence inside a process
//! is atomic with respect to all other processes. Mechanism implementations
//! exploit this: there are no lost-wakeup races to defend against, so the
//! mechanism code stays close to the published pseudocode it reproduces.
//!
//! # Example
//!
//! ```
//! use bloom_sim::{Sim, WaitQueue};
//! use std::sync::Arc;
//!
//! let mut sim = Sim::new();
//! let q = Arc::new(WaitQueue::new("turnstile"));
//! let q2 = Arc::clone(&q);
//! sim.spawn("waiter", move |ctx| {
//!     q2.wait(ctx); // parks until woken
//!     ctx.emit("woken", &[]);
//! });
//! let q3 = Arc::clone(&q);
//! sim.spawn("waker", move |ctx| {
//!     ctx.yield_now(); // let the waiter park first
//!     q3.wake_one(ctx);
//! });
//! let report = sim.run().expect("no deadlock");
//! assert!(report.trace.user_events().any(|(_, label, _)| label == "woken"));
//! ```

mod baton;
mod ctx;
mod error;
mod explore;
pub mod export;
mod fault;
mod footprint;
mod kernel;
mod metrics;
mod parallel;
mod policy;
mod pool;
pub mod prelude;
mod retry;
mod revisit;
mod sample;
mod sim;
mod symbolic;
mod trace;
mod types;
mod waitq;

pub use ctx::Ctx;
pub use error::{SimError, SimErrorKind};
pub use explore::{
    Engine, ExploreConfig, ExploreError, ExploreStats, Explorer, KillPointCount, KillPointStats,
    PruneMode,
};
pub use fault::{DelaySpec, FaultPlan, KillSpec, Poisoned, SpuriousSpec};
pub use footprint::{Access, Footprint, ObjId, QuantumRecord};
pub use kernel::{ProcessStatus, ProcessSummary, SimReport, StarvationFlag};
pub use metrics::{PidMetrics, ReplayDivergence, SimMetrics};
pub use parallel::{ParallelExplorer, ScheduleRecord};
pub use policy::{
    CheckpointSpacing, FifoPolicy, LifoPolicy, RandomPolicy, ReplayPolicy, SchedPolicy, SplitMix64,
};
pub use retry::{retry_with_backoff, Backoff, RetryOutcome};
pub use sample::{
    replay_exact, replay_prefix, shrink_prefix, PctPolicy, SampleRecord, SampleStats,
    SampleStrategy, Sampler,
};
pub use sim::{HeldRun, RunProgress, Sim, SimConfig};
pub use symbolic::{CmpOp, DataChoice, SymValue};
pub use trace::{Decision, DecisionKind, Event, EventKind, Trace};
pub use types::{Deadline, Pid, Time};
pub use waitq::WaitQueue;
