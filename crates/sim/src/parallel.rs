//! Work-sharing parallel schedule exploration.
//!
//! [`ParallelExplorer`] explores the same decision tree as
//! [`crate::Explorer`], but with a pool of worker threads
//! (`std::thread::scope` — no extra dependencies, no unsafe). The tree is
//! embarrassingly parallel at prefix boundaries:
//!
//! * A shared frontier (`Mutex<Vec<Vec<u32>>>`) holds unexplored branch
//!   prefixes, seeded with the empty prefix (the canonical first schedule).
//! * A worker pops a prefix, runs the scenario under a [`ReplayPolicy`]
//!   for it (decisions past the prefix take the canonical choice 0), and
//!   for every decision point the run *discovered* — indices at or beyond
//!   the prefix length — pushes each sibling branch `decisions[..i] ⧺ [c]`,
//!   `c ∈ 1..arity`, back onto the frontier. Each leaf is generated exactly
//!   once: by the prefix that ends at its last non-zero choice.
//! * The run's outcome is mapped to a journal entry on the spot (outcomes
//!   are never buffered whole — a 300k-schedule tree of full [`SimReport`]s
//!   would not fit in memory) and appended to the worker's own journal.
//!
//! Determinism is load-bearing in this repository, so the merge is
//! canonical: per-worker journals are concatenated and sorted by the full
//! decision vector of each schedule, which is exactly the depth-first
//! visit order of the serial explorer. Schedule counts, journals, and any
//! report text derived from them are byte-identical for every thread
//! count — and identical to [`crate::Explorer`] (verified by the
//! `parallel_explore` integration test).
//!
//! The budget is also deterministic: workers claim budget slots from an
//! atomic counter before running, so exactly `min(budget, tree)` schedules
//! execute regardless of interleaving; *which* schedules run under an
//! exhausted budget is scheduling-dependent, so only `schedules` and
//! `complete` (not the journal) are guaranteed stable for budget-cut
//! explorations. All exhaustive call sites in this repository are
//! budgeted above their tree size.

use crate::error::SimError;
use crate::explore::victim_killed;
use crate::explore::{ExploreStats, KillPointCount, KillPointStats};
use crate::fault::FaultPlan;
use crate::kernel::SimReport;
use crate::policy::ReplayPolicy;
use crate::sim::Sim;
use crate::trace::Decision;
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// One schedule's entry in a merged exploration journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRecord<T> {
    /// The schedule's decision vector (its replay coordinates).
    pub choices: Vec<u32>,
    /// Whatever the map closure produced for this schedule.
    pub value: T,
}

/// Shared frontier of unexplored branch prefixes.
struct Frontier {
    stack: Vec<Vec<u32>>,
    /// Workers currently expanding a popped prefix (may push more work).
    active: usize,
    /// Raised on budget exhaustion or worker panic: drain and exit.
    stop: bool,
}

struct Coordinator {
    frontier: Mutex<Frontier>,
    available: Condvar,
}

/// Decrements `active` when an expansion ends — including by panic, where
/// it also raises `stop` so sibling workers exit instead of waiting forever
/// on a frontier that will never drain.
struct ActiveGuard<'a> {
    sync: &'a Coordinator,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        let mut f = self.sync.frontier.lock();
        f.active -= 1;
        if std::thread::panicking() {
            f.stop = true;
        }
        self.sync.available.notify_all();
    }
}

/// Work-sharing parallel version of [`crate::Explorer`].
#[derive(Debug, Clone, Copy)]
pub struct ParallelExplorer {
    max_schedules: usize,
    threads: usize,
    prune: bool,
}

impl ParallelExplorer {
    /// Creates an explorer that runs at most `max_schedules` schedules,
    /// with one worker per available core (capped at 8).
    pub fn new(max_schedules: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ParallelExplorer {
            max_schedules,
            threads,
            prune: false,
        }
    }

    /// Sets the worker count (min 1). Results are identical for every
    /// thread count; this only tunes throughput.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables the equivalence prune (see [`crate::Explorer::with_pruning`]
    /// — the pruned tree is identical to the serial explorer's).
    pub fn with_pruning(mut self) -> Self {
        self.prune = true;
        self
    }

    /// Explores the scenario produced by `setup`, mapping every schedule
    /// to a journal entry via `map`, and returns the journal merged in
    /// canonical (serial depth-first) order together with the stats.
    ///
    /// `setup` must build an identical simulation each time it is called;
    /// it and `map` run concurrently on worker threads. A panic in either
    /// (including assertion failures inside `map`) stops the exploration
    /// and propagates.
    pub fn run<S, M, T>(&self, setup: S, map: M) -> (Vec<ScheduleRecord<T>>, ExploreStats)
    where
        S: Fn() -> Sim + Sync,
        M: Fn(&[Decision], &Result<SimReport, SimError>) -> T + Sync,
        T: Send,
    {
        let sync = Coordinator {
            frontier: Mutex::new(Frontier {
                stack: vec![Vec::new()],
                active: 0,
                stop: false,
            }),
            available: Condvar::new(),
        };
        let claimed = AtomicUsize::new(0);
        let budget_hit = AtomicBool::new(false);
        let pruned = AtomicUsize::new(0);
        let journals: Mutex<Vec<Vec<ScheduleRecord<T>>>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let journal = self.worker(&sync, &claimed, &budget_hit, &pruned, &setup, &map);
                    journals.lock().push(journal);
                });
            }
        });

        let mut journal: Vec<ScheduleRecord<T>> =
            journals.into_inner().into_iter().flatten().collect();
        journal.sort_unstable_by(|a, b| a.choices.cmp(&b.choices));
        let stats = ExploreStats {
            schedules: journal.len(),
            complete: !budget_hit.load(Ordering::Relaxed),
            pruned: pruned.load(Ordering::Relaxed),
        };
        (journal, stats)
    }

    /// One worker: pop a prefix, run it, expand its discovered siblings,
    /// journal the outcome; exit when the frontier drains or `stop` rises.
    fn worker<S, M, T>(
        &self,
        sync: &Coordinator,
        claimed: &AtomicUsize,
        budget_hit: &AtomicBool,
        pruned: &AtomicUsize,
        setup: &S,
        map: &M,
    ) -> Vec<ScheduleRecord<T>>
    where
        S: Fn() -> Sim + Sync,
        M: Fn(&[Decision], &Result<SimReport, SimError>) -> T + Sync,
        T: Send,
    {
        let mut journal = Vec::new();
        loop {
            // Pop a prefix, or exit once no work exists and nobody is
            // expanding (an active worker may still push more).
            let prefix = {
                let mut f = sync.frontier.lock();
                loop {
                    if f.stop {
                        return journal;
                    }
                    if let Some(p) = f.stack.pop() {
                        f.active += 1;
                        break p;
                    }
                    if f.active == 0 {
                        return journal;
                    }
                    sync.available.wait(&mut f);
                }
            };
            let _guard = ActiveGuard { sync };
            // Claim a budget slot *before* running: exactly
            // min(budget, tree) schedules execute, deterministically.
            if claimed.fetch_add(1, Ordering::Relaxed) >= self.max_schedules {
                budget_hit.store(true, Ordering::Relaxed);
                let mut f = sync.frontier.lock();
                f.stop = true;
                sync.available.notify_all();
                return journal;
            }

            let mut sim = setup();
            sim.set_policy(ReplayPolicy::new(prefix.clone()));
            let result = sim.run();
            let decisions: &[Decision] = match &result {
                Ok(report) => &report.decisions,
                Err(err) => &err.report.decisions,
            };
            for (i, want) in prefix.iter().enumerate() {
                assert!(
                    decisions.get(i).map(|d| d.chosen) == Some(*want),
                    "replay prefix diverged at decision {i}: scenario is nondeterministic"
                );
            }
            // Expand the decision points this run discovered. Points below
            // the prefix length were expanded by the run that discovered
            // the prefix; the rest are seen here first (with the canonical
            // choice 0, which is what licenses the prune check).
            let mut fresh: Vec<Vec<u32>> = Vec::new();
            for i in prefix.len()..decisions.len() {
                let d = decisions[i];
                debug_assert_eq!(d.chosen, 0, "past-prefix replay takes choice 0");
                if d.arity <= 1 {
                    continue;
                }
                if self.prune && d.pure {
                    pruned.fetch_add(d.arity as usize - 1, Ordering::Relaxed);
                    continue;
                }
                for c in 1..d.arity {
                    let mut branch = Vec::with_capacity(i + 1);
                    branch.extend(decisions[..i].iter().map(|d| d.chosen));
                    branch.push(c);
                    fresh.push(branch);
                }
            }
            if !fresh.is_empty() {
                let mut f = sync.frontier.lock();
                f.stack.append(&mut fresh);
                sync.available.notify_all();
            }
            journal.push(ScheduleRecord {
                choices: decisions.iter().map(|d| d.chosen).collect(),
                value: map(decisions, &result),
            });
        }
    }

    /// Parallel version of [`crate::Explorer::run_kill_points`]: explores
    /// the (schedule × kill-point) space, stopping the sweep at the first
    /// kill point that can no longer fire. Journal entries carry the kill
    /// point in `value` position via the `map` closure's first argument;
    /// the merged journal is ordered by `(kill point, decision vector)`.
    pub fn run_kill_points<S, M, T>(
        &self,
        victim: &str,
        max_points: u64,
        setup: S,
        map: M,
    ) -> (Vec<(u64, ScheduleRecord<T>)>, KillPointStats)
    where
        S: Fn() -> Sim + Sync,
        M: Fn(u64, &[Decision], &Result<SimReport, SimError>) -> T + Sync,
        T: Send,
    {
        let mut journal = Vec::new();
        let mut stats = KillPointStats {
            schedules: 0,
            complete: true,
            pruned: 0,
            per_point: Vec::new(),
        };
        for point in 1..=max_points {
            let kills = AtomicUsize::new(0);
            let (point_journal, point_stats) = self.run(
                || {
                    let mut sim = setup();
                    sim.set_fault_plan(FaultPlan::new().kill(victim, point));
                    sim
                },
                |decisions, result| {
                    if victim_killed(victim, result) {
                        kills.fetch_add(1, Ordering::Relaxed);
                    }
                    map(point, decisions, result)
                },
            );
            let kills = kills.into_inner();
            stats.schedules += point_stats.schedules;
            stats.complete &= point_stats.complete;
            stats.pruned += point_stats.pruned;
            stats.per_point.push(KillPointCount {
                point,
                schedules: point_stats.schedules,
                kills,
            });
            journal.extend(point_journal.into_iter().map(|r| (point, r)));
            if kills == 0 && point_stats.complete {
                break; // the victim never reaches `point` scheduling points
            }
        }
        (journal, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn three_emitters() -> Sim {
        let mut sim = Sim::new();
        for i in 0..3 {
            sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
        }
        sim
    }

    #[test]
    fn matches_serial_explorer_for_every_thread_count() {
        let mut serial: Vec<(Vec<u32>, Vec<i64>)> = Vec::new();
        let serial_stats = crate::Explorer::new(10_000).run(three_emitters, |decisions, result| {
            let report = result.as_ref().unwrap();
            serial.push((
                decisions.iter().map(|d| d.chosen).collect(),
                report
                    .trace
                    .user_events()
                    .map(|(_, _, params)| params[0])
                    .collect(),
            ));
        });
        for threads in [1, 2, 4, 8] {
            let (journal, stats) =
                ParallelExplorer::new(10_000)
                    .threads(threads)
                    .run(three_emitters, |_, result| {
                        let report = result.as_ref().unwrap();
                        report
                            .trace
                            .user_events()
                            .map(|(_, _, params)| params[0])
                            .collect::<Vec<i64>>()
                    });
            assert_eq!(stats.schedules, serial_stats.schedules);
            assert!(stats.complete);
            let merged: Vec<(Vec<u32>, Vec<i64>)> =
                journal.into_iter().map(|r| (r.choices, r.value)).collect();
            assert_eq!(merged, serial, "journal must match serial visit order");
        }
    }

    #[test]
    fn budget_claims_are_deterministic() {
        for threads in [1, 2, 4, 8] {
            let (journal, stats) = ParallelExplorer::new(2)
                .threads(threads)
                .run(three_emitters, |_, _| ());
            assert_eq!(stats.schedules, 2);
            assert_eq!(journal.len(), 2);
            assert!(!stats.complete);
        }
    }

    #[test]
    fn exact_budget_reports_complete() {
        // 3 one-emit processes: 3! = 6 schedules exactly.
        let (_, stats) = ParallelExplorer::new(6)
            .threads(4)
            .run(three_emitters, |_, _| ());
        assert_eq!(stats.schedules, 6);
        assert!(stats.complete, "budget == tree size must be complete");
    }

    #[test]
    fn pruning_matches_serial_and_preserves_behaviors() {
        let scenario = || {
            let mut sim = Sim::new();
            sim.spawn("a", |ctx| {
                ctx.emit("a1", &[]);
                ctx.yield_now();
                ctx.yield_now();
                ctx.emit("a2", &[]);
            });
            sim.spawn("b", |ctx| {
                ctx.emit("b1", &[]);
                ctx.yield_now();
                ctx.emit("b2", &[]);
            });
            sim
        };
        let trace_of = |result: &Result<SimReport, SimError>| {
            result
                .as_ref()
                .unwrap()
                .trace
                .user_events()
                .map(|(_, l, _)| l.to_string())
                .collect::<Vec<_>>()
        };
        let mut serial_traces = BTreeSet::new();
        let mut serial_journal = Vec::new();
        let serial_stats =
            crate::Explorer::new(100_000)
                .with_pruning()
                .run(scenario, |decisions, result| {
                    let t = trace_of(result);
                    serial_traces.insert(t.clone());
                    serial_journal
                        .push((decisions.iter().map(|d| d.chosen).collect::<Vec<_>>(), t));
                });
        assert!(serial_stats.pruned > 0, "scenario must actually prune");
        let mut full_traces = BTreeSet::new();
        crate::Explorer::new(100_000).run(scenario, |_, result| {
            full_traces.insert(trace_of(result));
        });
        assert_eq!(
            serial_traces, full_traces,
            "prune must be behavior-preserving"
        );
        for threads in [1, 4] {
            let (journal, stats) = ParallelExplorer::new(100_000)
                .threads(threads)
                .with_pruning()
                .run(scenario, |_, result| trace_of(result));
            assert_eq!(stats.schedules, serial_stats.schedules);
            assert_eq!(stats.pruned, serial_stats.pruned);
            let merged: Vec<(Vec<u32>, Vec<String>)> =
                journal.into_iter().map(|r| (r.choices, r.value)).collect();
            assert_eq!(merged, serial_journal, "pruned trees must be identical");
        }
    }
}
