//! Work-sharing parallel schedule exploration.
//!
//! [`ParallelExplorer`] explores the same decision tree as
//! [`crate::Explorer`], but with a pool of worker threads
//! (`std::thread::scope` — no extra dependencies, no unsafe). The tree is
//! embarrassingly parallel at prefix boundaries:
//!
//! * A shared frontier (`Mutex<Vec<Vec<u32>>>`) holds unexplored branch
//!   prefixes, seeded with the empty prefix (the canonical first schedule).
//! * A worker pops a prefix, runs the scenario under a [`crate::ReplayPolicy`]
//!   for it (decisions past the prefix take the canonical choice 0), and
//!   for every decision point the run *discovered* — indices at or beyond
//!   the prefix length — pushes each sibling branch `decisions[..i] ⧺ [c]`,
//!   `c ∈ 1..arity`, back onto the frontier. Each leaf is generated exactly
//!   once: by the prefix that ends at its last non-zero choice.
//! * The run's outcome is mapped to a journal entry on the spot (outcomes
//!   are never buffered whole — a 300k-schedule tree of full [`SimReport`]s
//!   would not fit in memory) and appended to the worker's own journal.
//!
//! Determinism is load-bearing in this repository, so the merge is
//! canonical: per-worker journals are concatenated and sorted by the full
//! decision vector of each schedule, which is exactly the depth-first
//! visit order of the serial explorer. Schedule counts, journals, and any
//! report text derived from them are byte-identical for every thread
//! count — and identical to [`crate::Explorer`] (verified by the
//! `parallel_explore` integration test).
//!
//! The budget is also deterministic: workers claim budget slots from an
//! atomic counter before running, so exactly `min(budget, tree)` schedules
//! execute regardless of interleaving; *which* schedules run under an
//! exhausted budget is scheduling-dependent, so only `schedules` and
//! `complete` (not the journal) are guaranteed stable for budget-cut
//! explorations. All exhaustive call sites in this repository are
//! budgeted above their tree size.

use crate::error::SimError;
use crate::explore::victim_killed;
use crate::explore::{
    bump_depth, merge_conflicts, merge_depth, walk_run, ExploreError, ExploreStats, KillPointCount,
    KillPointStats, ProgressCallback, PruneMode, SleepSet, SpineRunner,
};
use crate::fault::FaultPlan;
use crate::footprint::QuantumRecord;
use crate::kernel::SimReport;
use crate::policy::CheckpointSpacing;
use crate::revisit::plan_revisits;
use crate::sim::Sim;
use crate::trace::Decision;
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// One schedule's entry in a merged exploration journal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduleRecord<T> {
    /// The schedule's decision vector (its replay coordinates).
    pub choices: Vec<u32>,
    /// Whatever the map closure produced for this schedule.
    pub value: T,
}

/// Shared frontier of unexplored branch prefixes, each carrying the sleep
/// set its run inherits (the branched-from node's `child_sleep` — see
/// [`crate::explore`]'s module docs; empty when pruning is off).
struct Frontier {
    stack: Vec<(Vec<u32>, SleepSet)>,
    /// Workers currently expanding a popped prefix (may push more work).
    active: usize,
    /// Raised on budget exhaustion or worker panic: drain and exit.
    stop: bool,
}

struct Coordinator {
    frontier: Mutex<Frontier>,
    available: Condvar,
}

/// Decrements `active` when an expansion ends — including by panic, where
/// it also raises `stop` so sibling workers exit instead of waiting forever
/// on a frontier that will never drain.
struct ActiveGuard<'a> {
    sync: &'a Coordinator,
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        let mut f = self.sync.frontier.lock();
        f.active -= 1;
        if std::thread::panicking() {
            f.stop = true;
        }
        self.sync.available.notify_all();
    }
}

/// Mutable exploration state shared by the workers. Everything here is
/// merge-order-independent (atomic adds, elementwise histogram adds, a
/// lexicographic minimum), which is what keeps the final [`ExploreStats`]
/// byte-identical across thread counts.
struct SharedStats {
    claimed: AtomicUsize,
    budget_hit: AtomicBool,
    depth_pruned: Mutex<Vec<usize>>,
    conflicts: Mutex<BTreeMap<String, u64>>,
    first_error: Mutex<Option<ExploreError>>,
    /// Total race-derived branch requests (including already-scheduled
    /// duplicates); a per-run pure function, so the sum is
    /// order-independent. See [`ExploreStats::revisit_requests`].
    revisit_requests: AtomicU64,
    /// Total symbolic value requests (including duplicates); also a
    /// per-run pure function. See [`ExploreStats::sym_requests`].
    sym_requests: AtomicU64,
    /// Revisit-mode grant state; `None` in the sleep-set modes.
    revisit: Option<Mutex<RevisitShared>>,
}

/// The shared fixed-point state of a revisit-mode exploration: which
/// branch prefixes were ever scheduled (so a request is granted exactly
/// once, no matter which worker makes it first), plus the per-depth
/// sibling-capacity and grant histograms whose difference is the prune
/// histogram. A worker registers a run's discovered nodes and grants its
/// requests under one lock acquisition, *before* pushing the granted
/// branches to the frontier — so any run that can request a branch at a
/// node always finds the node's canonical marker already present.
struct RevisitShared {
    scheduled: BTreeSet<Vec<u32>>,
    potential: Vec<usize>,
    granted: Vec<usize>,
    /// Value-sibling capacity and grants of discovered `Data`-kind
    /// decisions, kept apart from the race-revisit pair so the symbolic
    /// collapse is separately reportable (see
    /// [`ExploreStats::sym_grants`]).
    data_potential: Vec<usize>,
    data_granted: Vec<usize>,
}

impl SharedStats {
    fn new(revisit: bool) -> Self {
        SharedStats {
            claimed: AtomicUsize::new(0),
            budget_hit: AtomicBool::new(false),
            depth_pruned: Mutex::new(Vec::new()),
            conflicts: Mutex::new(BTreeMap::new()),
            first_error: Mutex::new(None),
            revisit_requests: AtomicU64::new(0),
            sym_requests: AtomicU64::new(0),
            revisit: revisit.then(|| {
                Mutex::new(RevisitShared {
                    scheduled: BTreeSet::from([Vec::new()]),
                    potential: Vec::new(),
                    granted: Vec::new(),
                    data_potential: Vec::new(),
                    data_granted: Vec::new(),
                })
            }),
        }
    }

    /// Keeps the failure whose decision vector is least in canonical
    /// depth-first order — the same winner regardless of which worker
    /// found which failure first.
    fn offer_error(&self, candidate: ExploreError) {
        let mut slot = self.first_error.lock();
        match &*slot {
            Some(cur) if cur.choices <= candidate.choices => {}
            _ => *slot = Some(candidate),
        }
    }
}

/// Work-sharing parallel version of [`crate::Explorer`].
#[derive(Debug, Clone)]
pub struct ParallelExplorer {
    max_schedules: usize,
    threads: usize,
    prune: bool,
    mode: PruneMode,
    checkpoint: CheckpointSpacing,
    progress_every: usize,
    progress: ProgressCallback,
}

impl ParallelExplorer {
    /// Creates an explorer that runs at most `max_schedules` schedules,
    /// with one worker per available core (capped at 8).
    pub fn new(max_schedules: usize) -> Self {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8);
        ParallelExplorer {
            max_schedules,
            threads,
            prune: false,
            mode: PruneMode::Granular,
            checkpoint: CheckpointSpacing::default(),
            progress_every: 0,
            progress: ProgressCallback::default(),
        }
    }

    /// Selects the schedule execution strategy (see
    /// [`crate::Explorer::with_checkpointing`]). Each worker keeps its own
    /// private spine over the prefixes it happens to claim, so the win is
    /// smaller than the serial explorer's — popped prefixes are only
    /// *mostly* depth-first per worker — but results stay byte-identical.
    pub fn with_checkpointing(mut self, spacing: CheckpointSpacing) -> Self {
        self.checkpoint = spacing;
        self
    }

    /// Sets the worker count (min 1). Results are identical for every
    /// thread count; this only tunes throughput.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Enables the equivalence prune (see [`crate::Explorer::with_pruning`]
    /// — the pruned tree is identical to the serial explorer's).
    pub fn with_pruning(mut self) -> Self {
        self.prune = true;
        self.mode = PruneMode::Granular;
        self
    }

    /// Enables only the pure-stutter layer of the prune (see
    /// [`crate::Explorer::with_coarse_pruning`] — again byte-identical to
    /// the serial explorer in the same mode).
    pub fn with_coarse_pruning(mut self) -> Self {
        self.prune = true;
        self.mode = PruneMode::Coarse;
        self
    }

    /// Enables the race-driven revisit prune (see
    /// [`crate::Explorer::with_revisit_pruning`]). The explored schedule
    /// *set* — and therefore the canonically sorted journal and every
    /// stat — is identical to the serial explorer's and across thread
    /// counts: grants are fresh insertions into a shared scheduled set,
    /// so the set of executed schedules is the same least fixed point no
    /// matter which worker detects which race first.
    pub fn with_revisit_pruning(mut self) -> Self {
        self.prune = true;
        self.mode = PruneMode::Revisit;
        self
    }

    /// Installs a progress callback fired at *virtual* milestones — once
    /// for every `every`-th schedule claimed from the budget counter, with
    /// the running claim count as argument — never on wall-clock time, so
    /// observing progress cannot perturb determinism. For an exhaustive
    /// exploration the set of milestones is a pure function of the tree
    /// (claims = schedules); only the thread a callback runs on varies.
    /// Under a budget cut-off the over-claims that detect exhaustion are
    /// scheduling-dependent, so the last milestone may vary — the same
    /// caveat as the journal (see the module docs). `every == 0` disables
    /// the callback.
    pub fn with_progress<F>(mut self, every: usize, callback: F) -> Self
    where
        F: Fn(usize) + Send + Sync + 'static,
    {
        self.progress_every = every;
        self.progress = ProgressCallback(Some(Arc::new(callback)));
        self
    }

    /// Explores the scenario produced by `setup`, mapping every schedule
    /// to a journal entry via `map`, and returns the journal merged in
    /// canonical (serial depth-first) order together with the stats.
    ///
    /// `setup` must build an identical simulation each time it is called;
    /// it and `map` run concurrently on worker threads. A panic in either
    /// (including assertion failures inside `map`) stops the exploration
    /// and propagates.
    pub fn run<S, M, T>(&self, setup: S, map: M) -> (Vec<ScheduleRecord<T>>, ExploreStats)
    where
        S: Fn() -> Sim + Sync,
        M: Fn(&[Decision], &Result<SimReport, SimError>) -> T + Sync,
        T: Send,
    {
        let sync = Coordinator {
            frontier: Mutex::new(Frontier {
                stack: vec![(Vec::new(), SleepSet::default())],
                active: 0,
                stop: false,
            }),
            available: Condvar::new(),
        };
        let shared = SharedStats::new(self.prune && self.mode == PruneMode::Revisit);
        let journals: Mutex<Vec<Vec<ScheduleRecord<T>>>> = Mutex::new(Vec::new());

        std::thread::scope(|scope| {
            for _ in 0..self.threads {
                scope.spawn(|| {
                    let journal = self.worker(&sync, &shared, &setup, &map);
                    journals.lock().push(journal);
                });
            }
        });

        let mut journal: Vec<ScheduleRecord<T>> =
            journals.into_inner().into_iter().flatten().collect();
        journal.sort_unstable_by(|a, b| a.choices.cmp(&b.choices));
        // The schedule depth histogram is derived from the merged journal
        // (one record per executed schedule), so it is canonical by
        // construction; the prune histogram and first error were merged
        // order-independently as the workers ran.
        let mut depth_schedules = Vec::new();
        for r in &journal {
            bump_depth(&mut depth_schedules, r.choices.len(), 1);
        }
        // In revisit mode the prune histogram is settled now, exactly as
        // in the serial worklist: every sibling of every discovered
        // contested node that was never granted is a pruned branch.
        let (depth_pruned, revisits, sym_grants) = match shared.revisit {
            Some(revisit) => {
                let rs = revisit.into_inner();
                let mut depth_pruned = Vec::new();
                let mut revisits = 0u64;
                for (depth, &cap) in rs.potential.iter().enumerate() {
                    let taken = rs.granted.get(depth).copied().unwrap_or(0);
                    debug_assert!(taken <= cap, "granted more siblings than exist");
                    if cap > taken {
                        bump_depth(&mut depth_pruned, depth, cap - taken);
                    }
                    revisits += taken as u64;
                }
                let mut sym_grants = 0u64;
                for (depth, &cap) in rs.data_potential.iter().enumerate() {
                    let taken = rs.data_granted.get(depth).copied().unwrap_or(0);
                    debug_assert!(taken <= cap, "granted more value siblings than exist");
                    if cap > taken {
                        bump_depth(&mut depth_pruned, depth, cap - taken);
                    }
                    sym_grants += taken as u64;
                }
                (depth_pruned, revisits, sym_grants)
            }
            None => (shared.depth_pruned.into_inner(), 0, 0),
        };
        let stats = ExploreStats {
            schedules: journal.len(),
            complete: !shared.budget_hit.load(Ordering::Relaxed),
            pruned: depth_pruned.iter().sum(),
            depth_schedules,
            depth_pruned,
            conflicts: shared.conflicts.into_inner(),
            revisit_requests: shared.revisit_requests.into_inner(),
            revisits,
            sym_requests: shared.sym_requests.into_inner(),
            sym_grants,
            first_error: shared.first_error.into_inner(),
            sampling: None,
        };
        #[cfg(debug_assertions)]
        stats.assert_consistent();
        (journal, stats)
    }

    /// One worker: pop a prefix, run it, expand its discovered siblings,
    /// journal the outcome; exit when the frontier drains or `stop` rises.
    fn worker<S, M, T>(
        &self,
        sync: &Coordinator,
        shared: &SharedStats,
        setup: &S,
        map: &M,
    ) -> Vec<ScheduleRecord<T>>
    where
        S: Fn() -> Sim + Sync,
        M: Fn(&[Decision], &Result<SimReport, SimError>) -> T + Sync,
        T: Send,
    {
        let mut journal = Vec::new();
        let mut make = || setup();
        let record_quanta = if self.prune {
            // The sleep-set and revisit layers need the footprint log;
            // coarse mode drops it, degrading the walk to the pure-only
            // prune.
            Some(self.mode != PruneMode::Coarse)
        } else {
            None
        };
        let mut spine = SpineRunner::new(self.checkpoint);
        loop {
            // Pop a prefix, or exit once no work exists and nobody is
            // expanding (an active worker may still push more).
            let (prefix, inherited) = {
                let mut f = sync.frontier.lock();
                loop {
                    if f.stop {
                        return journal;
                    }
                    if let Some(p) = f.stack.pop() {
                        f.active += 1;
                        break p;
                    }
                    if f.active == 0 {
                        return journal;
                    }
                    sync.available.wait(&mut f);
                }
            };
            let _guard = ActiveGuard { sync };
            // Claim a budget slot *before* running: exactly
            // min(budget, tree) schedules execute, deterministically.
            let claim = shared.claimed.fetch_add(1, Ordering::Relaxed);
            if claim >= self.max_schedules {
                shared.budget_hit.store(true, Ordering::Relaxed);
                let mut f = sync.frontier.lock();
                f.stop = true;
                sync.available.notify_all();
                return journal;
            }
            if self.progress_every > 0 && (claim + 1).is_multiple_of(self.progress_every) {
                if let Some(progress) = &self.progress.0 {
                    progress(claim + 1);
                }
            }

            let result = spine.run_schedule(&mut make, &prefix, record_quanta);
            let (decisions, quanta, metrics): (&[Decision], &[QuantumRecord], _) = match &result {
                Ok(report) => (&report.decisions, &report.quanta, &report.metrics),
                Err(err) => (
                    &err.report.decisions,
                    &err.report.quanta,
                    &err.report.metrics,
                ),
            };
            debug_assert!(
                !metrics.replay.diverged(),
                "replay diverged ({:?}) during exploration: scenario is nondeterministic",
                metrics.replay
            );
            for (i, want) in prefix.iter().enumerate() {
                assert!(
                    decisions.get(i).map(|d| d.chosen) == Some(*want),
                    "replay prefix diverged at decision {i}: scenario is nondeterministic"
                );
            }
            if let Err(err) = &result {
                shared.offer_error(ExploreError {
                    choices: decisions.iter().map(|d| d.chosen).collect(),
                    error: err.clone(),
                });
            }
            // Expand the decision points this run discovered. Points below
            // the prefix length were expanded by the run that discovered
            // the prefix; the rest are seen here first (with the canonical
            // choice 0, which is what licenses the prune checks). With the
            // prune on, the walk over the footprint log supplies the same
            // per-node facts the serial explorer derives, so the pruned
            // trees are identical.
            let mut fresh: Vec<(Vec<u32>, SleepSet)> = Vec::new();
            if let Some(revisit) = &shared.revisit {
                // Race-driven expansion: analyse this run for reversible
                // races, register the nodes it discovered, and schedule
                // only the fresh race-derived requests. All of it under
                // one lock acquisition, before the frontier push, so a
                // node's canonical marker is always visible before any
                // descendant run can request choice 0 there.
                let mut local_races = BTreeMap::new();
                let plan = plan_revisits(decisions, quanta, prefix.len(), &mut local_races);
                if !local_races.is_empty() {
                    merge_conflicts(&mut shared.conflicts.lock(), &local_races);
                }
                shared
                    .revisit_requests
                    .fetch_add(plan.requests.len() as u64, Ordering::Relaxed);
                let choices: Vec<u32> = decisions.iter().map(|d| d.chosen).collect();
                let mut rs = revisit.lock();
                for (i, d) in decisions.iter().enumerate().skip(prefix.len()) {
                    debug_assert_eq!(d.chosen, 0, "past-prefix replay takes choice 0");
                    if d.arity > 1 {
                        if d.is_sched() {
                            bump_depth(&mut rs.potential, i, d.arity as usize - 1);
                        } else {
                            bump_depth(&mut rs.data_potential, i, d.arity as usize - 1);
                        }
                        rs.scheduled.insert(choices[..=i].to_vec());
                    }
                }
                for (i, c) in plan.requests {
                    let mut branch = choices[..i].to_vec();
                    branch.push(c);
                    if rs.scheduled.insert(branch.clone()) {
                        bump_depth(&mut rs.granted, i, 1);
                        fresh.push((branch, SleepSet::default()));
                    }
                }
                // Symbolic collapse: request one representative per
                // constraint class at every data decision of this run
                // (a per-run pure function, like the race plan), and
                // grant the fresh ones under the same lock acquisition.
                let data_choices = match &result {
                    Ok(report) => &report.data_choices,
                    Err(err) => &err.report.data_choices,
                };
                let mut slot = 0usize;
                for (i, d) in decisions.iter().enumerate() {
                    if !d.is_data() {
                        continue;
                    }
                    let requests = data_choices[slot].collapse_requests();
                    slot += 1;
                    shared
                        .sym_requests
                        .fetch_add(requests.len() as u64, Ordering::Relaxed);
                    for c in requests {
                        let mut branch = choices[..i].to_vec();
                        branch.push(c);
                        if rs.scheduled.insert(branch.clone()) {
                            bump_depth(&mut rs.data_granted, i, 1);
                            fresh.push((branch, SleepSet::default()));
                        }
                    }
                }
                debug_assert_eq!(slot, data_choices.len(), "data decision/choice drift");
            } else if self.prune {
                let mut local_conflicts = BTreeMap::new();
                let infos = walk_run(
                    decisions,
                    quanta,
                    prefix.len(),
                    &inherited,
                    &mut local_conflicts,
                );
                if !local_conflicts.is_empty() {
                    merge_conflicts(&mut shared.conflicts.lock(), &local_conflicts);
                }
                if prefix.len() + infos.len() < decisions.len() {
                    // The walk cut this run (see `walk_run`): count the
                    // abandoned canonical continuation as one pruned
                    // branch; nodes past the cut are never expanded.
                    bump_depth(
                        &mut shared.depth_pruned.lock(),
                        prefix.len() + infos.len() - 1,
                        1,
                    );
                }
                for (j, info) in infos.iter().enumerate() {
                    let i = prefix.len() + j;
                    let d = decisions[i];
                    debug_assert_eq!(d.chosen, 0, "past-prefix replay takes choice 0");
                    if d.arity <= 1 {
                        continue;
                    }
                    if info.pure {
                        bump_depth(&mut shared.depth_pruned.lock(), i, d.arity as usize - 1);
                        continue;
                    }
                    for c in 1..d.arity {
                        if info.asleep[c as usize] {
                            bump_depth(&mut shared.depth_pruned.lock(), i, 1);
                            continue;
                        }
                        let mut branch = Vec::with_capacity(i + 1);
                        branch.extend(decisions[..i].iter().map(|d| d.chosen));
                        branch.push(c);
                        fresh.push((branch, info.child_sleep.clone()));
                    }
                }
            } else {
                for i in prefix.len()..decisions.len() {
                    let d = decisions[i];
                    debug_assert_eq!(d.chosen, 0, "past-prefix replay takes choice 0");
                    if d.arity <= 1 {
                        continue;
                    }
                    for c in 1..d.arity {
                        let mut branch = Vec::with_capacity(i + 1);
                        branch.extend(decisions[..i].iter().map(|d| d.chosen));
                        branch.push(c);
                        fresh.push((branch, SleepSet::default()));
                    }
                }
            }
            if !fresh.is_empty() {
                let mut f = sync.frontier.lock();
                f.stack.append(&mut fresh);
                sync.available.notify_all();
            }
            journal.push(ScheduleRecord {
                choices: decisions.iter().map(|d| d.chosen).collect(),
                value: map(decisions, &result),
            });
        }
    }

    /// Parallel version of [`crate::Explorer::run_kill_points`]: explores
    /// the (schedule × kill-point) space, stopping the sweep at the first
    /// kill point that can no longer fire. Journal entries carry the kill
    /// point in `value` position via the `map` closure's first argument;
    /// the merged journal is ordered by `(kill point, decision vector)`.
    pub fn run_kill_points<S, M, T>(
        &self,
        victim: &str,
        max_points: u64,
        setup: S,
        map: M,
    ) -> (Vec<(u64, ScheduleRecord<T>)>, KillPointStats)
    where
        S: Fn() -> Sim + Sync,
        M: Fn(u64, &[Decision], &Result<SimReport, SimError>) -> T + Sync,
        T: Send,
    {
        let mut journal = Vec::new();
        let mut stats = KillPointStats {
            complete: true,
            ..KillPointStats::default()
        };
        for point in 1..=max_points {
            let kills = AtomicUsize::new(0);
            let (point_journal, point_stats) = self.run(
                || {
                    let mut sim = setup();
                    sim.set_fault_plan(FaultPlan::new().kill(victim, point));
                    sim
                },
                |decisions, result| {
                    if victim_killed(victim, result) {
                        kills.fetch_add(1, Ordering::Relaxed);
                    }
                    map(point, decisions, result)
                },
            );
            let kills = kills.into_inner();
            stats.schedules += point_stats.schedules;
            stats.complete &= point_stats.complete;
            stats.pruned += point_stats.pruned;
            merge_depth(&mut stats.depth_schedules, &point_stats.depth_schedules);
            merge_depth(&mut stats.depth_pruned, &point_stats.depth_pruned);
            merge_conflicts(&mut stats.conflicts, &point_stats.conflicts);
            stats.revisit_requests += point_stats.revisit_requests;
            stats.revisits += point_stats.revisits;
            stats.sym_requests += point_stats.sym_requests;
            stats.sym_grants += point_stats.sym_grants;
            if stats.first_error.is_none() {
                stats.first_error = point_stats.first_error;
            }
            stats.per_point.push(KillPointCount {
                point,
                schedules: point_stats.schedules,
                kills,
            });
            journal.extend(point_journal.into_iter().map(|r| (point, r)));
            if kills == 0 && point_stats.complete {
                break; // the victim never reaches `point` scheduling points
            }
        }
        #[cfg(debug_assertions)]
        stats.assert_consistent();
        (journal, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn three_emitters() -> Sim {
        let mut sim = Sim::new();
        for i in 0..3 {
            sim.spawn(&format!("p{i}"), move |ctx| ctx.emit("go", &[i]));
        }
        sim
    }

    #[test]
    fn matches_serial_explorer_for_every_thread_count() {
        let mut serial: Vec<(Vec<u32>, Vec<i64>)> = Vec::new();
        let serial_stats = crate::Explorer::new(10_000).run(three_emitters, |decisions, result| {
            let Ok(report) = result else { return };
            serial.push((
                decisions.iter().map(|d| d.chosen).collect(),
                report
                    .trace
                    .user_events()
                    .map(|(_, _, params)| params[0])
                    .collect(),
            ));
        });
        for threads in [1, 2, 4, 8] {
            let (journal, stats) =
                ParallelExplorer::new(10_000)
                    .threads(threads)
                    .run(three_emitters, |_, result| {
                        let Ok(report) = result else {
                            return Vec::new();
                        };
                        report
                            .trace
                            .user_events()
                            .map(|(_, _, params)| params[0])
                            .collect::<Vec<i64>>()
                    });
            assert_eq!(stats.schedules, serial_stats.schedules);
            assert!(stats.complete);
            assert_eq!(stats.depth_schedules, serial_stats.depth_schedules);
            assert_eq!(stats.depth_pruned, serial_stats.depth_pruned);
            assert!(stats.first_error.is_none());
            let merged: Vec<(Vec<u32>, Vec<i64>)> =
                journal.into_iter().map(|r| (r.choices, r.value)).collect();
            assert_eq!(merged, serial, "journal must match serial visit order");
        }
    }

    #[test]
    fn budget_claims_are_deterministic() {
        for threads in [1, 2, 4, 8] {
            let (journal, stats) = ParallelExplorer::new(2)
                .threads(threads)
                .run(three_emitters, |_, _| ());
            assert_eq!(stats.schedules, 2);
            assert_eq!(journal.len(), 2);
            assert!(!stats.complete);
        }
    }

    #[test]
    fn exact_budget_reports_complete() {
        // 3 one-emit processes: 3! = 6 schedules exactly.
        let (_, stats) = ParallelExplorer::new(6)
            .threads(4)
            .run(three_emitters, |_, _| ());
        assert_eq!(stats.schedules, 6);
        assert!(stats.complete, "budget == tree size must be complete");
    }

    #[test]
    fn pruning_matches_serial_and_preserves_behaviors() {
        let scenario = || {
            let mut sim = Sim::new();
            sim.spawn("a", |ctx| {
                ctx.emit("a1", &[]);
                ctx.yield_now();
                ctx.yield_now();
                ctx.emit("a2", &[]);
            });
            sim.spawn("b", |ctx| {
                ctx.emit("b1", &[]);
                ctx.yield_now();
                ctx.emit("b2", &[]);
            });
            sim
        };
        let trace_of = |result: &Result<SimReport, SimError>| {
            result
                .as_ref()
                .map(|report| {
                    report
                        .trace
                        .user_events()
                        .map(|(_, l, _)| l.to_string())
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        };
        let mut serial_traces = BTreeSet::new();
        let mut serial_journal = Vec::new();
        let serial_stats =
            crate::Explorer::new(100_000)
                .with_pruning()
                .run(scenario, |decisions, result| {
                    let t = trace_of(result);
                    serial_traces.insert(t.clone());
                    serial_journal
                        .push((decisions.iter().map(|d| d.chosen).collect::<Vec<_>>(), t));
                });
        assert!(serial_stats.pruned > 0, "scenario must actually prune");
        let mut full_traces = BTreeSet::new();
        crate::Explorer::new(100_000).run(scenario, |_, result| {
            full_traces.insert(trace_of(result));
        });
        assert_eq!(
            serial_traces, full_traces,
            "prune must be behavior-preserving"
        );
        for threads in [1, 4] {
            let (journal, stats) = ParallelExplorer::new(100_000)
                .threads(threads)
                .with_pruning()
                .run(scenario, |_, result| trace_of(result));
            assert_eq!(stats.schedules, serial_stats.schedules);
            assert_eq!(stats.pruned, serial_stats.pruned);
            assert_eq!(stats.conflicts, serial_stats.conflicts);
            let merged: Vec<(Vec<u32>, Vec<String>)> =
                journal.into_iter().map(|r| (r.choices, r.value)).collect();
            assert_eq!(merged, serial_journal, "pruned trees must be identical");
        }
    }

    /// The sleep-set layer (disjoint objects, no pure stutters) must also
    /// produce byte-identical pruned trees for every thread count.
    #[test]
    fn sleep_set_prune_matches_serial_for_every_thread_count() {
        let scenario = || {
            let mut sim = Sim::new();
            let qa = Arc::new(crate::waitq::WaitQueue::new("qa"));
            let qb = Arc::new(crate::waitq::WaitQueue::new("qb"));
            sim.spawn("a", move |ctx| {
                qa.wake_one(ctx);
                ctx.yield_now();
                qa.wake_one(ctx);
                ctx.yield_now();
                ctx.emit("a", &[]);
            });
            sim.spawn("b", move |ctx| {
                qb.wake_one(ctx);
                ctx.yield_now();
                qb.wake_one(ctx);
                ctx.yield_now();
                ctx.emit("b", &[]);
            });
            sim
        };
        let trace_of = |result: &Result<SimReport, SimError>| {
            result
                .as_ref()
                .map(|report| {
                    report
                        .trace
                        .user_events()
                        .map(|(_, l, _)| l.to_string())
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        };
        let mut serial_journal = Vec::new();
        let serial_stats =
            crate::Explorer::new(100_000)
                .with_pruning()
                .run(scenario, |decisions, result| {
                    serial_journal.push((
                        decisions.iter().map(|d| d.chosen).collect::<Vec<_>>(),
                        trace_of(result),
                    ));
                });
        assert!(serial_stats.pruned > 0, "sleep sets must prune here");
        for threads in [1, 2, 4, 8] {
            let (journal, stats) = ParallelExplorer::new(100_000)
                .threads(threads)
                .with_pruning()
                .run(scenario, |_, result| trace_of(result));
            assert_eq!(stats.schedules, serial_stats.schedules);
            assert_eq!(stats.pruned, serial_stats.pruned);
            assert_eq!(stats.depth_pruned, serial_stats.depth_pruned);
            assert_eq!(stats.conflicts, serial_stats.conflicts);
            let merged: Vec<(Vec<u32>, Vec<String>)> =
                journal.into_iter().map(|r| (r.choices, r.value)).collect();
            assert_eq!(merged, serial_journal, "pruned trees must be identical");
        }
    }

    /// The revisit mode's executed set is a fixed point of the race
    /// analysis, so every thread count must produce the identical journal
    /// (after sorting the serial one — its worklist visit order is not the
    /// parallel merge order) and identical stats.
    #[test]
    fn revisit_matches_serial_for_every_thread_count() {
        let scenario = || {
            let mut sim = Sim::new();
            let shared = Arc::new(crate::waitq::WaitQueue::new("shared"));
            let qa = Arc::new(crate::waitq::WaitQueue::new("qa"));
            let s1 = Arc::clone(&shared);
            sim.spawn("a", move |ctx| {
                qa.wake_one(ctx);
                ctx.yield_now();
                s1.wake_one(ctx);
                ctx.emit("a", &[]);
            });
            let s2 = Arc::clone(&shared);
            sim.spawn("b", move |ctx| {
                s2.wake_one(ctx);
                ctx.yield_now();
                ctx.emit("b", &[]);
            });
            sim
        };
        let trace_of = |result: &Result<SimReport, SimError>| {
            result
                .as_ref()
                .map(|report| {
                    report
                        .trace
                        .user_events()
                        .map(|(_, l, _)| l.to_string())
                        .collect::<Vec<_>>()
                })
                .unwrap_or_default()
        };
        let mut serial_journal = Vec::new();
        let serial_stats = crate::Explorer::new(100_000).with_revisit_pruning().run(
            scenario,
            |decisions, result| {
                serial_journal.push((
                    decisions.iter().map(|d| d.chosen).collect::<Vec<_>>(),
                    trace_of(result),
                ));
            },
        );
        serial_journal.sort();
        assert!(serial_stats.revisits > 0, "the shared queue must race");
        for threads in [1, 2, 4, 8] {
            let (journal, stats) = ParallelExplorer::new(100_000)
                .threads(threads)
                .with_revisit_pruning()
                .run(scenario, |_, result| trace_of(result));
            assert_eq!(stats.schedules, serial_stats.schedules);
            assert_eq!(stats.pruned, serial_stats.pruned);
            assert_eq!(stats.depth_pruned, serial_stats.depth_pruned);
            assert_eq!(stats.conflicts, serial_stats.conflicts);
            assert_eq!(stats.revisit_requests, serial_stats.revisit_requests);
            assert_eq!(stats.revisits, serial_stats.revisits);
            let merged: Vec<(Vec<u32>, Vec<String>)> =
                journal.into_iter().map(|r| (r.choices, r.value)).collect();
            assert_eq!(merged, serial_journal, "revisit trees must be identical");
        }
    }

    /// A schedule-dependent deadlock must not panic the workers; the
    /// canonical-first failure must match the serial explorer's for every
    /// thread count.
    #[test]
    fn first_error_matches_serial_for_every_thread_count() {
        let scenario = || {
            let mut sim = Sim::new();
            let q = Arc::new(crate::waitq::WaitQueue::new("gate"));
            let q2 = Arc::clone(&q);
            sim.spawn("waiter", move |ctx| q2.wait(ctx));
            let q3 = Arc::clone(&q);
            sim.spawn("waker", move |ctx| {
                q3.wake_one(ctx);
            });
            sim
        };
        let serial_stats = crate::Explorer::new(1000).run(scenario, |_, _| {});
        let serial_first = serial_stats.first_error.expect("some schedule deadlocks");
        for threads in [1, 2, 4, 8] {
            let (journal, stats) = ParallelExplorer::new(1000)
                .threads(threads)
                .run(scenario, |_, result| result.is_ok());
            assert!(stats.complete, "failures must not cut the walk short");
            assert_eq!(stats.schedules, serial_stats.schedules);
            assert!(journal.iter().any(|r| !r.value), "failures are journaled");
            let first = stats.first_error.expect("failure is propagated");
            assert_eq!(first.choices, serial_first.choices);
            assert!(first.error.is_deadlock());
        }
    }

    /// Progress milestones are a pure function of the tree for exhaustive
    /// explorations: same set for every thread count, never wall-clock.
    #[test]
    fn progress_milestones_are_deterministic() {
        for threads in [1, 2, 4, 8] {
            let ticks = Arc::new(parking_lot::Mutex::new(Vec::new()));
            let ticks2 = Arc::clone(&ticks);
            let (_, stats) = ParallelExplorer::new(10_000)
                .threads(threads)
                .with_progress(2, move |n| ticks2.lock().push(n))
                .run(three_emitters, |_, _| ());
            assert!(stats.complete);
            assert_eq!(stats.schedules, 6, "3! = 6 schedules");
            let mut ticks = ticks.lock().clone();
            ticks.sort_unstable();
            assert_eq!(ticks, vec![2, 4, 6], "milestones fire every 2 claims");
        }
    }
}
