//! The per-process kernel handle.

use crate::baton::Report;
use crate::footprint::{merge_access, Access, ObjId};
use crate::kernel::{obey, stop_process, ProcessStatus, Shared, StopOutcome, TimerKind};
use crate::symbolic::SymValue;
use crate::trace::EventKind;
use crate::types::{Deadline, Pid, Time};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Handle through which a simulated process interacts with the kernel.
///
/// Every process closure receives a `&Ctx`. All blocking primitives in the
/// mechanism crates take a `&Ctx` argument; the handle identifies *which*
/// process is performing the operation and gives access to the shared kernel.
pub struct Ctx {
    shared: Arc<Shared>,
    pid: Pid,
}

impl Ctx {
    pub(crate) fn new(shared: Arc<Shared>, pid: Pid) -> Self {
        Ctx { shared, pid }
    }

    pub(crate) fn shared(&self) -> &Arc<Shared> {
        &self.shared
    }

    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// This process's spawn-time name.
    pub fn name(&self) -> String {
        self.shared.state.lock().procs[self.pid.index()]
            .name
            .clone()
    }

    /// Current virtual time.
    ///
    /// Reading the clock is an observable effect: commuting a pure quantum
    /// shifts intervening timestamps by one tick, so a process that
    /// branches on `now()` voids the explorers' equivalence prune for the
    /// whole run (see [`crate::Decision::pure`]).
    pub fn now(&self) -> Time {
        self.note_sync();
        let mut st = self.shared.state.lock();
        st.prune_safe = false;
        st.clock
    }

    /// A [`Deadline`] `ticks` quanta from now. Convenience for the timed
    /// mechanism APIs that take absolute deadlines.
    pub fn deadline_after(&self, ticks: u64) -> Deadline {
        Deadline::after(self.now(), ticks)
    }

    /// Resolves a deadline into a wait budget: `Some(ticks)` of budget
    /// left, `None` if the deadline has already expired (the caller must
    /// not park at all — fail fast instead).
    ///
    /// A relative deadline ([`Deadline::within`], or a bare `u64`/
    /// `Duration`) resolves without reading the clock, so it never voids
    /// the explorers' equivalence prune; an absolute one reads
    /// [`Ctx::now`] and therefore does (see [`Ctx::now`]).
    pub fn remaining(&self, deadline: impl Into<Deadline>) -> Option<u64> {
        let deadline = deadline.into();
        match deadline.absolute() {
            Some(_) => deadline.remaining(self.now()),
            None => deadline.remaining(Time::ZERO),
        }
    }

    /// Whether the simulation is shutting down (daemons being cancelled).
    ///
    /// Crash-safety drop guards in the mechanism crates consult this: a
    /// shutdown unwind is not a crash, and because cancelled threads unwind
    /// *concurrently*, guards must not touch kernel state or the trace
    /// then. Pure own-entry queue cleanup remains safe either way.
    pub fn cancelling(&self) -> bool {
        self.note_sync();
        self.shared.cancelling.load(Ordering::SeqCst)
    }

    /// Draws a fresh, strictly increasing ticket. Mechanisms use tickets to
    /// implement FIFO ordering (e.g. arrival order of requests).
    ///
    /// Ticket draws write the shared `"ticket"` pseudo-object: mechanisms
    /// compare ticket *values* across queues (a serializer picks the
    /// lowest front ticket over all its queues, a channel select takes
    /// the oldest offer), so two quanta that both draw tickets must not
    /// be commuted — swapping the draws swaps the values and can swap a
    /// later arbitration.
    pub fn fresh_ticket(&self) -> u64 {
        self.mark_obj(ObjId::pseudo("ticket"), Access::Write);
        self.shared.fresh_ticket()
    }

    /// Marks the current quantum as having touched synchronization state
    /// the kernel cannot observe.
    ///
    /// The explorers' equivalence prune classifies a quantum that performed
    /// no kernel-visible operation as a *stutter* that commutes with every
    /// sibling (see [`crate::Decision::pure`]). Mechanism state lives
    /// outside the kernel — a semaphore's fast path decrements a counter
    /// under its own mutex without ever entering the kernel — so every
    /// mechanism operation that reads or writes such state must call this
    /// before doing so; over-marking is always safe (it only disables
    /// pruning), under-marking makes the prune unsound. Operations that do
    /// not take a `&Ctx` (e.g. `WaitQueue::len`) cannot be marked:
    /// scenarios that let such calls influence control flow between
    /// scheduling points must not enable pruning.
    ///
    /// This is the conservative fallback of the footprint contract: it
    /// marks the quantum as touching *everything*
    /// ([`crate::Footprint::All`]). Mechanisms that know which object they
    /// touched should call [`Ctx::note_sync_obj`] instead, which keeps the
    /// object-granular sleep-set prune effective (see `DESIGN.md` §2.10).
    pub fn note_sync(&self) {
        self.shared.quantum_dirty.store(true, Ordering::Relaxed);
        self.shared.quantum_all.store(true, Ordering::Relaxed);
    }

    /// Marks the current quantum as having accessed one synchronization
    /// object. Object-granular refinement of [`Ctx::note_sync`]: the
    /// kernel records the per-quantum footprint and the explorers prune a
    /// sibling branch only when the quanta's footprints are independent
    /// (disjoint, or overlapping in reads only).
    ///
    /// Use `Access::Write` whenever the operation may change the object's
    /// state *or* branches on it in a way later writes could invalidate;
    /// `Access::Read` only for pure probes whose result the caller treats
    /// as a momentary hint. Over-marking (wider access, more objects, or
    /// falling back to [`Ctx::note_sync`]) is always safe.
    pub fn note_sync_obj(&self, obj: &ObjId, access: Access) {
        self.mark_obj(obj.clone(), access);
    }

    /// [`Ctx::note_sync_obj`], plus a per-mechanism operation count in
    /// [`crate::SimMetrics::sync_ops`] under the object's kind prefix.
    ///
    /// The mechanism crates call this at the call sites that already had
    /// to call `note_sync` for the purity contract, so the metric rides an
    /// existing instrumentation point and adds **no new scheduling
    /// points**: incrementing a counter is not a kernel operation, does
    /// not stop the quantum, and is never read back by the scheduler.
    pub fn note_sync_obj_op(&self, obj: &ObjId, access: Access) {
        self.shared.quantum_dirty.store(true, Ordering::Relaxed);
        let mut st = self.shared.state.lock();
        merge_access(&mut st.quantum_objs, obj.clone(), access);
        crate::metrics::SimMetrics::bump(&mut st.metrics.sync_ops, obj.kind());
    }

    /// [`Ctx::note_sync`], plus a per-mechanism operation count in
    /// [`crate::SimMetrics::sync_ops`] under `mechanism`. Conservative
    /// sibling of [`Ctx::note_sync_obj_op`] for operations with no single
    /// identifiable object.
    pub fn note_sync_op(&self, mechanism: &str) {
        self.note_sync();
        let mut st = self.shared.state.lock();
        crate::metrics::SimMetrics::bump(&mut st.metrics.sync_ops, mechanism);
    }

    /// Records an access to a kernel pseudo-object (or a mechanism object,
    /// by value) in the current quantum's footprint.
    fn mark_obj(&self, obj: ObjId, access: Access) {
        self.shared.quantum_dirty.store(true, Ordering::Relaxed);
        let mut st = self.shared.state.lock();
        merge_access(&mut st.quantum_objs, obj, access);
    }

    /// Gives up the CPU; the process stays runnable and will be rescheduled
    /// according to the policy.
    pub fn yield_now(&self) {
        let baton = {
            let st = self.shared.state.lock();
            Arc::clone(&st.procs[self.pid.index()].baton)
        };
        match stop_process(&self.shared, self.pid, Report::Yielded) {
            // The inline continuation picked us right back: keep running.
            StopOutcome::SelfResume => {}
            StopOutcome::Handed => obey(baton.take()),
        }
    }

    /// Sleeps for `ticks` quanta of virtual time.
    ///
    /// Sleeping zero ticks is equivalent to [`Ctx::yield_now`].
    pub fn sleep(&self, ticks: u64) {
        if ticks == 0 {
            self.yield_now();
            return;
        }
        let baton = {
            let st = self.shared.state.lock();
            Arc::clone(&st.procs[self.pid.index()].baton)
        };
        match stop_process(&self.shared, self.pid, Report::Slept { ticks }) {
            // A sleeping process leaves the ready list, so it can never be
            // the inline continuation's next pick.
            StopOutcome::SelfResume => unreachable!("a sleeping process cannot be re-picked"),
            StopOutcome::Handed => obey(baton.take()),
        }
    }

    /// Parks this process until another process calls [`Ctx::unpark`] on it.
    ///
    /// `reason` is recorded in the trace and shown in deadlock diagnostics.
    /// Mechanism crates call this *after* registering the process on their
    /// own wait queue; thanks to the cooperative invariant the
    /// register-then-park sequence is atomic with respect to other processes.
    pub fn park(&self, reason: &str) {
        let baton = {
            let mut st = self.shared.state.lock();
            let clock = st.clock;
            st.trace.push(
                clock,
                self.pid,
                EventKind::Blocked {
                    reason: reason.to_string(),
                },
            );
            Arc::clone(&st.procs[self.pid.index()].baton)
        };
        loop {
            let report = Report::Parked {
                reason: reason.to_string(),
            };
            match stop_process(&self.shared, self.pid, report) {
                // A parked process leaves the ready list (and fault-plan
                // spurious wakes never arm the inline path), so it can
                // never be the inline continuation's next pick.
                StopOutcome::SelfResume => unreachable!("a parked process cannot be re-picked"),
                StopOutcome::Handed => obey(baton.take()),
            }
            // A fault-plan spurious wake resumed us without a matching
            // unpark: absorb it by re-parking, so mechanisms never observe
            // a wake they did not grant. (A real unpark that raced the
            // spurious window clears the flag — see Ctx::try_unpark — and
            // we return normally.)
            let mut st = self.shared.state.lock();
            let slot = &mut st.procs[self.pid.index()];
            if !slot.spurious_wake {
                return;
            }
            slot.spurious_wake = false;
            let clock = st.clock;
            st.trace.push(
                clock,
                self.pid,
                EventKind::Blocked {
                    reason: reason.to_string(),
                },
            );
        }
    }

    /// Parks this process until [`Ctx::unpark`] *or* until `ticks` quanta
    /// of virtual time elapse. Returns `true` if woken by an unpark,
    /// `false` on timeout.
    ///
    /// On timeout the caller is still registered on whatever wait queue it
    /// joined and must deregister itself (see
    /// [`crate::WaitQueue::wait_by`], which handles this). A leaked
    /// registration is caught loudly: in debug builds the kernel asserts at
    /// the end of every non-panicked run that no wait queue still holds an
    /// entry, and grant paths must consult [`Ctx::is_parked`] before
    /// granting to a queue entry, so a timed-out waiter that has not yet
    /// deregistered is never the target of a grant.
    pub fn park_timeout(&self, reason: &str, ticks: u64) -> bool {
        let baton = {
            let mut st = self.shared.state.lock();
            let clock = st.clock;
            st.trace.push(
                clock,
                self.pid,
                EventKind::Blocked {
                    reason: reason.to_string(),
                },
            );
            Arc::clone(&st.procs[self.pid.index()].baton)
        };
        let report = Report::ParkedTimeout {
            reason: reason.to_string(),
            ticks,
        };
        match stop_process(&self.shared, self.pid, report) {
            StopOutcome::SelfResume => unreachable!("a parked process cannot be re-picked"),
            StopOutcome::Handed => obey(baton.take()),
        }
        let mut st = self.shared.state.lock();
        let slot = &mut st.procs[self.pid.index()];
        let timed_out = slot.timed_out;
        slot.timed_out = false;
        !timed_out
    }

    /// Whether `target` is currently parked — i.e. an unpark delivered now
    /// would succeed. Mirrors exactly what [`Ctx::try_unpark`] would
    /// accept: a blocked process, or a ready one whose pending fault-plan
    /// spurious wake would be converted into the unpark.
    ///
    /// Grant paths that scan a queue which may hold *stale* entries (a
    /// timed-out process that has not yet removed its own registration)
    /// must check this before applying a grant's side effects, so that a
    /// waiter whose timed wait returned `false` was never granted anything.
    pub fn is_parked(&self, target: Pid) -> bool {
        // Footprint: reads the target's park slot. The kernel writes the
        // same pseudo-object when the target parks, and unparks write it
        // too, so commuting this probe past a park-state change is
        // impossible; two probes of the same target commute.
        self.shared.quantum_dirty.store(true, Ordering::Relaxed);
        let mut st = self.shared.state.lock();
        merge_access(
            &mut st.quantum_objs,
            ObjId::pseudo(&format!("park:{target}")),
            Access::Read,
        );
        let slot = &st.procs[target.index()];
        matches!(slot.status, ProcessStatus::Blocked { .. }) || slot.spurious_wake
    }

    /// Makes a parked process runnable again if it is currently parked;
    /// returns whether it was. Use for queues that may hold *stale*
    /// entries of processes that already woke by timeout; for queues that
    /// cannot, prefer [`Ctx::unpark`], which panics on staleness.
    pub fn try_unpark(&self, target: Pid) -> bool {
        self.shared.quantum_dirty.store(true, Ordering::Relaxed);
        let mut st = self.shared.state.lock();
        merge_access(
            &mut st.quantum_objs,
            ObjId::pseudo(&format!("park:{target}")),
            Access::Write,
        );
        let slot = &mut st.procs[target.index()];
        if !matches!(slot.status, ProcessStatus::Blocked { .. }) {
            // A pending fault-plan spurious wake means the target is Ready
            // but will transparently re-park; converting the pending wake
            // into this real unpark preserves unpark semantics exactly.
            if slot.spurious_wake {
                slot.spurious_wake = false;
                if let Some((reason, _)) = &slot.wait_started {
                    let reason = reason.clone();
                    crate::metrics::SimMetrics::bump(&mut st.metrics.wakes, &reason);
                }
                let clock = st.clock;
                st.trace
                    .push(clock, target, EventKind::Unparked { by: self.pid });
                return true;
            }
            return false;
        }
        self.deliver_unpark(&mut st, target);
        true
    }

    /// Makes a parked process runnable again.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not currently blocked. Under the cooperative
    /// invariant a mechanism only ever wakes processes it has previously
    /// parked, so an unparked-while-not-parked target is a mechanism bug and
    /// is reported loudly rather than being silently ignored.
    pub fn unpark(&self, target: Pid) {
        self.shared.quantum_dirty.store(true, Ordering::Relaxed);
        let mut st = self.shared.state.lock();
        merge_access(
            &mut st.quantum_objs,
            ObjId::pseudo(&format!("park:{target}")),
            Access::Write,
        );
        let slot = &mut st.procs[target.index()];
        if slot.spurious_wake {
            // See Ctx::try_unpark: consume the pending spurious wake as if
            // it were this unpark.
            slot.spurious_wake = false;
            if let Some((reason, _)) = &slot.wait_started {
                let reason = reason.clone();
                crate::metrics::SimMetrics::bump(&mut st.metrics.wakes, &reason);
            }
            let clock = st.clock;
            st.trace
                .push(clock, target, EventKind::Unparked { by: self.pid });
            return;
        }
        assert!(
            matches!(slot.status, ProcessStatus::Blocked { .. }),
            "unpark of {target} which is {:?} (mechanism bug)",
            slot.status
        );
        self.deliver_unpark(&mut st, target);
    }

    /// Shared tail of [`Ctx::try_unpark`]/[`Ctx::unpark`] once `target` is
    /// known to be blocked: wakes it, or — when a fault-plan delayed wake
    /// fires on this unpark — converts the wake into a timed sleep. Either
    /// way the unpark is *delivered* (the hand-off decision is unchanged);
    /// a delay only shifts when the wakee next runs.
    fn deliver_unpark(&self, st: &mut crate::kernel::State, target: Pid) {
        let clock = st.clock;
        // Metrics: the unpark is delivered either way (a fault-plan delay
        // only shifts when the wakee runs), so it counts as a wake and
        // ends the target's blocked episode here.
        if let ProcessStatus::Blocked { reason } = &st.procs[target.index()].status {
            let reason = reason.clone();
            crate::metrics::SimMetrics::bump(&mut st.metrics.wakes, &reason);
        }
        st.settle_blocked_time(target);
        st.trace
            .push(clock, target, EventKind::Unparked { by: self.pid });
        let delay = if st.faults.active() {
            let name = st.procs[target.index()].name.clone();
            st.faults.on_unpark(target, &name)
        } else {
            None
        };
        match delay {
            None => {
                st.procs[target.index()].status = ProcessStatus::Ready;
                st.ready.push(target);
            }
            Some(ticks) => {
                let until = clock.plus(ticks);
                st.procs[target.index()].status = ProcessStatus::Sleeping { until };
                let tiebreak = st.timer_tiebreak;
                st.timer_tiebreak += 1;
                st.timers.push(std::cmp::Reverse((
                    until,
                    tiebreak,
                    target,
                    TimerKind::Sleep,
                )));
                st.trace
                    .push(clock, target, EventKind::DelayedWake { until });
            }
        }
    }

    /// Draws a value from a finite integer domain at a *data decision
    /// point* (DESIGN.md §2.15): the outcome is a value, not a scheduler
    /// pick, but it is recorded in the same decision vector (tagged
    /// [`crate::DecisionKind::Data`]), so replay, shrinking, journaling
    /// and exploration all cover it. The explorers enumerate every domain
    /// value; the revisit mode additionally collapses values the run
    /// never distinguished — provided the program observes the result
    /// through the returned [`crate::SymValue`]'s comparison methods
    /// rather than [`crate::SymValue::get`].
    ///
    /// Unlike every blocking primitive, this is **not** a scheduling
    /// point: the calling process keeps the CPU and the choice is made
    /// synchronously. The domain is sorted and deduplicated; a singleton
    /// domain records no decision. Accepts any `IntoIterator<Item = i64>`
    /// (a range like `1..=8`, a slice `[0, 1]`, …).
    ///
    /// # Panics
    ///
    /// Panics if the domain is empty.
    pub fn choose_value(&self, label: &str, domain: impl IntoIterator<Item = i64>) -> SymValue {
        crate::symbolic::choose(&self.shared, self.pid, label, domain.into_iter().collect())
    }

    /// Boolean face of [`Ctx::choose_value`]: a nondeterministic `bool`
    /// over the domain `{0, 1}`, observed immediately (which is exact for
    /// a two-value domain — no collapse is lost).
    pub fn choose_bool(&self, label: &str) -> bool {
        self.choose_value(label, [0, 1]).truth()
    }

    /// Appends an application-level event to the trace.
    pub fn emit(&self, label: &str, params: &[i64]) {
        self.emit_for(self.pid, label, params);
    }

    /// Appends an application-level event attributed to another process.
    ///
    /// Mechanisms that *grant* access on behalf of a blocked process (a
    /// semaphore hand-off, a baton protocol) use this to record the grant
    /// at the moment the decision is made, attributed to the process being
    /// granted — keeping trace order faithful to decision order even
    /// though the grantee resumes later.
    pub fn emit_for(&self, target: Pid, label: &str, params: &[i64]) {
        // Footprint: the user-event trace is an ordered pseudo-object —
        // two emitting quanta must never be commuted (their relative
        // event order is the observable behavior the explorers preserve),
        // while an emitting quantum still commutes with independent
        // non-emitting ones.
        self.shared.quantum_dirty.store(true, Ordering::Relaxed);
        let mut st = self.shared.state.lock();
        merge_access(&mut st.quantum_objs, ObjId::pseudo("trace"), Access::Write);
        let clock = st.clock;
        st.trace.push(
            clock,
            target,
            EventKind::User {
                label: label.to_string(),
                params: params.to_vec(),
            },
        );
    }

    /// Spawns a new process from within a running one.
    pub fn spawn<F>(&self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.note_sync();
        self.shared.spawn_process(name, false, f)
    }

    /// Spawns a daemon process: the run completes (rather than deadlocking)
    /// if only daemons remain blocked, and they are cancelled at shutdown.
    pub fn spawn_daemon<F>(&self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.note_sync();
        self.shared.spawn_process(name, true, f)
    }
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).finish()
    }
}
