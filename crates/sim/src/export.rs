//! Structured trace export: JSONL and Chrome trace-event format.
//!
//! Serializes any [`Trace`] + [`SimMetrics`] pair — the two observability
//! artifacts of a [`crate::SimReport`] — into machine-readable form, with
//! no dependencies (the JSON is hand-rolled, like `bench_explore.rs`):
//!
//! * [`to_jsonl`] — one JSON object per line: a `meta` header (process
//!   table), one `event` line per trace event, and a final `metrics` line.
//!   Greppable, streamable, diffable.
//! * [`to_chrome_trace`] — the Chrome trace-event format (a single JSON
//!   document loadable in `chrome://tracing` or Perfetto): one track per
//!   pid, each dispatch as a one-tick complete ("X") slice, each
//!   park…wake episode as an async ("b"/"e") span named after the wait
//!   reason, and user/fault events as instants. Timestamps are virtual
//!   time, 1 tick = 1 µs of trace time.
//!
//! Exporters are pure functions of their inputs, so exported bytes are as
//! deterministic as the run itself — byte-identical across explorer
//! thread counts (`tests/parallel_explore.rs`) and stable enough to pin
//! with golden files (`tests/trace_export.rs`).
//!
//! [`parse_json`] is the matching minimal reader, here so round-trip
//! tests need no JSON dependency either.

use crate::metrics::SimMetrics;
use crate::trace::{EventKind, Trace};
use std::collections::BTreeMap;
use std::fmt::Write;

/// Escapes `s` for inclusion inside a JSON string literal (no quotes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a string-keyed counter map as a JSON object (keys already
/// sorted — `BTreeMap` iteration order).
fn counter_map(map: &BTreeMap<String, u64>) -> String {
    let body: Vec<String> = map
        .iter()
        .map(|(k, v)| format!("\"{}\":{v}", esc(k)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Renders [`SimMetrics`] as one JSON object (shared by both exporters).
fn metrics_json(metrics: &SimMetrics) -> String {
    let per_pid: Vec<String> = metrics
        .per_pid
        .iter()
        .enumerate()
        .map(|(pid, p)| {
            format!(
                "{{\"pid\":{pid},\"dispatches\":{},\"run_ticks\":{},\"blocked_ticks\":{}}}",
                p.dispatches, p.run_ticks, p.blocked_ticks
            )
        })
        .collect();
    format!(
        "{{\"dispatches\":{},\"context_switches\":{},\"parks\":{},\"wakes\":{},\
         \"timeout_wakes\":{},\"queue_high_water\":{},\"sync_ops\":{},\"per_pid\":[{}],\
         \"replay\":{{\"clamped\":{},\"underruns\":{}}}}}",
        metrics.dispatches,
        metrics.context_switches,
        counter_map(&metrics.parks),
        counter_map(&metrics.wakes),
        counter_map(&metrics.timeout_wakes),
        counter_map(&metrics.queue_high_water),
        counter_map(&metrics.sync_ops),
        per_pid.join(","),
        metrics.replay.clamped,
        metrics.replay.underruns,
    )
}

/// The process table derivable from a trace: `(pid, name, daemon)` from
/// its `Spawned` events, in pid order.
fn processes(trace: &Trace) -> Vec<(u32, String, bool)> {
    let mut procs: Vec<(u32, String, bool)> = trace
        .events()
        .iter()
        .filter_map(|e| match &e.kind {
            EventKind::Spawned { name, daemon } => Some((e.pid.0, name.clone(), *daemon)),
            _ => None,
        })
        .collect();
    procs.sort_by_key(|&(pid, _, _)| pid);
    procs
}

/// Kind-specific JSONL fields, appended after the common ones.
fn kind_fields(kind: &EventKind) -> String {
    match kind {
        EventKind::Spawned { name, daemon } => {
            format!(
                "\"kind\":\"spawned\",\"name\":\"{}\",\"daemon\":{daemon}",
                esc(name)
            )
        }
        EventKind::Scheduled => "\"kind\":\"scheduled\"".to_string(),
        EventKind::Yielded => "\"kind\":\"yielded\"".to_string(),
        EventKind::Blocked { reason } => {
            format!("\"kind\":\"blocked\",\"reason\":\"{}\"", esc(reason))
        }
        EventKind::Unparked { by } => format!("\"kind\":\"unparked\",\"by\":{}", by.0),
        EventKind::Slept { until } => format!("\"kind\":\"slept\",\"until\":{}", until.0),
        EventKind::TimerFired => "\"kind\":\"timer_fired\"".to_string(),
        EventKind::Finished => "\"kind\":\"finished\"".to_string(),
        EventKind::Killed => "\"kind\":\"killed\"".to_string(),
        EventKind::Aborted => "\"kind\":\"aborted\"".to_string(),
        EventKind::StarvationFlagged { age } => {
            format!("\"kind\":\"starvation_flagged\",\"age\":{age}")
        }
        EventKind::SpuriousWake => "\"kind\":\"spurious_wake\"".to_string(),
        EventKind::DelayedWake { until } => {
            format!("\"kind\":\"delayed_wake\",\"until\":{}", until.0)
        }
        EventKind::ChoseValue { label, value } => {
            format!(
                "\"kind\":\"chose_value\",\"label\":\"{}\",\"value\":{value}",
                esc(label)
            )
        }
        EventKind::User { label, params } => {
            let params: Vec<String> = params.iter().map(|p| p.to_string()).collect();
            format!(
                "\"kind\":\"user\",\"label\":\"{}\",\"params\":[{}]",
                esc(label),
                params.join(",")
            )
        }
    }
}

/// Serializes a trace and its metrics to JSONL: a `meta` line, one
/// `event` line per trace event (each a complete JSON object), and a
/// final `metrics` line.
pub fn to_jsonl(trace: &Trace, metrics: &SimMetrics) -> String {
    let mut out = String::new();
    let procs: Vec<String> = processes(trace)
        .into_iter()
        .map(|(pid, name, daemon)| {
            format!(
                "{{\"pid\":{pid},\"name\":\"{}\",\"daemon\":{daemon}}}",
                esc(&name)
            )
        })
        .collect();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"format\":\"bloom-trace\",\"version\":1,\"events\":{},\
         \"processes\":[{}]}}",
        trace.len(),
        procs.join(",")
    );
    for e in trace.events() {
        let _ = writeln!(
            out,
            "{{\"type\":\"event\",\"seq\":{},\"time\":{},\"pid\":{},{}}}",
            e.seq,
            e.time.0,
            e.pid.0,
            kind_fields(&e.kind)
        );
    }
    let _ = writeln!(
        out,
        "{{\"type\":\"metrics\",\"metrics\":{}}}",
        metrics_json(metrics)
    );
    out
}

/// Serializes a trace and its metrics to the Chrome trace-event format
/// (load the output in `chrome://tracing` or <https://ui.perfetto.dev>).
///
/// Layout: everything lives in trace-process 0; each simulated process is
/// a thread (track) whose tid is its pid. A dispatch is a one-tick "X"
/// slice on the running process's track; a park…wake episode is an async
/// "b"/"e" span (id = pid) named after the wait reason — spans still open
/// when the trace ends (a deadlock's parked processes) are closed at the
/// final timestamp so they render with their true extent. User events and
/// faults are instants; the full [`SimMetrics`] rides in a final global
/// instant's `args`.
pub fn to_chrome_trace(trace: &Trace, metrics: &SimMetrics) -> String {
    let mut ev: Vec<String> = Vec::new();
    ev.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"ts\":0,\
         \"args\":{\"name\":\"bloom-sim\"}}"
            .to_string(),
    );
    for (pid, name, daemon) in processes(trace) {
        let suffix = if daemon { " (daemon)" } else { "" };
        ev.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{pid},\"ts\":0,\
             \"args\":{{\"name\":\"P{pid} {}{suffix}\"}}}}",
            esc(&name)
        ));
        ev.push(format!(
            "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":0,\"tid\":{pid},\"ts\":0,\
             \"args\":{{\"sort_index\":{pid}}}}}"
        ));
    }
    // Open park span per pid: the reason the pending "b" was emitted with,
    // so the matching "e" carries the same name (required for the span to
    // join). Indexed by pid; pids are dense.
    let mut open_park: Vec<Option<String>> = Vec::new();
    let mut final_ts = 0u64;
    for e in trace.events() {
        let (ts, pid) = (e.time.0, e.pid.0);
        final_ts = final_ts.max(ts);
        let slot = pid as usize;
        if open_park.len() <= slot {
            open_park.resize(slot + 1, None);
        }
        let close_open_span = |open_park: &mut Vec<Option<String>>, ev: &mut Vec<String>| {
            if let Some(reason) = open_park[slot].take() {
                ev.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"park\",\"ph\":\"e\",\"id\":{pid},\"ts\":{ts},\
                     \"pid\":0,\"tid\":{pid}}}",
                    esc(&reason)
                ));
            }
        };
        match &e.kind {
            EventKind::Scheduled => ev.push(format!(
                "{{\"name\":\"run\",\"cat\":\"sched\",\"ph\":\"X\",\"ts\":{ts},\"dur\":1,\
                 \"pid\":0,\"tid\":{pid}}}"
            )),
            EventKind::Blocked { reason } => {
                close_open_span(&mut open_park, &mut ev); // re-park after spurious wake
                ev.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"park\",\"ph\":\"b\",\"id\":{pid},\"ts\":{ts},\
                     \"pid\":0,\"tid\":{pid}}}",
                    esc(reason)
                ));
                open_park[slot] = Some(reason.clone());
            }
            EventKind::Unparked { .. }
            | EventKind::TimerFired
            | EventKind::SpuriousWake
            | EventKind::Killed
            | EventKind::Aborted => {
                close_open_span(&mut open_park, &mut ev);
                let instant = match &e.kind {
                    EventKind::SpuriousWake => Some(("spurious_wake", "fault")),
                    EventKind::Killed => Some(("killed", "fault")),
                    EventKind::Aborted => Some(("aborted", "recovery")),
                    _ => None,
                };
                if let Some((name, cat)) = instant {
                    ev.push(format!(
                        "{{\"name\":\"{name}\",\"cat\":\"{cat}\",\"ph\":\"i\",\"s\":\"t\",\
                         \"ts\":{ts},\"pid\":0,\"tid\":{pid}}}"
                    ));
                }
            }
            EventKind::DelayedWake { until } => ev.push(format!(
                "{{\"name\":\"delayed_wake\",\"cat\":\"fault\",\"ph\":\"i\",\"s\":\"t\",\
                 \"ts\":{ts},\"pid\":0,\"tid\":{pid},\"args\":{{\"until\":{}}}}}",
                until.0
            )),
            EventKind::StarvationFlagged { age } => ev.push(format!(
                "{{\"name\":\"starvation_flagged\",\"cat\":\"watchdog\",\"ph\":\"i\",\
                 \"s\":\"t\",\"ts\":{ts},\"pid\":0,\"tid\":{pid},\"args\":{{\"age\":{age}}}}}"
            )),
            EventKind::ChoseValue { label, value } => ev.push(format!(
                "{{\"name\":\"choose {}\",\"cat\":\"data\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                 \"pid\":0,\"tid\":{pid},\"args\":{{\"value\":{value}}}}}",
                esc(label)
            )),
            EventKind::User { label, params } => {
                let params: Vec<String> = params.iter().map(|p| p.to_string()).collect();
                ev.push(format!(
                    "{{\"name\":\"{}\",\"cat\":\"user\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{pid},\"args\":{{\"params\":[{}]}}}}",
                    esc(label),
                    params.join(",")
                ));
            }
            // Spawned (already in the thread metadata), Yielded, Slept and
            // Finished carry no timeline geometry of their own.
            _ => {}
        }
    }
    // Close the spans of processes that never woke (deadlock victims) so
    // their wait renders with its true extent.
    for (slot, open) in open_park.iter_mut().enumerate() {
        if let Some(reason) = open.take() {
            ev.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"park\",\"ph\":\"e\",\"id\":{slot},\"ts\":{final_ts},\
                 \"pid\":0,\"tid\":{slot}}}",
                esc(&reason)
            ));
        }
    }
    ev.push(format!(
        "{{\"name\":\"sim_metrics\",\"cat\":\"metrics\",\"ph\":\"i\",\"s\":\"g\",\
         \"ts\":{final_ts},\"pid\":0,\"tid\":0,\"args\":{}}}",
        metrics_json(metrics)
    ));
    format!(
        "{{\"traceEvents\":[\n{}\n],\"displayTimeUnit\":\"ms\",\
         \"otherData\":{{\"format\":\"bloom-sim\",\"version\":1}}}}\n",
        ev.join(",\n")
    )
}

/// A parsed JSON value (see [`parse_json`]). Object members keep their
/// textual order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`; every value the exporters emit is an
    /// integer well within `f64`'s exact range).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (`None` on other variants or missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document (for validating and round-tripping exporter
/// output without a JSON dependency). Rejects trailing garbage.
pub fn parse_json(s: &str) -> Result<Json, String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{text}' at byte {start}"))
        }
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("expected '{lit}' at byte {}", *pos))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        out.push(
                            char::from_u32(code)
                                .ok_or(format!("bad \\u escape {hex} (surrogates unsupported)"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (the input is a &str, so byte
                // boundaries are valid).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::Sim;
    use crate::waitq::WaitQueue;
    use std::sync::Arc;

    fn sample_run() -> crate::SimReport {
        let mut sim = Sim::new();
        let q = Arc::new(WaitQueue::new("gate"));
        let q2 = Arc::clone(&q);
        sim.spawn("waiter", move |ctx| {
            q2.wait(ctx);
            ctx.emit("woke \"up\"", &[1, -2]);
        });
        let q3 = Arc::clone(&q);
        sim.spawn("waker", move |ctx| {
            ctx.yield_now();
            q3.wake_one(ctx);
        });
        sim.run().expect("clean run")
    }

    #[test]
    fn jsonl_lines_all_parse_and_cover_every_event() {
        let report = sample_run();
        let jsonl = to_jsonl(&report.trace, &report.metrics);
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(
            lines.len(),
            report.trace.len() + 2,
            "meta + events + metrics"
        );
        for line in &lines {
            parse_json(line).expect("every JSONL line is valid JSON");
        }
        let meta = parse_json(lines[0]).unwrap();
        assert_eq!(meta.get("type").unwrap().as_str(), Some("meta"));
        assert_eq!(
            meta.get("events").unwrap().as_u64(),
            Some(report.trace.len() as u64)
        );
        let metrics = parse_json(lines[lines.len() - 1]).unwrap();
        assert_eq!(
            metrics
                .get("metrics")
                .unwrap()
                .get("dispatches")
                .unwrap()
                .as_u64(),
            Some(report.metrics.dispatches)
        );
    }

    #[test]
    fn chrome_trace_parses_and_balances_park_spans() {
        let report = sample_run();
        let doc = parse_json(&to_chrome_trace(&report.trace, &report.metrics))
            .expect("chrome trace is one valid JSON document");
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        let phase = |ph: &str| {
            events
                .iter()
                .filter(|e| e.get("ph").and_then(Json::as_str) == Some(ph))
                .count()
        };
        assert_eq!(phase("b"), phase("e"), "park spans must balance");
        assert!(phase("X") >= 1, "dispatch slices present");
        assert!(
            events
                .iter()
                .any(|e| e.get("name").and_then(Json::as_str) == Some("sim_metrics")),
            "metrics instant present"
        );
    }

    #[test]
    fn escaping_round_trips() {
        let raw = "a\"b\\c\nd\te\u{1}ü";
        let parsed = parse_json(&format!("\"{}\"", esc(raw))).unwrap();
        assert_eq!(parsed.as_str(), Some(raw));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse_json("{\"a\":1,}").is_err());
        assert!(parse_json("[1 2]").is_err());
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("\"open").is_err());
    }
}
