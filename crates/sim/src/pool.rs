//! Global pool of reusable process-host threads.
//!
//! The seed kernel spawned one OS thread per simulated process per run and
//! joined them all at shutdown — thousands of spawn/join cycles per second
//! of exploration, which dominated the explorers' hot path (a spawn+join
//! pair costs an order of magnitude more than a whole quantum). Hosts in
//! this pool park between runs instead: a finished host pushes its inbox
//! baton back onto the idle stack, and the next dispatch hands it the next
//! process body directly.
//!
//! Two properties keep this invisible to the simulation semantics:
//!
//! * **Which** OS thread hosts a process is unobservable. Process bodies
//!   only interact through [`crate::kernel::Shared`] (batons, the state
//!   mutex, the trace), never through thread identity, and the kernel's
//!   one-running-process invariant means a host is handed a job only when
//!   it is the unique runnable process of its simulation. Determinism is
//!   therefore untouched — verified byte-for-byte by the equivalence tests
//!   against the seed protocol (`SimConfig::reuse_hosts = false`).
//! * A host is returned to the pool only after the process body has fully
//!   returned or unwound **and** its simulation's job gate has been
//!   notified, so a recycled host can never observe state from its
//!   previous tenant.
//!
//! The pool grows to the high-water mark of concurrently live processes
//! across all simulations in the OS process (explorer workers each run one
//! simulation at a time, so this stays small) and never shrinks; parked
//! hosts cost one blocked thread each.

use crate::baton::Baton;
use crate::ctx::Ctx;
use crate::kernel::{run_process, Shared};
use crate::types::Pid;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A not-yet-started process body, queued in its [`crate::kernel::ProcSlot`]
/// until the kernel first dispatches the process.
pub(crate) type PendingJob = Box<dyn FnOnce(&Ctx) + Send + 'static>;

/// One unit of host work: run `f` as process `pid` of `shared`.
pub(crate) struct Job {
    pub shared: Arc<Shared>,
    pub pid: Pid,
    pub f: PendingJob,
}

struct HostPool {
    /// Inboxes of parked hosts, ready to be handed a job.
    idle: Mutex<Vec<Arc<Baton<Job>>>>,
}

static POOL: OnceLock<HostPool> = OnceLock::new();
static HOST_SEQ: AtomicUsize = AtomicUsize::new(0);

fn pool() -> &'static HostPool {
    POOL.get_or_init(|| HostPool {
        idle: Mutex::new(Vec::new()),
    })
}

/// Hands `job` to an idle host, spawning a fresh host thread only when the
/// pool has none parked (the pool's high-water growth path).
pub(crate) fn dispatch(job: Job) {
    let idle = pool().idle.lock().pop();
    match idle {
        Some(inbox) => inbox.put(job),
        None => {
            let inbox = Arc::new(Baton::new());
            // Put before spawn: the baton buffers one value, so the new
            // host finds its first job waiting.
            inbox.put(job);
            let seq = HOST_SEQ.fetch_add(1, Ordering::Relaxed);
            let host_inbox = Arc::clone(&inbox);
            std::thread::Builder::new()
                .name(format!("sim-host-{seq}"))
                .spawn(move || host_main(host_inbox))
                .expect("failed to spawn simulator host thread");
        }
    }
}

/// Host thread body: serve one process per wakeup, forever.
fn host_main(inbox: Arc<Baton<Job>>) {
    loop {
        let job = inbox.take();
        let shared = Arc::clone(&job.shared);
        run_process(&job.shared, job.pid, job.f);
        // Lower the simulation's job gate before re-idling so a shutdown
        // waiting on the gate cannot race with this host's reuse.
        shared.job_done();
        pool().idle.lock().push(Arc::clone(&inbox));
    }
}
