//! Single-slot rendezvous cell used for the scheduler/process handshake.
//!
//! A [`Baton`] carries exactly one value from one thread to another. The
//! kernel gives each process a `Baton<Go>` (the permission to run) and keeps
//! one `Baton<Report>` for itself (the process's account of why it stopped).
//! Because at most one process holds the CPU, each baton has at most one
//! producer and one consumer at a time, so a mutex-guarded `Option` plus a
//! condvar is all that is needed.

use parking_lot::{Condvar, Mutex};

/// A one-value rendezvous channel.
pub(crate) struct Baton<T> {
    slot: Mutex<Option<T>>,
    cv: Condvar,
}

impl<T> Baton<T> {
    /// Creates an empty baton.
    pub(crate) fn new() -> Self {
        Baton {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        }
    }

    /// Deposits a value and wakes the (single) waiter.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already full, which would indicate a violation
    /// of the one-running-process invariant.
    pub(crate) fn put(&self, value: T) {
        let mut slot = self.slot.lock();
        assert!(slot.is_none(), "baton overrun: two concurrent producers");
        *slot = Some(value);
        self.cv.notify_one();
    }

    /// Blocks until a value is available and takes it.
    pub(crate) fn take(&self) -> T {
        let mut slot = self.slot.lock();
        loop {
            if let Some(value) = slot.take() {
                return value;
            }
            self.cv.wait(&mut slot);
        }
    }
}

/// Command handed to a process thread by the scheduler.
pub(crate) enum Go {
    /// Run until the next scheduling point.
    Run,
    /// The simulation is over; unwind and exit the thread.
    Cancel,
    /// A fault-plan kill-point fired: unwind (running drop guards) and
    /// report back as killed.
    Kill,
    /// Deadlock recovery chose this process as the victim: unwind (running
    /// drop guards, exactly as for a kill) and report back as aborted. The
    /// process is recorded as *cancelled*, not crashed.
    Abort,
}

/// A process's account of why it stopped running, handed back to the scheduler.
pub(crate) enum Report {
    /// Voluntary yield; the process is still runnable.
    Yielded,
    /// The process parked itself (it is on some wait queue).
    Parked { reason: String },
    /// Parked with a timeout: wake via unpark or when the timer fires.
    ParkedTimeout { reason: String, ticks: u64 },
    /// The process wants to sleep for the given number of virtual ticks.
    Slept { ticks: u64 },
    /// The process closure returned normally.
    Finished,
    /// The process closure panicked with the given message. Carries the
    /// panicker's pid because under the inline continuation path (see
    /// `kernel::stop_process`) the scheduler loop's notion of "the last
    /// process I dispatched" can be several quanta stale.
    Panicked {
        pid: crate::types::Pid,
        message: String,
    },
    /// The process finished unwinding after a kill-point (fault injection).
    Killed,
    /// The process finished unwinding after a deadlock-recovery abort.
    Aborted,
    /// The stopping process already accounted for its own stop inline
    /// (phase 3) but hit a condition only the scheduler loop can handle —
    /// run termination, an empty ready list (timers or deadlock), the step
    /// budget, or a held-run pause point. The loop must re-run phase 1
    /// from scratch and must NOT run phase 3 for this report.
    Rescan,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn put_then_take_transfers_value() {
        let b = Baton::new();
        b.put(7u32);
        assert_eq!(b.take(), 7);
    }

    #[test]
    fn take_blocks_until_put() {
        let b = Arc::new(Baton::new());
        let b2 = Arc::clone(&b);
        let h = thread::spawn(move || b2.take());
        thread::sleep(std::time::Duration::from_millis(10));
        b.put("hello");
        assert_eq!(h.join().unwrap(), "hello");
    }

    #[test]
    #[should_panic(expected = "baton overrun")]
    fn double_put_panics() {
        let b = Baton::new();
        b.put(1);
        b.put(2);
    }
}
