//! The public simulation builder and runner.

use crate::ctx::Ctx;
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultRuntime};
use crate::kernel::{drive, shutdown, DriveOutcome, Shared, SimReport};
use crate::policy::SchedPolicy;
use crate::types::Pid;
use std::sync::Arc;

/// Tunables for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Dispatch budget; exceeding it fails the run with
    /// [`crate::SimErrorKind::MaxStepsExceeded`]. Guards against livelock.
    pub max_steps: u64,
    /// Whether scheduler-level events (Scheduled/Yielded/…) are recorded in
    /// the trace. User events are always recorded. Disable for benchmarks.
    pub record_sched_events: bool,
    /// Deterministic faults to inject (kills, spurious wakes, delayed
    /// wakes). Empty by default. Fault events are always recorded.
    pub faults: FaultPlan,
    /// Starvation watchdog bound, in quanta. When set, any non-daemon whose
    /// current wait episode (consecutive parks on the same reason) is older
    /// than the bound while other processes are still being dispatched is
    /// flagged in the trace and in [`crate::SimReport::starvation`].
    /// Detection only — the flagged process keeps waiting. `None` (the
    /// default) disables the watchdog.
    pub starvation_bound: Option<u64>,
    /// When enabled, a detected deadlock aborts one victim (the most
    /// recently blocked non-daemon) through the kill-unwind machinery
    /// instead of failing the run: RAII guards roll the victim's
    /// registrations back, the victim ends as
    /// [`crate::ProcessStatus::Cancelled`], and the survivors continue.
    /// Victims are listed in [`crate::SimReport::recovered`]. Disabled by
    /// default: a deadlock fails the run with
    /// [`crate::SimErrorKind::Deadlock`].
    pub deadlock_recovery: bool,
    /// Whether per-dispatch access footprints are recorded in
    /// [`crate::SimReport::quanta`]. On by default (the log is what the
    /// explorers' object-granular prune consumes, and they force it on);
    /// disable for long throughput benchmarks where the log's allocation
    /// is measurable.
    pub record_quanta: bool,
    /// Whether process bodies run on recycled host threads from the global
    /// pool (`true`, the default — see [`crate::pool`]) or on a freshly
    /// spawned OS thread per process (`false`: the seed protocol, kept as
    /// the honest baseline for the exploration benchmarks). The two modes
    /// are observably identical — same traces, decisions, reports — and
    /// differ only in thread lifecycle cost.
    pub reuse_hosts: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps: 2_000_000,
            record_sched_events: true,
            faults: FaultPlan::new(),
            starvation_bound: None,
            deadlock_recovery: false,
            record_quanta: true,
            reuse_hosts: true,
        }
    }
}

/// A simulation under construction.
///
/// Spawn processes, optionally set a policy and config, then call
/// [`Sim::run`]. See the [crate docs](crate) for an end-to-end example.
pub struct Sim {
    shared: Arc<Shared>,
    config: SimConfig,
}

impl Sim {
    /// Creates a simulation with the default (FIFO round-robin) policy.
    pub fn new() -> Self {
        Sim::with_config(SimConfig::default())
    }

    /// Creates a simulation with explicit configuration.
    pub fn with_config(config: SimConfig) -> Self {
        let faults = FaultRuntime::new(config.faults.clone());
        Sim {
            shared: Shared::new(&config, faults),
            config,
        }
    }

    /// Replaces the scheduling policy.
    pub fn set_policy<P: SchedPolicy + 'static>(&mut self, policy: P) -> &mut Self {
        self.shared.state.lock().policy = Box::new(policy);
        self
    }

    /// Replaces the fault plan (call before [`Sim::run`]).
    ///
    /// Equivalent to setting [`SimConfig::faults`] up front; this form
    /// suits explorers that wrap an existing setup closure (see
    /// [`crate::Explorer::run_kill_points`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.config.faults = plan.clone();
        self.shared.state.lock().faults = FaultRuntime::new(plan);
        self
    }

    /// Enables the starvation watchdog with the given age bound (see
    /// [`SimConfig::starvation_bound`]).
    pub fn set_starvation_bound(&mut self, bound: u64) -> &mut Self {
        self.config.starvation_bound = Some(bound);
        self.shared.state.lock().starvation_bound = Some(bound);
        self
    }

    /// Enables deadlock recovery (see [`SimConfig::deadlock_recovery`]).
    pub fn enable_deadlock_recovery(&mut self) -> &mut Self {
        self.config.deadlock_recovery = true;
        self.shared.state.lock().deadlock_recovery = true;
        self
    }

    /// Turns the per-dispatch footprint log on or off (see
    /// [`SimConfig::record_quanta`]). The explorers call this to force it
    /// on when their object-granular prune is enabled.
    pub fn set_record_quanta(&mut self, on: bool) -> &mut Self {
        self.config.record_quanta = on;
        self.shared.state.lock().record_quanta = on;
        self
    }

    /// Spawns a process; it becomes runnable when the simulation starts.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, false, f)
    }

    /// Spawns a daemon process (see [`Ctx::spawn_daemon`]).
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, true, f)
    }

    /// Runs the simulation to completion.
    ///
    /// Completion means every non-daemon process finished (daemons are then
    /// cancelled). Failures — deadlock, process panic, step-budget
    /// exhaustion — are returned as [`SimError`], which still carries the
    /// full [`SimReport`] for diagnosis.
    pub fn run(self) -> Result<SimReport, SimError> {
        match drive(&self.shared, None) {
            DriveOutcome::Done(result) => *result,
            DriveOutcome::Paused => unreachable!("no pause point was requested"),
        }
    }

    /// Converts the simulation into a [`HeldRun`] without running anything
    /// yet: a resumable handle at decision depth 0. Drive it forward with
    /// [`HeldRun::advance_to`] or to completion with [`HeldRun::finish`].
    pub fn into_held(self) -> HeldRun {
        HeldRun {
            shared: self.shared,
        }
    }
}

/// A live, paused simulation: every process is stopped at a scheduling
/// point and the kernel is parked just before a contested decision, so the
/// whole run is a frozen deterministic snapshot (the one-running-process
/// invariant means no stack is mid-quantum). This is the explorers'
/// *checkpoint* primitive — a held run, not a copied state.
///
/// A held run driven by a [`crate::ReplayPolicy`] can have the rest of its
/// script replaced between drives ([`HeldRun::set_continuation`]), which is
/// what lets one checkpoint at decision depth *k* serve every schedule
/// sharing its first *k* decisions — resuming replays only the residual
/// decisions instead of the whole prefix from the root.
///
/// Dropping a held run cancels its processes and releases their hosts.
pub struct HeldRun {
    shared: Arc<Shared>,
}

/// What [`HeldRun::advance_to`] produced.
#[allow(clippy::large_enum_variant)] // transient: matched and consumed immediately
pub enum RunProgress {
    /// The run paused at the requested decision depth and can be resumed.
    Held(HeldRun),
    /// The run finished before reaching the requested depth.
    Done(Box<Result<SimReport, SimError>>),
}

impl HeldRun {
    /// The number of contested decisions made so far.
    pub fn depth(&self) -> usize {
        self.shared.state.lock().decisions.len()
    }

    /// The choices taken at the contested decisions made so far.
    pub fn choices(&self) -> Vec<u32> {
        self.shared
            .state
            .lock()
            .decisions
            .iter()
            .map(|d| d.chosen)
            .collect()
    }

    /// Replaces the *unconsumed* rest of the replay script with `tail`
    /// (the decisions already made are untouched — they happened).
    ///
    /// # Panics
    ///
    /// Panics if the run's policy is not a [`crate::ReplayPolicy`].
    pub fn set_continuation(&mut self, tail: &[u32]) {
        self.shared
            .state
            .lock()
            .policy
            .as_replay_mut()
            .expect("held-run continuation requires a ReplayPolicy")
            .retarget(tail);
    }

    /// Drives the run up to `depth` contested decisions, pausing just
    /// before decision `depth` is made — or to completion if the run ends
    /// first.
    pub fn advance_to(self, depth: usize) -> RunProgress {
        match drive(&self.shared, Some(depth)) {
            DriveOutcome::Paused => RunProgress::Held(self),
            DriveOutcome::Done(result) => RunProgress::Done(result),
        }
    }

    /// Drives the run to completion.
    pub fn finish(self) -> Result<SimReport, SimError> {
        match drive(&self.shared, None) {
            DriveOutcome::Done(result) => *result,
            DriveOutcome::Paused => unreachable!("no pause point was requested"),
        }
    }
}

impl Drop for HeldRun {
    fn drop(&mut self) {
        // Cancel parked processes and wait for their unwinds (a no-op when
        // the run already completed — shutdown is idempotent).
        shutdown(&self.shared);
    }
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let policy = self.shared.state.lock().policy.name().to_string();
        f.debug_struct("Sim")
            .field("policy", &policy)
            .field("config", &self.config)
            .finish()
    }
}
