//! The public simulation builder and runner.

use crate::ctx::Ctx;
use crate::error::SimError;
use crate::fault::{FaultPlan, FaultRuntime};
use crate::kernel::{run_kernel, Shared, SimReport};
use crate::policy::{FifoPolicy, SchedPolicy};
use crate::types::Pid;
use std::sync::Arc;

/// Tunables for a simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Dispatch budget; exceeding it fails the run with
    /// [`crate::SimErrorKind::MaxStepsExceeded`]. Guards against livelock.
    pub max_steps: u64,
    /// Whether scheduler-level events (Scheduled/Yielded/…) are recorded in
    /// the trace. User events are always recorded. Disable for benchmarks.
    pub record_sched_events: bool,
    /// Deterministic faults to inject (kills, spurious wakes, delayed
    /// wakes). Empty by default. Fault events are always recorded.
    pub faults: FaultPlan,
    /// Starvation watchdog bound, in quanta. When set, any non-daemon whose
    /// current wait episode (consecutive parks on the same reason) is older
    /// than the bound while other processes are still being dispatched is
    /// flagged in the trace and in [`crate::SimReport::starvation`].
    /// Detection only — the flagged process keeps waiting. `None` (the
    /// default) disables the watchdog.
    pub starvation_bound: Option<u64>,
    /// When enabled, a detected deadlock aborts one victim (the most
    /// recently blocked non-daemon) through the kill-unwind machinery
    /// instead of failing the run: RAII guards roll the victim's
    /// registrations back, the victim ends as
    /// [`crate::ProcessStatus::Cancelled`], and the survivors continue.
    /// Victims are listed in [`crate::SimReport::recovered`]. Disabled by
    /// default: a deadlock fails the run with
    /// [`crate::SimErrorKind::Deadlock`].
    pub deadlock_recovery: bool,
    /// Whether per-dispatch access footprints are recorded in
    /// [`crate::SimReport::quanta`]. On by default (the log is what the
    /// explorers' object-granular prune consumes, and they force it on);
    /// disable for long throughput benchmarks where the log's allocation
    /// is measurable.
    pub record_quanta: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            max_steps: 2_000_000,
            record_sched_events: true,
            faults: FaultPlan::new(),
            starvation_bound: None,
            deadlock_recovery: false,
            record_quanta: true,
        }
    }
}

/// A simulation under construction.
///
/// Spawn processes, optionally set a policy and config, then call
/// [`Sim::run`]. See the [crate docs](crate) for an end-to-end example.
pub struct Sim {
    shared: Arc<Shared>,
    policy: Box<dyn SchedPolicy>,
    config: SimConfig,
}

impl Sim {
    /// Creates a simulation with the default (FIFO round-robin) policy.
    pub fn new() -> Self {
        Sim::with_config(SimConfig::default())
    }

    /// Creates a simulation with explicit configuration.
    pub fn with_config(config: SimConfig) -> Self {
        Sim {
            shared: Shared::new(
                config.record_sched_events,
                config.record_quanta,
                FaultRuntime::new(config.faults.clone()),
            ),
            policy: Box::new(FifoPolicy),
            config,
        }
    }

    /// Replaces the scheduling policy.
    pub fn set_policy<P: SchedPolicy + 'static>(&mut self, policy: P) -> &mut Self {
        self.policy = Box::new(policy);
        self
    }

    /// Replaces the fault plan (call before [`Sim::run`]).
    ///
    /// Equivalent to setting [`SimConfig::faults`] up front; this form
    /// suits explorers that wrap an existing setup closure (see
    /// [`crate::Explorer::run_kill_points`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) -> &mut Self {
        self.config.faults = plan.clone();
        self.shared.state.lock().faults = FaultRuntime::new(plan);
        self
    }

    /// Enables the starvation watchdog with the given age bound (see
    /// [`SimConfig::starvation_bound`]).
    pub fn set_starvation_bound(&mut self, bound: u64) -> &mut Self {
        self.config.starvation_bound = Some(bound);
        self
    }

    /// Enables deadlock recovery (see [`SimConfig::deadlock_recovery`]).
    pub fn enable_deadlock_recovery(&mut self) -> &mut Self {
        self.config.deadlock_recovery = true;
        self
    }

    /// Turns the per-dispatch footprint log on or off (see
    /// [`SimConfig::record_quanta`]). The explorers call this to force it
    /// on when their object-granular prune is enabled.
    pub fn set_record_quanta(&mut self, on: bool) -> &mut Self {
        self.config.record_quanta = on;
        self.shared.state.lock().record_quanta = on;
        self
    }

    /// Spawns a process; it becomes runnable when the simulation starts.
    pub fn spawn<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, false, f)
    }

    /// Spawns a daemon process (see [`Ctx::spawn_daemon`]).
    pub fn spawn_daemon<F>(&mut self, name: &str, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.shared.spawn_process(name, true, f)
    }

    /// Runs the simulation to completion.
    ///
    /// Completion means every non-daemon process finished (daemons are then
    /// cancelled). Failures — deadlock, process panic, step-budget
    /// exhaustion — are returned as [`SimError`], which still carries the
    /// full [`SimReport`] for diagnosis.
    pub fn run(self) -> Result<SimReport, SimError> {
        run_kernel(self.shared, self.policy, &self.config)
    }
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new()
    }
}

impl std::fmt::Debug for Sim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sim")
            .field("policy", &self.policy.name())
            .field("config", &self.config)
            .finish()
    }
}
