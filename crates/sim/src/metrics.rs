//! Run-anatomy metrics, recorded on every simulation run.
//!
//! [`SimMetrics`] is the *non-authoritative* observability layer of the
//! kernel: counters the scheduler and [`crate::Ctx`] update as a run
//! proceeds, attached to the final [`crate::SimReport`]. Nothing in this
//! module influences scheduling — no metric is ever read back by the
//! kernel, the policies, or the mechanisms — so two runs that differ only
//! in who looks at the metrics are the same run. That guarantee is what
//! lets the explorers assert byte-identical metrics across worker thread
//! counts (`tests/parallel_explore.rs`).
//!
//! All keyed counters use [`BTreeMap`] so that iteration order (and thus
//! any report or export derived from the metrics) is deterministic.

use std::collections::BTreeMap;

/// Per-process slice of [`SimMetrics`], indexed by pid.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PidMetrics {
    /// How many times the process was dispatched.
    pub dispatches: u64,
    /// Virtual-time ticks spent running. Each dispatch advances the clock
    /// by exactly one tick, so this equals `dispatches` — kept separate
    /// because the equality is a property of the current clock rule, not
    /// of the metric.
    pub run_ticks: u64,
    /// Virtual-time ticks spent parked (status `Blocked`), summed over all
    /// park episodes and finalized at the end of the run for processes that
    /// never woke.
    pub blocked_ticks: u64,
}

/// Divergence observed by a [`crate::ReplayPolicy`] while replaying a
/// recorded decision script (see [`crate::ReplayPolicy::diverged`]).
///
/// A replayed script that no longer matches the tree it is replayed
/// against — because the scenario changed, or the vector was corrupted —
/// used to be masked by silent clamping; it is now surfaced here (and in
/// [`SimMetrics::replay`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplayDivergence {
    /// Script entries that were out of range for the ready set they were
    /// applied to and had to be clamped.
    pub clamped: u64,
    /// Decision points consulted after the script was exhausted while more
    /// than one process was runnable (strict replay only; the explorers'
    /// prefix replays treat exhaustion as the canonical choice 0 by
    /// design and do not count it).
    pub underruns: u64,
}

impl ReplayDivergence {
    /// Whether any divergence was observed.
    pub fn diverged(&self) -> bool {
        self.clamped > 0 || self.underruns > 0
    }
}

/// Everything the kernel counted during one run. Attached to
/// [`crate::SimReport::metrics`]; exported by [`crate::export`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimMetrics {
    /// Total dispatches (equals [`crate::SimReport::steps`]).
    pub dispatches: u64,
    /// Dispatches that handed the CPU to a different process than the
    /// previous dispatch did.
    pub context_switches: u64,
    /// Parks keyed by wait reason (the queue name passed to
    /// [`crate::Ctx::park`]). A re-park after an absorbed spurious wake
    /// counts again: it is a second park.
    pub parks: BTreeMap<String, u64>,
    /// Unpark deliveries keyed by the reason the target was parked on
    /// (including wakes a fault plan converted into delayed sleeps —
    /// the unpark was still delivered).
    pub wakes: BTreeMap<String, u64>,
    /// Timed parks that ended by timeout rather than unpark, keyed by
    /// reason.
    pub timeout_wakes: BTreeMap<String, u64>,
    /// High-water mark of each wait queue's depth, keyed by queue name
    /// (same-named queues share an entry).
    pub queue_high_water: BTreeMap<String, u64>,
    /// Synchronization operations reported by the mechanism crates through
    /// [`crate::Ctx::note_sync_op`], keyed by the mechanism label. Rides
    /// the existing `note_sync` purity-instrumentation contract, so it
    /// adds no new scheduling points.
    pub sync_ops: BTreeMap<String, u64>,
    /// Per-process counters, indexed by pid.
    pub per_pid: Vec<PidMetrics>,
    /// Replay divergence observed by the run's policy (all zero unless the
    /// policy was a [`crate::ReplayPolicy`] that diverged).
    pub replay: ReplayDivergence,
}

impl SimMetrics {
    /// Total parks across all reasons.
    pub fn total_parks(&self) -> u64 {
        self.parks.values().sum()
    }

    /// Total unpark deliveries across all reasons.
    pub fn total_wakes(&self) -> u64 {
        self.wakes.values().sum()
    }

    /// Total sync operations across all mechanism labels.
    pub fn total_sync_ops(&self) -> u64 {
        self.sync_ops.values().sum()
    }

    /// Deepest observed wait queue, if any process ever parked.
    pub fn max_queue_depth(&self) -> u64 {
        self.queue_high_water.values().copied().max().unwrap_or(0)
    }

    pub(crate) fn bump(map: &mut BTreeMap<String, u64>, key: &str) {
        match map.get_mut(key) {
            Some(n) => *n += 1,
            None => {
                map.insert(key.to_string(), 1);
            }
        }
    }

    pub(crate) fn note_queue_depth(&mut self, name: &str, depth: u64) {
        match self.queue_high_water.get_mut(name) {
            Some(high) => *high = (*high).max(depth),
            None => {
                self.queue_high_water.insert(name.to_string(), depth);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_and_high_water() {
        let mut m = SimMetrics::default();
        SimMetrics::bump(&mut m.parks, "q");
        SimMetrics::bump(&mut m.parks, "q");
        SimMetrics::bump(&mut m.wakes, "q");
        m.note_queue_depth("q", 2);
        m.note_queue_depth("q", 1);
        m.note_queue_depth("r", 3);
        assert_eq!(m.total_parks(), 2);
        assert_eq!(m.total_wakes(), 1);
        assert_eq!(m.queue_high_water["q"], 2);
        assert_eq!(m.max_queue_depth(), 3);
    }

    #[test]
    fn divergence_detects_any_nonzero() {
        assert!(!ReplayDivergence::default().diverged());
        assert!(ReplayDivergence {
            clamped: 1,
            underruns: 0
        }
        .diverged());
        assert!(ReplayDivergence {
            clamped: 0,
            underruns: 2
        }
        .diverged());
    }
}
