//! Crash-safety of CSP channels under fault injection: channels are never
//! poisoned — dead senders withdraw their offers, dead selectors
//! unregister — so live peers keep rendezvousing with each other.

#![deny(deprecated)]

use bloom_channel::{select, Channel};
use bloom_sim::{FaultPlan, Pid, Sim};
use std::sync::Arc;

/// A sender killed while parked withdraws its offer: the queued value is
/// dropped, `pending_senders` stays truthful, and a later receiver
/// rendezvouses with a live sender instead of the corpse.
#[test]
fn dead_sender_withdraws_its_offer() {
    let mut sim = Sim::new();
    // The victim's park inside `send` is its first scheduling point.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let ch = Arc::new(Channel::new("ch"));
    let token = Arc::new(()); // dropped with the withdrawn offer
    let (tx, t) = (Arc::clone(&ch), Arc::clone(&token));
    sim.spawn("victim", move |ctx| {
        tx.send(ctx, Some(t));
        ctx.emit("victim-sent", &[]);
    });
    let tx2 = Arc::clone(&ch);
    sim.spawn("live-sender", move |ctx| {
        ctx.yield_now();
        tx2.send(ctx, None);
    });
    let rx = Arc::clone(&ch);
    sim.spawn("receiver", move |ctx| {
        ctx.yield_now();
        ctx.yield_now();
        assert_eq!(rx.pending_senders(), 1, "the dead offer was withdrawn");
        assert!(
            rx.recv(ctx).is_none(),
            "the live sender's value, not the corpse's"
        );
        ctx.emit("got-live-value", &[]);
    });
    let report = sim.run().expect("withdrawal prevents the wedge");
    assert_eq!(report.killed(), vec![Pid(0)]);
    assert_eq!(report.trace.count_user("victim-sent"), 0);
    assert_eq!(report.trace.count_user("got-live-value"), 1);
    assert_eq!(ch.pending_senders(), 0);
    assert_eq!(
        Arc::strong_count(&token),
        1,
        "the withdrawn offer's value was dropped with it"
    );
}

/// A selector killed while parked unregisters from *every* alternative:
/// later senders queue rather than delivering into the dead select, and a
/// live receiver gets the value.
#[test]
fn dead_selector_unregisters_from_all_alternatives() {
    let mut sim = Sim::new();
    // The server's park inside `select` is its first scheduling point.
    sim.set_fault_plan(FaultPlan::new().kill("dead-server", 1));
    let a = Arc::new(Channel::new("a"));
    let b = Arc::new(Channel::new("b"));
    let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
    sim.spawn("dead-server", move |ctx| {
        let _ = select(ctx, &mut [(&*a1, true), (&*b1, true)]);
        ctx.emit("server-got", &[]);
    });
    let a2 = Arc::clone(&a);
    sim.spawn("sender", move |ctx| {
        ctx.yield_now();
        a2.send(ctx, 7);
        ctx.emit("send-returned", &[]);
    });
    let a3 = Arc::clone(&a);
    sim.spawn("live-receiver", move |ctx| {
        ctx.yield_now();
        ctx.yield_now();
        assert_eq!(a3.recv(ctx), 7);
        ctx.emit("live-got", &[]);
    });
    let report = sim.run().expect("unregistration prevents the wedge");
    assert_eq!(report.killed(), vec![Pid(0)]);
    assert_eq!(report.trace.count_user("server-got"), 0);
    assert_eq!(report.trace.count_user("send-returned"), 1);
    assert_eq!(report.trace.count_user("live-got"), 1);
}

/// A sender whose only possible partner died parks until the simulator
/// reports the deadlock by channel name — contained, never silent.
#[test]
fn orphaned_sender_deadlocks_loudly() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("receiver", 1));
    let ch = Arc::new(Channel::new("orphan"));
    let rx = Arc::clone(&ch);
    sim.spawn("receiver", move |ctx| {
        let _ = rx.recv(ctx); // killed at this park
    });
    let tx = Arc::clone(&ch);
    sim.spawn("sender", move |ctx| {
        ctx.yield_now();
        tx.send(ctx, 1);
    });
    let err = sim.run().expect_err("nobody left to receive");
    assert!(err.is_deadlock());
    assert!(err.to_string().contains("orphan.send"));
}
