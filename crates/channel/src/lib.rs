#![forbid(unsafe_code)]
#![deny(deprecated)]
//! CSP-style synchronous channels over the `bloom-sim` simulator.
//!
//! The paper closes (§6) by naming the synchronization models it did *not*
//! evaluate — "guarded commands \[19\] and the mechanism proposed by Hoare
//! in 'Communicating Sequential Processes' \[20\] … the techniques presented
//! in this paper may prove useful in these evaluations." This crate
//! provides that mechanism so the workspace can run the paper's
//! methodology on it:
//!
//! * [`Channel<T>`] — a synchronous (rendezvous) channel: `send` blocks
//!   until a receiver takes the value, `recv` blocks until a sender
//!   offers one. Senders are queued FIFO, so a channel carries *request
//!   time* information the way CSP process queues do.
//! * [`select`] — guarded selective receive over several channels of the
//!   same message type: Dijkstra's guarded commands / CSP alternatives.
//!   A false guard disables its alternative; among enabled alternatives
//!   with waiting senders, the **longest-waiting sender** is chosen (the
//!   same selection discipline used for path expressions, so comparisons
//!   are apples-to-apples).
//! * [`Channel::pending_senders`] — queue interrogation, the analogue of
//!   Hoare's condition `queue` operation, used by guards.
//!
//! In the shared-resource problems (`bloom-problems::csp`) resources
//! become *server processes*: clients rendezvous with the server, the
//! server's guards encode the exclusion and priority constraints over its
//! local state, and replies grant access. The §2 modularity structure is
//! automatic — the resource and its synchronization live in one process,
//! and clients hold no synchronization code at all.
//!
//! # Crash safety
//!
//! Channels hold no possession, so — unlike monitors and serializers —
//! they are never *poisoned*. All rendezvous state is structural: queued
//! offers and select registrations. A process killed while parked cleans
//! up behind itself:
//!
//! * a sender dying in [`Channel::send`] withdraws its offer — the queued
//!   value is dropped and [`Channel::pending_senders`] stays truthful, so
//!   no receiver ever rendezvouses with a corpse;
//! * a receiver dying in [`select`] (or [`Channel::recv`]) removes its
//!   registration from every enabled alternative, so later senders queue
//!   for a live receiver instead of delivering into the dead one.
//!
//! A value already *delivered* to a receiver that is killed before it
//! consumes it is lost with the receiver; the sender has completed its
//! rendezvous and already returned. Peers of a crashed process therefore
//! either keep running (if other partners exist) or park until the
//! simulator reports the deadlock by name — never a silent wedge.

use bloom_sim::{Access, Ctx, Deadline, ObjId, Pid};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// A sender parked on a channel with its offered value.
struct WaitingSender<T> {
    pid: Pid,
    ticket: u64,
    value: T,
}

/// A receiver parked on one or more channels (via select).
struct WaitingReceiver<T> {
    pid: Pid,
    /// Which alternative of the receiver's select this channel is; the
    /// delivering sender records it in the cell.
    alt_index: usize,
    /// Shared with every channel the receiver registered on; the first
    /// sender to deliver claims it.
    cell: Arc<DeliveryCell<T>>,
}

/// The rendezvous mailbox of a parked (selecting) receiver.
struct DeliveryCell<T> {
    slot: Mutex<Option<(usize, T)>>,
}

impl<T> DeliveryCell<T> {
    fn new() -> Arc<Self> {
        Arc::new(DeliveryCell {
            slot: Mutex::new(None),
        })
    }

    fn claimed(&self) -> bool {
        self.slot.lock().is_some()
    }
}

struct ChanState<T> {
    senders: VecDeque<WaitingSender<T>>,
    receivers: VecDeque<WaitingReceiver<T>>,
}

/// A synchronous (rendezvous, unbuffered) channel.
pub struct Channel<T> {
    name: String,
    /// Identity for object-granular dependency tracking.
    obj: ObjId,
    state: Mutex<ChanState<T>>,
}

impl<T: Send> Channel<T> {
    /// Creates a channel; `name` appears in deadlock diagnostics.
    pub fn new(name: &str) -> Self {
        Channel {
            name: name.to_string(),
            obj: ObjId::new("channel", name),
            state: Mutex::new(ChanState {
                senders: VecDeque::new(),
                receivers: VecDeque::new(),
            }),
        }
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends `value`, blocking until a receiver takes it (rendezvous).
    ///
    /// If the sender is killed while parked here, the queued offer is
    /// withdrawn and the value dropped (see the crate-level *Crash
    /// safety* notes).
    pub fn send(&self, ctx: &Ctx, value: T) {
        if self.deliver_or_enqueue(ctx, value) {
            return;
        }
        let withdraw = WithdrawOfferOnUnwind { chan: self, ctx };
        ctx.park(&format!("{}.send", self.name));
        std::mem::forget(withdraw);
    }

    /// Timed [`Channel::send`]: blocks until `deadline` at the latest.
    /// Accepts anything convertible into a [`Deadline`] — a tick count
    /// (`u64`), a `Duration`, or an explicit [`Deadline`]. On timeout the
    /// offer is withdrawn and the unsent value handed back as `Err(value)`
    /// — the rendezvous either happened completely or not at all, so the
    /// value is never lost to a half-completed exchange. An
    /// already-expired deadline hands the value straight back without
    /// attempting the rendezvous; no scheduling point is consumed.
    pub fn send_by(&self, ctx: &Ctx, value: T, deadline: impl Into<Deadline>) -> Result<(), T> {
        let Some(ticks) = ctx.remaining(deadline) else {
            return Err(value);
        };
        if self.deliver_or_enqueue(ctx, value) {
            return Ok(());
        }
        let withdraw = WithdrawOfferOnUnwind { chan: self, ctx };
        let woken = ctx.park_timeout(&format!("{}.send", self.name), ticks);
        std::mem::forget(withdraw);
        if woken {
            return Ok(()); // a receiver took the value
        }
        // Timed out: withdraw the offer and recover the value. The
        // parked-only guard in the receive paths means no receiver can
        // have taken it after the timer fired, so the entry is still ours.
        let mut st = self.state.lock();
        let me = ctx.pid();
        let at = st
            .senders
            .iter()
            .position(|s| s.pid == me)
            .expect("timed-out sender's offer must still be queued");
        let sender = st.senders.remove(at).expect("index valid");
        Err(sender.value)
    }

    /// Delivers `value` to the longest-waiting live receiver (completing
    /// the rendezvous) or queues it as an offer; returns whether it was
    /// delivered.
    fn deliver_or_enqueue(&self, ctx: &Ctx, value: T) -> bool {
        // Channel state is kernel-invisible shared state: mark the quantum
        // (see `Ctx::note_sync_obj`) before touching it.
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        let mut value = Some(value);
        let mut st = self.state.lock();
        // Deliver to the longest-waiting receiver whose select has not been
        // claimed by another channel yet. Entries already claimed elsewhere
        // and entries whose process woke by timeout (runnable, about to
        // report `None`) are discarded — delivering into those would lose
        // the value.
        while let Some(rcv) = st.receivers.pop_front() {
            if rcv.cell.claimed() || !ctx.is_parked(rcv.pid) {
                continue; // stale registration
            }
            *rcv.cell.slot.lock() = Some((rcv.alt_index, value.take().expect("value present")));
            drop(st);
            ctx.unpark(rcv.pid);
            return true;
        }
        st.senders.push_back(WaitingSender {
            pid: ctx.pid(),
            ticket: ctx.fresh_ticket(),
            value: value.take().expect("value present"),
        });
        false
    }

    /// Receives a value, blocking until a sender offers one.
    pub fn recv(&self, ctx: &Ctx) -> T {
        select(ctx, &mut [(self, true)]).1
    }

    /// Timed [`Channel::recv`]: returns `None` if no sender rendezvoused
    /// by `deadline`. Accepts anything convertible into a [`Deadline`].
    /// An already-expired deadline returns `None` without attempting the
    /// rendezvous; no scheduling point is consumed.
    pub fn recv_by(&self, ctx: &Ctx, deadline: impl Into<Deadline>) -> Option<T> {
        select_by(ctx, &mut [(self, true)], deadline).map(|(_, v)| v)
    }

    /// Number of senders currently blocked on this channel — queue
    /// interrogation for guards (the §3 *synchronization state* category).
    ///
    /// **Explore-unsafe probe**: records no footprint, so a receiver that
    /// branches on it (e.g. computing a select guard) during an explored
    /// schedule is invisible to the object-granular prune. Solution code
    /// must use [`Channel::pending_senders_ctx`]; this bare form exists
    /// for test assertions and post-run inspection.
    pub fn pending_senders(&self) -> usize {
        self.state.lock().senders.len()
    }

    /// Instrumented [`Channel::pending_senders`] (footprint-recorded
    /// read).
    pub fn pending_senders_ctx(&self, ctx: &Ctx) -> usize {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.pending_senders()
    }

    /// Arrival ticket of the longest-waiting *live* sender, if any.
    ///
    /// A sender that woke by timeout (runnable, about to withdraw its
    /// offer) is skipped, not counted: its rendezvous already failed on its
    /// side, and it must get its value back. The stale entry is left in
    /// place for the sender's own withdrawal.
    fn front_parked_ticket(&self, ctx: &Ctx) -> Option<u64> {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.state
            .lock()
            .senders
            .iter()
            .find(|s| ctx.is_parked(s.pid))
            .map(|s| s.ticket)
    }

    /// Takes the longest-waiting live sender's value and wakes the sender.
    fn take_front(&self, ctx: &Ctx) -> T {
        // Removing the offer mutates channel state; the probe that found it
        // only recorded a read.
        ctx.note_sync_obj(&self.obj, Access::Write);
        let sender = {
            let mut st = self.state.lock();
            let at = st
                .senders
                .iter()
                .position(|s| ctx.is_parked(s.pid))
                .expect("take_front called on a channel with a live waiting sender");
            st.senders.remove(at).expect("index valid")
        };
        ctx.unpark(sender.pid);
        sender.value
    }

    fn register_receiver(&self, rcv: WaitingReceiver<T>) {
        self.state.lock().receivers.push_back(rcv);
    }

    fn unregister_receiver(&self, pid: Pid) {
        self.state.lock().receivers.retain(|r| r.pid != pid);
    }
}

/// Withdraws this process's queued offer if `send` unwinds while parked
/// (the process was killed): the value is dropped and `pending_senders`
/// stays truthful. Own-queue cleanup, so it runs even during shutdown.
struct WithdrawOfferOnUnwind<'a, T: Send> {
    chan: &'a Channel<T>,
    ctx: &'a Ctx,
}

impl<T: Send> Drop for WithdrawOfferOnUnwind<'_, T> {
    fn drop(&mut self) {
        let me = self.ctx.pid();
        self.chan.state.lock().senders.retain(|s| s.pid != me);
    }
}

/// Removes a dead selector's registrations from every channel it parked
/// on, so later senders queue for a live receiver instead of delivering
/// into the corpse. Own-queue cleanup, so it runs even during shutdown.
struct UnregisterOnUnwind<'a, T: Send> {
    chans: &'a [&'a Channel<T>],
    ctx: &'a Ctx,
}

impl<T: Send> Drop for UnregisterOnUnwind<'_, T> {
    fn drop(&mut self) {
        for chan in self.chans {
            chan.unregister_receiver(self.ctx.pid());
        }
    }
}

impl<T> std::fmt::Debug for Channel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Channel")
            .field("name", &self.name)
            .field("pending_senders", &self.state.lock().senders.len())
            .finish()
    }
}

/// Guarded selective receive (CSP alternatives / guarded commands).
///
/// Each alternative is `(channel, guard)`; a false guard disables the
/// alternative entirely. Among enabled alternatives with waiting senders,
/// the longest-waiting sender (globally, by arrival ticket) is taken.
/// If none is ready, the caller blocks until a sender arrives on any
/// enabled alternative. Returns `(alternative index, value)`.
///
/// # Panics
///
/// Panics if every guard is false — like Dijkstra's `if … fi` with all
/// guards false, this aborts rather than blocking forever (a server whose
/// guards can all be false should include an always-true alternative).
pub fn select<T: Send>(ctx: &Ctx, alternatives: &mut [(&Channel<T>, bool)]) -> (usize, T) {
    select_inner(ctx, alternatives, None).expect("untimed select always rendezvouses")
}

/// Timed [`select`]: a built-in timeout arm. Returns `None` if no sender
/// rendezvoused on any enabled alternative by `deadline` — the
/// guarded-command analogue of an `after`/timeout alternative, which turns
/// a server's potentially-unbounded wait into a bounded one. Accepts
/// anything convertible into a [`Deadline`]. An already-expired deadline
/// returns `None` without attempting a rendezvous; no scheduling point is
/// consumed.
///
/// # Panics
///
/// Panics if every guard is false, like [`select`] — even when the
/// deadline has already expired (it is a programming error either way).
pub fn select_by<T: Send>(
    ctx: &Ctx,
    alternatives: &mut [(&Channel<T>, bool)],
    deadline: impl Into<Deadline>,
) -> Option<(usize, T)> {
    assert_some_guard(alternatives);
    let ticks = ctx.remaining(deadline)?;
    select_inner(ctx, alternatives, Some(ticks))
}

fn assert_some_guard<T>(alternatives: &[(&Channel<T>, bool)]) {
    assert!(
        alternatives.iter().any(|&(_, guard)| guard),
        "select with every guard false would block forever"
    );
}

fn select_inner<T: Send>(
    ctx: &Ctx,
    alternatives: &mut [(&Channel<T>, bool)],
    timeout: Option<u64>,
) -> Option<(usize, T)> {
    assert_some_guard(alternatives);
    // Ready alternative with the longest-waiting live sender?
    let ready = alternatives
        .iter()
        .enumerate()
        .filter_map(|(i, &(chan, guard))| {
            if !guard {
                return None;
            }
            chan.front_parked_ticket(ctx).map(|ticket| (i, ticket))
        })
        .min_by_key(|&(_, ticket)| ticket);
    if let Some((index, _)) = ready {
        return Some((index, alternatives[index].0.take_front(ctx)));
    }
    // Nothing ready: register on every enabled alternative and park. The
    // first sender to arrive claims the delivery cell; registrations left
    // on other channels are lazily discarded (see `Channel::send`) and
    // eagerly removed below.
    let cell = DeliveryCell::new();
    let mut reasons = Vec::new();
    let mut registered = Vec::new();
    for (i, &mut (chan, guard)) in alternatives.iter_mut().enumerate() {
        if guard {
            // Registering mutates the channel's receiver queue.
            ctx.note_sync_obj(&chan.obj, Access::Write);
            chan.register_receiver(WaitingReceiver {
                pid: ctx.pid(),
                alt_index: i,
                cell: Arc::clone(&cell),
            });
            reasons.push(chan.name());
            registered.push(chan);
        }
    }
    let cleanup = UnregisterOnUnwind {
        chans: &registered,
        ctx,
    };
    let reason = format!("select[{}]", reasons.join(","));
    let woken = match timeout {
        None => {
            ctx.park(&reason);
            true
        }
        Some(ticks) => ctx.park_timeout(&reason, ticks),
    };
    std::mem::forget(cleanup);
    // The resumed quantum drains the delivery cell and unregisters from
    // every channel — unlike a semaphore hand-off, it mutates shared
    // state and must be marked. One metric bump (a single logical op),
    // but a footprint entry for every registered channel.
    for (i, chan) in registered.iter().enumerate() {
        if i == 0 {
            ctx.note_sync_obj_op(&chan.obj, Access::Write);
        } else {
            ctx.note_sync_obj(&chan.obj, Access::Write);
        }
    }
    if !woken {
        // Timed out: remove our registrations. The parked-only guard in
        // the send paths means no sender delivered after the timer fired,
        // but take a racing delivery defensively rather than lose it.
        for chan in &registered {
            chan.unregister_receiver(ctx.pid());
        }
        return cell.slot.lock().take();
    }
    // The delivering sender recorded which alternative it was. Remove our
    // remaining registrations (senders also discard them lazily, but eager
    // cleanup keeps queues short and pid-reuse safe).
    let (index, value) = cell
        .slot
        .lock()
        .take()
        .expect("woken receiver must have a delivery");
    for chan in &registered {
        chan.unregister_receiver(ctx.pid());
    }
    Some((index, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::{RandomPolicy, Sim};

    #[test]
    fn rendezvous_transfers_a_value() {
        let mut sim = Sim::new();
        let ch = Arc::new(Channel::new("ch"));
        let tx = Arc::clone(&ch);
        sim.spawn("sender", move |ctx| tx.send(ctx, 42));
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv(ctx), 42);
            ctx.emit("got", &[]);
        });
        let report = sim.run().unwrap();
        assert_eq!(report.trace.count_user("got"), 1);
    }

    #[test]
    fn send_blocks_until_receiver_arrives() {
        let mut sim = Sim::new();
        let ch = Arc::new(Channel::new("ch"));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (tx, o1) = (Arc::clone(&ch), Arc::clone(&order));
        sim.spawn("sender", move |ctx| {
            tx.send(ctx, 1);
            o1.lock().push("send-returned");
        });
        let (rx, o2) = (Arc::clone(&ch), Arc::clone(&order));
        sim.spawn("receiver", move |ctx| {
            for _ in 0..3 {
                ctx.yield_now();
            }
            o2.lock().push("receiving");
            rx.recv(ctx);
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["receiving", "send-returned"]);
    }

    #[test]
    fn senders_are_served_fifo() {
        let mut sim = Sim::new();
        let ch = Arc::new(Channel::new("ch"));
        for i in 0..4 {
            let tx = Arc::clone(&ch);
            sim.spawn(&format!("s{i}"), move |ctx| tx.send(ctx, i));
        }
        let rx = Arc::clone(&ch);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        sim.spawn("receiver", move |ctx| {
            for _ in 0..5 {
                ctx.yield_now(); // let all senders queue
            }
            for _ in 0..4 {
                g.lock().push(rx.recv(ctx));
            }
        });
        sim.run().unwrap();
        assert_eq!(*got.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn select_prefers_longest_waiting_across_channels() {
        let mut sim = Sim::new();
        let a = Arc::new(Channel::new("a"));
        let b = Arc::new(Channel::new("b"));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        sim.spawn("sender-b", move |ctx| b1.send(ctx, 20));
        let a2 = Arc::clone(&a);
        sim.spawn("sender-a", move |ctx| {
            ctx.yield_now(); // arrives second
            a2.send(ctx, 10);
        });
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        sim.spawn("server", move |ctx| {
            for _ in 0..4 {
                ctx.yield_now();
            }
            for _ in 0..2 {
                let (idx, v) = select(ctx, &mut [(&*a1, true), (&*b, true)]);
                g.lock().push((idx, v));
            }
        });
        sim.run().unwrap();
        assert_eq!(
            *got.lock(),
            vec![(1, 20), (0, 10)],
            "older sender first, then the other"
        );
    }

    #[test]
    fn false_guard_disables_an_alternative() {
        let mut sim = Sim::new();
        let a = Arc::new(Channel::new("a"));
        let b = Arc::new(Channel::new("b"));
        let (a1, _b1) = (Arc::clone(&a), Arc::clone(&b));
        sim.spawn("sender-a", move |ctx| a1.send(ctx, 1));
        let b2 = Arc::clone(&b);
        sim.spawn("sender-b", move |ctx| b2.send(ctx, 2));
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        sim.spawn("server", move |ctx| {
            for _ in 0..3 {
                ctx.yield_now();
            }
            // `a` has the older sender but its guard is false.
            let (idx, v) = select(ctx, &mut [(&*a3, false), (&*b3, true)]);
            assert_eq!((idx, v), (1, 2));
            let (idx, v) = select(ctx, &mut [(&*a3, true), (&*b3, false)]);
            assert_eq!((idx, v), (0, 1));
        });
        sim.run().unwrap();
    }

    #[test]
    fn blocked_select_wakes_on_first_enabled_arrival() {
        let mut sim = Sim::new();
        let a = Arc::new(Channel::new("a"));
        let b = Arc::new(Channel::new("b"));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let got = Arc::new(Mutex::new(None));
        let g = Arc::clone(&got);
        sim.spawn("server", move |ctx| {
            let (idx, v) = select(ctx, &mut [(&*a1, true), (&*b1, true)]);
            *g.lock() = Some((idx, v));
        });
        let b2 = Arc::clone(&b);
        sim.spawn("late-sender", move |ctx| {
            ctx.yield_now();
            b2.send(ctx, 9);
        });
        sim.run().unwrap();
        assert_eq!(*got.lock(), Some((1, 9)));
    }

    #[test]
    fn stale_registrations_are_discarded() {
        // A select parks on {a, b}; a sender on `a` wakes it; later a
        // sender on `b` must NOT deliver into the dead registration but
        // wait for a real receiver.
        let mut sim = Sim::new();
        let a = Arc::new(Channel::new("a"));
        let b = Arc::new(Channel::new("b"));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        sim.spawn("server", move |ctx| {
            let (idx, _) = select(ctx, &mut [(&*a1, true), (&*b1, true)]);
            l1.lock().push(format!("first:{idx}"));
            // Second receive: must get b's value.
            let (idx, v) = select(ctx, &mut [(&*a1, true), (&*b1, true)]);
            l1.lock().push(format!("second:{idx}:{v}"));
        });
        let a2 = Arc::clone(&a);
        sim.spawn("sender-a", move |ctx| {
            ctx.yield_now();
            a2.send(ctx, 1);
        });
        let b2 = Arc::clone(&b);
        sim.spawn("sender-b", move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            b2.send(ctx, 2);
        });
        sim.run().unwrap();
        assert_eq!(
            *log.lock(),
            vec!["first:0".to_string(), "second:1:2".to_string()]
        );
    }

    /// Timed-send withdrawal: the unsent value comes back in `Err`, the
    /// offer queue is left clean, and the channel still works afterwards.
    #[test]
    fn send_by_returns_the_value_on_timeout() {
        let mut sim = Sim::new();
        let ch = Arc::new(Channel::new("ch"));
        let tx = Arc::clone(&ch);
        sim.spawn("sender", move |ctx| {
            assert_eq!(tx.send_by(ctx, 42, 3u64), Err(42), "value recovered");
            assert_eq!(tx.pending_senders(), 0, "offer withdrawn");
            // The channel is unharmed: a later rendezvous succeeds.
            tx.send(ctx, 43);
        });
        let rx = Arc::clone(&ch);
        sim.spawn("late-receiver", move |ctx| {
            ctx.sleep(10);
            assert_eq!(rx.recv(ctx), 43);
        });
        sim.run().expect("timeout avoids the deadlock");
    }

    #[test]
    fn recv_by_gives_up_without_a_sender() {
        let mut sim = Sim::new();
        let ch = Arc::new(Channel::<i64>::new("ch"));
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv_by(ctx, 4u64), None);
            // A sender arriving after the timeout still rendezvouses.
            assert_eq!(rx.recv(ctx), 7);
        });
        let tx = Arc::clone(&ch);
        sim.spawn("late-sender", move |ctx| {
            ctx.sleep(10);
            tx.send(ctx, 7);
        });
        sim.run().expect("timeout avoids the deadlock");
    }

    /// The timeout arm of a guarded select: no enabled sender in time
    /// yields `None`, and every registration is removed from every
    /// alternative (the kernel's queue-hygiene assertion would also catch
    /// a leak at end of run).
    #[test]
    fn select_by_unregisters_every_alternative() {
        let mut sim = Sim::new();
        let a = Arc::new(Channel::<i64>::new("a"));
        let b = Arc::new(Channel::<i64>::new("b"));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        sim.spawn("server", move |ctx| {
            assert_eq!(
                select_by(ctx, &mut [(&*a1, true), (&*b1, true)], 5u64),
                None
            );
            assert_eq!(a1.state.lock().receivers.len(), 0);
            assert_eq!(b1.state.lock().receivers.len(), 0);
        });
        sim.run().expect("clean run");
    }

    /// The rendezvous-vs-timeout race explored exhaustively: in every
    /// schedule either the exchange completes on both sides or fails on
    /// both sides — the staleness guards (parked-only senders in the
    /// receive scan, parked-only receivers in the send scan) make a
    /// half-completed rendezvous impossible.
    #[test]
    fn timeout_rendezvous_race_explored_exhaustively() {
        let explorer = bloom_sim::Explorer::new(20_000);
        let stats = explorer.run(
            || {
                let mut sim = Sim::new();
                let ch = Arc::new(Channel::new("ch"));
                let tx = Arc::clone(&ch);
                sim.spawn("sender", move |ctx| {
                    if let Err(v) = tx.send_by(ctx, 7, 2u64) {
                        assert_eq!(v, 7, "withdrawn value intact");
                        ctx.emit("send-failed", &[]);
                    } else {
                        ctx.emit("send-ok", &[]);
                    }
                });
                let rx = Arc::clone(&ch);
                sim.spawn("receiver", move |ctx| {
                    ctx.sleep(2); // lands on the sender's deadline
                    match rx.recv_by(ctx, 4u64) {
                        Some(v) => {
                            assert_eq!(v, 7);
                            ctx.emit("recv-ok", &[]);
                        }
                        None => ctx.emit("recv-failed", &[]),
                    }
                });
                sim
            },
            |decisions, result| {
                let report = result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("schedule {decisions:?}: {e}"));
                let sent = report.trace.count_user("send-ok");
                let received = report.trace.count_user("recv-ok");
                assert_eq!(
                    sent, received,
                    "schedule {decisions:?}: rendezvous completed on one side only"
                );
                for p in &report.processes {
                    assert_eq!(
                        p.status,
                        bloom_sim::ProcessStatus::Finished,
                        "schedule {decisions:?}: {} did not finish",
                        p.name
                    );
                }
            },
        );
        assert!(stats.complete, "decision space fully explored");
    }

    #[test]
    #[should_panic(expected = "every guard false")]
    fn all_false_guards_panic() {
        let mut sim = Sim::new();
        let a = Arc::new(Channel::<i64>::new("a"));
        let a1 = Arc::clone(&a);
        sim.spawn("server", move |ctx| {
            let _ = select(ctx, &mut [(&*a1, false)]);
        });
        // The panic surfaces through the simulation error.
        if let Err(e) = sim.run() {
            panic!("{e}");
        }
    }

    #[test]
    fn unmatched_send_deadlocks_with_channel_name() {
        let mut sim = Sim::new();
        let ch = Arc::new(Channel::new("lonely"));
        let tx = Arc::clone(&ch);
        sim.spawn("sender", move |ctx| tx.send(ctx, 5));
        let err = sim.run().expect_err("deadlock");
        assert!(err.to_string().contains("lonely.send"));
    }

    #[test]
    fn ping_pong_under_random_schedules() {
        for seed in 0..6 {
            let mut sim = Sim::new();
            sim.set_policy(RandomPolicy::new(seed));
            let ping = Arc::new(Channel::new("ping"));
            let pong = Arc::new(Channel::new("pong"));
            let (p1, q1) = (Arc::clone(&ping), Arc::clone(&pong));
            sim.spawn("alice", move |ctx| {
                for i in 0..10 {
                    p1.send(ctx, i);
                    assert_eq!(q1.recv(ctx), i * 2);
                }
            });
            let (p2, q2) = (Arc::clone(&ping), Arc::clone(&pong));
            sim.spawn("bob", move |ctx| {
                for _ in 0..10 {
                    let v = p2.recv(ctx);
                    q2.send(ctx, v * 2);
                }
            });
            sim.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }
}
