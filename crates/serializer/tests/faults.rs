//! Crash-safety of serializers under fault injection: possession
//! poisoning, dead-waiter dequeue, and crowd-member death re-triggering
//! guard evaluation.

#![deny(deprecated)]

use bloom_serializer::Serializer;
use bloom_sim::{FaultPlan, Pid, Sim};
use parking_lot::Mutex;
use std::sync::Arc;

/// A holder dying inside the serializer body poisons it; queued waiters
/// are woken and observe the verdict instead of wedging.
#[test]
fn holder_death_poisons_and_wakes_queued_waiters() {
    let mut sim = Sim::new();
    let s = Arc::new(Serializer::new("s", false));
    let q = s.queue("gate");
    // Waiter parks first; victim then enters and dies at its first stop
    // inside the body.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 2));
    let s1 = Arc::clone(&s);
    sim.spawn("waiter", move |ctx| {
        let r = s1.try_enter(ctx, |sc| {
            if let Err(p) = sc.enqueue_checked(q, |v| *v.state()) {
                assert_eq!(p.primitive, "s");
                assert_eq!(p.by, Pid(1));
                ctx.emit("poisoned-while-queued", &[]);
            }
        });
        assert!(r.is_ok(), "entry succeeded before the poison");
    });
    let s2 = Arc::clone(&s);
    sim.spawn("victim", move |ctx| {
        ctx.yield_now(); // stop 1: let the waiter park on its guarantee
        let _ = s2.try_enter(ctx, |sc| {
            sc.ctx().yield_now(); // stop 2: killed holding possession
            sc.state(|b| *b = true);
        });
    });
    let report = sim.run().expect("poisoning contains the crash");
    assert!(s.is_poisoned());
    assert_eq!(report.trace.count_user("poison:s"), 1);
    assert_eq!(report.trace.count_user("poisoned-while-queued"), 1);
    assert_eq!(report.killed(), vec![Pid(1)]);
}

/// A process dying while waiting in a queue is dequeued: its guarantee can
/// never be granted, and the FIFO queue behind it must not be blocked by
/// the corpse.
#[test]
fn dead_queue_head_does_not_block_the_queue() {
    let mut sim = Sim::new();
    // The victim's park on its guarantee is its first scheduling point.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let s = Arc::new(Serializer::new("s", false));
    let q = s.queue("gate");
    let s1 = Arc::clone(&s);
    sim.spawn("victim", move |ctx| {
        s1.enter(ctx, |sc| {
            sc.enqueue(q, |v| *v.state());
            ctx.emit("victim-through", &[]);
        });
    });
    let s2 = Arc::clone(&s);
    sim.spawn("behind", move |ctx| {
        ctx.yield_now();
        s2.enter(ctx, |sc| {
            sc.enqueue(q, |v| *v.state());
            ctx.emit("behind-through", &[]);
        });
    });
    let s3 = Arc::clone(&s);
    sim.spawn("setter", move |ctx| {
        ctx.yield_now();
        ctx.yield_now();
        s3.enter(ctx, |sc| sc.state(|b| *b = true));
    });
    let report = sim.run().expect("the dead head is dequeued: no wedge");
    assert_eq!(report.trace.count_user("victim-through"), 0);
    assert_eq!(report.trace.count_user("behind-through"), 1);
    assert!(!s.is_poisoned(), "a queued waiter holds nothing");
}

/// A crowd member dying re-triggers guard evaluation: a waiter whose
/// guarantee is "that crowd is empty" is granted instead of stranded.
#[test]
fn dead_crowd_member_reevaluates_guards() {
    let mut sim = Sim::new();
    // Stops for the victim: 1 = release-into-crowd is not a stop; the
    // yield inside the crowd body is its first park-like stop.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let s = Arc::new(Serializer::new("db", ()));
    let q = s.queue("req");
    let writers = s.crowd("writers");
    let s1 = Arc::clone(&s);
    sim.spawn("victim", move |ctx| {
        s1.enter(ctx, |sc| {
            sc.join_crowd(writers, || {
                ctx.yield_now(); // killed mid-crowd
                ctx.emit("victim-finished-write", &[]);
            });
        });
    });
    let s2 = Arc::clone(&s);
    sim.spawn("waiter", move |ctx| {
        s2.enter(ctx, |sc| {
            sc.enqueue(q, move |v| v.crowd_is_empty(writers));
            ctx.emit("granted", &[]);
        });
    });
    let report = sim.run().expect("crowd cleanup prevents the wedge");
    assert_eq!(report.trace.count_user("victim-finished-write"), 0);
    assert_eq!(
        report.trace.count_user("granted"),
        1,
        "the guarantee was re-evaluated after the member died"
    );
    assert_eq!(s.crowd_len(writers), 0, "the corpse left the crowd");
    assert!(!s.is_poisoned(), "a crowd member holds no possession");
}

/// Poison is sticky: entrants arriving after the crash are refused
/// without blocking, and plain `enter` would fail loudly.
#[test]
fn poison_is_sticky_for_late_entrants() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let s = Arc::new(Serializer::new("s", ()));
    let s1 = Arc::clone(&s);
    sim.spawn("victim", move |ctx| {
        let _ = s1.try_enter(ctx, |sc| sc.ctx().yield_now());
    });
    let seen = Arc::new(Mutex::new(0u32));
    for i in 0..3 {
        let s = Arc::clone(&s);
        let seen = Arc::clone(&seen);
        sim.spawn(&format!("late{i}"), move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            assert!(s.try_enter(ctx, |_| ()).is_err());
            *seen.lock() += 1;
        });
    }
    sim.run().expect("no wedge");
    assert_eq!(*seen.lock(), 3);
}
