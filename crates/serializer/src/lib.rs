#![forbid(unsafe_code)]
#![deny(deprecated)]
//! Atkinson–Hewitt serializers over the `bloom-sim` deterministic simulator.
//!
//! Serializers ("Synchronization and Proof Techniques for Serializers",
//! IEEE TSE 1979) are the third mechanism Bloom's paper evaluates (§5.2).
//! They were designed to fix two monitor weaknesses the paper highlights:
//!
//! * **automatic signalling** — a waiting process names a *guarantee*
//!   (guard predicate) when it enqueues; whenever possession of the
//!   serializer is released, the runtime re-evaluates the guards of all
//!   queue heads and resumes an eligible one. No explicit `signal` exists,
//!   so exclusion constraints can be written without deciding a total wake
//!   order (Bloom's §5.2 monitor criticism), and *request time* and
//!   *request type* information no longer conflict: processes waiting for
//!   different conditions share one FIFO queue.
//! * **crowds** — processes actively using the resource are tracked in
//!   [`CrowdId`] multisets. Guards interrogate crowd emptiness directly,
//!   so Bloom's *synchronization state* information is maintained by the
//!   mechanism instead of hand-kept counts.
//! * **`join_crowd`** — executes the resource operation *outside* the
//!   serializer while recording membership, then re-enters. This gives the
//!   §2 protected-resource structure automatically and avoids the nested
//!   monitor call problem.
//!
//! # Semantics implemented
//!
//! * The serializer is exclusive (possession), like a monitor.
//! * [`SerializerCtx::enqueue`] places the caller at the back of a FIFO
//!   queue with a guard closure, releases possession, and blocks until the
//!   caller is at the *head* of its queue, its guard evaluates true, and
//!   possession is free. Only queue heads are eligible — a false-guard
//!   head blocks processes behind it, which is what preserves request
//!   order (FCFS) within a queue.
//! * When several queue heads (or a process waiting to enter) are
//!   eligible, the **longest-waiting** one (smallest arrival ticket) wins —
//!   the same selection rule Bloom assumes for path expressions.
//! * [`SerializerCtx::join_crowd`] adds the caller to a crowd, releases
//!   possession, runs the body concurrently with other crowd members,
//!   then re-enters the serializer and leaves the crowd.
//!
//! All guard re-evaluation happens at possession-release points; since the
//! protected state only changes while possession is held, no wake-up can be
//! missed.
//!
//! # Example: readers sharing, writers excluding, all FCFS
//!
//! ```
//! use bloom_serializer::Serializer;
//! use bloom_sim::Sim;
//! use std::sync::Arc;
//!
//! let mut sim = Sim::new();
//! let s = Arc::new(Serializer::new("db", ()));
//! let q = s.queue("requests");
//! let readers = s.crowd("readers");
//! let writers = s.crowd("writers");
//!
//! for i in 0..3 {
//!     let s = Arc::clone(&s);
//!     sim.spawn(&format!("reader{i}"), move |ctx| {
//!         s.enter(ctx, |sc| {
//!             sc.enqueue(q, move |v| v.crowd_is_empty(writers));
//!             sc.join_crowd(readers, || {
//!                 // read the database, concurrently with other readers
//!             });
//!         });
//!     });
//! }
//! let s2 = Arc::clone(&s);
//! sim.spawn("writer", move |ctx| {
//!     s2.enter(ctx, |sc| {
//!         sc.enqueue(q, move |v| {
//!             v.crowd_is_empty(writers) && v.crowd_is_empty(readers)
//!         });
//!         sc.join_crowd(writers, || {
//!             // write the database, alone
//!         });
//!     });
//! });
//! sim.run().unwrap();
//! ```

use bloom_sim::{Access, Ctx, Deadline, ObjId, Pid, Poisoned, WaitQueue};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Arc;

/// Handle to a named FIFO queue of a [`Serializer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueId(usize);

/// Handle to a named crowd of a [`Serializer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrowdId(usize);

/// Snapshot of serializer bookkeeping passed to guard predicates.
///
/// Guards see the protected state plus queue lengths and crowd sizes —
/// exactly the information the Atkinson–Hewitt guarantee expressions can
/// reference. Note that a waiter counts toward the length of the queue it
/// is waiting in.
#[derive(Debug)]
pub struct GuardView<'a, S> {
    state: &'a S,
    queue_lens: &'a [usize],
    crowd_lens: &'a [usize],
}

impl<S> GuardView<'_, S> {
    /// The protected state.
    pub fn state(&self) -> &S {
        self.state
    }

    /// Whether the crowd has no members.
    pub fn crowd_is_empty(&self, crowd: CrowdId) -> bool {
        self.crowd_lens[crowd.0] == 0
    }

    /// Number of processes in the crowd.
    pub fn crowd_len(&self, crowd: CrowdId) -> usize {
        self.crowd_lens[crowd.0]
    }

    /// Whether the queue has no waiters.
    pub fn queue_is_empty(&self, queue: QueueId) -> bool {
        self.queue_lens[queue.0] == 0
    }

    /// Number of waiters in the queue (including the process whose guard is
    /// being evaluated, for its own queue).
    pub fn queue_len(&self, queue: QueueId) -> usize {
        self.queue_lens[queue.0]
    }
}

type Guard<S> = Box<dyn Fn(&GuardView<'_, S>) -> bool + Send>;

struct SWaiter<S> {
    pid: Pid,
    ticket: u64,
    priority: i64,
    guard: Guard<S>,
}

struct QueueState<S> {
    name: String,
    waiters: VecDeque<SWaiter<S>>,
}

struct CrowdState {
    name: String,
    members: Vec<Pid>,
}

/// Which candidate won the possession hand-off.
enum Winner {
    /// The head of the given internal queue.
    QueueHead(usize),
    /// The front of the entry queue.
    Entrant,
    /// Nobody is eligible; possession becomes free.
    Nobody,
}

/// An Atkinson–Hewitt serializer protecting state `S`.
///
/// # Crash safety
///
/// A process dying (fault-plan kill or panic) with *possession* poisons
/// the serializer: a [`Poisoned`] verdict is recorded, possession is
/// dissolved, and every waiter — entry, all internal queues — is woken to
/// observe it, so nobody wedges behind the corpse.
/// [`Serializer::try_enter`] and [`SerializerCtx::enqueue_checked`]
/// surface the verdict as a value; the plain variants panic, keeping the
/// failure loud. A process dying *in a queue* is dequeued (its guard can
/// never be granted), and one dying *in a crowd* leaves the crowd during
/// the unwind and re-triggers guard evaluation, so a guarantee such as
/// "the writers crowd is empty" does not stay false forever.
#[derive(Debug)]
pub struct Serializer<S> {
    name: String,
    /// Identity for object-granular dependency tracking.
    obj: ObjId,
    busy: Mutex<bool>,
    /// Which process has (or was just handed) possession; `None` when open.
    holder: Mutex<Option<Pid>>,
    /// Set when a holder died mid-body; sticky once set.
    poisoned: Mutex<Option<Poisoned>>,
    entry: WaitQueue,
    queues: Mutex<Vec<QueueState<S>>>,
    crowds: Mutex<Vec<CrowdState>>,
    state: Mutex<S>,
}

impl<S> std::fmt::Debug for QueueState<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueState")
            .field("name", &self.name)
            .field("len", &self.waiters.len())
            .finish()
    }
}

impl std::fmt::Debug for CrowdState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CrowdState")
            .field("name", &self.name)
            .field("members", &self.members)
            .finish()
    }
}

impl<S: Send> Serializer<S> {
    /// Creates a serializer protecting `initial`.
    pub fn new(name: &str, initial: S) -> Self {
        Serializer {
            name: name.to_string(),
            obj: ObjId::new("serializer", name),
            busy: Mutex::new(false),
            holder: Mutex::new(None),
            poisoned: Mutex::new(None),
            entry: WaitQueue::new(&format!("{name}.entry")),
            queues: Mutex::new(Vec::new()),
            crowds: Mutex::new(Vec::new()),
            state: Mutex::new(initial),
        }
    }

    /// The serializer's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a FIFO queue; call before the simulation starts.
    pub fn queue(&self, name: &str) -> QueueId {
        let mut queues = self.queues.lock();
        queues.push(QueueState {
            name: name.to_string(),
            waiters: VecDeque::new(),
        });
        QueueId(queues.len() - 1)
    }

    /// Declares a crowd; call before the simulation starts.
    pub fn crowd(&self, name: &str) -> CrowdId {
        let mut crowds = self.crowds.lock();
        crowds.push(CrowdState {
            name: name.to_string(),
            members: Vec::new(),
        });
        CrowdId(crowds.len() - 1)
    }

    /// Current number of members of `crowd`.
    ///
    /// **Explore-unsafe probe**: records no footprint, so a process that
    /// branches on it during an explored schedule is invisible to the
    /// object-granular prune. Solution code outside a possession body
    /// must use [`Serializer::crowd_len_ctx`]; guard closures should read
    /// the [`GuardView`] instead (guard evaluation is already marked by
    /// the possession machinery).
    pub fn crowd_len(&self, crowd: CrowdId) -> usize {
        self.crowds.lock()[crowd.0].members.len()
    }

    /// Instrumented [`Serializer::crowd_len`] (footprint-recorded read).
    pub fn crowd_len_ctx(&self, ctx: &Ctx, crowd: CrowdId) -> usize {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.crowd_len(crowd)
    }

    /// Current number of waiters in `queue`.
    ///
    /// **Explore-unsafe probe** — see [`Serializer::crowd_len`]; solution
    /// code must use [`Serializer::queue_len_ctx`].
    pub fn queue_len(&self, queue: QueueId) -> usize {
        self.queues.lock()[queue.0].waiters.len()
    }

    /// Instrumented [`Serializer::queue_len`] (footprint-recorded read).
    pub fn queue_len_ctx(&self, ctx: &Ctx, queue: QueueId) -> usize {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.queue_len(queue)
    }

    /// Runs `body` with possession of the serializer.
    ///
    /// # Panics
    ///
    /// Panics if the serializer is poisoned (a previous holder died inside
    /// its body). Use [`Serializer::try_enter`] to handle poisoning as a
    /// value.
    pub fn enter<R>(&self, ctx: &Ctx, body: impl FnOnce(&SerializerCtx<'_, S>) -> R) -> R {
        match self.try_enter(ctx, body) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Runs `body` with possession, surfacing poisoning instead of
    /// panicking. The body is not entered on a poisoned serializer.
    pub fn try_enter<R>(
        &self,
        ctx: &Ctx,
        body: impl FnOnce(&SerializerCtx<'_, S>) -> R,
    ) -> Result<R, Poisoned> {
        if let Some(p) = self.observe_poison(ctx) {
            return Err(p);
        }
        self.acquire(ctx);
        if let Some(p) = self.observe_poison(ctx) {
            // Woken by the poison broadcast, not a possession hand-off.
            return Err(p);
        }
        let cleanup = PoisonOnUnwind { ser: self, ctx };
        let sc = SerializerCtx { ser: self, ctx };
        let r = body(&sc);
        std::mem::forget(cleanup);
        if self.poisoned.lock().is_some() {
            // Possession dissolved while the body waited in a queue (the
            // dying holder broadcast); nothing to release.
            return Ok(r);
        }
        self.release(ctx);
        Ok(r)
    }

    /// Whether a previous holder died inside the serializer.
    ///
    /// **Explore-unsafe probe** — see [`Serializer::crowd_len`]; solution
    /// code that branches on poisoning must use
    /// [`Serializer::is_poisoned_ctx`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.lock().is_some()
    }

    /// Instrumented [`Serializer::is_poisoned`] (footprint-recorded read).
    pub fn is_poisoned_ctx(&self, ctx: &Ctx) -> bool {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.is_poisoned()
    }

    /// Clones the poison verdict, recording the observation in the trace.
    fn observe_poison(&self, ctx: &Ctx) -> Option<Poisoned> {
        // Reads shared state, and runs at every post-wake point — marks
        // resumed quanta as impure for the explorer (see `Ctx::note_sync_obj`).
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        let p = self.poisoned.lock().clone()?;
        ctx.emit(&format!("poison-seen:{}", self.name), &[]);
        Some(p)
    }

    fn acquire(&self, ctx: &Ctx) {
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        let got = {
            let mut busy = self.busy.lock();
            if *busy {
                false
            } else {
                *busy = true;
                true
            }
        };
        if got {
            *self.holder.lock() = Some(ctx.pid());
        } else {
            // Entrants are candidates in `select_winner`; when woken,
            // possession was handed to us (the releaser records us as the
            // new holder).
            self.entry.wait(ctx);
        }
    }

    /// Releases possession: hands it to the longest-waiting eligible
    /// candidate (queue head with true guard, or entrant), else frees it.
    fn release(&self, ctx: &Ctx) {
        let kept = self.hand_off(ctx, None);
        debug_assert!(!kept, "release cannot keep possession");
    }

    /// Hands possession to the next eligible candidate, skipping stale
    /// (timed-out) waiters. With `me = Some(pid)`, a win by `pid` keeps
    /// possession and returns `true` instead of unparking.
    fn hand_off(&self, ctx: &Ctx, me: Option<Pid>) -> bool {
        // Guard evaluation reads every queue and crowd, and a win mutates
        // them — all of it kernel-invisible shared state.
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        loop {
            match self.select_winner(me) {
                Winner::QueueHead(qi) => {
                    let waiter = self.queues.lock()[qi]
                        .waiters
                        .pop_front()
                        .expect("winner queue cannot be empty");
                    if Some(waiter.pid) == me {
                        return true; // the caller keeps possession
                    }
                    if ctx.try_unpark(waiter.pid) {
                        *self.holder.lock() = Some(waiter.pid);
                        return false; // hand-off: busy stays true
                    }
                    // Stale entry of a timed-out waiter: drop and re-select.
                }
                Winner::Entrant => {
                    if let Some(pid) = self.entry.wake_one(ctx) {
                        *self.holder.lock() = Some(pid);
                        return false;
                    }
                    // All entrant entries were stale; re-select.
                }
                Winner::Nobody => {
                    *self.busy.lock() = false;
                    *self.holder.lock() = None;
                    return false;
                }
            }
        }
    }

    /// Finds the longest-waiting eligible candidate. If `me` is given and
    /// wins, the caller keeps possession instead of parking.
    fn select_winner(&self, me: Option<Pid>) -> Winner {
        let state = self.state.lock();
        let queues = self.queues.lock();
        let crowds = self.crowds.lock();
        let queue_lens: Vec<usize> = queues.iter().map(|q| q.waiters.len()).collect();
        let crowd_lens: Vec<usize> = crowds.iter().map(|c| c.members.len()).collect();
        let view = GuardView {
            state: &*state,
            queue_lens: &queue_lens,
            crowd_lens: &crowd_lens,
        };

        let mut best: Option<(u64, Winner)> = None;
        for (qi, q) in queues.iter().enumerate() {
            if let Some(head) = q.waiters.front() {
                if (head.guard)(&view) {
                    let candidate = (head.ticket, Winner::QueueHead(qi));
                    if best.as_ref().is_none_or(|(t, _)| head.ticket < *t) {
                        best = Some(candidate);
                    }
                }
            }
        }
        if let Some(ticket) = self.entry.front_ticket() {
            if best.as_ref().is_none_or(|(t, _)| ticket < *t) {
                best = Some((ticket, Winner::Entrant));
            }
        }
        let _ = me; // `me` participates implicitly: it is the head of its queue
        match best {
            Some((_, w)) => w,
            None => Winner::Nobody,
        }
    }
}

/// Poisons a [`Serializer`] whose holder's body unwound (kill or panic).
///
/// Armed for the whole `enter` body and disarmed with `mem::forget` on the
/// normal path. The holder check makes it a no-op when the process dies
/// waiting in a queue or running in a crowd — it holds nothing then, and
/// the wait/crowd guards do that cleanup.
struct PoisonOnUnwind<'a, S> {
    ser: &'a Serializer<S>,
    ctx: &'a Ctx,
}

impl<S> Drop for PoisonOnUnwind<'_, S> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        if *self.ser.holder.lock() != Some(self.ctx.pid()) {
            return;
        }
        *self.ser.poisoned.lock() = Some(Poisoned {
            primitive: self.ser.name.clone(),
            by: self.ctx.pid(),
        });
        self.ctx.emit(&format!("poison:{}", self.ser.name), &[]);
        // Dissolve possession and wake every waiter — entrants and all
        // queued guarantees — so they observe the poison instead of
        // wedging behind the corpse.
        *self.ser.busy.lock() = false;
        *self.ser.holder.lock() = None;
        self.ser.entry.wake_all(self.ctx);
        let drained: Vec<Pid> = self
            .ser
            .queues
            .lock()
            .iter_mut()
            .flat_map(|q| q.waiters.drain(..).map(|w| w.pid))
            .collect();
        for pid in drained {
            self.ctx.try_unpark(pid);
        }
    }
}

/// Removes the parked process's own queue entry if its wait unwinds —
/// a dead waiter's guarantee can never be granted, and its entry would
/// block the FIFO queue behind it forever.
struct DequeueOnUnwind<'a, S> {
    ser: &'a Serializer<S>,
    queue: QueueId,
    ctx: &'a Ctx,
}

impl<S> Drop for DequeueOnUnwind<'_, S> {
    fn drop(&mut self) {
        let me = self.ctx.pid();
        self.ser.queues.lock()[self.queue.0]
            .waiters
            .retain(|w| w.pid != me);
    }
}

/// Leaves the crowd if the crowd body (or the re-entry after it) unwinds,
/// then re-runs guard evaluation: guarantees such as "the writers crowd is
/// empty" may have just become true, and no release would otherwise ever
/// re-check them if the serializer is idle.
struct LeaveCrowdOnUnwind<'a, S: Send> {
    ser: &'a Serializer<S>,
    crowd: CrowdId,
    ctx: &'a Ctx,
}

impl<S: Send> Drop for LeaveCrowdOnUnwind<'_, S> {
    fn drop(&mut self) {
        let me = self.ctx.pid();
        {
            let mut crowds = self.ser.crowds.lock();
            let members = &mut crowds[self.crowd.0].members;
            if let Some(at) = members.iter().position(|&p| p == me) {
                members.remove(at);
            }
        }
        if self.ctx.cancelling() {
            return;
        }
        // If nobody is inside, claim possession on behalf of the dead
        // member and hand it straight to whoever became eligible; if
        // someone is inside, their release re-evaluates anyway.
        let claimed = {
            let mut busy = self.ser.busy.lock();
            if *busy {
                false
            } else {
                *busy = true;
                true
            }
        };
        if claimed {
            self.ser.hand_off(self.ctx, None);
        }
    }
}

/// Capability to use a serializer from inside [`Serializer::enter`].
#[derive(Debug)]
pub struct SerializerCtx<'a, S> {
    ser: &'a Serializer<S>,
    ctx: &'a Ctx,
}

impl<S: Send> SerializerCtx<'_, S> {
    /// Accesses the protected state.
    ///
    /// # Panics
    ///
    /// Panics on re-entrant use, which would otherwise deadlock.
    pub fn state<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        // Protected-state access is exactly the kernel-invisible effect
        // the purity analysis must see. `f` takes `&mut S`, so conservatively
        // a write even when the closure only reads.
        self.ctx.note_sync_obj_op(&self.ser.obj, Access::Write);
        let mut guard = self
            .ser
            .state
            .try_lock()
            .expect("serializer state re-entered: do not nest state() calls");
        f(&mut guard)
    }

    /// The simulator context of the process inside the serializer.
    pub fn ctx(&self) -> &Ctx {
        self.ctx
    }

    /// Waits in `queue` until the caller is at its head, `guard` holds, and
    /// possession is free — the Atkinson–Hewitt `enqueue` with a guarantee.
    ///
    /// Possession is released while waiting (other processes may enter the
    /// serializer). There is no explicit signal anywhere: eligibility is
    /// re-evaluated automatically at every possession release.
    pub fn enqueue(
        &self,
        queue: QueueId,
        guard: impl Fn(&GuardView<'_, S>) -> bool + Send + 'static,
    ) {
        self.enqueue_priority(queue, 0, guard);
    }

    /// Like [`SerializerCtx::enqueue`], but a wake caused by the serializer
    /// being poisoned (the holder died) returns the verdict instead of
    /// panicking. On `Err` the caller does *not* have possession and must
    /// leave the body promptly.
    pub fn enqueue_checked(
        &self,
        queue: QueueId,
        guard: impl Fn(&GuardView<'_, S>) -> bool + Send + 'static,
    ) -> Result<(), Poisoned> {
        self.enqueue_inner(queue, 0, Box::new(guard))
    }

    /// Like [`SerializerCtx::enqueue`], but the queue is ordered by
    /// `priority` (lower first; FIFO among equals) instead of pure arrival
    /// order. Bloom notes (§5.2) that priority queues had to be *added* to
    /// serializers when the first version could not handle request
    /// parameters — this method is that addition, used by the disk
    /// scheduler and alarm clock solutions.
    pub fn enqueue_priority(
        &self,
        queue: QueueId,
        priority: i64,
        guard: impl Fn(&GuardView<'_, S>) -> bool + Send + 'static,
    ) {
        if let Err(p) = self.enqueue_inner(queue, priority, Box::new(guard)) {
            panic!("{p}");
        }
    }

    fn enqueue_inner(
        &self,
        queue: QueueId,
        priority: i64,
        guard: Guard<S>,
    ) -> Result<(), Poisoned> {
        let ticket = self.ctx.fresh_ticket();
        let me = self.ctx.pid();
        {
            let mut queues = self.ser.queues.lock();
            let waiters = &mut queues[queue.0].waiters;
            let at = waiters
                .iter()
                .position(|w| (w.priority, w.ticket) > (priority, ticket))
                .unwrap_or(waiters.len());
            waiters.insert(
                at,
                SWaiter {
                    pid: me,
                    ticket,
                    priority,
                    guard,
                },
            );
        }
        // Releasing possession may select *us* (we might be the oldest
        // eligible head); in that case keep possession and continue.
        if self.ser.hand_off(self.ctx, Some(me)) {
            return Ok(()); // we stay in possession
        }
        self.park_in(queue);
        match self.ser.observe_poison(self.ctx) {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }

    /// Like [`SerializerCtx::enqueue`], but gives up at `deadline` — the
    /// Atkinson–Hewitt *timeout* feature: an enqueue carries a time bound,
    /// and an expired wait returns control (with possession re-acquired) so
    /// the process can handle the failure inside the serializer. Accepts
    /// anything convertible into a [`Deadline`] — a tick count (`u64`), a
    /// `Duration`, or an explicit [`Deadline`]. Returns `true` if the
    /// guarantee was met, `false` on timeout. An already-expired deadline
    /// gives up immediately — possession is kept and no scheduling point is
    /// consumed — so retry loops can thread one fixed deadline through
    /// repeated attempts.
    pub fn enqueue_by(
        &self,
        queue: QueueId,
        deadline: impl Into<Deadline>,
        guard: impl Fn(&GuardView<'_, S>) -> bool + Send + 'static,
    ) -> bool {
        let Some(ticks) = self.ctx.remaining(deadline) else {
            return false;
        };
        let ticket = self.ctx.fresh_ticket();
        let me = self.ctx.pid();
        {
            let mut queues = self.ser.queues.lock();
            let waiters = &mut queues[queue.0].waiters;
            let at = waiters
                .iter()
                .position(|w| (w.priority, w.ticket) > (0, ticket))
                .unwrap_or(waiters.len());
            waiters.insert(
                at,
                SWaiter {
                    pid: me,
                    ticket,
                    priority: 0,
                    guard: Box::new(guard),
                },
            );
        }
        if self.ser.hand_off(self.ctx, Some(me)) {
            return true;
        }
        let reason = format!("{}.{}", self.ser.name, self.ser.queues.lock()[queue.0].name);
        let cleanup = DequeueOnUnwind {
            ser: self.ser,
            queue,
            ctx: self.ctx,
        };
        let woken = self.ctx.park_timeout(&reason, ticks);
        std::mem::forget(cleanup);
        if woken {
            return true; // the guarantee was met and possession handed over
        }
        // Timed out: deregister (idempotent — a releaser may have skipped
        // and dropped our stale entry already) and re-enter the serializer.
        self.ser.queues.lock()[queue.0]
            .waiters
            .retain(|w| w.pid != me);
        self.ser.acquire(self.ctx);
        false
    }

    fn park_in(&self, queue: QueueId) {
        let reason = format!("{}.{}", self.ser.name, self.ser.queues.lock()[queue.0].name);
        let cleanup = DequeueOnUnwind {
            ser: self.ser,
            queue,
            ctx: self.ctx,
        };
        self.ctx.park(&reason);
        std::mem::forget(cleanup);
        // Woken with possession handed to us (or by a poison broadcast —
        // the caller checks).
    }

    /// Joins `crowd`, releases possession, runs `body` outside the
    /// serializer (concurrently with other crowd members), then re-enters
    /// and leaves the crowd.
    ///
    /// If the body dies (fault-plan kill or panic), the membership is
    /// removed during the unwind and guard evaluation re-runs, so waiters
    /// whose guarantees mention this crowd are not stranded.
    pub fn join_crowd<R>(&self, crowd: CrowdId, body: impl FnOnce() -> R) -> R {
        self.ser.crowds.lock()[crowd.0].members.push(self.ctx.pid());
        self.ser.release(self.ctx);
        let cleanup = LeaveCrowdOnUnwind {
            ser: self.ser,
            crowd,
            ctx: self.ctx,
        };
        let r = body();
        self.ser.acquire(self.ctx);
        std::mem::forget(cleanup);
        // `acquire` marks its own quantum before it parks; the membership
        // removal below runs in the quantum resumed *after* the hand-off,
        // which must be marked separately.
        self.ctx.note_sync_obj_op(&self.ser.obj, Access::Write);
        let mut crowds = self.ser.crowds.lock();
        let members = &mut crowds[crowd.0].members;
        let at = members
            .iter()
            .position(|&p| p == self.ctx.pid())
            .expect("leave_crowd: caller not a member");
        members.remove(at);
        r
    }

    /// Number of members currently in `crowd` (Bloom's *synchronization
    /// state* interrogation).
    pub fn crowd_len(&self, crowd: CrowdId) -> usize {
        self.ctx.note_sync_obj_op(&self.ser.obj, Access::Read);
        self.ser.crowds.lock()[crowd.0].members.len()
    }

    /// Whether `crowd` is empty.
    pub fn crowd_is_empty(&self, crowd: CrowdId) -> bool {
        self.crowd_len(crowd) == 0
    }

    /// Number of waiters in `queue`.
    pub fn queue_len(&self, queue: QueueId) -> usize {
        self.ctx.note_sync_obj_op(&self.ser.obj, Access::Read);
        self.ser.queues.lock()[queue.0].waiters.len()
    }
}

// `Arc<Serializer<S>>` is shared across process threads.
const _: fn() = || {
    fn assert_send_sync<T: Send + Sync>() {}
    fn check<S: Send>() {
        assert_send_sync::<Arc<Serializer<S>>>();
    }
    let _ = check::<()>;
};

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::{RandomPolicy, Sim};

    #[test]
    fn serializer_bodies_are_exclusive() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", (0u32, 0u32)));
        for i in 0..4 {
            let s = Arc::clone(&s);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..3 {
                    s.enter(ctx, |sc| {
                        sc.state(|v| {
                            v.0 += 1;
                            v.1 = v.1.max(v.0);
                        });
                        sc.ctx().yield_now();
                        sc.state(|v| v.0 -= 1);
                    });
                }
            });
        }
        let s2 = Arc::clone(&s);
        sim.run().unwrap();
        assert_eq!(s2.state.lock().1, 1);
    }

    /// No explicit signal anywhere: the guard becomes true when another
    /// process mutates state and releases possession, and the waiter
    /// resumes automatically.
    #[test]
    fn automatic_signalling_wakes_eligible_head() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", false));
        let q = s.queue("q");
        let order = Arc::new(Mutex::new(Vec::new()));

        let (s1, o1) = (Arc::clone(&s), Arc::clone(&order));
        sim.spawn("waiter", move |ctx| {
            s1.enter(ctx, |sc| {
                sc.enqueue(q, |v| *v.state());
                o1.lock().push("woken");
            });
        });
        let (s2, o2) = (Arc::clone(&s), Arc::clone(&order));
        sim.spawn("setter", move |ctx| {
            ctx.yield_now();
            s2.enter(ctx, |sc| {
                sc.state(|b| *b = true);
                o2.lock().push("set");
            });
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["set", "woken"]);
    }

    /// A queue is FIFO: a head whose guard is false blocks younger waiters
    /// behind it even if their guards are true (this is what preserves
    /// request order).
    #[test]
    fn false_guard_head_blocks_queue() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", false));
        let q = s.queue("q");
        let order = Arc::new(Mutex::new(Vec::new()));

        let (s1, o1) = (Arc::clone(&s), Arc::clone(&order));
        sim.spawn("blocked-head", move |ctx| {
            s1.enter(ctx, |sc| {
                sc.enqueue(q, |v| *v.state()); // false until setter runs
                o1.lock().push("head");
            });
        });
        let (s2, o2) = (Arc::clone(&s), Arc::clone(&order));
        sim.spawn("eager", move |ctx| {
            ctx.yield_now();
            s2.enter(ctx, |sc| {
                sc.enqueue(q, |_| true); // always eligible, but behind head
                o2.lock().push("eager");
            });
        });
        let s3 = Arc::clone(&s);
        sim.spawn("setter", move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            s3.enter(ctx, |sc| sc.state(|b| *b = true));
        });
        sim.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec!["head", "eager"],
            "FIFO preserved despite guards"
        );
    }

    /// Crowd members run their bodies concurrently; the serializer itself
    /// stays available while they are in the crowd.
    #[test]
    fn crowds_allow_concurrency() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", ()));
        let readers = s.crowd("readers");
        let peak = Arc::new(Mutex::new((0u32, 0u32)));
        for i in 0..3 {
            let s = Arc::clone(&s);
            let peak = Arc::clone(&peak);
            sim.spawn(&format!("r{i}"), move |ctx| {
                s.enter(ctx, |sc| {
                    sc.join_crowd(readers, || {
                        {
                            let mut p = peak.lock();
                            p.0 += 1;
                            p.1 = p.1.max(p.0);
                        }
                        ctx.yield_now();
                        ctx.yield_now();
                        peak.lock().0 -= 1;
                    });
                });
            });
        }
        sim.run().unwrap();
        assert!(
            peak.lock().1 > 1,
            "crowd members overlapped: {:?}",
            peak.lock().1
        );
    }

    #[test]
    fn join_crowd_releases_possession() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", ()));
        let crowd = s.crowd("c");
        let order = Arc::new(Mutex::new(Vec::new()));
        let (s1, o1) = (Arc::clone(&s), Arc::clone(&order));
        sim.spawn("crowder", move |ctx| {
            s1.enter(ctx, |sc| {
                sc.join_crowd(crowd, || {
                    o1.lock().push("in-crowd");
                    ctx.yield_now();
                    ctx.yield_now();
                });
                o1.lock().push("back-in-serializer");
            });
        });
        let (s2, o2) = (Arc::clone(&s), Arc::clone(&order));
        sim.spawn("visitor", move |ctx| {
            ctx.yield_now();
            s2.enter(ctx, |_| {
                o2.lock().push("visitor-inside");
            });
        });
        sim.run().unwrap();
        let order = order.lock();
        let pos = |s: &str| order.iter().position(|x| *x == s).unwrap();
        assert!(
            pos("visitor-inside") > pos("in-crowd")
                && pos("visitor-inside") < pos("back-in-serializer"),
            "visitor entered while the crowder was in the crowd: {order:?}"
        );
    }

    /// Longest-waiting selection across queues: when two heads become
    /// eligible simultaneously, the older ticket wins.
    #[test]
    fn longest_waiting_head_wins() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", false));
        let qa = s.queue("a");
        let qb = s.queue("b");
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, q, delay) in [("older", qa, 0u32), ("younger", qb, 1)] {
            let (s, o) = (Arc::clone(&s), Arc::clone(&order));
            sim.spawn(name, move |ctx| {
                for _ in 0..delay {
                    ctx.yield_now();
                }
                s.enter(ctx, |sc| {
                    sc.enqueue(q, |v| *v.state());
                    o.lock().push(name);
                });
            });
        }
        let s3 = Arc::clone(&s);
        sim.spawn("setter", move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            s3.enter(ctx, |sc| sc.state(|b| *b = true));
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["older", "younger"]);
    }

    /// Enqueue with an immediately-true guard on an otherwise idle
    /// serializer continues without deadlock (self-selection).
    #[test]
    fn enqueue_with_true_guard_continues() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", ()));
        let q = s.queue("q");
        let s2 = Arc::clone(&s);
        sim.spawn("solo", move |ctx| {
            s2.enter(ctx, |sc| {
                sc.enqueue(q, |_| true);
                ctx.emit("through", &[]);
            });
        });
        let report = sim.run().expect("no deadlock");
        assert_eq!(report.trace.count_user("through"), 1);
    }

    #[test]
    fn enqueue_priority_orders_queue_by_rank() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", false));
        let q = s.queue("ranked");
        let order = Arc::new(Mutex::new(Vec::new()));
        for (i, rank) in [(0, 30i64), (1, 10), (2, 20)] {
            let (s, o) = (Arc::clone(&s), Arc::clone(&order));
            sim.spawn(&format!("w{i}"), move |ctx| {
                s.enter(ctx, |sc| {
                    sc.enqueue_priority(q, rank, |v| *v.state());
                    o.lock().push(rank);
                });
            });
        }
        let s2 = Arc::clone(&s);
        sim.spawn("setter", move |ctx| {
            for _ in 0..3 {
                ctx.yield_now();
            }
            s2.enter(ctx, |sc| sc.state(|b| *b = true));
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![10, 20, 30], "served in priority order");
    }

    #[test]
    fn enqueue_by_expires_and_returns_with_possession() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", false));
        let q = s.queue("gate");
        let s2 = Arc::clone(&s);
        sim.spawn("impatient", move |ctx| {
            s2.enter(ctx, |sc| {
                let before = ctx.now();
                let met = sc.enqueue_by(q, 30u64, |v| *v.state());
                assert!(!met, "the guarantee is never met");
                assert!(ctx.now().0 >= before.0 + 30, "waited out the bound");
                // Possession was re-acquired: the state is inspectable.
                assert!(!sc.state(|b| *b));
                ctx.emit("handled-timeout", &[]);
            });
        });
        let report = sim.run().expect("timeout avoids the deadlock");
        assert_eq!(report.trace.count_user("handled-timeout"), 1);
    }

    #[test]
    fn enqueue_by_succeeds_when_guarantee_met_in_time() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", false));
        let q = s.queue("gate");
        let (s1, s2) = (Arc::clone(&s), Arc::clone(&s));
        sim.spawn("waiter", move |ctx| {
            s1.enter(ctx, |sc| {
                let met = sc.enqueue_by(q, 1000u64, |v| *v.state());
                assert!(met, "setter ran before the deadline");
                ctx.emit("met", &[]);
            });
        });
        sim.spawn("setter", move |ctx| {
            ctx.yield_now();
            s2.enter(ctx, |sc| sc.state(|b| *b = true));
        });
        let report = sim.run().unwrap();
        assert_eq!(report.trace.count_user("met"), 1);
    }

    /// Deadline withdrawal: `enqueue_by` gives up at the absolute
    /// deadline, leaves no stale entry behind once it withdraws, and an
    /// already-expired deadline fails instantly without releasing
    /// possession.
    #[test]
    fn enqueue_by_withdraws_at_the_deadline() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", false));
        let q = s.queue("gate");
        let s2 = Arc::clone(&s);
        sim.spawn("impatient", move |ctx| {
            s2.enter(ctx, |sc| {
                let deadline = ctx.deadline_after(5);
                assert!(!sc.enqueue_by(q, deadline, |v| *v.state()));
                assert!(deadline.expired(ctx.now()), "gave up only at the deadline");
                assert_eq!(sc.queue_len(q), 0, "withdrawal removed the entry");
                let before = ctx.now();
                assert!(
                    !sc.enqueue_by(q, deadline, |v| *v.state()),
                    "expired deadline fails immediately"
                );
                assert_eq!(ctx.now(), before, "no scheduling point consumed");
            });
        });
        sim.run().expect("deadline avoids the deadlock");
    }

    #[test]
    fn stale_timed_out_head_does_not_wedge_the_queue() {
        // An impatient waiter times out at the head of the queue; the
        // waiter behind it must still be served when its guard turns true.
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", false));
        let q = s.queue("gate");
        let order = Arc::new(Mutex::new(Vec::new()));
        let (s1, o1) = (Arc::clone(&s), Arc::clone(&order));
        sim.spawn("impatient", move |ctx| {
            s1.enter(ctx, |sc| {
                assert!(!sc.enqueue_by(q, 10u64, |v| *v.state()));
                o1.lock().push("timed-out");
            });
        });
        let (s2, o2) = (Arc::clone(&s), Arc::clone(&order));
        sim.spawn("patient", move |ctx| {
            ctx.yield_now();
            s2.enter(ctx, |sc| {
                sc.enqueue(q, |v| *v.state());
                o2.lock().push("served");
            });
        });
        let s3 = Arc::clone(&s);
        sim.spawn("setter", move |ctx| {
            ctx.sleep(50); // well past the impatient waiter's deadline
            s3.enter(ctx, |sc| sc.state(|b| *b = true));
        });
        sim.run().unwrap();
        let order = order.lock();
        assert!(order.contains(&"timed-out"));
        assert!(order.contains(&"served"));
    }

    #[test]
    fn never_true_guard_deadlocks_and_names_queue() {
        let mut sim = Sim::new();
        let s = Arc::new(Serializer::new("s", ()));
        let q = s.queue("doom");
        let s2 = Arc::clone(&s);
        sim.spawn("stuck", move |ctx| {
            s2.enter(ctx, |sc| sc.enqueue(q, |_| false));
        });
        let err = sim.run().expect_err("deadlock");
        assert!(err.is_deadlock());
        assert!(err.to_string().contains("doom"));
    }

    /// Readers/writers with crowds and guards: writers exclusive, readers
    /// shared, never a reader and writer together — across random seeds.
    #[test]
    fn readers_writers_invariants_under_random_schedules() {
        for seed in 0..8 {
            let mut sim = Sim::new();
            sim.set_policy(RandomPolicy::new(seed));
            let s = Arc::new(Serializer::new("db", ()));
            let q = s.queue("req");
            let readers = s.crowd("readers");
            let writers = s.crowd("writers");
            let active = Arc::new(Mutex::new((0i32, 0i32, false))); // (readers, writers, violated)
            for i in 0..3 {
                let s = Arc::clone(&s);
                let active = Arc::clone(&active);
                sim.spawn(&format!("r{i}"), move |ctx| {
                    for _ in 0..3 {
                        s.enter(ctx, |sc| {
                            sc.enqueue(q, move |v| v.crowd_is_empty(writers));
                            sc.join_crowd(readers, || {
                                {
                                    let mut a = active.lock();
                                    a.0 += 1;
                                    if a.1 > 0 {
                                        a.2 = true;
                                    }
                                }
                                ctx.yield_now();
                                active.lock().0 -= 1;
                            });
                        });
                        ctx.yield_now();
                    }
                });
            }
            for i in 0..2 {
                let s = Arc::clone(&s);
                let active = Arc::clone(&active);
                sim.spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..3 {
                        s.enter(ctx, |sc| {
                            sc.enqueue(q, move |v| {
                                v.crowd_is_empty(writers) && v.crowd_is_empty(readers)
                            });
                            sc.join_crowd(writers, || {
                                {
                                    let mut a = active.lock();
                                    a.1 += 1;
                                    if a.0 > 0 || a.1 > 1 {
                                        a.2 = true;
                                    }
                                }
                                ctx.yield_now();
                                active.lock().1 -= 1;
                            });
                        });
                        ctx.yield_now();
                    }
                });
            }
            sim.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(!active.lock().2, "seed {seed}: exclusion violated");
        }
    }
}
