//! Real-thread CSP-style synchronous channels with guarded select —
//! mirrors `bloom-channel` operation for operation.
//!
//! The rendezvous state is a per-channel `Mutex<ChanState>`: a FIFO of
//! queued sender offers (globally ticketed, so select's longest-waiting
//! discipline compares across channels) and a FIFO of registered
//! receivers. A selecting receiver owns a *delivery cell* (its own
//! mutex + condvar) shared between every channel it registered on; the
//! first sender to `try_fill` it wins, and a cell is `closed` the moment
//! its owner stops listening (timeout, or claiming a queued offer
//! directly), so nothing can be delivered into a receiver that is gone.
//! Lock order is always channel state, then cell.
//!
//! The sleeping-barber gap between polling the sender queues and
//! registering is closed by a second poll *after* registration: if that
//! pass finds a queued offer, the receiver first closes its own cell
//! (under the winning channel's lock) — either discovering a delivery
//! that raced in, which it consumes, or making itself unfillable — and
//! only then takes the offer, so exactly one value changes hands.

use crate::runtime::RtCtx;
use bloom_sim::Deadline;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct CellState<T> {
    slot: Option<(usize, T)>,
    /// Set when the owner stops listening; fills are refused thereafter.
    closed: bool,
}

/// The rendezvous mailbox of a parked (selecting) receiver.
struct DeliveryCell<T> {
    inner: Mutex<CellState<T>>,
    cv: Condvar,
}

impl<T> DeliveryCell<T> {
    fn new() -> Arc<Self> {
        Arc::new(DeliveryCell {
            inner: Mutex::new(CellState {
                slot: None,
                closed: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Delivers into the cell unless it is already filled or closed; on
    /// refusal the value comes back.
    fn try_fill(&self, alt_index: usize, value: T) -> Result<(), T> {
        let mut c = self.inner.lock();
        if c.closed || c.slot.is_some() {
            return Err(value);
        }
        c.slot = Some((alt_index, value));
        self.cv.notify_all();
        Ok(())
    }
}

struct WaitingReceiver<T> {
    /// Registration id; one select registers the same id on every
    /// enabled alternative.
    rid: u64,
    alt_index: usize,
    cell: Arc<DeliveryCell<T>>,
}

struct ChanState<T> {
    /// `(arrival ticket, offered value)`, FIFO — tickets are assigned
    /// under this lock, so queue order is ticket order.
    senders: VecDeque<(u64, T)>,
    receivers: VecDeque<WaitingReceiver<T>>,
    /// Tickets of offers a receiver took; the parked sender collects its
    /// ticket from here and returns.
    completed: HashSet<u64>,
}

/// A synchronous (rendezvous, unbuffered) channel on OS threads; mirrors
/// `bloom_channel::Channel`.
pub struct RtChannel<T> {
    name: String,
    state: Mutex<ChanState<T>>,
    cv: Condvar,
}

impl<T: Send> RtChannel<T> {
    /// Creates a channel; `name` appears in diagnostics.
    pub fn new(name: &str) -> Self {
        RtChannel {
            name: name.to_string(),
            state: Mutex::new(ChanState {
                senders: VecDeque::new(),
                receivers: VecDeque::new(),
                completed: HashSet::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// The channel's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sends `value`, blocking until a receiver takes it (rendezvous).
    pub fn send(&self, ctx: &RtCtx, value: T) {
        ctx.chaos();
        let mut st = self.state.lock();
        let Some(ticket) = Self::deliver_or_enqueue(ctx, &mut st, value) else {
            return;
        };
        loop {
            if st.completed.remove(&ticket) {
                return;
            }
            self.cv.wait(&mut st);
        }
    }

    /// Timed [`RtChannel::send`] against a virtual-tick [`Deadline`]: on
    /// timeout the offer is withdrawn and the unsent value handed back as
    /// `Err(value)` — the rendezvous happens completely or not at all.
    pub fn send_by(&self, ctx: &RtCtx, value: T, deadline: impl Into<Deadline>) -> Result<(), T> {
        ctx.chaos();
        let Some(budget) = ctx.wall_budget(deadline) else {
            return Err(value);
        };
        let start = Instant::now();
        let mut st = self.state.lock();
        let Some(ticket) = Self::deliver_or_enqueue(ctx, &mut st, value) else {
            return Ok(());
        };
        loop {
            if st.completed.remove(&ticket) {
                return Ok(());
            }
            let elapsed = start.elapsed();
            if elapsed >= budget {
                // Settled under the lock: either a receiver took the
                // offer while we raced for the lock (completed — checked
                // above on the next iteration would miss it, so re-check)
                // or the entry is still ours to withdraw.
                if st.completed.remove(&ticket) {
                    return Ok(());
                }
                let at = st
                    .senders
                    .iter()
                    .position(|&(t, _)| t == ticket)
                    .expect("timed-out sender's offer must still be queued");
                let (_, v) = st.senders.remove(at).expect("index valid");
                return Err(v);
            }
            self.cv.wait_for(&mut st, budget - elapsed);
        }
    }

    /// Delivers straight to a registered live receiver, or queues the
    /// offer and returns its ticket.
    fn deliver_or_enqueue(ctx: &RtCtx, st: &mut ChanState<T>, value: T) -> Option<u64> {
        let mut value = value;
        while let Some(rcv) = st.receivers.pop_front() {
            match rcv.cell.try_fill(rcv.alt_index, value) {
                Ok(()) => return None, // delivered; rendezvous complete
                Err(v) => value = v,   // stale registration; drop and retry
            }
        }
        let ticket = ctx.fresh_ticket();
        st.senders.push_back((ticket, value));
        Some(ticket)
    }

    /// Receives a value, blocking until a sender offers one.
    pub fn recv(&self, ctx: &RtCtx) -> T {
        select(ctx, &mut [(self, true)]).1
    }

    /// Timed [`RtChannel::recv`]: `None` if no sender rendezvoused in
    /// time.
    pub fn recv_by(&self, ctx: &RtCtx, deadline: impl Into<Deadline>) -> Option<T> {
        select_by(ctx, &mut [(self, true)], deadline).map(|(_, v)| v)
    }

    /// Number of senders currently blocked on this channel — queue
    /// interrogation for guards.
    pub fn pending_senders(&self) -> usize {
        self.state.lock().senders.len()
    }

    fn unregister(&self, rid: u64) {
        self.state.lock().receivers.retain(|r| r.rid != rid);
    }
}

impl<T> std::fmt::Debug for RtChannel<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtChannel")
            .field("name", &self.name)
            .field("pending_senders", &self.state.lock().senders.len())
            .finish()
    }
}

fn assert_some_guard<T>(alternatives: &[(&RtChannel<T>, bool)]) {
    assert!(
        alternatives.iter().any(|&(_, guard)| guard),
        "select with every guard false would block forever"
    );
}

/// Guarded selective receive; mirrors `bloom_channel::select` (including
/// the all-guards-false panic and the longest-waiting-sender discipline).
pub fn select<T: Send>(ctx: &RtCtx, alternatives: &mut [(&RtChannel<T>, bool)]) -> (usize, T) {
    select_inner(ctx, alternatives, None).expect("untimed select always rendezvouses")
}

/// Timed [`select`]; mirrors `bloom_channel::select_by`.
pub fn select_by<T: Send>(
    ctx: &RtCtx,
    alternatives: &mut [(&RtChannel<T>, bool)],
    deadline: impl Into<Deadline>,
) -> Option<(usize, T)> {
    assert_some_guard(alternatives);
    let budget = ctx.wall_budget(deadline)?;
    select_inner(ctx, alternatives, Some(budget))
}

/// Scans enabled alternatives for the longest-waiting queued offer and
/// takes it. With `cell` given (post-registration pass), the caller's own
/// cell is closed first — under the winning channel's lock — so a racing
/// delivery is either consumed here or can never happen.
fn poll_take<T: Send>(
    alternatives: &[(&RtChannel<T>, bool)],
    cell: Option<&DeliveryCell<T>>,
) -> Option<(usize, T)> {
    loop {
        let mut best: Option<(usize, u64)> = None;
        for (i, &(chan, guard)) in alternatives.iter().enumerate() {
            if !guard {
                continue;
            }
            let st = chan.state.lock();
            if let Some(&(ticket, _)) = st.senders.front() {
                if best.map_or(true, |(_, t)| ticket < t) {
                    best = Some((i, ticket));
                }
            }
        }
        let (index, ticket) = best?;
        let chan = alternatives[index].0;
        let mut st = chan.state.lock();
        if let Some(cell) = cell {
            let mut c = cell.inner.lock();
            if let Some(delivery) = c.slot.take() {
                // A sender filled our cell while we scanned; that
                // rendezvous already completed on its side — honor it and
                // leave the queued offer for someone else.
                c.closed = true;
                return Some(delivery);
            }
            c.closed = true; // now nobody can fill; the offer is ours
        }
        let Some(at) = st.senders.iter().position(|&(t, _)| t == ticket) else {
            continue; // the offer was withdrawn while we re-locked; rescan
        };
        let (t, value) = st.senders.remove(at).expect("index valid");
        st.completed.insert(t);
        chan.cv.notify_all();
        return Some((index, value));
    }
}

fn select_inner<T: Send>(
    ctx: &RtCtx,
    alternatives: &mut [(&RtChannel<T>, bool)],
    budget: Option<Duration>,
) -> Option<(usize, T)> {
    assert_some_guard(alternatives);
    ctx.chaos();
    let start = Instant::now();
    // Fast path: a queued offer is already waiting.
    if let Some(hit) = poll_take(alternatives, None) {
        return Some(hit);
    }
    // Register on every enabled alternative, then close the poll/register
    // wakeup gap with a second, cell-claiming poll.
    let cell = DeliveryCell::new();
    let rid = ctx.fresh_ticket();
    let registered: Vec<&RtChannel<T>> = alternatives
        .iter()
        .enumerate()
        .filter(|&(_, &(_, guard))| guard)
        .map(|(i, &(chan, _))| {
            chan.state.lock().receivers.push_back(WaitingReceiver {
                rid,
                alt_index: i,
                cell: Arc::clone(&cell),
            });
            chan
        })
        .collect();
    let unregister_all = || {
        for chan in &registered {
            chan.unregister(rid);
        }
    };
    if let Some(hit) = poll_take(alternatives, Some(&cell)) {
        unregister_all();
        return Some(hit);
    }
    // Park on the cell until a sender fills it (or the budget runs out).
    let mut c = cell.inner.lock();
    loop {
        if c.closed {
            // The gap-closing poll claimed an offer... but then it would
            // have returned above; a closed cell here means it consumed a
            // raced delivery, also returned above. Unreachable, but the
            // invariant is worth stating: only the owner closes the cell.
            unreachable!("cell closed while its owner was parked");
        }
        if let Some((index, value)) = c.slot.take() {
            c.closed = true;
            drop(c);
            unregister_all();
            return Some((index, value));
        }
        match budget {
            None => cell.cv.wait(&mut c),
            Some(b) => {
                let elapsed = start.elapsed();
                if elapsed >= b {
                    c.closed = true;
                    drop(c);
                    unregister_all();
                    return None;
                }
                cell.cv.wait_for(&mut c, b - elapsed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::RtSim;

    #[test]
    fn rendezvous_transfers_a_value() {
        let mut rt = RtSim::new();
        let ch = Arc::new(RtChannel::new("ch"));
        let tx = Arc::clone(&ch);
        rt.spawn("sender", move |ctx| tx.send(ctx, 42));
        let rx = Arc::clone(&ch);
        rt.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv(ctx), 42);
            ctx.emit("got", &[]);
        });
        let report = rt.run().expect("no wedge");
        assert_eq!(report.trace.count_user("got"), 1);
    }

    #[test]
    fn senders_are_served_fifo() {
        let mut rt = RtSim::new();
        let ch = Arc::new(RtChannel::new("ch"));
        let queued = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let tx = Arc::clone(&ch);
            let q = Arc::clone(&queued);
            rt.spawn(&format!("s{i}"), move |ctx| {
                // Serialize arrival order so FIFO has a defined meaning.
                std::thread::sleep(Duration::from_millis(5 * (i as u64 + 1)));
                q.lock().push(i);
                tx.send(ctx, i);
            });
        }
        let rx = Arc::clone(&ch);
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        rt.spawn("receiver", move |ctx| {
            while rx.pending_senders() < 4 {
                std::thread::sleep(Duration::from_millis(1));
            }
            for _ in 0..4 {
                g.lock().push(rx.recv(ctx));
            }
        });
        rt.run().expect("no wedge");
        assert_eq!(*got.lock(), *queued.lock(), "served in arrival order");
    }

    #[test]
    fn select_prefers_longest_waiting_across_channels() {
        let mut rt = RtSim::new();
        let a = Arc::new(RtChannel::new("a"));
        let b = Arc::new(RtChannel::new("b"));
        let b1 = Arc::clone(&b);
        rt.spawn("sender-b", move |ctx| b1.send(ctx, 20));
        let a2 = Arc::clone(&a);
        rt.spawn("sender-a", move |ctx| {
            std::thread::sleep(Duration::from_millis(10)); // arrives second
            a2.send(ctx, 10);
        });
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        let got = Arc::new(Mutex::new(Vec::new()));
        let g = Arc::clone(&got);
        rt.spawn("server", move |ctx| {
            while a3.pending_senders() + b3.pending_senders() < 2 {
                std::thread::sleep(Duration::from_millis(1));
            }
            for _ in 0..2 {
                let (idx, v) = select(ctx, &mut [(&*a3, true), (&*b3, true)]);
                g.lock().push((idx, v));
            }
        });
        rt.run().expect("no wedge");
        assert_eq!(*got.lock(), vec![(1, 20), (0, 10)], "older sender first");
    }

    #[test]
    fn false_guard_disables_an_alternative() {
        let mut rt = RtSim::new();
        let a = Arc::new(RtChannel::new("a"));
        let b = Arc::new(RtChannel::new("b"));
        let a1 = Arc::clone(&a);
        rt.spawn("sender-a", move |ctx| a1.send(ctx, 1));
        let b2 = Arc::clone(&b);
        rt.spawn("sender-b", move |ctx| b2.send(ctx, 2));
        let (a3, b3) = (Arc::clone(&a), Arc::clone(&b));
        rt.spawn("server", move |ctx| {
            while a3.pending_senders() < 1 || b3.pending_senders() < 1 {
                std::thread::sleep(Duration::from_millis(1));
            }
            let (idx, v) = select(ctx, &mut [(&*a3, false), (&*b3, true)]);
            assert_eq!((idx, v), (1, 2));
            let (idx, v) = select(ctx, &mut [(&*a3, true), (&*b3, false)]);
            assert_eq!((idx, v), (0, 1));
        });
        rt.run().expect("no wedge");
    }

    #[test]
    fn blocked_select_wakes_on_late_sender() {
        let mut rt = RtSim::new();
        let a = Arc::new(RtChannel::new("a"));
        let b = Arc::new(RtChannel::new("b"));
        let (a1, b1) = (Arc::clone(&a), Arc::clone(&b));
        let got = Arc::new(Mutex::new(None));
        let g = Arc::clone(&got);
        rt.spawn("server", move |ctx| {
            let (idx, v) = select(ctx, &mut [(&*a1, true), (&*b1, true)]);
            *g.lock() = Some((idx, v));
        });
        let b2 = Arc::clone(&b);
        rt.spawn("late-sender", move |ctx| {
            std::thread::sleep(Duration::from_millis(10));
            b2.send(ctx, 9);
        });
        rt.run().expect("no wedge");
        assert_eq!(*got.lock(), Some((1, 9)));
    }

    #[test]
    fn send_by_returns_the_value_on_timeout() {
        let mut rt = RtSim::new();
        let ch = Arc::new(RtChannel::new("ch"));
        let tx = Arc::clone(&ch);
        rt.spawn("sender", move |ctx| {
            assert_eq!(tx.send_by(ctx, 42, 3u64), Err(42), "value recovered");
            assert_eq!(tx.pending_senders(), 0, "offer withdrawn");
        });
        rt.run().expect("no wedge");
    }

    #[test]
    fn recv_by_gives_up_without_a_sender_then_still_works() {
        let mut rt = RtSim::new();
        let ch = Arc::new(RtChannel::<i64>::new("ch"));
        let rx = Arc::clone(&ch);
        rt.spawn("receiver", move |ctx| {
            assert_eq!(rx.recv_by(ctx, 3u64), None);
            assert_eq!(rx.recv(ctx), 7, "late sender still rendezvouses");
        });
        let tx = Arc::clone(&ch);
        rt.spawn("late-sender", move |ctx| {
            std::thread::sleep(Duration::from_millis(30));
            tx.send(ctx, 7);
        });
        rt.run().expect("no wedge");
        assert!(
            ch.state.lock().receivers.is_empty(),
            "no stale registrations"
        );
    }

    #[test]
    fn ping_pong_under_jitter() {
        use crate::runtime::RtConfig;
        for seed in 0..3u64 {
            let mut rt = RtSim::with_config(RtConfig {
                jitter_seed: Some(seed),
                ..RtConfig::default()
            });
            let ping = Arc::new(RtChannel::new("ping"));
            let pong = Arc::new(RtChannel::new("pong"));
            let (p1, q1) = (Arc::clone(&ping), Arc::clone(&pong));
            rt.spawn("alice", move |ctx| {
                for i in 0..25 {
                    p1.send(ctx, i);
                    assert_eq!(q1.recv(ctx), i * 2);
                }
            });
            let (p2, q2) = (Arc::clone(&ping), Arc::clone(&pong));
            rt.spawn("bob", move |ctx| {
                for _ in 0..25 {
                    let v = p2.recv(ctx);
                    q2.send(ctx, v * 2);
                }
            });
            rt.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "every guard false")]
    fn all_false_guards_panic() {
        let mut rt = RtSim::new();
        let a = Arc::new(RtChannel::<i64>::new("a"));
        let a1 = Arc::clone(&a);
        rt.spawn("server", move |ctx| {
            let _ = select(ctx, &mut [(&*a1, false)]);
        });
        if let Err(e) = rt.run() {
            panic!("{e}");
        }
    }
}
