#![forbid(unsafe_code)]
#![deny(deprecated)]
//! Real-thread backend: Bloom's five mechanisms on OS threads.
//!
//! Everything else in this workspace runs under the cooperative
//! deterministic simulator in `bloom-sim`. That buys exhaustive
//! exploration and replay, but it also means every verdict rests on the
//! simulator faithfully modelling what a preemptive implementation would
//! do. This crate is the cross-check: the same five mechanism APIs —
//! semaphores (weak and strong), monitors (both signal disciplines),
//! serializers, path expressions, and CSP-style channels with `select` —
//! implemented directly on `std::thread` + `parking_lot`, emitting the
//! identical `req:`/`enter:`/`exit:` event vocabulary into a
//! mutex-guarded [`bloom_sim::Trace`]. Because the checkers and laws in
//! `bloom-core` consume traces, not kernels, they run on real executions
//! unchanged, and the differential conformance suite in `bloom-bench`
//! can require every real-run verdict to fall inside the envelope the
//! simulator's exhaustive exploration established.
//!
//! What deliberately differs from the simulator:
//!
//! * **No scheduler, no replay.** A run's interleaving is whatever the OS
//!   did. Reports carry an empty decision vector and `prune_safe: false`.
//! * **Virtual time is a logical event counter.** The checkers depend on
//!   event *order*; `*_by` deadlines map ticks to bounded wall-clock
//!   budgets via [`RtCtx::wall_budget`].
//! * **Atomicity is earned, not assumed.** Simulator mechanisms get
//!   check-then-park atomicity from the one-running-process invariant;
//!   here every mechanism is an explicit single-mutex state machine and
//!   all hand-off races (timeout vs. concurrent grant, select vs.
//!   delivery) are resolved under that mutex.
//! * **Deadlock detection is a wall-clock watchdog**, necessarily
//!   approximate: a wedged OS thread cannot be introspected or forced to
//!   unwind, so it is reported blocked on `"wall-clock watchdog"` and
//!   leaked.
//!
//! What deliberately matches:
//!
//! * the event vocabulary and its *decision-point* placement (a releaser
//!   granting a parked process emits `enter` on the waiter's behalf via
//!   [`RtCtx::emit_for`], exactly like the simulator's `enter_for`);
//! * poisoning: mid-protocol panics emit `poison:<name>`, later users
//!   observe `poison-seen:<name>`, guards are disarmed with
//!   `mem::forget` on success;
//! * fault injection: [`KillPoint`] panics a named thread at its Nth
//!   instrumented point, the analogue of `FaultPlan` kill-points, and is
//!   classified [`bloom_sim::ProcessStatus::Killed`], not a crash.

mod channel;
mod monitor;
mod pathexpr;
mod runtime;
mod semaphore;
mod serializer;

pub use channel::{select, select_by, RtChannel};
pub use monitor::{RtCond, RtMonitor, RtMonitorCtx, Signaling};
pub use pathexpr::{RtPathResource, RtPredicateView};
pub use runtime::{KillPoint, RtConfig, RtCtx, RtKill, RtSim};
pub use semaphore::{RtLock, RtSemaphore, TryResult};
pub use serializer::{RtCrowdId, RtGuardView, RtQueueId, RtSerializer, RtSerializerCtx};
