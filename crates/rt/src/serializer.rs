//! Real-thread Atkinson–Hewitt serializers — mirrors `bloom-serializer`
//! operation for operation.
//!
//! One `Mutex<SerState<S>>` + broadcast `Condvar` holds possession, the
//! entry queue, every guarded internal queue, and the crowd memberships.
//! There is no explicit signal anywhere, exactly as in the paper's
//! construct: every possession release re-evaluates the guards of all
//! queue heads and hands possession to the oldest eligible candidate
//! (lowest arrival ticket across eligible queue heads and the entry
//! front). Guard predicates see a [`RtGuardView`] — protected state plus
//! queue lengths and crowd sizes — like the simulator's `GuardView`.
//!
//! The protected state lives in its own mutex (lock order: serializer
//! core, then state) so that crowd members, which run *outside*
//! possession, can be re-evaluated against it without racing the holder.

use crate::runtime::RtCtx;
use bloom_sim::{Deadline, Pid, Poisoned};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{HashSet, VecDeque};

/// Handle to a named internal queue; mirrors `bloom_serializer::QueueId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtQueueId(usize);

/// Handle to a named crowd; mirrors `bloom_serializer::CrowdId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtCrowdId(usize);

/// Snapshot passed to guard predicates; mirrors
/// `bloom_serializer::GuardView`.
pub struct RtGuardView<'a, S> {
    state: &'a S,
    queue_lens: &'a [usize],
    crowd_lens: &'a [usize],
}

impl<S> RtGuardView<'_, S> {
    /// The protected state.
    pub fn state(&self) -> &S {
        self.state
    }

    /// Whether the crowd has no members.
    pub fn crowd_is_empty(&self, crowd: RtCrowdId) -> bool {
        self.crowd_lens[crowd.0] == 0
    }

    /// Number of processes in the crowd.
    pub fn crowd_len(&self, crowd: RtCrowdId) -> usize {
        self.crowd_lens[crowd.0]
    }

    /// Whether the queue has no waiters.
    pub fn queue_is_empty(&self, queue: RtQueueId) -> bool {
        self.queue_lens[queue.0] == 0
    }

    /// Number of waiters in the queue (including the process whose guard
    /// is being evaluated, for its own queue).
    pub fn queue_len(&self, queue: RtQueueId) -> usize {
        self.queue_lens[queue.0]
    }
}

type Guard<S> = Box<dyn Fn(&RtGuardView<'_, S>) -> bool + Send>;

struct SWaiter<S> {
    ticket: u64,
    priority: i64,
    guard: Guard<S>,
}

struct QueueState<S> {
    waiters: VecDeque<SWaiter<S>>,
}

struct CrowdState {
    members: Vec<Pid>,
}

struct SerState<S> {
    busy: bool,
    holder: Option<Pid>,
    poisoned: Option<Poisoned>,
    entry: VecDeque<u64>,
    queues: Vec<QueueState<S>>,
    crowds: Vec<CrowdState>,
    granted: HashSet<u64>,
    poison_woken: HashSet<u64>,
}

enum Wake {
    Granted,
    Poison(Poisoned),
}

/// An Atkinson–Hewitt serializer on OS threads; mirrors
/// `bloom_serializer::Serializer`.
pub struct RtSerializer<S> {
    name: String,
    core: Mutex<SerState<S>>,
    cv: Condvar,
    data: Mutex<S>,
}

impl<S: Send> RtSerializer<S> {
    /// Creates a serializer protecting `initial`.
    pub fn new(name: &str, initial: S) -> Self {
        RtSerializer {
            name: name.to_string(),
            core: Mutex::new(SerState {
                busy: false,
                holder: None,
                poisoned: None,
                entry: VecDeque::new(),
                queues: Vec::new(),
                crowds: Vec::new(),
                granted: HashSet::new(),
                poison_woken: HashSet::new(),
            }),
            cv: Condvar::new(),
            data: Mutex::new(initial),
        }
    }

    /// The serializer's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares a FIFO queue; call before spawning users.
    pub fn queue(&self, _name: &str) -> RtQueueId {
        let mut s = self.core.lock();
        s.queues.push(QueueState {
            waiters: VecDeque::new(),
        });
        RtQueueId(s.queues.len() - 1)
    }

    /// Declares a crowd; call before spawning users.
    pub fn crowd(&self, _name: &str) -> RtCrowdId {
        let mut s = self.core.lock();
        s.crowds.push(CrowdState {
            members: Vec::new(),
        });
        RtCrowdId(s.crowds.len() - 1)
    }

    /// Current number of members of `crowd`.
    pub fn crowd_len(&self, crowd: RtCrowdId) -> usize {
        self.core.lock().crowds[crowd.0].members.len()
    }

    /// Current number of waiters in `queue`.
    pub fn queue_len(&self, queue: RtQueueId) -> usize {
        self.core.lock().queues[queue.0].waiters.len()
    }

    /// Runs `body` with possession; panics if the serializer is poisoned.
    pub fn enter<R>(&self, ctx: &RtCtx, body: impl FnOnce(&RtSerializerCtx<'_, S>) -> R) -> R {
        match self.try_enter(ctx, body) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Runs `body` with possession, surfacing poisoning as a value; the
    /// body is not entered on a poisoned serializer.
    pub fn try_enter<R>(
        &self,
        ctx: &RtCtx,
        body: impl FnOnce(&RtSerializerCtx<'_, S>) -> R,
    ) -> Result<R, Poisoned> {
        ctx.chaos();
        self.acquire(ctx)?;
        let cleanup = PoisonOnUnwind { ser: self, ctx };
        let sc = RtSerializerCtx { ser: self, ctx };
        let r = body(&sc);
        std::mem::forget(cleanup);
        let mut s = self.core.lock();
        // Possession may have dissolved while the body waited in a queue
        // (poison broadcast); release only what we still hold.
        if s.holder == Some(ctx.pid()) {
            self.release_locked(&mut s);
        }
        Ok(r)
    }

    /// Whether a previous holder died inside the serializer.
    pub fn is_poisoned(&self) -> bool {
        self.core.lock().poisoned.is_some()
    }

    fn acquire(&self, ctx: &RtCtx) -> Result<(), Poisoned> {
        let mut s = self.core.lock();
        if let Some(p) = s.poisoned.clone() {
            drop(s);
            ctx.emit(&format!("poison-seen:{}", self.name), &[]);
            return Err(p);
        }
        if !s.busy {
            s.busy = true;
            s.holder = Some(ctx.pid());
            return Ok(());
        }
        let ticket = ctx.fresh_ticket();
        s.entry.push_back(ticket);
        match self.await_grant(&mut s, ctx.pid(), ticket) {
            Wake::Granted => Ok(()),
            Wake::Poison(p) => {
                drop(s);
                ctx.emit(&format!("poison-seen:{}", self.name), &[]);
                Err(p)
            }
        }
    }

    fn await_grant<'a>(
        &'a self,
        s: &mut MutexGuard<'a, SerState<S>>,
        pid: Pid,
        ticket: u64,
    ) -> Wake {
        loop {
            if s.granted.remove(&ticket) {
                s.holder = Some(pid);
                return Wake::Granted;
            }
            if s.poison_woken.remove(&ticket) {
                return Wake::Poison(s.poisoned.clone().expect("poison wake implies poison"));
            }
            self.cv.wait(s);
        }
    }

    /// Eligibility scan: the oldest candidate among eligible queue heads
    /// and the entry front. Returns the ticket plus the queue it heads
    /// (`None` = entrant).
    fn select_winner(&self, s: &SerState<S>) -> Option<(u64, Option<usize>)> {
        let queue_lens: Vec<usize> = s.queues.iter().map(|q| q.waiters.len()).collect();
        let crowd_lens: Vec<usize> = s.crowds.iter().map(|c| c.members.len()).collect();
        let data = self.data.lock();
        let view = RtGuardView {
            state: &*data,
            queue_lens: &queue_lens,
            crowd_lens: &crowd_lens,
        };
        let mut best: Option<(u64, Option<usize>)> = None;
        for (qi, q) in s.queues.iter().enumerate() {
            if let Some(head) = q.waiters.front() {
                if (head.guard)(&view) && best.map_or(true, |(t, _)| head.ticket < t) {
                    best = Some((head.ticket, Some(qi)));
                }
            }
        }
        if let Some(&ticket) = s.entry.front() {
            if best.map_or(true, |(t, _)| ticket < t) {
                best = Some((ticket, None));
            }
        }
        best
    }

    /// Hands possession to the next eligible candidate or frees it; the
    /// caller must currently hold possession.
    fn release_locked(&self, s: &mut SerState<S>) {
        s.holder = None;
        match self.select_winner(s) {
            Some((_, Some(qi))) => {
                let w = s.queues[qi]
                    .waiters
                    .pop_front()
                    .expect("winner heads queue");
                s.granted.insert(w.ticket);
                self.cv.notify_all();
            }
            Some((_, None)) => {
                let t = s.entry.pop_front().expect("winner is entry front");
                s.granted.insert(t);
                self.cv.notify_all();
            }
            None => s.busy = false,
        }
    }
}

/// Poisons the serializer if the holder's body unwinds; a no-op when the
/// process dies waiting in a queue or running in a crowd (it holds
/// nothing then — the queue/crowd unwind guards do that cleanup).
struct PoisonOnUnwind<'a, S: Send> {
    ser: &'a RtSerializer<S>,
    ctx: &'a RtCtx,
}

impl<S: Send> Drop for PoisonOnUnwind<'_, S> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        let mut s = self.ser.core.lock();
        if s.holder != Some(self.ctx.pid()) {
            return;
        }
        s.holder = None;
        s.busy = false;
        if s.poisoned.is_none() {
            s.poisoned = Some(Poisoned {
                primitive: self.ser.name.clone(),
                by: self.ctx.pid(),
            });
        }
        // Wake everyone without possession — entrants and every queued
        // guarantee — so they observe the poison instead of wedging.
        let mut woken: Vec<u64> = s.entry.drain(..).collect();
        for q in s.queues.iter_mut() {
            woken.extend(q.waiters.drain(..).map(|w| w.ticket));
        }
        s.poison_woken.extend(woken);
        // Emit while still holding the state lock: a survivor can only
        // observe the poison flag under this lock, so logging first
        // guarantees `poison:` precedes every `poison-seen:` in the trace.
        self.ctx.emit(&format!("poison:{}", self.ser.name), &[]);
        self.ser.cv.notify_all();
    }
}

/// Leaves the crowd if the crowd body unwinds, then re-runs guard
/// evaluation — a guarantee such as "the writers crowd is empty" may have
/// just become true with nobody inside to re-check it.
struct LeaveCrowdOnUnwind<'a, S: Send> {
    ser: &'a RtSerializer<S>,
    crowd: RtCrowdId,
    ctx: &'a RtCtx,
}

impl<S: Send> Drop for LeaveCrowdOnUnwind<'_, S> {
    fn drop(&mut self) {
        let me = self.ctx.pid();
        let mut s = self.ser.core.lock();
        let members = &mut s.crowds[self.crowd.0].members;
        if let Some(at) = members.iter().position(|&p| p == me) {
            members.remove(at);
        }
        if self.ctx.cancelling() {
            return;
        }
        // Claim possession on behalf of the dead member and hand it
        // straight to whoever became eligible; if someone is inside,
        // their release re-evaluates anyway.
        if !s.busy {
            s.busy = true;
            s.holder = Some(me);
            self.ser.release_locked(&mut s);
        }
    }
}

/// Capability to use a serializer from inside [`RtSerializer::enter`];
/// mirrors `bloom_serializer::SerializerCtx`.
pub struct RtSerializerCtx<'a, S> {
    ser: &'a RtSerializer<S>,
    ctx: &'a RtCtx,
}

impl<S: Send> RtSerializerCtx<'_, S> {
    /// Accesses the protected state.
    ///
    /// Unlike the simulator's `state` (whose `try_lock` can only fail on
    /// re-entrance), this blocks briefly if a concurrent guard evaluation
    /// holds the state; nested `state()` calls therefore deadlock instead
    /// of panicking — do not nest them.
    pub fn state<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.ser.data.lock())
    }

    /// The real-thread context of the process inside the serializer.
    pub fn ctx(&self) -> &RtCtx {
        self.ctx
    }

    /// Waits in `queue` until the caller heads it, `guard` holds, and
    /// possession is free — the Atkinson–Hewitt `enqueue` with a
    /// guarantee. Panics on a poison wake.
    pub fn enqueue(
        &self,
        queue: RtQueueId,
        guard: impl Fn(&RtGuardView<'_, S>) -> bool + Send + 'static,
    ) {
        self.enqueue_priority(queue, 0, guard);
    }

    /// Like [`RtSerializerCtx::enqueue`], surfacing a poison wake as a
    /// value. On `Err` the caller does *not* have possession and must
    /// leave the body promptly.
    pub fn enqueue_checked(
        &self,
        queue: RtQueueId,
        guard: impl Fn(&RtGuardView<'_, S>) -> bool + Send + 'static,
    ) -> Result<(), Poisoned> {
        self.enqueue_inner(queue, 0, Box::new(guard))
    }

    /// Priority enqueue (lower first, FIFO among equals); panics on a
    /// poison wake.
    pub fn enqueue_priority(
        &self,
        queue: RtQueueId,
        priority: i64,
        guard: impl Fn(&RtGuardView<'_, S>) -> bool + Send + 'static,
    ) {
        if let Err(p) = self.enqueue_inner(queue, priority, Box::new(guard)) {
            panic!("{p}");
        }
    }

    fn enqueue_inner(
        &self,
        queue: RtQueueId,
        priority: i64,
        guard: Guard<S>,
    ) -> Result<(), Poisoned> {
        self.ctx.chaos();
        let ticket = self.ctx.fresh_ticket();
        let mut s = self.ser.core.lock();
        Self::insert_waiter(&mut s, queue, ticket, priority, guard);
        // Releasing possession may select *us* (the oldest eligible
        // head); then we take our entry back and keep possession.
        if self.hand_off_maybe_self(&mut s, queue, ticket) {
            return Ok(());
        }
        match self.ser.await_grant(&mut s, self.ctx.pid(), ticket) {
            Wake::Granted => Ok(()),
            Wake::Poison(p) => {
                drop(s);
                self.ctx
                    .emit(&format!("poison-seen:{}", self.ser.name), &[]);
                Err(p)
            }
        }
    }

    /// Timed enqueue against a virtual-tick [`Deadline`]: `true` if the
    /// guarantee was met, `false` on timeout (after which possession has
    /// been re-acquired, so the caller can handle the failure inside the
    /// serializer). An expired deadline gives up immediately, keeping
    /// possession.
    pub fn enqueue_by(
        &self,
        queue: RtQueueId,
        deadline: impl Into<Deadline>,
        guard: impl Fn(&RtGuardView<'_, S>) -> bool + Send + 'static,
    ) -> bool {
        self.ctx.chaos();
        let Some(budget) = self.ctx.wall_budget(deadline) else {
            return false;
        };
        let start = std::time::Instant::now();
        let ticket = self.ctx.fresh_ticket();
        let mut s = self.ser.core.lock();
        Self::insert_waiter(&mut s, queue, ticket, 0, Box::new(guard));
        if self.hand_off_maybe_self(&mut s, queue, ticket) {
            return true;
        }
        loop {
            if s.granted.remove(&ticket) {
                s.holder = Some(self.ctx.pid());
                return true;
            }
            if s.poison_woken.remove(&ticket) {
                // Mirror the simulator: a poison broadcast reads as a
                // wake; the enclosing `try_enter` skips the release.
                return true;
            }
            let elapsed = start.elapsed();
            if elapsed >= budget {
                // Withdraw (settled under the lock — if a grant raced us
                // it was caught above) and re-enter as a fresh entrant.
                s.queues[queue.0].waiters.retain(|w| w.ticket != ticket);
                if !s.busy {
                    s.busy = true;
                    s.holder = Some(self.ctx.pid());
                    return false;
                }
                s.entry.push_back(ticket);
                return match self.ser.await_grant(&mut s, self.ctx.pid(), ticket) {
                    Wake::Granted | Wake::Poison(_) => false,
                };
            }
            self.ser.cv.wait_for(&mut s, budget - elapsed);
        }
    }

    fn insert_waiter(
        s: &mut SerState<S>,
        queue: RtQueueId,
        ticket: u64,
        priority: i64,
        guard: Guard<S>,
    ) {
        let waiters = &mut s.queues[queue.0].waiters;
        let at = waiters
            .iter()
            .position(|w| (w.priority, w.ticket) > (priority, ticket))
            .unwrap_or(waiters.len());
        waiters.insert(
            at,
            SWaiter {
                ticket,
                priority,
                guard,
            },
        );
    }

    /// Releases possession after self-enqueueing; returns `true` if the
    /// caller itself won the hand-off and keeps possession.
    fn hand_off_maybe_self(&self, s: &mut SerState<S>, queue: RtQueueId, ticket: u64) -> bool {
        if let Some((t, Some(qi))) = self.ser.select_winner(s) {
            if qi == queue.0 && t == ticket {
                s.queues[qi].waiters.pop_front();
                return true; // still the holder; busy stays true
            }
        }
        self.ser.release_locked(s);
        false
    }

    /// Joins `crowd`, releases possession, runs `body` outside the
    /// serializer (concurrently with other crowd members), then re-enters
    /// and leaves the crowd. A body that dies leaves the crowd during the
    /// unwind and re-triggers guard evaluation.
    pub fn join_crowd<R>(&self, crowd: RtCrowdId, body: impl FnOnce() -> R) -> R {
        self.ctx.chaos();
        {
            let mut s = self.ser.core.lock();
            s.crowds[crowd.0].members.push(self.ctx.pid());
            self.ser.release_locked(&mut s);
        }
        let cleanup = LeaveCrowdOnUnwind {
            ser: self.ser,
            crowd,
            ctx: self.ctx,
        };
        let r = body();
        // Re-enter before leaving the crowd, like the simulator. A poison
        // while we were in the crowd surfaces here as a panic (the plain
        // entry points stay loud).
        if let Err(p) = self.ser.acquire(self.ctx) {
            // The unwind guard removes the membership.
            panic!("{p}");
        }
        std::mem::forget(cleanup);
        let mut s = self.ser.core.lock();
        let members = &mut s.crowds[crowd.0].members;
        let at = members
            .iter()
            .position(|&p| p == self.ctx.pid())
            .expect("leave_crowd: caller not a member");
        members.remove(at);
        r
    }

    /// Number of members currently in `crowd`.
    pub fn crowd_len(&self, crowd: RtCrowdId) -> usize {
        self.ser.core.lock().crowds[crowd.0].members.len()
    }

    /// Whether `crowd` is empty.
    pub fn crowd_is_empty(&self, crowd: RtCrowdId) -> bool {
        self.crowd_len(crowd) == 0
    }

    /// Number of waiters in `queue`.
    pub fn queue_len(&self, queue: RtQueueId) -> usize {
        self.ser.core.lock().queues[queue.0].waiters.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{KillPoint, RtConfig, RtSim};
    use std::sync::Arc;
    use std::time::Duration;

    /// Readers–writers with reader priority: the canonical serializer
    /// shape from the paper. Readers join a crowd; writers enqueue with
    /// the guarantee that both crowds are empty.
    #[test]
    fn readers_overlap_and_writers_are_exclusive() {
        let mut rt = RtSim::new();
        let ser = Arc::new(RtSerializer::new("rw", ()));
        let rq = ser.queue("readq");
        let wq = ser.queue("writeq");
        let rc = ser.crowd("readers");
        let wc = ser.crowd("writers");
        let occupancy = Arc::new(Mutex::new((0i32, 0i32, 0i32))); // (readers, writers, max_readers)

        for i in 0..4 {
            let ser = Arc::clone(&ser);
            let occ = Arc::clone(&occupancy);
            rt.spawn(&format!("reader{i}"), move |ctx| {
                for _ in 0..10 {
                    ser.enter(ctx, |sc| {
                        sc.enqueue(rq, move |v| v.crowd_is_empty(wc));
                        sc.join_crowd(rc, || {
                            let mut o = occ.lock();
                            assert_eq!(o.1, 0, "reader overlapped a writer");
                            o.0 += 1;
                            o.2 = o.2.max(o.0);
                            drop(o);
                            std::thread::sleep(Duration::from_micros(200));
                            occ.lock().0 -= 1;
                        });
                    });
                }
            });
        }
        for i in 0..2 {
            let ser = Arc::clone(&ser);
            let occ = Arc::clone(&occupancy);
            rt.spawn(&format!("writer{i}"), move |ctx| {
                for _ in 0..6 {
                    ser.enter(ctx, |sc| {
                        sc.enqueue(wq, move |v| v.crowd_is_empty(rc) && v.crowd_is_empty(wc));
                        sc.join_crowd(wc, || {
                            let mut o = occ.lock();
                            assert_eq!(o.0, 0, "writer overlapped readers");
                            assert_eq!(o.1, 0, "two writers inside");
                            o.1 += 1;
                            drop(o);
                            std::thread::sleep(Duration::from_micros(200));
                            occ.lock().1 -= 1;
                        });
                    });
                }
            });
        }
        rt.run().expect("no wedge");
    }

    #[test]
    fn enqueue_by_times_out_and_regains_possession() {
        let mut rt = RtSim::new();
        let ser = Arc::new(RtSerializer::new("s", false));
        let q = ser.queue("q");
        let ser1 = Arc::clone(&ser);
        rt.spawn("p", move |ctx| {
            ser1.enter(ctx, |sc| {
                // Guarantee can never hold; 5-tick budget.
                assert!(!sc.enqueue_by(q, 5u64, |v| *v.state()));
                // Timed out — but we must be back in possession.
                sc.state(|s| *s = true);
            });
        });
        rt.run().expect("no wedge");
        assert_eq!(ser.queue_len(q), 0, "withdrawal removed the waiter");
    }

    #[test]
    fn poisoned_serializer_wakes_queue_waiters() {
        let mut rt = RtSim::with_config(RtConfig {
            kill: Some(KillPoint {
                process: "victim".into(),
                at_point: 2,
            }),
            ..RtConfig::default()
        });
        let ser = Arc::new(RtSerializer::new("s", ()));
        let q = ser.queue("q");

        let ser1 = Arc::clone(&ser);
        rt.spawn("waiter", move |ctx| {
            let r = ser1.try_enter(ctx, |sc| sc.enqueue_checked(q, |_| false));
            match r {
                Err(_) | Ok(Err(_)) => {}
                Ok(Ok(())) => panic!("an always-false guarantee cannot be met"),
            }
        });

        let ser2 = Arc::clone(&ser);
        rt.spawn("victim", move |ctx| {
            std::thread::sleep(Duration::from_millis(15)); // let the waiter park
            let _ = ser2.try_enter(ctx, |sc| sc.ctx().chaos());
        });

        let report = rt.run().expect("kill is contained");
        assert_eq!(report.trace.count_user("poison:s"), 1);
        assert!(ser.is_poisoned());
    }

    #[test]
    fn crowd_member_death_reevaluates_guards() {
        // A waiter's guarantee is "the crowd is empty"; the only member
        // dies inside the crowd. The unwind must re-run guard evaluation
        // or the waiter wedges.
        let mut rt = RtSim::with_config(RtConfig {
            kill: Some(KillPoint {
                process: "member".into(),
                at_point: 4, // enter, enqueue, join_crowd, then inside the body
            }),
            ..RtConfig::default()
        });
        let ser = Arc::new(RtSerializer::new("s", ()));
        let q = ser.queue("q");
        let c = ser.crowd("c");

        let ser1 = Arc::clone(&ser);
        rt.spawn("member", move |ctx| {
            ser1.enter(ctx, |sc| {
                sc.enqueue(q, |_| true);
                sc.join_crowd(c, || {
                    std::thread::sleep(Duration::from_millis(20));
                    ctx.chaos(); // dies here, inside the crowd
                });
            });
        });

        let ser2 = Arc::clone(&ser);
        rt.spawn("waiter", move |ctx| {
            std::thread::sleep(Duration::from_millis(5)); // arrive second
            ser2.enter(ctx, |sc| {
                sc.enqueue(q, move |v| v.crowd_is_empty(c));
                assert_eq!(sc.crowd_len(c), 0, "guarantee holds on grant");
            });
        });

        let report = rt.run().expect("no wedge");
        assert_eq!(report.processes[0].status, bloom_sim::ProcessStatus::Killed);
        assert_eq!(ser.crowd_len(c), 0);
    }
}
