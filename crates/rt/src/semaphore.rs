//! Real-thread counting semaphores, binary semaphores, and the poisoning
//! [`RtLock`] — mirrors `bloom-semaphore` operation for operation.
//!
//! The simulator crate gets check-then-park atomicity for free from the
//! one-running-process invariant; here each semaphore is one explicit
//! `Mutex<SemState>` + broadcast `Condvar`. The strong discipline keeps
//! its no-barging guarantee by *direct hand-off*: `v` moves the permit
//! into a per-waiter `granted` set rather than back into the count, so a
//! barger calling `try_p` between the hand-off and the waiter's wake-up
//! finds nothing to steal — the same property the simulator's
//! `WaitQueue::wake_one` hand-off provides.

use crate::runtime::RtCtx;
use bloom_sim::{Deadline, Poisoned};
use parking_lot::{Condvar, Mutex};
use std::collections::{HashSet, VecDeque};

/// Outcome of a timed acquire ([`RtSemaphore::p_by`]); mirrors
/// `bloom_semaphore::TryResult`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryResult {
    /// A permit was obtained.
    Acquired,
    /// The timeout elapsed without obtaining a permit.
    TimedOut,
}

/// Wake-up discipline; mirrors `bloom_semaphore::Fairness`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fairness {
    Strong,
    Weak,
}

struct SemState {
    count: u64,
    /// Arrival-ordered tickets of parked strong-mode waiters.
    queue: VecDeque<u64>,
    /// Tickets whose permit has been handed off but not yet collected.
    granted: HashSet<u64>,
}

/// A counting semaphore on OS threads.
pub struct RtSemaphore {
    state: Mutex<SemState>,
    cv: Condvar,
    fairness: Fairness,
    name: String,
}

impl RtSemaphore {
    fn new(name: &str, initial: u64, fairness: Fairness) -> Self {
        RtSemaphore {
            state: Mutex::new(SemState {
                count: initial,
                queue: VecDeque::new(),
                granted: HashSet::new(),
            }),
            cv: Condvar::new(),
            fairness,
            name: name.to_string(),
        }
    }

    /// A strong (FIFO direct-hand-off, no barging) semaphore.
    pub fn strong(name: &str, initial: u64) -> Self {
        RtSemaphore::new(name, initial, Fairness::Strong)
    }

    /// A weak (re-contention, barging-prone) semaphore.
    pub fn weak(name: &str, initial: u64) -> Self {
        RtSemaphore::new(name, initial, Fairness::Weak)
    }

    /// Dijkstra's P: decrement the count, blocking while it is zero.
    pub fn p(&self, ctx: &RtCtx) {
        ctx.chaos();
        let mut s = self.state.lock();
        match self.fairness {
            Fairness::Strong => {
                if s.count > 0 {
                    s.count -= 1;
                    return;
                }
                let ticket = ctx.fresh_ticket();
                s.queue.push_back(ticket);
                while !s.granted.remove(&ticket) {
                    self.cv.wait(&mut s);
                }
            }
            Fairness::Weak => {
                while s.count == 0 {
                    self.cv.wait(&mut s);
                }
                s.count -= 1;
            }
        }
    }

    /// Non-blocking P. Takes `ctx` (unlike the simulator's bare `try_p`)
    /// so the attempt is an instrumented chaos point.
    pub fn try_p(&self, ctx: &RtCtx) -> bool {
        ctx.chaos();
        let mut s = self.state.lock();
        if s.count > 0 {
            s.count -= 1;
            true
        } else {
            false
        }
    }

    /// Timed P against a virtual-tick [`Deadline`], mapped to a bounded
    /// wall-clock budget by [`RtCtx::wall_budget`].
    ///
    /// One behavioral delta from the simulator, sound in the envelope
    /// sense: a strong waiter whose budget expires in the same instant a
    /// hand-off arrives *accepts* the permit (the grant is already
    /// recorded under the mutex; refusing it would have to re-route a
    /// permit the releaser believes delivered). The simulator reports
    /// `TimedOut` on that knife-edge; both outcomes are legal runs.
    pub fn p_by(&self, ctx: &RtCtx, deadline: impl Into<Deadline>) -> TryResult {
        ctx.chaos();
        let Some(budget) = ctx.wall_budget(deadline) else {
            return if self.try_p(ctx) {
                TryResult::Acquired
            } else {
                TryResult::TimedOut
            };
        };
        let start = std::time::Instant::now();
        let mut s = self.state.lock();
        match self.fairness {
            Fairness::Strong => {
                if s.count > 0 {
                    s.count -= 1;
                    return TryResult::Acquired;
                }
                let ticket = ctx.fresh_ticket();
                s.queue.push_back(ticket);
                loop {
                    if s.granted.remove(&ticket) {
                        return TryResult::Acquired;
                    }
                    let elapsed = start.elapsed();
                    if elapsed >= budget {
                        // Withdraw. The grant/timeout race is settled here
                        // under the mutex: either our ticket is still in
                        // the queue (no grant happened — remove it), or it
                        // was granted while we raced for the lock (take it).
                        if s.granted.remove(&ticket) {
                            return TryResult::Acquired;
                        }
                        s.queue.retain(|&t| t != ticket);
                        return TryResult::TimedOut;
                    }
                    self.cv.wait_for(&mut s, budget - elapsed);
                }
            }
            Fairness::Weak => loop {
                if s.count > 0 {
                    s.count -= 1;
                    return TryResult::Acquired;
                }
                let elapsed = start.elapsed();
                if elapsed >= budget {
                    return TryResult::TimedOut;
                }
                self.cv.wait_for(&mut s, budget - elapsed);
            },
        }
    }

    /// Runs `f` with a permit held, releasing it even if `f` unwinds —
    /// the crash-safe structured entry point.
    pub fn with_permit<R>(&self, ctx: &RtCtx, f: impl FnOnce() -> R) -> R {
        self.p(ctx);
        let cleanup = ReleaseOnUnwind { sem: self, ctx };
        let r = f();
        std::mem::forget(cleanup);
        self.v(ctx);
        r
    }

    /// Dijkstra's V: release a permit.
    pub fn v(&self, ctx: &RtCtx) {
        // Jitter-only: a release must be kill-atomic (see
        // [`RtCtx::jitter`]) — dying here would strand the permit with no
        // crash guard left to poison it, a coordinate the simulator's
        // kills cannot express.
        ctx.jitter();
        let mut s = self.state.lock();
        match self.fairness {
            Fairness::Strong => {
                if let Some(ticket) = s.queue.pop_front() {
                    // Direct hand-off: the permit never becomes visible
                    // to bargers.
                    s.granted.insert(ticket);
                    self.cv.notify_all();
                } else {
                    s.count += 1;
                }
            }
            Fairness::Weak => {
                s.count += 1;
                self.cv.notify_all();
            }
        }
    }

    /// Permits immediately available.
    pub fn value(&self) -> u64 {
        self.state.lock().count
    }

    /// Parked strong-mode waiters (weak waiters re-contend and are not
    /// individually registered).
    pub fn waiting(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// The diagnostic name this semaphore was created with.
    pub fn name(&self) -> &str {
        &self.name
    }
}

struct ReleaseOnUnwind<'a> {
    sem: &'a RtSemaphore,
    ctx: &'a RtCtx,
}

impl Drop for ReleaseOnUnwind<'_> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        self.sem.v(self.ctx);
    }
}

/// Mutual exclusion with poisoning, mirroring `bloom_semaphore::Lock`:
/// a body that unwinds marks the lock poisoned (first writer wins),
/// emits `poison:<name>`, and releases so waiters wake; later entrants
/// observe `poison-seen:<name>` and get [`Poisoned`] back.
pub struct RtLock {
    sem: RtSemaphore,
    poisoned: Mutex<Option<Poisoned>>,
}

impl RtLock {
    /// Creates an open lock.
    pub fn new(name: &str) -> Self {
        RtLock {
            sem: RtSemaphore::strong(name, 1),
            poisoned: Mutex::new(None),
        }
    }

    /// Runs `f` with the lock held; panics if the lock is poisoned.
    pub fn with<R>(&self, ctx: &RtCtx, f: impl FnOnce() -> R) -> R {
        match self.try_with(ctx, f) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Runs `f` with the lock held, surfacing poisoning as a value; the
    /// body is not entered on a poisoned lock.
    pub fn try_with<R>(&self, ctx: &RtCtx, f: impl FnOnce() -> R) -> Result<R, Poisoned> {
        self.sem.p(ctx);
        if let Some(p) = self.poisoned.lock().clone() {
            ctx.emit(&format!("poison-seen:{}", self.name()), &[]);
            self.sem.v(ctx);
            return Err(p);
        }
        let cleanup = PoisonOnUnwind { lock: self, ctx };
        let r = f();
        std::mem::forget(cleanup);
        self.sem.v(ctx);
        Ok(r)
    }

    /// Whether a previous holder died inside a closure section.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.lock().is_some()
    }

    /// The diagnostic name this lock was created with.
    pub fn name(&self) -> &str {
        self.sem.name()
    }
}

struct PoisonOnUnwind<'a> {
    lock: &'a RtLock,
    ctx: &'a RtCtx,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        {
            // First writer wins: a waiter that entered, saw no poison,
            // and then unwound must not overwrite the original culprit.
            let mut p = self.lock.poisoned.lock();
            if p.is_none() {
                *p = Some(Poisoned {
                    primitive: self.lock.name().to_string(),
                    by: self.ctx.pid(),
                });
            }
            // Emit while still holding the poison lock: observers read the
            // flag under this lock, so logging first guarantees `poison:`
            // precedes every `poison-seen:` in the trace.
            self.ctx.emit(&format!("poison:{}", self.lock.name()), &[]);
        }
        self.lock.sem.v(self.ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{KillPoint, RtConfig, RtSim};
    use std::sync::Arc;

    #[test]
    fn strong_semaphore_enforces_exclusion_on_real_threads() {
        let mut rt = RtSim::new();
        let sem = Arc::new(RtSemaphore::strong("cs", 1));
        let occ = Arc::new(Mutex::new((0u32, 0u32)));
        for i in 0..4 {
            let sem = Arc::clone(&sem);
            let occ = Arc::clone(&occ);
            rt.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..25 {
                    sem.p(ctx);
                    {
                        let mut o = occ.lock();
                        o.0 += 1;
                        o.1 = o.1.max(o.0);
                    }
                    ctx.chaos();
                    occ.lock().0 -= 1;
                    sem.v(ctx);
                }
            });
        }
        rt.run().expect("no wedge");
        assert_eq!(occ.lock().1, 1, "mutual exclusion held");
    }

    #[test]
    fn weak_semaphore_enforces_exclusion_on_real_threads() {
        let mut rt = RtSim::new();
        let sem = Arc::new(RtSemaphore::weak("cs", 2));
        let occ = Arc::new(Mutex::new((0u32, 0u32)));
        for i in 0..5 {
            let sem = Arc::clone(&sem);
            let occ = Arc::clone(&occ);
            rt.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..25 {
                    sem.p(ctx);
                    {
                        let mut o = occ.lock();
                        o.0 += 1;
                        o.1 = o.1.max(o.0);
                    }
                    occ.lock().0 -= 1;
                    sem.v(ctx);
                }
            });
        }
        rt.run().expect("no wedge");
        assert!(occ.lock().1 <= 2, "permit bound held");
    }

    #[test]
    fn strong_hand_off_defeats_a_barger() {
        // Waiter parks on an empty semaphore; releaser v's; a barger
        // hammering try_p must never intercept the handed-off permit.
        let mut rt = RtSim::new();
        let sem = Arc::new(RtSemaphore::strong("s", 0));
        let got = Arc::new(Mutex::new(Vec::new()));

        let sem1 = Arc::clone(&sem);
        let got1 = Arc::clone(&got);
        rt.spawn("waiter", move |ctx| {
            sem1.p(ctx);
            got1.lock().push("waiter");
        });

        let sem2 = Arc::clone(&sem);
        rt.spawn("releaser", move |ctx| {
            // Give the waiter real time to park.
            std::thread::sleep(std::time::Duration::from_millis(20));
            sem2.v(ctx);
        });

        let sem3 = Arc::clone(&sem);
        let got3 = Arc::clone(&got);
        rt.spawn("barger", move |ctx| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_millis(60);
            while std::time::Instant::now() < deadline {
                if sem3.try_p(ctx) {
                    got3.lock().push("barger");
                    sem3.v(ctx);
                }
            }
        });

        rt.run().expect("no wedge");
        let got = got.lock();
        assert!(got.contains(&"waiter"), "hand-off reached the waiter");
        assert!(!got.contains(&"barger"), "barger never saw the permit");
    }

    #[test]
    fn p_by_times_out_and_withdraws() {
        let mut rt = RtSim::new();
        let sem = Arc::new(RtSemaphore::strong("s", 0));
        let sem1 = Arc::clone(&sem);
        rt.spawn("requester", move |ctx| {
            assert_eq!(sem1.p_by(ctx, 5u64), TryResult::TimedOut);
            assert_eq!(sem1.waiting(), 0, "withdrawal left no registration");
        });
        rt.run().expect("no wedge");
        assert_eq!(sem.value(), 0, "count balanced");
    }

    #[test]
    fn p_by_acquires_when_released_in_time() {
        let mut rt = RtSim::new();
        let sem = Arc::new(RtSemaphore::strong("s", 0));
        let sem1 = Arc::clone(&sem);
        rt.spawn("requester", move |ctx| {
            // 5000 ticks * 200µs = 1s budget; release comes in ~10ms.
            assert_eq!(sem1.p_by(ctx, 5000u64), TryResult::Acquired);
        });
        let sem2 = Arc::clone(&sem);
        rt.spawn("releaser", move |ctx| {
            std::thread::sleep(std::time::Duration::from_millis(10));
            sem2.v(ctx);
        });
        rt.run().expect("no wedge");
    }

    #[test]
    fn with_permit_releases_on_kill() {
        let mut rt = RtSim::with_config(RtConfig {
            kill: Some(KillPoint {
                process: "victim".into(),
                at_point: 2, // the chaos point inside the section body
            }),
            ..RtConfig::default()
        });
        let sem = Arc::new(RtSemaphore::strong("s", 1));
        let sem1 = Arc::clone(&sem);
        rt.spawn("victim", move |ctx| {
            // Point 1 is p()'s entry; point 2 (fatal) is ours.
            sem1.with_permit(ctx, || ctx.chaos());
        });
        let sem2 = Arc::clone(&sem);
        rt.spawn("survivor", move |ctx| {
            sem2.p(ctx); // must not wedge behind the dead holder
            sem2.v(ctx);
        });
        let report = rt.run().expect("kill is contained");
        assert_eq!(report.processes[0].status, bloom_sim::ProcessStatus::Killed);
    }

    #[test]
    fn lock_poisons_on_kill_and_survivors_see_it() {
        let mut rt = RtSim::with_config(RtConfig {
            kill: Some(KillPoint {
                process: "victim".into(),
                at_point: 2,
            }),
            ..RtConfig::default()
        });
        let lock = Arc::new(RtLock::new("l"));
        let lock1 = Arc::clone(&lock);
        rt.spawn("victim", move |ctx| {
            let _ = lock1.try_with(ctx, || ctx.chaos());
        });
        let lock2 = Arc::clone(&lock);
        rt.spawn("survivor", move |ctx| {
            // Retry until the victim's poison lands (it may not have
            // entered yet on the first attempt).
            loop {
                match lock2.try_with(ctx, || ()) {
                    Err(_) => break,
                    Ok(()) => std::thread::sleep(std::time::Duration::from_millis(1)),
                }
            }
        });
        let report = rt.run().expect("kill is contained");
        assert_eq!(report.trace.count_user("poison:l"), 1);
        assert!(report.trace.count_user("poison-seen:l") >= 1);
        assert!(lock.is_poisoned());
    }
}
