//! Real-thread path expressions — the `bloom_pathexpr::PathResource`
//! runtime re-implemented on OS threads.
//!
//! The path *language* is not duplicated: grammar, compilation, and the
//! token-machine `take`/`put` semantics come from
//! `bloom_pathexpr::backend`, so both backends are constrained by the
//! same compiled machines and a conformance divergence can only come
//! from the runtime (blocking, FIFO selection, poisoning) — which is
//! exactly what the differential suite is meant to exercise.
//!
//! The runtime is the standard single-mutex state machine of this crate:
//! one `Mutex<Machine>` holding every path's token state plus the global
//! FIFO of blocked requests, one broadcast condvar, and a `granted`
//! ticket set for direct hand-off. As everywhere in `bloom-rt`, a
//! timed-out request that finds a grant already issued *accepts* it —
//! settled under the machine mutex — rather than withdrawing, which is
//! the documented envelope delta from the simulator's `drain_startable`
//! parked-only guard.

use crate::runtime::RtCtx;
use bloom_pathexpr::backend::{compile, CompiledPath, PathState};
use bloom_pathexpr::{parse_paths, ParseError, Path};
use bloom_sim::{Pid, Poisoned};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::time::Instant;

/// The occurrence choice made in each path when an operation started;
/// needed again at exit to apply the matching put ports.
type Activation = Vec<(usize, usize)>;

#[derive(Debug)]
struct Blocked {
    ticket: u64,
    pid: Pid,
    op: String,
}

/// Synchronization-state snapshot passed to version-3 predicates —
/// mirror of `bloom_pathexpr::PredicateView` for the real-thread
/// backend. Predicates run under the machine mutex: they must not call
/// back into the resource.
#[derive(Debug)]
pub struct RtPredicateView<'a> {
    active: &'a BTreeMap<String, usize>,
    blocked: &'a VecDeque<Blocked>,
    completed: &'a BTreeMap<String, u64>,
    vars: &'a BTreeMap<String, i64>,
}

impl RtPredicateView<'_> {
    /// Executions of `op` currently in progress.
    pub fn active(&self, op: &str) -> usize {
        self.active.get(op).copied().unwrap_or(0)
    }

    /// Requests for `op` currently blocked.
    pub fn blocked(&self, op: &str) -> usize {
        self.blocked.iter().filter(|b| b.op == op).count()
    }

    /// Executions of `op` completed so far (history information).
    pub fn completed(&self, op: &str) -> u64 {
        self.completed.get(op).copied().unwrap_or(0)
    }

    /// A state variable's value (0 if never written).
    pub fn var(&self, name: &str) -> i64 {
        self.vars.get(name).copied().unwrap_or(0)
    }
}

type Predicate = Box<dyn Fn(&RtPredicateView<'_>) -> bool + Send>;
type VarUpdate = Box<dyn Fn(&mut BTreeMap<String, i64>) + Send>;

struct Machine {
    compiled: Vec<CompiledPath>,
    states: Vec<PathState>,
    /// Global FIFO of blocked requests, in arrival-ticket order.
    blocked: VecDeque<Blocked>,
    /// Stack of open activations per process (operations nest).
    open: HashMap<Pid, Vec<(String, Activation)>>,
    active: BTreeMap<String, usize>,
    completed: BTreeMap<String, u64>,
    vars: BTreeMap<String, i64>,
    predicates: HashMap<String, Vec<Predicate>>,
    on_enter: HashMap<String, Vec<VarUpdate>>,
    on_exit: HashMap<String, Vec<VarUpdate>>,
    /// Set when a process died mid-operation; sticky once set.
    poisoned: Option<Poisoned>,
    /// Tickets whose request a waker started (enter applied, activation
    /// recorded); the parked thread collects and returns.
    granted: HashSet<u64>,
    /// Tickets woken by a poison broadcast instead of a grant.
    poison_woken: HashSet<u64>,
}

impl Machine {
    /// Finds an enabled occurrence in every path that names `op`, subject
    /// to the operation's v3 predicates.
    fn try_activation(&self, op: &str) -> Option<Activation> {
        if let Some(preds) = self.predicates.get(op) {
            let view = RtPredicateView {
                active: &self.active,
                blocked: &self.blocked,
                completed: &self.completed,
                vars: &self.vars,
            };
            if !preds.iter().all(|p| p(&view)) {
                return None;
            }
        }
        let mut act = Vec::new();
        for (pi, compiled) in self.compiled.iter().enumerate() {
            if let Some(occs) = compiled.occurrences.get(op) {
                let state = &self.states[pi];
                let choice = occs
                    .iter()
                    .position(|occ| state.can_take(compiled, occ.take))?;
                act.push((pi, choice));
            }
        }
        Some(act)
    }

    fn apply_enter(&mut self, op: &str, act: &Activation) {
        for &(pi, oi) in act {
            let occ = self.compiled[pi].occurrences[op][oi];
            self.states[pi].take(&self.compiled[pi], occ.take);
        }
        *self.active.entry(op.to_string()).or_insert(0) += 1;
        if let Some(updates) = self.on_enter.get(op) {
            for update in updates {
                update(&mut self.vars);
            }
        }
    }

    fn apply_exit(&mut self, op: &str, act: &Activation) {
        for &(pi, oi) in act {
            let occ = self.compiled[pi].occurrences[op][oi];
            self.states[pi].put(&self.compiled[pi], occ.put);
        }
        let n = self
            .active
            .get_mut(op)
            .expect("exit of op that never started");
        *n -= 1;
        *self.completed.entry(op.to_string()).or_insert(0) += 1;
        if let Some(updates) = self.on_exit.get(op) {
            for update in updates {
                update(&mut self.vars);
            }
        }
    }

    /// Starts every blocked request that has become startable, oldest
    /// first, restarting the scan after each start (starting one request —
    /// e.g. opening a burst — can enable another). Grants are handed off
    /// directly: the enter effects are applied *here* and the ticket put
    /// in `granted`, so the woken thread owns a started activation the
    /// moment it observes the grant.
    fn drain_startable(&mut self) -> bool {
        let mut any = false;
        loop {
            let found = self
                .blocked
                .iter()
                .enumerate()
                .find_map(|(i, b)| self.try_activation(&b.op).map(|act| (i, act)));
            match found {
                Some((i, act)) => {
                    let b = self.blocked.remove(i).expect("index valid");
                    self.apply_enter(&b.op, &act);
                    self.open.entry(b.pid).or_default().push((b.op, act));
                    self.granted.insert(b.ticket);
                    any = true;
                }
                None => return any,
            }
        }
    }
}

/// A shared resource whose synchronization is specified by path
/// expressions, on OS threads; mirrors `bloom_pathexpr::PathResource`
/// (see its docs for the model — conjunction of paths, longest-waiting
/// selection, crash poisoning).
pub struct RtPathResource {
    name: String,
    machine: Mutex<Machine>,
    cv: Condvar,
}

enum Wake {
    Granted,
    Poison(Poisoned),
}

impl RtPathResource {
    /// Builds a resource from already-parsed paths.
    pub fn from_paths(name: &str, paths: &[Path]) -> Self {
        let compiled: Vec<CompiledPath> = paths.iter().map(compile).collect();
        let states = compiled.iter().map(PathState::new).collect();
        RtPathResource {
            name: name.to_string(),
            machine: Mutex::new(Machine {
                compiled,
                states,
                blocked: VecDeque::new(),
                open: HashMap::new(),
                active: BTreeMap::new(),
                completed: BTreeMap::new(),
                vars: BTreeMap::new(),
                predicates: HashMap::new(),
                on_enter: HashMap::new(),
                on_exit: HashMap::new(),
                poisoned: None,
                granted: HashSet::new(),
                poison_woken: HashSet::new(),
            }),
            cv: Condvar::new(),
        }
    }

    /// Parses one or more `path … end` declarations and builds the
    /// resource.
    pub fn parse(name: &str, source: &str) -> Result<Self, ParseError> {
        Ok(RtPathResource::from_paths(name, &parse_paths(source)?))
    }

    /// The resource's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Executes `body` as operation `op`, blocking until every path
    /// naming `op` permits it to start. Panics if the resource is
    /// poisoned; see [`RtPathResource::try_perform`].
    pub fn perform<R>(&self, ctx: &RtCtx, op: &str, body: impl FnOnce() -> R) -> R {
        match self.try_perform(ctx, op, body) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`RtPathResource::perform`], but surfaces poisoning as a
    /// value instead of panicking.
    pub fn try_perform<R>(
        &self,
        ctx: &RtCtx,
        op: &str,
        body: impl FnOnce() -> R,
    ) -> Result<R, Poisoned> {
        self.begin_checked(ctx, op)?;
        // From here we hold an activation: dying inside the body leaves
        // tokens consumed forever, so the unwind must poison the resource.
        let cleanup = PoisonOnUnwind { res: self, ctx };
        let r = body();
        std::mem::forget(cleanup);
        self.finish(ctx, op);
        Ok(r)
    }

    /// Starts operation `op` (the first half of
    /// [`RtPathResource::perform`]). The `begin`/`finish` form has no
    /// crash protection for the operation body. Panics on poison.
    pub fn begin(&self, ctx: &RtCtx, op: &str) {
        if let Err(p) = self.begin_checked(ctx, op) {
            panic!("{p}");
        }
    }

    fn begin_checked(&self, ctx: &RtCtx, op: &str) -> Result<(), Poisoned> {
        ctx.chaos();
        let mut m = self.machine.lock();
        if let Some(p) = m.poisoned.clone() {
            ctx.emit(&format!("poison-seen:{}", self.name), &[]);
            return Err(p);
        }
        if let Some(act) = m.try_activation(op) {
            m.apply_enter(op, &act);
            m.open
                .entry(ctx.pid())
                .or_default()
                .push((op.to_string(), act));
            // Starting can enable blocked peers (opening a burst).
            if m.drain_startable() {
                self.cv.notify_all();
            }
            return Ok(());
        }
        let ticket = ctx.fresh_ticket();
        m.blocked.push_back(Blocked {
            ticket,
            pid: ctx.pid(),
            op: op.to_string(),
        });
        match self.await_wake(&mut m, ticket) {
            Wake::Granted => Ok(()),
            Wake::Poison(p) => {
                ctx.emit(&format!("poison-seen:{}", self.name), &[]);
                Err(p)
            }
        }
    }

    /// Parks until the ticket is granted or poison-woken.
    fn await_wake<'a>(&'a self, m: &mut MutexGuard<'a, Machine>, ticket: u64) -> Wake {
        loop {
            if m.granted.remove(&ticket) {
                return Wake::Granted;
            }
            if m.poison_woken.remove(&ticket) {
                let p = m
                    .poisoned
                    .clone()
                    .expect("poison wake without a poison verdict");
                return Wake::Poison(p);
            }
            self.cv.wait(m);
        }
    }

    /// Timed [`RtPathResource::begin`]: requests `op`, giving up at
    /// `deadline` (virtual ticks, mapped to a wall-clock budget). Returns
    /// `true` if the operation started (the caller owes a matching
    /// [`RtPathResource::finish`]), `false` on timeout — the request is
    /// withdrawn and the queue re-scanned, since `blocked()` predicate
    /// counts just changed. An already-expired deadline degenerates to a
    /// single activation attempt. Panics on poison.
    pub fn request_by(
        &self,
        ctx: &RtCtx,
        op: &str,
        deadline: impl Into<bloom_sim::Deadline>,
    ) -> bool {
        match self.request_by_checked(ctx, op, deadline) {
            Ok(started) => started,
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`RtPathResource::request_by`], but poisoning is returned as
    /// a value.
    pub fn request_by_checked(
        &self,
        ctx: &RtCtx,
        op: &str,
        deadline: impl Into<bloom_sim::Deadline>,
    ) -> Result<bool, Poisoned> {
        ctx.chaos();
        let budget = ctx.wall_budget(deadline);
        let start = Instant::now();
        let mut m = self.machine.lock();
        if let Some(p) = m.poisoned.clone() {
            ctx.emit(&format!("poison-seen:{}", self.name), &[]);
            return Err(p);
        }
        if let Some(act) = m.try_activation(op) {
            m.apply_enter(op, &act);
            m.open
                .entry(ctx.pid())
                .or_default()
                .push((op.to_string(), act));
            if m.drain_startable() {
                self.cv.notify_all();
            }
            return Ok(true);
        }
        let Some(budget) = budget else {
            // Expired deadline: single attempt only, nothing queued.
            return Ok(false);
        };
        let ticket = ctx.fresh_ticket();
        m.blocked.push_back(Blocked {
            ticket,
            pid: ctx.pid(),
            op: op.to_string(),
        });
        loop {
            if m.granted.remove(&ticket) {
                // A grant that raced the timeout is accepted, not
                // withdrawn — the rt envelope delta, settled under the
                // machine mutex.
                return Ok(true);
            }
            if m.poison_woken.remove(&ticket) {
                let p = m
                    .poisoned
                    .clone()
                    .expect("poison wake without a poison verdict");
                ctx.emit(&format!("poison-seen:{}", self.name), &[]);
                return Err(p);
            }
            let elapsed = start.elapsed();
            if elapsed >= budget {
                // Timed out: withdraw and re-scan — a `blocked()`
                // predicate may have just flipped for someone else.
                m.blocked.retain(|b| b.ticket != ticket);
                if m.drain_startable() {
                    self.cv.notify_all();
                }
                if let Some(p) = m.poisoned.clone() {
                    ctx.emit(&format!("poison-seen:{}", self.name), &[]);
                    return Err(p);
                }
                return Ok(false);
            }
            self.cv.wait_for(&mut m, budget - elapsed);
        }
    }

    /// Timed [`RtPathResource::perform`]: runs `body` as `op` if the
    /// paths permit it to start by `deadline`, returning `None` on
    /// timeout. Panics on poison.
    pub fn perform_by<R>(
        &self,
        ctx: &RtCtx,
        op: &str,
        deadline: impl Into<bloom_sim::Deadline>,
        body: impl FnOnce() -> R,
    ) -> Option<R> {
        match self.try_perform_by(ctx, op, deadline, body) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Checked form of [`RtPathResource::perform_by`].
    pub fn try_perform_by<R>(
        &self,
        ctx: &RtCtx,
        op: &str,
        deadline: impl Into<bloom_sim::Deadline>,
        body: impl FnOnce() -> R,
    ) -> Result<Option<R>, Poisoned> {
        if !self.request_by_checked(ctx, op, deadline)? {
            return Ok(None);
        }
        let cleanup = PoisonOnUnwind { res: self, ctx };
        let r = body();
        std::mem::forget(cleanup);
        self.finish(ctx, op);
        Ok(Some(r))
    }

    /// Finishes operation `op` (the second half of
    /// [`RtPathResource::perform`]).
    pub fn finish(&self, ctx: &RtCtx, op: &str) {
        // Jitter-only: `finish` runs after `try_perform` disarmed its
        // poison guard, so it must be kill-atomic (see [`RtCtx::jitter`])
        // — dying here would strand the consumed tokens unpoisoned.
        ctx.jitter();
        let mut m = self.machine.lock();
        let stack = m.open.get_mut(&ctx.pid()).expect("finish without begin");
        // Most recent matching activation: operations usually nest, but
        // gate patterns overlap, so search rather than require LIFO.
        let pos = stack
            .iter()
            .rposition(|(open_op, _)| open_op == op)
            .unwrap_or_else(|| panic!("finish of {op} without a matching begin"));
        let (_, act) = stack.remove(pos);
        if stack.is_empty() {
            m.open.remove(&ctx.pid());
        }
        m.apply_exit(op, &act);
        if m.drain_startable() {
            self.cv.notify_all();
        }
    }

    /// Whether a process died mid-operation, leaving the paths' token
    /// state unrecoverable.
    pub fn is_poisoned(&self) -> bool {
        self.machine.lock().poisoned.is_some()
    }

    /// Number of executions of `op` currently in progress.
    pub fn active_count(&self, op: &str) -> usize {
        self.machine.lock().active.get(op).copied().unwrap_or(0)
    }

    /// Number of requests currently blocked.
    pub fn blocked_count(&self) -> usize {
        self.machine.lock().blocked.len()
    }

    /// Whether `op` could start right now (no tokens are consumed).
    pub fn can_start(&self, op: &str) -> bool {
        self.machine.lock().try_activation(op).is_some()
    }

    // -- Version-3 extensions (Andler: predicates and state variables) ---

    /// Attaches a predicate to `op`: the operation may start only when
    /// the predicate holds, in addition to the path constraints. Call
    /// before the run starts. The predicate runs under the machine mutex
    /// and must not call back into the resource.
    pub fn add_predicate(
        &self,
        op: &str,
        predicate: impl Fn(&RtPredicateView<'_>) -> bool + Send + 'static,
    ) {
        self.machine
            .lock()
            .predicates
            .entry(op.to_string())
            .or_default()
            .push(Box::new(predicate));
    }

    /// Registers a state-variable update to run whenever `op` starts.
    pub fn on_enter(&self, op: &str, update: impl Fn(&mut BTreeMap<String, i64>) + Send + 'static) {
        self.machine
            .lock()
            .on_enter
            .entry(op.to_string())
            .or_default()
            .push(Box::new(update));
    }

    /// Registers a state-variable update to run whenever `op` finishes.
    pub fn on_exit(&self, op: &str, update: impl Fn(&mut BTreeMap<String, i64>) + Send + 'static) {
        self.machine
            .lock()
            .on_exit
            .entry(op.to_string())
            .or_default()
            .push(Box::new(update));
    }

    /// Completed executions of `op` (v3 history information).
    pub fn completed_count(&self, op: &str) -> u64 {
        self.machine.lock().completed.get(op).copied().unwrap_or(0)
    }

    /// Current value of a v3 state variable (0 if never written).
    pub fn var(&self, name: &str) -> i64 {
        self.machine.lock().vars.get(name).copied().unwrap_or(0)
    }
}

impl std::fmt::Debug for RtPathResource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let m = self.machine.lock();
        f.debug_struct("RtPathResource")
            .field("name", &self.name)
            .field("paths", &m.compiled.len())
            .field("blocked", &m.blocked.len())
            .field("active", &m.active)
            .finish()
    }
}

/// Poisons the resource when an operation body unwinds: the activation's
/// tokens are consumed and can never be put back. All blocked requests
/// are drained into `poison_woken` so they observe the verdict instead
/// of wedging.
struct PoisonOnUnwind<'a> {
    res: &'a RtPathResource,
    ctx: &'a RtCtx,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        let mut m = self.res.machine.lock();
        if m.poisoned.is_none() {
            m.poisoned = Some(Poisoned {
                primitive: self.res.name.clone(),
                by: self.ctx.pid(),
            });
        }
        self.ctx.emit(&format!("poison:{}", self.res.name), &[]);
        let dead: Vec<u64> = m.blocked.drain(..).map(|b| b.ticket).collect();
        m.poison_woken.extend(dead);
        self.res.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{KillPoint, RtConfig, RtSim};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn one_slot_buffer_forces_alternation() {
        let mut rt = RtSim::new();
        let r = Arc::new(RtPathResource::parse("slot", "path deposit ; remove end").unwrap());
        let order = Arc::new(Mutex::new(Vec::new()));
        // Consumer arrives first; the path must hold it until a deposit.
        for (name, op, delay_ms) in [("cons", "remove", 0u64), ("prod", "deposit", 10)] {
            let r = Arc::clone(&r);
            let order = Arc::clone(&order);
            rt.spawn(name, move |ctx| {
                std::thread::sleep(Duration::from_millis(delay_ms));
                for _ in 0..3 {
                    r.perform(ctx, op, || order.lock().push(op));
                }
            });
        }
        rt.run().expect("no wedge");
        assert_eq!(
            *order.lock(),
            vec!["deposit", "remove", "deposit", "remove", "deposit", "remove"]
        );
    }

    #[test]
    fn burst_allows_concurrent_readers_and_excludes_writer() {
        let mut rt = RtSim::new();
        let r = Arc::new(RtPathResource::parse("rw", "path { read } , write end").unwrap());
        let inside = Arc::new(Mutex::new((0usize, 0usize, false))); // readers, writers, violation
        let entered = Arc::new(Mutex::new(0usize)); // cumulative reader entries
        for i in 0..3 {
            let r = Arc::clone(&r);
            let inside = Arc::clone(&inside);
            let entered = Arc::clone(&entered);
            rt.spawn(&format!("r{i}"), move |ctx| {
                r.perform(ctx, "read", || {
                    {
                        let mut s = inside.lock();
                        s.0 += 1;
                        if s.1 > 0 {
                            s.2 = true;
                        }
                    }
                    *entered.lock() += 1;
                    // Hold the burst open until all three readers are in:
                    // proves real overlap, not just non-violation.
                    while *entered.lock() < 3 {
                        std::thread::yield_now();
                    }
                    inside.lock().0 -= 1;
                });
            });
        }
        let r2 = Arc::clone(&r);
        let inside2 = Arc::clone(&inside);
        rt.spawn("w", move |ctx| {
            r2.perform(ctx, "write", || {
                let mut s = inside2.lock();
                s.1 += 1;
                if s.0 > 0 {
                    s.2 = true;
                }
                s.1 -= 1;
            });
        });
        rt.run().expect("no wedge");
        assert!(!inside.lock().2, "no reader/writer overlap");
    }

    #[test]
    fn blocked_requests_resume_longest_waiting_first() {
        let mut rt = RtSim::new();
        let r = Arc::new(RtPathResource::parse("s", "path a end").unwrap());
        let order = Arc::new(Mutex::new(Vec::new()));
        let queued = Arc::new(Mutex::new(0usize));
        let r0 = Arc::clone(&r);
        rt.spawn("holder", move |ctx| {
            r0.perform(ctx, "a", || {
                // Hold until all three waiters are queued.
                while r0.blocked_count() < 3 {
                    std::thread::yield_now();
                }
            });
        });
        for i in 0..3 {
            let r = Arc::clone(&r);
            let order = Arc::clone(&order);
            let queued = Arc::clone(&queued);
            rt.spawn(&format!("w{i}"), move |ctx| {
                // Serialize arrivals so FIFO has a defined meaning.
                loop {
                    let q = *queued.lock();
                    if q == i && r.active_count("a") == 1 {
                        break;
                    }
                    std::thread::yield_now();
                }
                *queued.lock() += 1;
                r.perform(ctx, "a", || order.lock().push(i));
            });
        }
        rt.run().expect("no wedge");
        assert_eq!(
            *order.lock(),
            vec![0, 1, 2],
            "FIFO service of blocked requests"
        );
    }

    #[test]
    fn request_by_withdraws_cleanly() {
        let mut rt = RtSim::new();
        let r = Arc::new(RtPathResource::parse("s", "path a ; b end").unwrap());
        let r1 = Arc::clone(&r);
        rt.spawn("impatient", move |ctx| {
            // b needs an a first; nobody performs a.
            assert_eq!(r1.perform_by(ctx, "b", 3u64, || unreachable!()), None);
            assert_eq!(r1.blocked_count(), 0, "request withdrawn");
        });
        rt.run().expect("timeout avoids the wedge");
    }

    #[test]
    fn v3_predicate_gates_an_operation() {
        let mut rt = RtSim::new();
        let r = Arc::new(RtPathResource::parse("s", "path a end path b end").unwrap());
        r.add_predicate("b", |v| v.completed("a") >= 2);
        let order = Arc::new(Mutex::new(Vec::new()));
        let (r1, o1) = (Arc::clone(&r), Arc::clone(&order));
        rt.spawn("bee", move |ctx| {
            r1.perform(ctx, "b", || o1.lock().push("b"));
        });
        let (r2, o2) = (Arc::clone(&r), Arc::clone(&order));
        rt.spawn("ayes", move |ctx| {
            for _ in 0..2 {
                r2.perform(ctx, "a", || o2.lock().push("a"));
            }
        });
        rt.run().expect("no wedge");
        assert_eq!(*order.lock(), vec!["a", "a", "b"]);
    }

    #[test]
    fn death_mid_operation_poisons_and_wakes_waiters() {
        let mut rt = RtSim::with_config(RtConfig {
            kill: Some(KillPoint {
                process: "victim".into(),
                at_point: 2, // begin_checked is point 1; dies inside the body
            }),
            ..RtConfig::default()
        });
        let r = Arc::new(RtPathResource::parse("s", "path a end").unwrap());
        let entered = Arc::new(Mutex::new(false));
        let (r1, e1) = (Arc::clone(&r), Arc::clone(&entered));
        rt.spawn("victim", move |ctx| {
            r1.perform(ctx, "a", || {
                *e1.lock() = true;
                // Hold until the waiter queues, then die at the chaos point.
                while r1.blocked_count() < 1 {
                    std::thread::yield_now();
                }
                ctx.chaos();
            });
        });
        let (r2, e2) = (Arc::clone(&r), Arc::clone(&entered));
        rt.spawn("waiter", move |ctx| {
            while !*e2.lock() {
                std::thread::yield_now();
            }
            let err = r2.try_perform(ctx, "a", || ()).expect_err("poisoned");
            assert_eq!(err.primitive, "s");
        });
        let report = rt.run().expect("a kill is not a run failure");
        assert!(r.is_poisoned());
        assert_eq!(report.trace.count_user("poison:s"), 1);
        assert_eq!(report.trace.count_user("poison-seen:s"), 1);
    }

    #[test]
    fn death_while_blocked_leaves_resource_healthy() {
        let mut rt = RtSim::with_config(RtConfig {
            kill: Some(KillPoint {
                process: "doomed".into(),
                at_point: 1, // dies at begin_checked's entry chaos point
            }),
            ..RtConfig::default()
        });
        let r = Arc::new(RtPathResource::parse("s", "path a end").unwrap());
        let r1 = Arc::clone(&r);
        rt.spawn("doomed", move |ctx| {
            r1.perform(ctx, "a", || unreachable!("killed before starting"));
        });
        let r2 = Arc::clone(&r);
        rt.spawn("survivor", move |ctx| {
            std::thread::sleep(Duration::from_millis(10));
            r2.perform(ctx, "a", || ());
        });
        rt.run().expect("no wedge");
        assert!(!r.is_poisoned(), "dying before starting poisons nothing");
        assert_eq!(r.blocked_count(), 0);
        assert_eq!(r.completed_count("a"), 1);
    }
}
