//! Real-thread monitors with all three signal disciplines — mirrors
//! `bloom-monitor` operation for operation.
//!
//! One `Mutex<MonState>` + broadcast `Condvar` implements possession, the
//! entry and urgent queues, and every condition queue; each blocking
//! operation is a loop over the condvar checking which wake it received:
//!
//! * a **grant** (its ticket appears in `granted`) — possession was handed
//!   to it directly by a release, a Hoare signal, or a deferred
//!   signal-and-exit hand-off; bargers can never intercept possession
//!   because it never passes through an "open" state during a hand-off;
//! * a **poison wake** (its ticket appears in `poison_woken`) — the holder
//!   died mid-body; the waiter observes the poison and backs out.
//!
//! Mesa signalling moves the waiter's ticket from the condition queue to
//! the back of the entry queue — re-contention *is* entry competition, so
//! the separate "wake, then re-acquire" step of the simulator collapses
//! into waiting for an entry grant, with identical observable semantics
//! (the waiter resumes with possession and must re-check its predicate).

use crate::runtime::RtCtx;
use bloom_sim::{Deadline, Pid, Poisoned};
use parking_lot::{Condvar, Mutex, MutexGuard};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;

/// Signal discipline; mirrors `bloom_monitor::Signaling`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signaling {
    /// Hoare signal-and-wait: possession passes to the signalled process;
    /// the signaller parks on the urgent queue.
    Hoare,
    /// Mesa signal-and-continue: the signaller keeps possession; the
    /// signalled process re-enters through the entry competition.
    SignalAndContinue,
    /// Howard signal-and-exit: the hand-off is deferred to the moment the
    /// signaller leaves the monitor.
    SignalAndExit,
}

/// A condition variable for [`RtMonitor`]; mirrors `bloom_monitor::Cond`.
///
/// The queue is mutated only while the owning monitor's state lock is
/// held (lock order: monitor state, then condition queue); the probe
/// methods take only the condition's own lock.
pub struct RtCond {
    name: String,
    /// `(ticket, priority)` in arrival order.
    queue: Mutex<Vec<(u64, i64)>>,
}

impl RtCond {
    /// Creates a condition with a diagnostic name.
    pub fn new(name: &str) -> Self {
        RtCond {
            name: name.to_string(),
            queue: Mutex::new(Vec::new()),
        }
    }

    /// Number of processes waiting on this condition.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether no process waits on this condition (Hoare's `¬queue`).
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }

    /// Priority of the frontmost waiter (Hoare's `minrank`), if any.
    pub fn min_priority(&self) -> Option<i64> {
        self.queue.lock().iter().map(|&(_, p)| p).min()
    }

    /// The condition's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Removes and returns the best waiter: lowest priority, FIFO among
    /// equals.
    fn take_front(&self) -> Option<u64> {
        let mut q = self.queue.lock();
        let best = q
            .iter()
            .enumerate()
            .min_by_key(|&(i, &(_, prio))| (prio, i))
            .map(|(i, _)| i)?;
        Some(q.remove(best).0)
    }

    fn remove_ticket(&self, ticket: u64) -> bool {
        let mut q = self.queue.lock();
        let before = q.len();
        q.retain(|&(t, _)| t != ticket);
        q.len() < before
    }

    fn drain(&self) -> Vec<u64> {
        self.queue.lock().drain(..).map(|(t, _)| t).collect()
    }
}

struct MonState {
    busy: bool,
    holder: Option<Pid>,
    poisoned: Option<Poisoned>,
    entry: VecDeque<u64>,
    urgent: VecDeque<u64>,
    /// Tickets holding an uncollected possession grant.
    granted: HashSet<u64>,
    /// Tickets woken by the poison broadcast (no possession attached).
    poison_woken: HashSet<u64>,
    /// Signal-and-exit: ticket the next release hands off to.
    pending_handoff: Option<u64>,
}

/// The non-generic core: everything except the protected state, so the
/// unwind guard and the condition plumbing need no `S` parameter.
struct MonCore {
    name: String,
    signaling: Signaling,
    state: Mutex<MonState>,
    cv: Condvar,
    watched: Mutex<Vec<Arc<RtCond>>>,
}

/// How a blocking wait ended.
enum Wake {
    Granted,
    Poison(Poisoned),
}

impl MonCore {
    /// Parks the given ticket until it is granted possession or poison-
    /// woken. The caller has already enqueued the ticket somewhere.
    fn await_grant<'a>(&'a self, s: &mut MutexGuard<'a, MonState>, pid: Pid, ticket: u64) -> Wake {
        loop {
            if s.granted.remove(&ticket) {
                s.holder = Some(pid);
                return Wake::Granted;
            }
            if s.poison_woken.remove(&ticket) {
                return Wake::Poison(s.poisoned.clone().expect("poison wake implies poison"));
            }
            self.cv.wait(s);
        }
    }

    /// Hands possession onward; called by the holder with the lock held.
    fn release_locked(&self, s: &mut MonState) {
        s.holder = None;
        let next = s
            .pending_handoff
            .take()
            .or_else(|| s.urgent.pop_front())
            .or_else(|| s.entry.pop_front());
        match next {
            Some(t) => {
                // Hand-off: busy stays true, so a barger arriving before
                // the grantee collects finds the monitor occupied.
                s.granted.insert(t);
                self.cv.notify_all();
            }
            None => s.busy = false,
        }
    }

    fn acquire(&self, ctx: &RtCtx) -> Result<(), Poisoned> {
        let mut s = self.state.lock();
        if let Some(p) = s.poisoned.clone() {
            drop(s);
            ctx.emit(&format!("poison-seen:{}", self.name), &[]);
            return Err(p);
        }
        if !s.busy {
            s.busy = true;
            s.holder = Some(ctx.pid());
            return Ok(());
        }
        let ticket = ctx.fresh_ticket();
        s.entry.push_back(ticket);
        match self.await_grant(&mut s, ctx.pid(), ticket) {
            Wake::Granted => Ok(()),
            Wake::Poison(p) => {
                drop(s);
                ctx.emit(&format!("poison-seen:{}", self.name), &[]);
                Err(p)
            }
        }
    }
}

/// A monitor protecting state `S` on OS threads; mirrors
/// `bloom_monitor::Monitor`.
pub struct RtMonitor<S> {
    core: MonCore,
    data: Mutex<S>,
}

impl<S: Send> RtMonitor<S> {
    /// Creates a monitor with the given signal discipline.
    pub fn new(name: &str, signaling: Signaling, initial: S) -> Self {
        RtMonitor {
            core: MonCore {
                name: name.to_string(),
                signaling,
                state: Mutex::new(MonState {
                    busy: false,
                    holder: None,
                    poisoned: None,
                    entry: VecDeque::new(),
                    urgent: VecDeque::new(),
                    granted: HashSet::new(),
                    poison_woken: HashSet::new(),
                    pending_handoff: None,
                }),
                cv: Condvar::new(),
                watched: Mutex::new(Vec::new()),
            },
            data: Mutex::new(initial),
        }
    }

    /// Creates a monitor with Hoare signal-and-wait semantics.
    pub fn hoare(name: &str, initial: S) -> Self {
        RtMonitor::new(name, Signaling::Hoare, initial)
    }

    /// Creates a monitor with Mesa signal-and-continue semantics.
    pub fn mesa(name: &str, initial: S) -> Self {
        RtMonitor::new(name, Signaling::SignalAndContinue, initial)
    }

    /// Creates a monitor with Howard signal-and-exit semantics.
    pub fn signal_and_exit(name: &str, initial: S) -> Self {
        RtMonitor::new(name, Signaling::SignalAndExit, initial)
    }

    /// The monitor's diagnostic name.
    pub fn name(&self) -> &str {
        &self.core.name
    }

    /// The configured signal discipline.
    pub fn signaling(&self) -> Signaling {
        self.core.signaling
    }

    /// Runs `body` with possession; panics if the monitor is poisoned.
    pub fn enter<R>(&self, ctx: &RtCtx, body: impl FnOnce(&RtMonitorCtx<'_, S>) -> R) -> R {
        match self.try_enter(ctx, body) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Runs `body` with possession, surfacing poisoning as a value; the
    /// body is not entered on a poisoned monitor.
    pub fn try_enter<R>(
        &self,
        ctx: &RtCtx,
        body: impl FnOnce(&RtMonitorCtx<'_, S>) -> R,
    ) -> Result<R, Poisoned> {
        ctx.chaos();
        self.core.acquire(ctx)?;
        let cleanup = PoisonOnUnwind {
            core: &self.core,
            ctx,
        };
        let mc = RtMonitorCtx { monitor: self, ctx };
        let r = body(&mc);
        std::mem::forget(cleanup);
        let mut s = self.core.state.lock();
        // Possession may have dissolved while the body waited on a
        // condition (poison broadcast); release only what we still hold.
        if s.holder == Some(ctx.pid()) {
            self.core.release_locked(&mut s);
        }
        Ok(r)
    }

    /// Registers `cond` for the poison broadcast, like
    /// `Monitor::register_cond`.
    pub fn register_cond(&self, cond: &Arc<RtCond>) {
        self.core.watched.lock().push(Arc::clone(cond));
    }

    /// Whether a previous holder died inside the monitor.
    pub fn is_poisoned(&self) -> bool {
        self.core.state.lock().poisoned.is_some()
    }
}

/// Poisons the monitor if the holder's body unwinds; disarmed with
/// `mem::forget` on the normal path. A no-op when the process dies
/// waiting on a condition (it holds nothing then).
struct PoisonOnUnwind<'a> {
    core: &'a MonCore,
    ctx: &'a RtCtx,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        let mut s = self.core.state.lock();
        if s.holder != Some(self.ctx.pid()) {
            return;
        }
        s.holder = None;
        s.busy = false;
        if s.poisoned.is_none() {
            s.poisoned = Some(Poisoned {
                primitive: self.core.name.clone(),
                by: self.ctx.pid(),
            });
        }
        // Wake everyone without possession so they observe the poison:
        // entrants, paused signallers, a deferred grantee, and the
        // waiters of every registered condition.
        let mut woken: Vec<u64> = s.entry.drain(..).collect();
        woken.extend(s.urgent.drain(..));
        woken.extend(s.pending_handoff.take());
        for cond in self.core.watched.lock().iter() {
            woken.extend(cond.drain());
        }
        s.poison_woken.extend(woken);
        // Emit while still holding the state lock: a survivor can only
        // observe the poison flag under this lock, so logging first
        // guarantees `poison:` precedes every `poison-seen:` in the trace.
        self.ctx.emit(&format!("poison:{}", self.core.name), &[]);
        self.core.cv.notify_all();
    }
}

/// Capability to use a monitor from inside [`RtMonitor::enter`]; mirrors
/// `bloom_monitor::MonitorCtx`.
pub struct RtMonitorCtx<'a, S> {
    monitor: &'a RtMonitor<S>,
    ctx: &'a RtCtx,
}

impl<S: Send> RtMonitorCtx<'_, S> {
    /// Accesses the protected state.
    ///
    /// # Panics
    ///
    /// Panics on re-entrant use, which would otherwise deadlock.
    pub fn state<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        let mut guard = self
            .monitor
            .data
            .try_lock()
            .expect("monitor state re-entered: do not nest state()/wait() calls");
        f(&mut guard)
    }

    /// The real-thread context of the process inside the monitor.
    pub fn ctx(&self) -> &RtCtx {
        self.ctx
    }

    /// Waits on `cond`; panics on a poison wake.
    pub fn wait(&self, cond: &RtCond) {
        self.wait_priority(cond, 0);
    }

    /// Priority wait (signalled in increasing `priority` order, FIFO among
    /// equals); panics on a poison wake.
    pub fn wait_priority(&self, cond: &RtCond, priority: i64) {
        if let Err(p) = self.wait_priority_checked(cond, priority) {
            panic!("{p}");
        }
    }

    /// Like [`RtMonitorCtx::wait`], returning a poison wake as a value.
    /// On `Err` the caller does *not* have possession and must leave the
    /// body promptly.
    pub fn wait_checked(&self, cond: &RtCond) -> Result<(), Poisoned> {
        self.wait_priority_checked(cond, 0)
    }

    /// Priority variant of [`RtMonitorCtx::wait_checked`].
    pub fn wait_priority_checked(&self, cond: &RtCond, priority: i64) -> Result<(), Poisoned> {
        self.ctx.chaos();
        let core = &self.monitor.core;
        let ticket = self.ctx.fresh_ticket();
        let mut s = core.state.lock();
        cond.queue.lock().push((ticket, priority));
        core.release_locked(&mut s);
        match core.await_grant(&mut s, self.ctx.pid(), ticket) {
            Wake::Granted => Ok(()),
            Wake::Poison(p) => {
                drop(s);
                self.ctx.emit(&format!("poison-seen:{}", core.name), &[]);
                Err(p)
            }
        }
    }

    /// Timed wait against a virtual-tick [`Deadline`] (wall-clock budget
    /// via [`RtCtx::wall_budget`]): `true` if signalled, `false` on
    /// timeout, after which the waiter has withdrawn and re-entered like a
    /// fresh entrant — it resumes with possession either way.
    ///
    /// # Panics
    ///
    /// Panics on a poison wake and under [`Signaling::SignalAndExit`]
    /// (a deferred hand-off cannot be withdrawn), like the simulator.
    pub fn wait_by(&self, cond: &RtCond, deadline: impl Into<Deadline>) -> bool {
        match self.wait_by_checked(cond, deadline) {
            Ok(signalled) => signalled,
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`RtMonitorCtx::wait_by`], returning poisoning as a value.
    pub fn wait_by_checked(
        &self,
        cond: &RtCond,
        deadline: impl Into<Deadline>,
    ) -> Result<bool, Poisoned> {
        let core = &self.monitor.core;
        assert!(
            core.signaling != Signaling::SignalAndExit,
            "timed waits are not supported under signal-and-exit semantics: \
             a deferred hand-off cannot be withdrawn"
        );
        self.ctx.chaos();
        let Some(budget) = self.ctx.wall_budget(deadline) else {
            return Ok(false);
        };
        let start = std::time::Instant::now();
        let ticket = self.ctx.fresh_ticket();
        let mut s = core.state.lock();
        cond.queue.lock().push((ticket, 0));
        core.release_locked(&mut s);
        loop {
            if s.granted.remove(&ticket) {
                s.holder = Some(self.ctx.pid());
                return Ok(true);
            }
            if s.poison_woken.remove(&ticket) {
                let p = s.poisoned.clone().expect("poison wake implies poison");
                drop(s);
                self.ctx.emit(&format!("poison-seen:{}", core.name), &[]);
                return Err(p);
            }
            let elapsed = start.elapsed();
            if elapsed >= budget {
                // Withdraw — settled under the state lock. Three places
                // our ticket can legitimately be:
                if cond.remove_ticket(ticket) {
                    // Still on the condition: a true timeout. Re-enter
                    // like a fresh entrant.
                    if !s.busy {
                        s.busy = true;
                        s.holder = Some(self.ctx.pid());
                        return Ok(false);
                    }
                    s.entry.push_back(ticket);
                    return match core.await_grant(&mut s, self.ctx.pid(), ticket) {
                        Wake::Granted => Ok(false),
                        Wake::Poison(p) => {
                            drop(s);
                            self.ctx.emit(&format!("poison-seen:{}", core.name), &[]);
                            Err(p)
                        }
                    };
                }
                // A Mesa signal raced the timeout and moved us to the
                // entry queue: we count as signalled; wait out the grant.
                return match core.await_grant(&mut s, self.ctx.pid(), ticket) {
                    Wake::Granted => Ok(true),
                    Wake::Poison(p) => {
                        drop(s);
                        self.ctx.emit(&format!("poison-seen:{}", core.name), &[]);
                        Err(p)
                    }
                };
            }
            core.cv.wait_for(&mut s, budget - elapsed);
        }
    }

    /// Signals `cond`; semantics per the monitor's discipline. Panics if
    /// a Hoare signaller is woken by a poison broadcast.
    pub fn signal(&self, cond: &RtCond) {
        if let Err(p) = self.signal_checked(cond) {
            panic!("{p}");
        }
    }

    /// Like [`RtMonitorCtx::signal`], returning a Hoare signaller's
    /// poison wake as a value. On `Err` the caller does *not* have
    /// possession and must leave the body promptly.
    pub fn signal_checked(&self, cond: &RtCond) -> Result<(), Poisoned> {
        self.ctx.chaos();
        let core = &self.monitor.core;
        let mut s = core.state.lock();
        match core.signaling {
            Signaling::Hoare => {
                let Some(waiter) = cond.take_front() else {
                    return Ok(());
                };
                // Step aside for the signalled process: possession passes
                // to it directly; we park on the urgent queue.
                let ticket = self.ctx.fresh_ticket();
                s.urgent.push_back(ticket);
                s.holder = None;
                s.granted.insert(waiter);
                core.cv.notify_all();
                match core.await_grant(&mut s, self.ctx.pid(), ticket) {
                    Wake::Granted => Ok(()),
                    Wake::Poison(p) => {
                        drop(s);
                        self.ctx.emit(&format!("poison-seen:{}", core.name), &[]);
                        Err(p)
                    }
                }
            }
            Signaling::SignalAndContinue => {
                if let Some(waiter) = cond.take_front() {
                    // Re-contention is entry competition.
                    s.entry.push_back(waiter);
                }
                Ok(())
            }
            Signaling::SignalAndExit => {
                let Some(waiter) = cond.take_front() else {
                    return Ok(());
                };
                assert!(
                    s.pending_handoff.is_none(),
                    "signal-and-exit permits one effective signal per monitor entry"
                );
                s.pending_handoff = Some(waiter);
                Ok(())
            }
        }
    }

    /// Wakes every waiter on `cond` (broadcast).
    ///
    /// # Panics
    ///
    /// Panics unless the discipline is [`Signaling::SignalAndContinue`],
    /// like the simulator.
    pub fn signal_all(&self, cond: &RtCond) {
        let core = &self.monitor.core;
        assert!(
            core.signaling == Signaling::SignalAndContinue,
            "signal_all requires signal-and-continue semantics"
        );
        self.ctx.chaos();
        let mut s = core.state.lock();
        for waiter in cond.drain() {
            s.entry.push_back(waiter);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::{KillPoint, RtConfig, RtSim};
    use std::time::Duration;

    fn bounded_buffer(signaling: Signaling) {
        const CAP: usize = 3;
        const ITEMS: i64 = 40;
        let mut rt = RtSim::new();
        let m = Arc::new(RtMonitor::new("buf", signaling, Vec::<i64>::new()));
        let not_full = Arc::new(RtCond::new("not_full"));
        let not_empty = Arc::new(RtCond::new("not_empty"));

        let (m1, nf1, ne1) = (
            Arc::clone(&m),
            Arc::clone(&not_full),
            Arc::clone(&not_empty),
        );
        rt.spawn("producer", move |ctx| {
            for i in 0..ITEMS {
                m1.enter(ctx, |mc| {
                    if signaling == Signaling::SignalAndContinue {
                        while mc.state(|b| b.len()) >= CAP {
                            mc.wait(&nf1);
                        }
                    } else if mc.state(|b| b.len()) >= CAP {
                        mc.wait(&nf1);
                    }
                    mc.state(|b| b.push(i));
                    mc.signal(&ne1);
                });
            }
        });

        let (m2, nf2, ne2) = (
            Arc::clone(&m),
            Arc::clone(&not_full),
            Arc::clone(&not_empty),
        );
        let got = Arc::new(Mutex::new(Vec::new()));
        let got2 = Arc::clone(&got);
        rt.spawn("consumer", move |ctx| {
            for _ in 0..ITEMS {
                let v = m2.enter(ctx, |mc| {
                    if signaling == Signaling::SignalAndContinue {
                        while mc.state(|b| b.is_empty()) {
                            mc.wait(&ne2);
                        }
                    } else if mc.state(|b| b.is_empty()) {
                        mc.wait(&ne2);
                    }
                    let v = mc.state(|b| b.remove(0));
                    mc.signal(&nf2);
                    v
                });
                got2.lock().push(v);
            }
        });

        rt.run().expect("no wedge");
        assert_eq!(*got.lock(), (0..ITEMS).collect::<Vec<_>>());
    }

    #[test]
    fn hoare_bounded_buffer_delivers_in_order() {
        bounded_buffer(Signaling::Hoare);
    }

    #[test]
    fn mesa_bounded_buffer_delivers_in_order() {
        bounded_buffer(Signaling::SignalAndContinue);
    }

    #[test]
    fn signal_and_exit_hands_off_at_release() {
        let mut rt = RtSim::new();
        let m = Arc::new(RtMonitor::signal_and_exit("m", false));
        let ready = Arc::new(RtCond::new("ready"));

        let (m1, r1) = (Arc::clone(&m), Arc::clone(&ready));
        rt.spawn("waiter", move |ctx| {
            m1.enter(ctx, |mc| {
                if !mc.state(|&mut f| f) {
                    mc.wait(&r1);
                }
                // Hand-off semantics: the flag set by the signaller must
                // still hold — no third party could intervene.
                assert!(mc.state(|&mut f| f));
            });
        });

        let (m2, r2) = (Arc::clone(&m), Arc::clone(&ready));
        rt.spawn("signaller", move |ctx| {
            std::thread::sleep(Duration::from_millis(10));
            m2.enter(ctx, |mc| {
                mc.state(|f| *f = true);
                mc.signal(&r2);
                // Signal takes effect only when we leave.
                assert!(mc.state(|&mut f| f));
            });
        });

        rt.run().expect("no wedge");
    }

    #[test]
    fn wait_by_times_out_and_reenters_with_possession() {
        let mut rt = RtSim::new();
        let m = Arc::new(RtMonitor::mesa("m", 0u32));
        let never = Arc::new(RtCond::new("never"));
        let m1 = Arc::clone(&m);
        let n1 = Arc::clone(&never);
        rt.spawn("p", move |ctx| {
            m1.enter(ctx, |mc| {
                assert!(!mc.wait_by(&n1, 5u64), "nobody signals");
                // We must hold possession again: state access works.
                mc.state(|n| *n += 1);
            });
        });
        rt.run().expect("no wedge");
        assert!(never.is_empty(), "withdrawal removed the registration");
    }

    #[test]
    fn poisoned_monitor_wakes_waiters_and_rejects_entrants() {
        let mut rt = RtSim::with_config(RtConfig {
            kill: Some(KillPoint {
                process: "victim".into(),
                at_point: 2, // enter is point 1; the in-body point is 2
            }),
            ..RtConfig::default()
        });
        let m = Arc::new(RtMonitor::mesa("m", ()));
        let cond = Arc::new(RtCond::new("c"));
        m.register_cond(&cond);

        let (m1, c1) = (Arc::clone(&m), Arc::clone(&cond));
        rt.spawn("waiter", move |ctx| {
            let woke = m1.try_enter(ctx, |mc| mc.wait_checked(&c1));
            // Either the monitor was already poisoned at entry, or the
            // poison broadcast woke us mid-wait.
            match woke {
                Err(_) | Ok(Err(_)) => {}
                Ok(Ok(())) => panic!("nobody signals this condition"),
            }
        });

        let m2 = Arc::clone(&m);
        rt.spawn("victim", move |ctx| {
            std::thread::sleep(Duration::from_millis(15)); // let the waiter park
            let _ = m2.try_enter(ctx, |mc| mc.ctx().chaos());
        });

        let report = rt.run().expect("kill is contained");
        assert_eq!(report.trace.count_user("poison:m"), 1);
        assert!(m.is_poisoned());
    }

    #[test]
    fn hoare_priority_wait_serves_minrank_first() {
        let mut rt = RtSim::new();
        let m = Arc::new(RtMonitor::hoare("m", Vec::<i64>::new()));
        let cond = Arc::new(RtCond::new("c"));
        for prio in [5i64, 1, 3] {
            let (m1, c1) = (Arc::clone(&m), Arc::clone(&cond));
            rt.spawn(&format!("w{prio}"), move |ctx| {
                m1.enter(ctx, |mc| {
                    mc.wait_priority(&c1, prio);
                    mc.state(|order| order.push(prio));
                });
            });
        }
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&cond));
        rt.spawn("signaller", move |ctx| {
            // Wait until all three are parked on the condition.
            while c2.len() < 3 {
                std::thread::sleep(Duration::from_millis(1));
            }
            for _ in 0..3 {
                m2.enter(ctx, |mc| mc.signal(&c2));
            }
        });
        rt.run().expect("no wedge");
        let m_ref = Arc::try_unwrap(m).ok().expect("all threads joined");
        assert_eq!(m_ref.data.into_inner(), vec![1, 3, 5]);
    }
}
