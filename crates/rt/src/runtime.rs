//! The real-thread runtime: spawn, watch, classify, report.
//!
//! [`RtSim`] mirrors the `bloom_sim::Sim` builder shape — spawn named
//! closures, call [`RtSim::run`], get a `Result<SimReport, SimError>` —
//! but every process is a plain OS thread with no baton protocol and no
//! scheduler. The report is assembled from three ingredients:
//!
//! * a mutex-guarded [`Trace`] that every thread appends to via
//!   [`RtCtx::emit`] (the identical `req:`/`enter:`/`exit:` vocabulary
//!   the checkers consume);
//! * a logical clock — an atomic counter bumped once per recorded event —
//!   standing in for virtual time (checkers depend on event *order*, not
//!   tick values, so a dense counter is sufficient and honest);
//! * per-thread outcomes (finished / killed / panicked / still running at
//!   the watchdog), mapped onto [`ProcessStatus`] and the
//!   [`bloom_sim::SimErrorKind`] variants.
//!
//! Nondeterminism is embraced, not hidden: a run's schedule is whatever
//! the OS did. The conformance harness makes that useful by seeding
//! *jitter* — randomized yields and short sleeps at instrumented
//! [`RtCtx::chaos`] points inside the mechanisms — so N iterations sample
//! N genuinely different thread interleavings, and by injecting a panic
//! at the Nth chaos point of a named thread ([`RtConfig::kill`]),
//! mirroring the simulator's `FaultPlan` kill-points.

use bloom_sim::{
    Deadline, EventKind, Pid, ProcessStatus, ProcessSummary, SimError, SimErrorKind, SimMetrics,
    SimReport, Time, Trace,
};
use parking_lot::{Condvar, Mutex};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread;
use std::time::{Duration, Instant};

/// Panic payload for an injected kill: distinguishes a fault-plan kill
/// (classified [`ProcessStatus::Killed`], run continues) from a genuine
/// bug panic (classified [`SimErrorKind::ProcessPanicked`], run fails).
#[derive(Debug)]
pub struct RtKill;

/// Kill injection: panic the named process at its `at_point`-th
/// instrumented [`RtCtx::chaos`] point (1-based), the real-thread
/// analogue of `FaultPlan::kill_at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KillPoint {
    /// Name of the process to kill.
    pub process: String,
    /// Which chaos point fires the kill (1 = the first).
    pub at_point: u64,
}

/// Run parameters for a real-thread execution.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// Wall-clock length of one virtual tick: `*_by` deadlines of `n`
    /// ticks become bounded waits of `n * tick` (clamped to at least one
    /// millisecond so a short tick cannot degenerate to a busy poll).
    pub tick: Duration,
    /// Overall wall-clock budget for the run. Threads still running when
    /// it expires are reported as a deadlock (blocked on
    /// "wall-clock watchdog") and left detached — the real-thread
    /// analogue of the simulator's deadlock detector, necessarily
    /// approximate: a wedged thread cannot be forced to unwind.
    pub watchdog: Duration,
    /// Seed for the per-thread jitter streams; `None` disables jitter
    /// (chaos points still count, so kill injection stays meaningful).
    pub jitter_seed: Option<u64>,
    /// Kill injection, if any.
    pub kill: Option<KillPoint>,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            tick: Duration::from_micros(200),
            watchdog: Duration::from_secs(5),
            jitter_seed: None,
            kill: None,
        }
    }
}

/// State shared by every thread of one run.
struct RtShared {
    trace: Mutex<Trace>,
    /// Logical clock: one tick per recorded event.
    clock: AtomicU64,
    /// Arrival tickets (mechanism FIFO ordering).
    ticket: AtomicU64,
    tick: Duration,
}

impl RtShared {
    fn record(&self, pid: Pid, kind: EventKind) {
        let mut trace = self.trace.lock();
        // Clock and trace advance together under the trace lock, so
        // event times are monotone in seq like a simulator trace.
        let time = Time(self.clock.fetch_add(1, Ordering::Relaxed));
        trace.record(time, pid, kind);
    }
}

/// The handle a real-thread process body receives — the [`bloom_sim::Ctx`]
/// subset the mechanisms and scenario code need.
pub struct RtCtx {
    pid: Pid,
    name: String,
    shared: Arc<RtShared>,
    /// SplitMix64 jitter stream state; 0 disables jitter.
    jitter: std::cell::Cell<u64>,
    /// Instrumented points passed so far (kill-point coordinate).
    points: std::cell::Cell<u64>,
    /// Fire an [`RtKill`] panic at this chaos point, if set.
    kill_at: Option<u64>,
}

impl RtCtx {
    /// This process's id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// This process's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current logical time (one tick per recorded event).
    pub fn now(&self) -> Time {
        Time(self.shared.clock.load(Ordering::Relaxed))
    }

    /// Appends a user event to the shared trace.
    pub fn emit(&self, label: &str, params: &[i64]) {
        self.shared.record(
            self.pid,
            EventKind::User {
                label: label.to_string(),
                params: params.to_vec(),
            },
        );
    }

    /// Appends a user event attributed to another process (releaser-side
    /// `enter_for` emission, exactly as in the simulator).
    pub fn emit_for(&self, pid: Pid, label: &str, params: &[i64]) {
        self.shared.record(
            pid,
            EventKind::User {
                label: label.to_string(),
                params: params.to_vec(),
            },
        );
    }

    /// A fresh arrival ticket; totally ordered across all threads.
    pub fn fresh_ticket(&self) -> u64 {
        self.shared.ticket.fetch_add(1, Ordering::Relaxed)
    }

    /// Always `false`: the real-thread runtime has no deadlock-recovery
    /// abort, so poison guards (which skip their work for cancelled
    /// simulator processes) always run here.
    pub fn cancelling(&self) -> bool {
        false
    }

    /// An instrumented scheduling point: counts toward the kill-point
    /// coordinate and, under a jitter seed, randomizes the thread's
    /// progress (nothing / `yield_now` / a sleep of up to ~100µs) so
    /// repeated iterations sample different OS interleavings.
    ///
    /// Mechanisms call this at every operation entry; scenario bodies may
    /// add their own points, mirroring `Ctx::yield_now` placement.
    pub fn chaos(&self) {
        let n = self.points.get() + 1;
        self.points.set(n);
        if self.kill_at == Some(n) {
            // Record the kill *before* unwinding, as the simulator does:
            // poison guards fire during the unwind, and the poison
            // protocol (`check_poison_propagation`) requires every
            // `poison:` event to follow its process's `Killed` event.
            self.shared.record(self.pid, EventKind::Killed);
            std::panic::panic_any(RtKill);
        }
        self.jitter();
    }

    /// A jitter-only instrumented point: randomizes the thread's progress
    /// exactly like [`RtCtx::chaos`] but does **not** count as a
    /// kill-point coordinate. Mechanism *release* paths (a `v`, a path
    /// `finish`) use this, so an injected kill can never land between a
    /// disarmed crash guard and the completed release and strand the
    /// resource — the simulator's `FaultPlan` kills land only at
    /// scheduling points, and its release paths contain none, so keeping
    /// the two coordinate spaces aligned keeps crash envelopes
    /// comparable.
    pub fn jitter(&self) {
        let mut s = self.jitter.get();
        if s == 0 {
            return;
        }
        // SplitMix64 step, inlined: the jitter stream must not depend on
        // bloom-sim's policy internals.
        s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = s;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        self.jitter.set(s);
        match z % 8 {
            0..=3 => {}
            4 | 5 => thread::yield_now(),
            6 => thread::sleep(Duration::from_micros(z as u32 as u64 % 40)),
            _ => thread::sleep(Duration::from_micros(z as u32 as u64 % 100)),
        }
    }

    /// Sleeps for `ticks` virtual ticks of wall-clock time (`ticks *
    /// tick`, clamped to at least one millisecond) — the real-thread
    /// `Ctx::sleep`. `0` degrades to a bare [`RtCtx::chaos`] point, as
    /// the simulator's `sleep(0)` degrades to `yield_now`.
    pub fn sleep(&self, ticks: u64) {
        if ticks == 0 {
            self.chaos();
            return;
        }
        thread::sleep(
            (self.shared.tick * ticks.min(u32::MAX as u64) as u32).max(Duration::from_millis(1)),
        );
    }

    /// Maps a virtual-tick [`Deadline`] to a bounded wall-clock budget:
    /// `None` if already expired, otherwise `remaining_ticks * tick`,
    /// clamped to at least one millisecond. Relative deadlines
    /// (`u64`/`Duration`/[`Deadline::within`]) resolve against the
    /// logical clock exactly as in the simulator.
    pub fn wall_budget(&self, deadline: impl Into<Deadline>) -> Option<Duration> {
        let ticks = deadline.into().remaining(self.now())?;
        Some((self.shared.tick * ticks.min(u32::MAX as u64) as u32).max(Duration::from_millis(1)))
    }
}

enum Outcome {
    Finished,
    Killed,
    Panicked(String),
}

struct RunState {
    outcomes: Vec<Option<Outcome>>,
    done: usize,
}

type Body = Box<dyn FnOnce(&RtCtx) + Send + 'static>;

/// Builder/owner of one real-thread execution.
pub struct RtSim {
    config: RtConfig,
    procs: Vec<(String, Body)>,
}

impl Default for RtSim {
    fn default() -> Self {
        RtSim::new()
    }
}

impl RtSim {
    /// A runtime with [`RtConfig::default`] parameters.
    pub fn new() -> Self {
        RtSim::with_config(RtConfig::default())
    }

    /// A runtime with explicit parameters.
    pub fn with_config(config: RtConfig) -> Self {
        RtSim {
            config,
            procs: Vec::new(),
        }
    }

    /// Registers a process; pids are assigned in spawn order, like the
    /// simulator builder.
    pub fn spawn(&mut self, name: &str, body: impl FnOnce(&RtCtx) + Send + 'static) -> Pid {
        let pid = Pid(self.procs.len() as u32);
        self.procs.push((name.to_string(), Box::new(body)));
        pid
    }

    /// Runs every process on its own OS thread and assembles the report.
    pub fn run(self) -> Result<SimReport, SimError> {
        install_kill_silencer();
        let shared = Arc::new(RtShared {
            trace: Mutex::new(Trace::new()),
            clock: AtomicU64::new(0),
            ticket: AtomicU64::new(0),
            tick: self.config.tick,
        });
        let names: Vec<String> = self.procs.iter().map(|(n, _)| n.clone()).collect();
        for (i, name) in names.iter().enumerate() {
            shared.record(
                Pid(i as u32),
                EventKind::Spawned {
                    name: name.clone(),
                    daemon: false,
                },
            );
        }
        let state = Arc::new((
            Mutex::new(RunState {
                outcomes: (0..self.procs.len()).map(|_| None).collect(),
                done: 0,
            }),
            Condvar::new(),
        ));
        let total = self.procs.len();
        for (i, (name, body)) in self.procs.into_iter().enumerate() {
            let pid = Pid(i as u32);
            let shared = Arc::clone(&shared);
            let state = Arc::clone(&state);
            let ctx = RtCtxSeed {
                pid,
                name: name.clone(),
                jitter: self
                    .config
                    .jitter_seed
                    // Distinct nonzero stream per thread.
                    .map(|s| s.wrapping_mul(0x2545_F491_4F6C_DD1D) ^ (i as u64 + 1))
                    .map(|s| if s == 0 { 1 } else { s })
                    .unwrap_or(0),
                kill_at: self
                    .config
                    .kill
                    .as_ref()
                    .filter(|k| k.process == name)
                    .map(|k| k.at_point),
            };
            thread::Builder::new()
                .name(name)
                .spawn(move || {
                    let ctx = RtCtx {
                        pid: ctx.pid,
                        name: ctx.name,
                        shared: Arc::clone(&shared),
                        jitter: std::cell::Cell::new(ctx.jitter),
                        points: std::cell::Cell::new(0),
                        kill_at: ctx.kill_at,
                    };
                    let outcome = match catch_unwind(AssertUnwindSafe(|| body(&ctx))) {
                        Ok(()) => {
                            shared.record(ctx.pid, EventKind::Finished);
                            Outcome::Finished
                        }
                        // The Killed event was already recorded at the
                        // chaos point that raised the kill.
                        Err(payload) if payload.downcast_ref::<RtKill>().is_some() => {
                            Outcome::Killed
                        }
                        Err(payload) => Outcome::Panicked(panic_message(payload.as_ref())),
                    };
                    let (lock, cv) = &*state;
                    let mut s = lock.lock();
                    s.outcomes[ctx.pid.0 as usize] = Some(outcome);
                    s.done += 1;
                    cv.notify_all();
                })
                .expect("OS refused to spawn a thread");
        }

        // Watchdog: wait for every thread, or give up loudly.
        let deadline = Instant::now() + self.config.watchdog;
        let (lock, cv) = &*state;
        let mut s = lock.lock();
        while s.done < total {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            cv.wait_for(&mut s, deadline - now);
        }

        let mut processes = Vec::with_capacity(total);
        let mut panicked: Option<(Pid, String)> = None;
        let mut blocked = Vec::new();
        for (i, (name, outcome)) in names.iter().zip(s.outcomes.iter()).enumerate() {
            let pid = Pid(i as u32);
            let status = match outcome {
                Some(Outcome::Finished) => ProcessStatus::Finished,
                Some(Outcome::Killed) => ProcessStatus::Killed,
                Some(Outcome::Panicked(m)) => {
                    if panicked.is_none() {
                        panicked = Some((pid, m.clone()));
                    }
                    ProcessStatus::Panicked { message: m.clone() }
                }
                None => {
                    blocked.push((pid, name.clone(), "wall-clock watchdog".to_string()));
                    ProcessStatus::Blocked {
                        reason: "wall-clock watchdog".to_string(),
                    }
                }
            };
            processes.push(ProcessSummary {
                pid,
                name: name.clone(),
                daemon: false,
                status,
            });
        }
        drop(s);

        let trace = shared.trace.lock().clone();
        let steps = trace.len() as u64;
        let report = SimReport {
            final_time: Time(shared.clock.load(Ordering::Relaxed)),
            trace,
            decisions: Vec::new(),
            steps,
            processes,
            starvation: Vec::new(),
            recovered: Vec::new(),
            // Real-thread runs are never explorable: no decision vector,
            // no replay, no prune.
            prune_safe: false,
            metrics: SimMetrics::default(),
            quanta: Vec::new(),
            data_choices: Vec::new(),
        };
        if let Some((pid, message)) = panicked {
            return Err(SimError {
                kind: SimErrorKind::ProcessPanicked { pid, message },
                report: Box::new(report),
            });
        }
        if !blocked.is_empty() {
            return Err(SimError {
                kind: SimErrorKind::Deadlock { blocked },
                report: Box::new(report),
            });
        }
        Ok(report)
    }
}

/// Per-thread seed data moved into the spawned thread (RtCtx itself is
/// not Send because of its Cells; it is constructed on its own thread).
struct RtCtxSeed {
    pid: Pid,
    name: String,
    jitter: u64,
    kill_at: Option<u64>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic payload of unknown type".to_string()
    }
}

/// Installs (once per process) a panic hook that suppresses the default
/// stderr report for injected [`RtKill`] panics — they are part of the
/// experiment, not bugs — and chains to the previous hook for everything
/// else.
fn install_kill_silencer() {
    static INSTALLED: OnceLock<()> = OnceLock::new();
    INSTALLED.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<RtKill>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_reports_finished_processes_and_ordered_trace() {
        let mut rt = RtSim::new();
        rt.spawn("a", |ctx| ctx.emit("enter:work", &[0]));
        rt.spawn("b", |ctx| ctx.emit("enter:work", &[1]));
        let report = rt.run().expect("clean run");
        assert_eq!(report.processes.len(), 2);
        assert!(report
            .processes
            .iter()
            .all(|p| p.status == ProcessStatus::Finished));
        assert_eq!(report.trace.count_user("enter:work"), 2);
        let seqs: Vec<u64> = report.trace.events().iter().map(|e| e.seq).collect();
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "dense total order");
        assert!(!report.prune_safe, "real runs are never explorable");
    }

    #[test]
    fn kill_point_classifies_killed_not_panicked() {
        let mut rt = RtSim::with_config(RtConfig {
            kill: Some(KillPoint {
                process: "victim".into(),
                at_point: 2,
            }),
            ..RtConfig::default()
        });
        rt.spawn("victim", |ctx| {
            ctx.chaos();
            ctx.emit("survived:1", &[]);
            ctx.chaos(); // dies here
            ctx.emit("survived:2", &[]);
        });
        rt.spawn("bystander", |ctx| ctx.emit("done", &[]));
        let report = rt.run().expect("a kill is not a run failure");
        assert_eq!(report.processes[0].status, ProcessStatus::Killed);
        assert_eq!(report.processes[1].status, ProcessStatus::Finished);
        assert_eq!(report.trace.count_user("survived:1"), 1);
        assert_eq!(report.trace.count_user("survived:2"), 0);
        assert!(report
            .trace
            .events_for(Pid(0))
            .any(|e| e.kind == EventKind::Killed));
    }

    #[test]
    fn genuine_panic_fails_the_run() {
        let mut rt = RtSim::new();
        rt.spawn("buggy", |_| panic!("actual bug"));
        let err = rt.run().expect_err("panic must fail the run");
        match err.kind {
            SimErrorKind::ProcessPanicked { pid, ref message } => {
                assert_eq!(pid, Pid(0));
                assert!(message.contains("actual bug"));
            }
            ref k => panic!("wrong kind: {k:?}"),
        }
    }

    #[test]
    fn watchdog_reports_a_wedge_as_deadlock() {
        let mut rt = RtSim::with_config(RtConfig {
            watchdog: Duration::from_millis(50),
            ..RtConfig::default()
        });
        // A thread that blocks forever: park on a condvar nobody signals.
        rt.spawn("stuck", |_| {
            let m = Mutex::new(());
            let cv = Condvar::new();
            let mut g = m.lock();
            loop {
                cv.wait_for(&mut g, Duration::from_secs(3600));
            }
        });
        let err = rt.run().expect_err("watchdog must fire");
        assert!(err.is_deadlock());
        assert!(err.to_string().contains("stuck") || format!("{:?}", err.kind).contains("stuck"));
    }

    #[test]
    fn wall_budget_maps_ticks_and_respects_expiry() {
        let mut rt = RtSim::new();
        rt.spawn("p", |ctx| {
            let b = ctx.wall_budget(10u64).expect("relative deadline");
            assert!(b >= Duration::from_millis(1));
            assert_eq!(ctx.wall_budget(Deadline::at(Time(0))), None, "already due");
        });
        rt.run().expect("clean run");
    }

    #[test]
    fn jitter_streams_do_not_change_verdicts() {
        for seed in [1u64, 2, 3] {
            let mut rt = RtSim::with_config(RtConfig {
                jitter_seed: Some(seed),
                ..RtConfig::default()
            });
            for i in 0..3 {
                rt.spawn(&format!("p{i}"), |ctx| {
                    for _ in 0..5 {
                        ctx.chaos();
                    }
                });
            }
            rt.run().expect("jitter is noise, not failure");
        }
    }
}
