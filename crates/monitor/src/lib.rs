#![forbid(unsafe_code)]
#![deny(deprecated)]
//! Hoare monitors over the `bloom-sim` deterministic simulator.
//!
//! This crate reproduces the monitor construct of Hoare's "Monitors: An
//! Operating System Structuring Concept" (CACM 1974), which is one of the
//! three mechanisms Bloom's paper evaluates (§5.2). A [`Monitor`] couples:
//!
//! * **mutual exclusion** — at most one process executes *inside* the
//!   monitor at a time (possession);
//! * **condition variables** ([`Cond`]) — queues a process can `wait` on
//!   while automatically releasing possession, and `signal` to resume a
//!   waiter;
//! * an **urgent queue** — under Hoare semantics a signaller steps aside
//!   for the signalled process and is resumed *before* any process waiting
//!   to enter;
//! * **priority (conditional) wait** — `wait_priority(cond, p)` wakes
//!   lowest-`p` first (Hoare's disk-head scheduler uses this to order
//!   requests by track number — *request parameter* information in Bloom's
//!   taxonomy);
//! * **queue interrogation** — `Cond::is_empty`/`len`/`min_priority` expose
//!   whether anyone waits (Bloom's *synchronization state* information).
//!
//! Two signalling disciplines are provided, selected at construction:
//!
//! * [`Signaling::Hoare`] — signal-and-wait: possession passes directly to
//!   the signalled process, so the condition it was signalled about is
//!   *guaranteed* to hold when it resumes. The signaller parks on the
//!   urgent queue.
//! * [`Signaling::SignalAndContinue`] — Mesa semantics: the signaller keeps
//!   possession; the signalled process re-contends for entry and must
//!   re-check its condition in a loop (a barger may have invalidated it).
//!
//! Bloom's §5.2 findings reproduced by this crate's tests and the
//! `bloom-problems` solutions:
//!
//! * monitor queues handle *request type* (one queue per type) and
//!   *request time* (FIFO within a queue) but the two **conflict** when a
//!   problem needs both, forcing the two-stage queuing idiom;
//! * the explicit signal forces the implementor to decide a total wake
//!   order, so exclusion constraints cannot be written without priority
//!   constraints;
//! * nested monitor calls deadlock (Lister's problem), while the
//!   shared-resource structuring of §2 avoids it.
//!
//! # Example: a one-slot buffer
//!
//! ```
//! use bloom_monitor::{Cond, Monitor};
//! use bloom_sim::Sim;
//! use std::sync::Arc;
//!
//! struct Slot { full: bool, value: i64 }
//!
//! let mut sim = Sim::new();
//! let m = Arc::new(Monitor::hoare("slot", Slot { full: false, value: 0 }));
//! let not_full = Arc::new(Cond::new("not_full"));
//! let not_empty = Arc::new(Cond::new("not_empty"));
//!
//! let (m2, nf, ne) = (Arc::clone(&m), Arc::clone(&not_full), Arc::clone(&not_empty));
//! sim.spawn("producer", move |ctx| {
//!     m2.enter(ctx, |mc| {
//!         while mc.state(|s| s.full) {
//!             mc.wait(&nf);
//!         }
//!         mc.state(|s| { s.full = true; s.value = 42; });
//!         mc.signal(&ne);
//!     });
//! });
//! let (m3, nf, ne) = (Arc::clone(&m), Arc::clone(&not_full), Arc::clone(&not_empty));
//! sim.spawn("consumer", move |ctx| {
//!     let got = m3.enter(ctx, |mc| {
//!         while !mc.state(|s| s.full) {
//!             mc.wait(&ne);
//!         }
//!         mc.state(|s| { s.full = false; s.value })
//!     });
//!     assert_eq!(got, 42);
//!     m3.enter(ctx, |mc| mc.signal(&nf));
//! });
//! sim.run().unwrap();
//! ```

use bloom_sim::{Access, Ctx, Deadline, ObjId, Pid, Poisoned, WaitQueue};
use parking_lot::Mutex;
use std::sync::Arc;

/// Signal discipline of a [`Monitor`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Signaling {
    /// Hoare's signal-and-wait: possession is handed to the signalled
    /// process immediately; the signaller parks on the urgent queue and is
    /// resumed with priority over new entrants. The signalled process may
    /// assume its condition holds.
    Hoare,
    /// Mesa-style signal-and-continue: the signaller keeps possession; the
    /// signalled process is moved to the entry competition and must
    /// re-check its condition on resumption.
    SignalAndContinue,
    /// Howard's signal-and-exit (SR): the signal takes effect when the
    /// signaller *leaves* the monitor, handing possession directly to the
    /// signalled process — the signaller never re-enters, so no urgent
    /// queue is needed and, like Hoare semantics, the signalled condition
    /// is guaranteed to hold on resumption.
    SignalAndExit,
}

/// A condition variable.
///
/// Conditions are free-standing objects used *with* a monitor's
/// [`MonitorCtx`]; creating one per logical predicate ("not full",
/// "not empty") matches Hoare's usage. The interrogation methods implement
/// Hoare's `queue`/`minrank` operations.
#[derive(Debug)]
pub struct Cond {
    queue: WaitQueue,
}

impl Cond {
    /// Creates a condition with a diagnostic name.
    pub fn new(name: &str) -> Self {
        Cond {
            queue: WaitQueue::new(name),
        }
    }

    /// Number of processes waiting on this condition.
    ///
    /// **Explore-unsafe probe**: records no footprint, so a monitor body
    /// that branches on it is invisible to the object-granular prune.
    /// Solution code must use [`Cond::len_ctx`]; this bare form exists
    /// for test assertions and post-run inspection.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Instrumented [`Cond::len`] (footprint-recorded read).
    pub fn len_ctx(&self, ctx: &Ctx) -> usize {
        self.queue.len_ctx(ctx)
    }

    /// Whether no process waits on this condition (Hoare's `¬queue`).
    ///
    /// **Explore-unsafe probe** — see [`Cond::len`]; solution code must
    /// use [`Cond::is_empty_ctx`].
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Instrumented [`Cond::is_empty`] (footprint-recorded read).
    pub fn is_empty_ctx(&self, ctx: &Ctx) -> bool {
        self.queue.is_empty_ctx(ctx)
    }

    /// Priority of the frontmost waiter (Hoare's `minrank`), if any.
    ///
    /// **Explore-unsafe probe** — see [`Cond::len`]; solution code must
    /// use [`Cond::min_priority_ctx`].
    pub fn min_priority(&self) -> Option<i64> {
        self.queue.min_priority()
    }

    /// Instrumented [`Cond::min_priority`] (footprint-recorded read).
    pub fn min_priority_ctx(&self, ctx: &Ctx) -> Option<i64> {
        self.queue.min_priority_ctx(ctx)
    }

    /// The condition's diagnostic name.
    pub fn name(&self) -> &str {
        self.queue.name()
    }
}

/// A monitor protecting state `S`.
///
/// All access to `S` happens inside [`Monitor::enter`], via
/// [`MonitorCtx::state`]; possession (the implicit monitor lock) is held
/// for the duration of the `enter` body except while waiting on a
/// condition.
///
/// # Crash safety
///
/// A process that dies (fault-plan kill or panic) while *holding
/// possession* poisons the monitor: the protected state may be mid-update,
/// so instead of silently wedging everyone behind the dead holder, the
/// monitor records a [`Poisoned`] verdict, dissolves possession, and wakes
/// every entry/urgent waiter plus the waiters of every condition passed to
/// [`Monitor::register_cond`]. Woken processes and later entrants observe
/// the poison: [`Monitor::try_enter`] and [`MonitorCtx::wait_checked`]
/// return it as a value; plain [`Monitor::enter`] and [`MonitorCtx::wait`]
/// panic, keeping the failure loud. A process that dies while *waiting on
/// a condition* (it holds nothing) is merely dequeued — the monitor stays
/// healthy.
#[derive(Debug)]
pub struct Monitor<S> {
    name: String,
    /// Identity for object-granular dependency tracking.
    obj: ObjId,
    signaling: Signaling,
    /// Whether some process currently has possession.
    busy: Mutex<bool>,
    /// Which process has (or was just handed) possession; `None` when open.
    holder: Mutex<Option<Pid>>,
    /// Set when a holder died mid-body; sticky once set.
    poisoned: Mutex<Option<Poisoned>>,
    /// Conditions to broadcast-wake if the monitor is poisoned.
    watched: Mutex<Vec<Arc<Cond>>>,
    entry: WaitQueue,
    urgent: WaitQueue,
    /// Signal-and-exit only: the process the next release hands off to.
    pending_handoff: Mutex<Option<bloom_sim::Pid>>,
    state: Mutex<S>,
}

impl<S: Send> Monitor<S> {
    /// Creates a monitor with the given signal discipline.
    pub fn new(name: &str, signaling: Signaling, initial: S) -> Self {
        Monitor {
            name: name.to_string(),
            obj: ObjId::new("monitor", name),
            signaling,
            busy: Mutex::new(false),
            holder: Mutex::new(None),
            poisoned: Mutex::new(None),
            watched: Mutex::new(Vec::new()),
            entry: WaitQueue::new(&format!("{name}.entry")),
            urgent: WaitQueue::new(&format!("{name}.urgent")),
            pending_handoff: Mutex::new(None),
            state: Mutex::new(initial),
        }
    }

    /// Creates a monitor with Hoare signal-and-wait semantics.
    pub fn hoare(name: &str, initial: S) -> Self {
        Monitor::new(name, Signaling::Hoare, initial)
    }

    /// Creates a monitor with Mesa signal-and-continue semantics.
    pub fn mesa(name: &str, initial: S) -> Self {
        Monitor::new(name, Signaling::SignalAndContinue, initial)
    }

    /// Creates a monitor with Howard signal-and-exit semantics.
    pub fn signal_and_exit(name: &str, initial: S) -> Self {
        Monitor::new(name, Signaling::SignalAndExit, initial)
    }

    /// The monitor's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The configured signal discipline.
    pub fn signaling(&self) -> Signaling {
        self.signaling
    }

    /// Runs `body` with possession of the monitor.
    ///
    /// Entry blocks while another process has possession. The body receives
    /// a [`MonitorCtx`] through which it accesses the protected state and
    /// the condition operations.
    ///
    /// # Panics
    ///
    /// Panics if the monitor is poisoned (a previous holder died inside its
    /// body). Use [`Monitor::try_enter`] to handle poisoning as a value.
    pub fn enter<R>(&self, ctx: &Ctx, body: impl FnOnce(&MonitorCtx<'_, S>) -> R) -> R {
        match self.try_enter(ctx, body) {
            Ok(r) => r,
            Err(p) => panic!("{p}"),
        }
    }

    /// Runs `body` with possession, surfacing poisoning instead of
    /// panicking. The body is not entered on a poisoned monitor.
    pub fn try_enter<R>(
        &self,
        ctx: &Ctx,
        body: impl FnOnce(&MonitorCtx<'_, S>) -> R,
    ) -> Result<R, Poisoned> {
        if let Some(p) = self.observe_poison(ctx) {
            return Err(p);
        }
        self.acquire(ctx);
        if let Some(p) = self.observe_poison(ctx) {
            // We were woken by the poison broadcast, not a possession
            // hand-off; there is nothing to release.
            return Err(p);
        }
        let cleanup = PoisonOnUnwind { monitor: self, ctx };
        let mc = MonitorCtx { monitor: self, ctx };
        let r = body(&mc);
        std::mem::forget(cleanup);
        if self.poisoned.lock().is_some() {
            // Possession dissolved while the body waited on a condition
            // (the dying holder broadcast); the body already observed the
            // poison through `wait_checked` and chose its return value.
            return Ok(r);
        }
        self.release(ctx);
        Ok(r)
    }

    /// Registers `cond` for the poison broadcast: if a holder dies, waiters
    /// on registered conditions are woken (and observe the poison) instead
    /// of sleeping forever on a condition nobody will ever signal again.
    pub fn register_cond(&self, cond: &Arc<Cond>) {
        self.watched.lock().push(Arc::clone(cond));
    }

    /// Whether a previous holder died inside the monitor.
    ///
    /// **Explore-unsafe probe** — see [`Cond::len`]; solution code that
    /// branches on poisoning must use [`Monitor::is_poisoned_ctx`].
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.lock().is_some()
    }

    /// Instrumented [`Monitor::is_poisoned`] (footprint-recorded read).
    pub fn is_poisoned_ctx(&self, ctx: &Ctx) -> bool {
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        self.is_poisoned()
    }

    /// Clones the poison verdict, recording the observation in the trace.
    fn observe_poison(&self, ctx: &Ctx) -> Option<Poisoned> {
        // Reads shared state (the poison flag) — and is called at every
        // post-wake point, so it also marks resumed quanta as impure for
        // the explorer (see `Ctx::note_sync_obj`).
        ctx.note_sync_obj_op(&self.obj, Access::Read);
        let p = self.poisoned.lock().clone()?;
        ctx.emit(&format!("poison-seen:{}", self.name), &[]);
        Some(p)
    }

    fn acquire(&self, ctx: &Ctx) {
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        let got = {
            let mut busy = self.busy.lock();
            if *busy {
                false
            } else {
                *busy = true;
                true
            }
        };
        if got {
            *self.holder.lock() = Some(ctx.pid());
        } else {
            // Possession is handed to us directly when we are woken; the
            // busy flag stays true across the hand-off (the releaser also
            // records us as the new holder).
            self.entry.wait(ctx);
        }
    }

    fn release(&self, ctx: &Ctx) {
        ctx.note_sync_obj_op(&self.obj, Access::Write);
        // Signal-and-exit: a deferred signal takes effect now, handing
        // possession straight to the signalled process.
        if let Some(pid) = self.pending_handoff.lock().take() {
            *self.holder.lock() = Some(pid);
            ctx.unpark(pid);
            return; // hand-off: busy stays true
        }
        // Hoare: the urgent queue (paused signallers) beats the entry queue.
        if let Some(pid) = self.urgent.wake_one(ctx) {
            *self.holder.lock() = Some(pid);
            return; // hand-off: busy stays true
        }
        if let Some(pid) = self.entry.wake_one(ctx) {
            *self.holder.lock() = Some(pid);
            return; // hand-off: busy stays true
        }
        *self.busy.lock() = false;
        *self.holder.lock() = None;
    }
}

/// Poisons a [`Monitor`] whose holder's body unwound (kill or panic).
///
/// Armed for the whole `enter` body and disarmed with `mem::forget` on the
/// normal path. The holder check makes the guard a no-op when the process
/// dies *waiting on a condition* — it holds nothing then, and its queue
/// entry is removed by the wait's own unwind guard.
struct PoisonOnUnwind<'a, S> {
    monitor: &'a Monitor<S>,
    ctx: &'a Ctx,
}

impl<S> Drop for PoisonOnUnwind<'_, S> {
    fn drop(&mut self) {
        if self.ctx.cancelling() {
            return;
        }
        if *self.monitor.holder.lock() != Some(self.ctx.pid()) {
            return;
        }
        *self.monitor.poisoned.lock() = Some(Poisoned {
            primitive: self.monitor.name.clone(),
            by: self.ctx.pid(),
        });
        self.ctx.emit(&format!("poison:{}", self.monitor.name), &[]);
        // Dissolve possession and wake everyone so they observe the poison
        // instead of wedging: entry and urgent waiters, a deferred
        // signal-and-exit grantee, and the waiters of registered conditions.
        *self.monitor.busy.lock() = false;
        *self.monitor.holder.lock() = None;
        if let Some(pid) = self.monitor.pending_handoff.lock().take() {
            self.ctx.try_unpark(pid);
        }
        self.monitor.entry.wake_all(self.ctx);
        self.monitor.urgent.wake_all(self.ctx);
        for cond in self.monitor.watched.lock().iter() {
            cond.queue.wake_all(self.ctx);
        }
    }
}

/// Removes the parked process's own queue entry if the park unwinds —
/// a kill-point while waiting on a condition or the urgent queue must not
/// leave a dead entry for a later signal to be wasted on.
struct DequeueOnUnwind<'a> {
    queue: &'a WaitQueue,
    ctx: &'a Ctx,
}

impl Drop for DequeueOnUnwind<'_> {
    fn drop(&mut self) {
        self.queue.remove_current(self.ctx);
    }
}

/// Capability to use a monitor from inside [`Monitor::enter`].
#[derive(Debug)]
pub struct MonitorCtx<'a, S> {
    monitor: &'a Monitor<S>,
    ctx: &'a Ctx,
}

impl<S: Send> MonitorCtx<'_, S> {
    /// Accesses the protected state.
    ///
    /// # Panics
    ///
    /// Panics on re-entrant use (calling `state` inside another `state`
    /// closure, or waiting inside one), which would otherwise deadlock.
    pub fn state<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        // Protected-state access is exactly the kernel-invisible effect
        // the purity analysis must see. `f` takes `&mut S`, so conservatively
        // a write even when the closure only reads.
        self.ctx.note_sync_obj_op(&self.monitor.obj, Access::Write);
        let mut guard = self
            .monitor
            .state
            .try_lock()
            .expect("monitor state re-entered: do not nest state()/wait() calls");
        f(&mut guard)
    }

    /// The simulator context of the process inside the monitor.
    pub fn ctx(&self) -> &Ctx {
        self.ctx
    }

    /// Waits on `cond`, releasing possession until signalled.
    ///
    /// # Panics
    ///
    /// Panics if the wake came from a poison broadcast (the holder died);
    /// use [`MonitorCtx::wait_checked`] to handle that as a value.
    pub fn wait(&self, cond: &Cond) {
        self.wait_priority(cond, 0);
    }

    /// Hoare's conditional wait: waiters are signalled in increasing
    /// `priority` order (FIFO among equals). Panics on a poison wake, like
    /// [`MonitorCtx::wait`].
    pub fn wait_priority(&self, cond: &Cond, priority: i64) {
        if let Err(p) = self.wait_priority_checked(cond, priority) {
            panic!("{p}");
        }
    }

    /// Like [`MonitorCtx::wait`], but a wake caused by the monitor being
    /// poisoned returns the verdict instead of panicking. On `Err` the
    /// caller does *not* have possession and must leave the body promptly.
    pub fn wait_checked(&self, cond: &Cond) -> Result<(), Poisoned> {
        self.wait_priority_checked(cond, 0)
    }

    /// Priority variant of [`MonitorCtx::wait_checked`].
    pub fn wait_priority_checked(&self, cond: &Cond, priority: i64) -> Result<(), Poisoned> {
        // Enqueue, release possession, park: atomic under the cooperative
        // invariant. If we die while parked, the unwind guard removes our
        // entry so a later signal is never wasted on a corpse.
        cond.queue.enqueue_current(self.ctx, priority);
        self.monitor.release(self.ctx);
        let cleanup = DequeueOnUnwind {
            queue: &cond.queue,
            ctx: self.ctx,
        };
        self.ctx.park(cond.queue.name());
        std::mem::forget(cleanup);
        if let Some(p) = self.monitor.observe_poison(self.ctx) {
            return Err(p);
        }
        if self.monitor.signaling == Signaling::SignalAndContinue {
            // Mesa: we were only made runnable; re-contend for possession.
            self.monitor.acquire(self.ctx);
            if let Some(p) = self.monitor.observe_poison(self.ctx) {
                // The holder died while we sat on the entry queue.
                return Err(p);
            }
        }
        // Hoare: possession was handed to us by the signaller.
        Ok(())
    }

    /// Timed [`MonitorCtx::wait`]: waits on `cond` until `deadline` at the
    /// latest. Accepts anything convertible into a [`Deadline`] — a tick
    /// count (`u64`), a `Duration`, or an explicit [`Deadline`]. Returns
    /// `true` if signalled, `false` if the wait timed out. An
    /// already-expired deadline returns `false` immediately — possession is
    /// never released and no scheduling point is consumed.
    ///
    /// On timeout the waiter *withdraws*: it removes its condition
    /// registration and re-enters like a fresh entrant, so the body resumes
    /// with possession either way and the monitor invariant is preserved.
    /// A signal that raced the timeout and skipped the stale entry falls
    /// through to the next waiter (or becomes a no-op) exactly as a
    /// release-time rescan would. Mesa callers must re-check their
    /// predicate on *both* return values, as always.
    ///
    /// # Panics
    ///
    /// Panics on a poison wake (use [`MonitorCtx::wait_by_checked`]) and
    /// under [`Signaling::SignalAndExit`], whose deferred hand-off cannot
    /// be withdrawn once granted.
    pub fn wait_by(&self, cond: &Cond, deadline: impl Into<Deadline>) -> bool {
        match self.wait_by_checked(cond, deadline) {
            Ok(signalled) => signalled,
            Err(p) => panic!("{p}"),
        }
    }

    /// Like [`MonitorCtx::wait_by`], but a poison wake (or a poisoning
    /// discovered while re-entering after a timeout) is returned as a value.
    /// On `Err` the caller does *not* have possession and must leave the
    /// body promptly. An expired deadline returns `Ok(false)` without a
    /// poison check — possession was never released, so the caller's view
    /// of the monitor is unchanged.
    pub fn wait_by_checked(
        &self,
        cond: &Cond,
        deadline: impl Into<Deadline>,
    ) -> Result<bool, Poisoned> {
        assert!(
            self.monitor.signaling != Signaling::SignalAndExit,
            "timed waits are not supported under signal-and-exit semantics: \
             a deferred hand-off cannot be withdrawn"
        );
        let Some(ticks) = self.ctx.remaining(deadline) else {
            return Ok(false);
        };
        cond.queue.enqueue_current(self.ctx, 0);
        self.monitor.release(self.ctx);
        let cleanup = DequeueOnUnwind {
            queue: &cond.queue,
            ctx: self.ctx,
        };
        let woken = self.ctx.park_timeout(cond.queue.name(), ticks);
        std::mem::forget(cleanup);
        if !woken {
            // Withdraw: remove the stale registration (idempotent — a
            // signaller may already have skipped past it) and re-acquire
            // possession as a fresh entrant.
            cond.queue.remove_current(self.ctx);
            self.monitor.acquire(self.ctx);
            if let Some(p) = self.monitor.observe_poison(self.ctx) {
                return Err(p);
            }
            return Ok(false);
        }
        if let Some(p) = self.monitor.observe_poison(self.ctx) {
            return Err(p);
        }
        if self.monitor.signaling == Signaling::SignalAndContinue {
            // Mesa: we were only made runnable; re-contend for possession.
            self.monitor.acquire(self.ctx);
            if let Some(p) = self.monitor.observe_poison(self.ctx) {
                return Err(p);
            }
        }
        Ok(true)
    }

    /// Signals `cond`: resumes its frontmost waiter, if any.
    ///
    /// Under Hoare semantics possession passes to the signalled process and
    /// the signaller parks on the urgent queue; under Mesa semantics the
    /// signalled process simply becomes runnable and will re-enter later.
    /// Signalling an empty condition is a no-op in both disciplines.
    ///
    /// # Panics
    ///
    /// Panics under Hoare semantics if the signalled process dies with
    /// possession before handing it back (the urgent-queue wake is then a
    /// poison broadcast); use [`MonitorCtx::signal_checked`] to handle
    /// that as a value.
    pub fn signal(&self, cond: &Cond) {
        if let Err(p) = self.signal_checked(cond) {
            panic!("{p}");
        }
    }

    /// Like [`MonitorCtx::signal`], but a Hoare signaller woken by the
    /// poison broadcast of a dying signallee gets the verdict back instead
    /// of panicking. On `Err` the caller does *not* have possession and
    /// must leave the body promptly. Mesa and signal-and-exit signallers
    /// never park, so they always return `Ok`.
    pub fn signal_checked(&self, cond: &Cond) -> Result<(), Poisoned> {
        // The empty-queue probes below are ctx-less and kernel-invisible.
        self.ctx.note_sync_obj_op(&self.monitor.obj, Access::Write);
        match self.monitor.signaling {
            Signaling::Hoare => {
                if cond.queue.is_empty() {
                    return Ok(());
                }
                // Step aside for the signalled process: enqueue ourselves
                // urgent, wake it (hand-off), park.
                self.monitor.urgent.enqueue_current(self.ctx, 0);
                let Some(pid) = cond.queue.wake_one(self.ctx) else {
                    // Every entry was stale — timed-out waiters that have
                    // not yet withdrawn (see `wait_by_checked`). The
                    // signal is a no-op after all; take back the urgent
                    // registration and keep possession.
                    self.monitor.urgent.remove_current(self.ctx);
                    return Ok(());
                };
                *self.monitor.holder.lock() = Some(pid);
                let cleanup = DequeueOnUnwind {
                    queue: &self.monitor.urgent,
                    ctx: self.ctx,
                };
                self.ctx.park(self.monitor.urgent.name());
                std::mem::forget(cleanup);
                // Resumed: possession handed back to us — unless the wake
                // was the poison broadcast of a dying holder.
                if let Some(p) = self.monitor.observe_poison(self.ctx) {
                    return Err(p);
                }
            }
            Signaling::SignalAndContinue => {
                cond.queue.wake_one(self.ctx);
            }
            Signaling::SignalAndExit => {
                if cond.queue.is_empty() {
                    return Ok(());
                }
                // Defer the hand-off to the moment we leave the monitor:
                // take the waiter off the condition but leave it parked.
                let pid = cond.queue.take_front().expect("non-empty condition");
                let mut pending = self.monitor.pending_handoff.lock();
                assert!(
                    pending.is_none(),
                    "signal-and-exit permits one effective signal per monitor entry"
                );
                *pending = Some(pid);
            }
        }
        Ok(())
    }

    /// Wakes every waiter on `cond` (broadcast).
    ///
    /// # Panics
    ///
    /// Panics under [`Signaling::Hoare`]: broadcast is meaningless when
    /// possession is handed to exactly one signalled process.
    pub fn signal_all(&self, cond: &Cond) {
        assert!(
            self.monitor.signaling == Signaling::SignalAndContinue,
            "signal_all requires signal-and-continue semantics"
        );
        cond.queue.wake_all(self.ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bloom_sim::{RandomPolicy, Sim};
    use std::sync::Arc;

    #[test]
    fn enter_bodies_are_mutually_exclusive() {
        for signaling in [Signaling::Hoare, Signaling::SignalAndContinue] {
            let mut sim = Sim::new();
            let m = Arc::new(Monitor::new("m", signaling, (0u32, 0u32)));
            for i in 0..5 {
                let m = Arc::clone(&m);
                sim.spawn(&format!("w{i}"), move |ctx| {
                    for _ in 0..3 {
                        m.enter(ctx, |mc| {
                            mc.state(|s| {
                                s.0 += 1;
                                s.1 = s.1.max(s.0);
                            });
                            // Possession is held across scheduling points.
                            mc.ctx().yield_now();
                            mc.state(|s| s.0 -= 1);
                        });
                        ctx.yield_now();
                    }
                });
            }
            // Occupancy may only ever be 1: the yield inside the body would
            // expose any exclusion failure.
            let m2 = Arc::clone(&m);
            sim.run().unwrap();
            assert_eq!(m2.state.lock().1, 1, "{signaling:?}: exclusion violated");
        }
    }

    /// Hoare signal hands possession straight to the signalled process: it
    /// runs before the signaller's post-signal code.
    #[test]
    fn hoare_signal_passes_possession_immediately() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::hoare("m", false));
        let c = Arc::new(Cond::new("c"));
        let order = Arc::new(Mutex::new(Vec::new()));

        let (m1, c1, o1) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("waiter", move |ctx| {
            m1.enter(ctx, |mc| {
                if !mc.state(|s| *s) {
                    mc.wait(&c1);
                }
                // Hoare guarantee: no re-check loop needed.
                assert!(mc.state(|s| *s), "condition must hold at wake (Hoare)");
                o1.lock().push("waiter-resumed");
            });
        });
        let (m2, c2, o2) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("signaller", move |ctx| {
            ctx.yield_now(); // let the waiter park
            m2.enter(ctx, |mc| {
                mc.state(|s| *s = true);
                o2.lock().push("pre-signal");
                mc.signal(&c2);
                o2.lock().push("post-signal");
            });
        });
        sim.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec!["pre-signal", "waiter-resumed", "post-signal"],
            "signalled process runs before the signaller continues"
        );
    }

    /// Mesa signal-and-continue: the signaller finishes its body first.
    #[test]
    fn mesa_signaller_continues_before_waiter() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::mesa("m", false));
        let c = Arc::new(Cond::new("c"));
        let order = Arc::new(Mutex::new(Vec::new()));

        let (m1, c1, o1) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("waiter", move |ctx| {
            m1.enter(ctx, |mc| {
                while !mc.state(|s| *s) {
                    mc.wait(&c1);
                }
                o1.lock().push("waiter-resumed");
            });
        });
        let (m2, c2, o2) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("signaller", move |ctx| {
            ctx.yield_now();
            m2.enter(ctx, |mc| {
                mc.state(|s| *s = true);
                mc.signal(&c2);
                o2.lock().push("post-signal");
            });
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["post-signal", "waiter-resumed"]);
    }

    /// Under Mesa semantics a barger can invalidate the signalled
    /// condition, so the while-loop re-check is *required*: the waiter
    /// observes the condition false again and waits a second time.
    #[test]
    fn mesa_requires_recheck_after_barging() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::mesa("m", 0i64)); // tokens available
        let c = Arc::new(Cond::new("tokens"));
        let waits = Arc::new(Mutex::new(0u32));

        let (m1, c1, w1) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&waits));
        sim.spawn("waiter", move |ctx| {
            m1.enter(ctx, |mc| {
                while mc.state(|s| *s) == 0 {
                    *w1.lock() += 1;
                    mc.wait(&c1);
                }
                mc.state(|s| *s -= 1);
            });
        });
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("producer", move |ctx| {
            ctx.yield_now(); // waiter parks
            m2.enter(ctx, |mc| {
                mc.state(|s| *s += 1);
                mc.signal(&c2);
            });
            // The waiter is runnable but has not re-entered yet.
        });
        let m3 = Arc::clone(&m);
        sim.spawn("barger", move |ctx| {
            ctx.yield_now();
            // Runs after the producer released but, under FIFO, before the
            // signalled waiter re-acquires: steals the token.
            m3.enter(ctx, |mc| {
                mc.state(|s| {
                    if *s > 0 {
                        *s -= 1;
                    }
                });
            });
        });
        let (m4, c4) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("producer2", move |ctx| {
            for _ in 0..6 {
                ctx.yield_now();
            }
            m4.enter(ctx, |mc| {
                mc.state(|s| *s += 1);
                mc.signal(&c4);
            });
        });
        sim.run().unwrap();
        assert_eq!(
            *waits.lock(),
            2,
            "waiter had to wait twice (barging stole the token)"
        );
        assert_eq!(
            *m.state.lock(),
            0,
            "exactly the two produced tokens were consumed"
        );
    }

    #[test]
    fn signal_on_empty_condition_is_noop() {
        for signaling in [Signaling::Hoare, Signaling::SignalAndContinue] {
            let mut sim = Sim::new();
            let m = Arc::new(Monitor::new("m", signaling, ()));
            let c = Arc::new(Cond::new("c"));
            let (m1, c1) = (Arc::clone(&m), Arc::clone(&c));
            sim.spawn("solo", move |ctx| {
                m1.enter(ctx, |mc| {
                    mc.signal(&c1);
                    mc.ctx().emit("survived", &[]);
                });
            });
            let report = sim.run().unwrap();
            assert_eq!(report.trace.count_user("survived"), 1);
        }
    }

    #[test]
    fn priority_wait_orders_wakeups_by_rank() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::hoare("m", ()));
        let c = Arc::new(Cond::new("ranked"));
        let order = Arc::new(Mutex::new(Vec::new()));
        for (i, rank) in [(0, 30i64), (1, 10), (2, 20)] {
            let (m, c, order) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
            sim.spawn(&format!("w{i}"), move |ctx| {
                m.enter(ctx, |mc| {
                    mc.wait_priority(&c, rank);
                    order.lock().push(rank);
                });
            });
        }
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("drain", move |ctx| {
            for _ in 0..4 {
                ctx.yield_now();
            }
            assert_eq!(c2.min_priority(), Some(10));
            for _ in 0..3 {
                m2.enter(ctx, |mc| mc.signal(&c2));
            }
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec![10, 20, 30]);
    }

    /// The urgent queue: a Hoare signaller resumes before processes waiting
    /// on the entry queue.
    #[test]
    fn urgent_queue_beats_entry_queue() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::hoare("m", ()));
        let c = Arc::new(Cond::new("c"));
        let order = Arc::new(Mutex::new(Vec::new()));

        let (m1, c1, o1) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("waiter", move |ctx| {
            m1.enter(ctx, |mc| {
                mc.wait(&c1);
                o1.lock().push("waiter");
            });
        });
        let (m2, c2, o2) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("signaller", move |ctx| {
            ctx.yield_now();
            m2.enter(ctx, |mc| {
                mc.signal(&c2);
                o2.lock().push("signaller-resumed");
            });
        });
        let (m3, o3) = (Arc::clone(&m), Arc::clone(&order));
        sim.spawn("entrant", move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            // Arrives while the signaller is inside: parks on entry.
            m3.enter(ctx, |_| {
                o3.lock().push("entrant");
            });
        });
        sim.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec!["waiter", "signaller-resumed", "entrant"],
            "urgent (signaller) resumes before the entry queue"
        );
    }

    #[test]
    fn signal_all_broadcasts_under_mesa() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::mesa("m", true));
        let c = Arc::new(Cond::new("gate"));
        let through = Arc::new(Mutex::new(0));
        for i in 0..4 {
            let (m, c, t) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&through));
            sim.spawn(&format!("w{i}"), move |ctx| {
                m.enter(ctx, |mc| {
                    while mc.state(|closed| *closed) {
                        mc.wait(&c);
                    }
                    *t.lock() += 1;
                });
            });
        }
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("opener", move |ctx| {
            for _ in 0..5 {
                ctx.yield_now();
            }
            m2.enter(ctx, |mc| {
                mc.state(|closed| *closed = false);
                mc.signal_all(&c2);
            });
        });
        sim.run().unwrap();
        assert_eq!(*through.lock(), 4);
    }

    #[test]
    fn signal_all_panics_under_hoare() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::hoare("m", ()));
        let c = Arc::new(Cond::new("c"));
        sim.spawn("offender", move |ctx| {
            m.enter(ctx, |mc| mc.signal_all(&c));
        });
        let err = sim.run().expect_err("must fail");
        assert!(
            err.to_string().contains("signal_and_continue")
                || err.to_string().contains("signal-and-continue")
        );
    }

    /// Howard's signal-and-exit: the signal takes effect at monitor exit,
    /// the signalled process resumes with the condition guaranteed (like
    /// Hoare), and the signaller never waits on an urgent queue.
    #[test]
    fn signal_and_exit_hands_off_at_release() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::signal_and_exit("m", false));
        let c = Arc::new(Cond::new("c"));
        let order = Arc::new(Mutex::new(Vec::new()));

        let (m1, c1, o1) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("waiter", move |ctx| {
            m1.enter(ctx, |mc| {
                if !mc.state(|s| *s) {
                    mc.wait(&c1);
                }
                assert!(mc.state(|s| *s), "condition guaranteed at wake (SR)");
                o1.lock().push("waiter-resumed");
            });
        });
        let (m2, c2, o2) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("signaller", move |ctx| {
            ctx.yield_now();
            m2.enter(ctx, |mc| {
                mc.state(|s| *s = true);
                mc.signal(&c2);
                // Unlike Hoare, the signaller keeps running: the hand-off
                // happens only when this body returns.
                o2.lock().push("post-signal-still-inside");
            });
            o2.lock().push("signaller-left");
        });
        sim.run().unwrap();
        assert_eq!(
            *order.lock(),
            vec![
                "post-signal-still-inside",
                "signaller-left",
                "waiter-resumed"
            ],
            "the signal takes effect at exit, not at the signal statement"
        );
    }

    /// Signal-and-exit hand-off beats the entry queue, like the urgent
    /// queue does under Hoare semantics.
    #[test]
    fn signal_and_exit_handoff_beats_entry_queue() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::signal_and_exit("m", ()));
        let c = Arc::new(Cond::new("c"));
        let order = Arc::new(Mutex::new(Vec::new()));
        let (m1, c1, o1) = (Arc::clone(&m), Arc::clone(&c), Arc::clone(&order));
        sim.spawn("waiter", move |ctx| {
            m1.enter(ctx, |mc| {
                mc.wait(&c1);
                o1.lock().push("waiter");
            });
        });
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("signaller", move |ctx| {
            ctx.yield_now();
            m2.enter(ctx, |mc| mc.signal(&c2));
        });
        let (m3, o3) = (Arc::clone(&m), Arc::clone(&order));
        sim.spawn("entrant", move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            m3.enter(ctx, |_| o3.lock().push("entrant"));
        });
        sim.run().unwrap();
        assert_eq!(*order.lock(), vec!["waiter", "entrant"]);
    }

    #[test]
    fn signal_and_exit_rejects_two_signals_per_entry() {
        let mut sim = Sim::new();
        let m = Arc::new(Monitor::signal_and_exit("m", ()));
        let c = Arc::new(Cond::new("c"));
        for i in 0..2 {
            let (m, c) = (Arc::clone(&m), Arc::clone(&c));
            sim.spawn(&format!("w{i}"), move |ctx| {
                m.enter(ctx, |mc| mc.wait(&c));
            });
        }
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("offender", move |ctx| {
            for _ in 0..3 {
                ctx.yield_now();
            }
            m2.enter(ctx, |mc| {
                mc.signal(&c2);
                mc.signal(&c2); // second effective signal: error
            });
        });
        let err = sim.run().expect_err("double signal must fail");
        assert!(err.to_string().contains("one effective signal"));
    }

    /// Lister's nested monitor call problem (paper §5.2, [12]/[18]): waiting
    /// inside an inner monitor while holding an outer one deadlocks, because
    /// the outer monitor is not released.
    #[test]
    fn nested_monitor_call_deadlocks() {
        let mut sim = Sim::new();
        let outer = Arc::new(Monitor::hoare("outer", ()));
        let inner = Arc::new(Monitor::hoare("inner", false));
        let c = Arc::new(Cond::new("inner-cond"));

        let (o1, i1, c1) = (Arc::clone(&outer), Arc::clone(&inner), Arc::clone(&c));
        sim.spawn("nester", move |ctx| {
            o1.enter(ctx, |_| {
                i1.enter(ctx, |imc| {
                    while !imc.state(|s| *s) {
                        imc.wait(&c1); // releases inner, but NOT outer
                    }
                });
            });
        });
        let (o2, i2, c2) = (Arc::clone(&outer), Arc::clone(&inner), Arc::clone(&c));
        sim.spawn("helper", move |ctx| {
            ctx.yield_now();
            // Must pass through the outer monitor to reach the inner one,
            // exactly as in the hierarchically structured resource case.
            o2.enter(ctx, |_| {
                i2.enter(ctx, |imc| {
                    imc.state(|s| *s = true);
                    imc.signal(&c2);
                });
            });
        });
        let err = sim.run().expect_err("nested monitor call must deadlock");
        assert!(err.is_deadlock());
    }

    #[test]
    fn conditions_hold_under_random_schedules() {
        // Bounded-counter producer/consumer, 10 random seeds: the counter
        // never exceeds the bound or goes negative.
        for seed in 0..10 {
            let mut sim = Sim::new();
            sim.set_policy(RandomPolicy::new(seed));
            let m = Arc::new(Monitor::hoare("m", 0i64));
            let not_full = Arc::new(Cond::new("nf"));
            let not_empty = Arc::new(Cond::new("ne"));
            const BOUND: i64 = 3;
            for p in 0..2 {
                let (m, nf, ne) = (
                    Arc::clone(&m),
                    Arc::clone(&not_full),
                    Arc::clone(&not_empty),
                );
                sim.spawn(&format!("prod{p}"), move |ctx| {
                    for _ in 0..10 {
                        m.enter(ctx, |mc| {
                            while mc.state(|n| *n) >= BOUND {
                                mc.wait(&nf);
                            }
                            mc.state(|n| {
                                *n += 1;
                                assert!(*n <= BOUND);
                            });
                            mc.signal(&ne);
                        });
                    }
                });
            }
            for c in 0..2 {
                let (m, nf, ne) = (
                    Arc::clone(&m),
                    Arc::clone(&not_full),
                    Arc::clone(&not_empty),
                );
                sim.spawn(&format!("cons{c}"), move |ctx| {
                    for _ in 0..10 {
                        m.enter(ctx, |mc| {
                            while mc.state(|n| *n) == 0 {
                                mc.wait(&ne);
                            }
                            mc.state(|n| {
                                *n -= 1;
                                assert!(*n >= 0);
                            });
                            mc.signal(&nf);
                        });
                    }
                });
            }
            sim.run().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(*m.state.lock(), 0);
        }
    }

    /// Timed-wait withdrawal under both withdrawal-capable disciplines: a
    /// consumer whose condition is never signalled times out, re-acquires
    /// possession, reads consistent state, and the monitor keeps working
    /// for later entrants.
    #[test]
    fn wait_by_withdraws_and_reacquires() {
        for signaling in [Signaling::Hoare, Signaling::SignalAndContinue] {
            let mut sim = Sim::new();
            let m = Arc::new(Monitor::new("buf", signaling, 0u32));
            let nonzero = Arc::new(Cond::new("nonzero"));
            let (m2, c2) = (Arc::clone(&m), Arc::clone(&nonzero));
            sim.spawn("consumer", move |ctx| {
                let got = m2.enter(ctx, |mc| {
                    let signalled = mc.wait_by(&c2, 3u64);
                    assert!(!signalled, "nobody signals");
                    mc.state(|s| *s)
                });
                assert_eq!(got, 0);
            });
            let m3 = Arc::clone(&m);
            sim.spawn("late-entrant", move |ctx| {
                ctx.sleep(10);
                m3.enter(ctx, |mc| mc.state(|s| *s += 1));
            });
            sim.run().unwrap_or_else(|e| panic!("{signaling:?}: {e}"));
            assert_eq!(*m.state.lock(), 1, "{signaling:?}: monitor still works");
            assert!(nonzero.is_empty(), "{signaling:?}: no leaked registration");
        }
    }

    /// A signal delivered before the timeout elapses wins the race: the
    /// timed waiter reports `true` and (Hoare) resumes with the signalled
    /// condition guaranteed.
    #[test]
    fn signal_beats_timeout() {
        for signaling in [Signaling::Hoare, Signaling::SignalAndContinue] {
            let mut sim = Sim::new();
            let m = Arc::new(Monitor::new("m", signaling, false));
            let ready = Arc::new(Cond::new("ready"));
            let (m2, c2) = (Arc::clone(&m), Arc::clone(&ready));
            sim.spawn("waiter", move |ctx| {
                m2.enter(ctx, |mc| {
                    let signalled = mc.wait_by(&c2, 100u64);
                    assert!(signalled);
                    assert!(mc.state(|s| *s), "state updated by the signaller");
                });
            });
            let (m3, c3) = (Arc::clone(&m), Arc::clone(&ready));
            sim.spawn("signaller", move |ctx| {
                ctx.yield_now();
                m3.enter(ctx, |mc| {
                    mc.state(|s| *s = true);
                    mc.signal(&c3);
                });
            });
            sim.run().unwrap_or_else(|e| panic!("{signaling:?}: {e}"));
        }
    }

    /// The timeout-vs-signal race, explored exhaustively: across *every*
    /// schedule a Hoare signaller may find the condition queue holding only
    /// a stale (timed-out, not yet withdrawn) entry. The no-op-signal path
    /// must keep possession with the signaller, never panic, and never leak
    /// a registration (the kernel's end-of-run hygiene assertion checks the
    /// latter on each schedule).
    #[test]
    fn stale_signal_race_explored_exhaustively() {
        let explorer = bloom_sim::Explorer::new(20_000);
        let stats = explorer.run(
            || {
                let mut sim = Sim::new();
                let m = Arc::new(Monitor::hoare("m", 0u32));
                let c = Arc::new(Cond::new("c"));
                let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
                sim.spawn("timed-waiter", move |ctx| {
                    m2.enter(ctx, |mc| {
                        mc.wait_by(&c2, 2u64);
                        mc.state(|s| *s += 1);
                    });
                });
                let (m3, c3) = (Arc::clone(&m), Arc::clone(&c));
                sim.spawn("signaller", move |ctx| {
                    ctx.sleep(3); // straddles the waiter's timeout
                    m3.enter(ctx, |mc| {
                        mc.signal(&c3);
                        mc.state(|s| *s += 1);
                    });
                });
                sim
            },
            |decisions, result| {
                let report = result
                    .as_ref()
                    .unwrap_or_else(|e| panic!("schedule {decisions:?}: {e}"));
                for p in &report.processes {
                    assert_eq!(
                        p.status,
                        bloom_sim::ProcessStatus::Finished,
                        "schedule {decisions:?}: {} did not finish",
                        p.name
                    );
                }
            },
        );
        assert!(stats.complete, "decision space fully explored");
    }
}
