//! Property-based tests of monitor invariants across signal disciplines.

#![deny(deprecated)]

use bloom_monitor::{Cond, Monitor, Signaling};
use bloom_sim::{RandomPolicy, Sim, SimConfig};
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

fn disciplines() -> impl Strategy<Value = Signaling> {
    prop_oneof![
        Just(Signaling::Hoare),
        Just(Signaling::SignalAndContinue),
        Just(Signaling::SignalAndExit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A bounded counter guarded by a monitor stays within bounds and
    /// conserves all increments/decrements, for every signal discipline,
    /// shape and schedule.
    #[test]
    fn bounded_counter_invariant(
        signaling in disciplines(),
        bound in 1i64..5,
        pairs in 1usize..4,
        ops in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::with_config(SimConfig {
            max_steps: 300_000,
            record_sched_events: false,
            ..SimConfig::default()
        });
        sim.set_policy(RandomPolicy::new(seed));
        let m = Arc::new(Monitor::new("m", signaling, 0i64));
        let not_full = Arc::new(Cond::new("nf"));
        let not_empty = Arc::new(Cond::new("ne"));
        let violated = Arc::new(Mutex::new(false));
        for p in 0..pairs {
            let (mp, nf, ne, bad) = (
                Arc::clone(&m),
                Arc::clone(&not_full),
                Arc::clone(&not_empty),
                Arc::clone(&violated),
            );
            sim.spawn(&format!("prod{p}"), move |ctx| {
                for _ in 0..ops {
                    mp.enter(ctx, |mc| {
                        while mc.state(|n| *n) >= bound {
                            mc.wait(&nf);
                        }
                        mc.state(|n| {
                            *n += 1;
                            if *n > bound {
                                *bad.lock() = true;
                            }
                        });
                        mc.signal(&ne);
                    });
                }
            });
            let (mc2, nf, ne, bad) = (
                Arc::clone(&m),
                Arc::clone(&not_full),
                Arc::clone(&not_empty),
                Arc::clone(&violated),
            );
            sim.spawn(&format!("cons{p}"), move |ctx| {
                for _ in 0..ops {
                    mc2.enter(ctx, |mc| {
                        while mc.state(|n| *n) == 0 {
                            mc.wait(&ne);
                        }
                        mc.state(|n| {
                            *n -= 1;
                            if *n < 0 {
                                *bad.lock() = true;
                            }
                        });
                        mc.signal(&nf);
                    });
                }
            });
        }
        sim.run().map_err(|e| TestCaseError::fail(e.to_string()))?;
        prop_assert!(!*violated.lock());
    }

    /// Monitor bodies are mutually exclusive under every discipline.
    #[test]
    fn possession_is_exclusive(
        signaling in disciplines(),
        procs in 2usize..6,
        seed in any::<u64>(),
    ) {
        let mut sim = Sim::new();
        sim.set_policy(RandomPolicy::new(seed));
        let m = Arc::new(Monitor::new("m", signaling, ()));
        let occupancy = Arc::new(Mutex::new((0u32, 0u32)));
        for i in 0..procs {
            let m = Arc::clone(&m);
            let occupancy = Arc::clone(&occupancy);
            sim.spawn(&format!("w{i}"), move |ctx| {
                for _ in 0..3 {
                    m.enter(ctx, |mc| {
                        {
                            let mut o = occupancy.lock();
                            o.0 += 1;
                            o.1 = o.1.max(o.0);
                        }
                        mc.ctx().yield_now();
                        occupancy.lock().0 -= 1;
                    });
                }
            });
        }
        sim.run().unwrap();
        prop_assert_eq!(occupancy.lock().1, 1);
    }
}
