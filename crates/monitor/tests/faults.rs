//! Crash-safety of monitors under fault injection: possession poisoning,
//! the poison broadcast, and kill-during-wait containment.

#![deny(deprecated)]

use bloom_monitor::{Cond, Monitor};
use bloom_sim::{FaultPlan, Pid, Sim};
use std::sync::Arc;

/// A holder dying mid-body poisons the monitor; entry waiters wake and
/// observe the poison instead of sleeping behind the corpse forever.
#[test]
fn holder_death_poisons_and_wakes_entry_queue() {
    let mut sim = Sim::new();
    // The victim's first scheduling point is the yield inside its body.
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let m = Arc::new(Monitor::hoare("m", 0i64));
    let m2 = Arc::clone(&m);
    sim.spawn("victim", move |ctx| {
        let _ = m2.try_enter(ctx, |mc| {
            mc.state(|s| *s += 1); // state left mid-update
            mc.ctx().yield_now(); // killed here, holding possession
            mc.state(|s| *s -= 1);
        });
    });
    let m3 = Arc::clone(&m);
    sim.spawn("waiter", move |ctx| {
        let p = m3
            .try_enter(ctx, |_| ())
            .expect_err("the crashed holder poisoned the monitor");
        assert_eq!(p.primitive, "m");
        assert_eq!(p.by, Pid(0));
        ctx.emit("poison-observed", &[]);
    });
    let report = sim.run().expect("poisoning contains the crash");
    assert!(m.is_poisoned());
    assert_eq!(report.killed(), vec![Pid(0)]);
    assert_eq!(report.trace.count_user("poison:m"), 1);
    assert_eq!(report.trace.count_user("poison-observed"), 1);
}

/// Dying while waiting on a condition holds nothing: the monitor stays
/// healthy and the dead waiter's queue entry is removed, so a later
/// signal reaches a live waiter.
#[test]
fn death_while_cond_waiting_does_not_poison() {
    for kind in ["hoare", "mesa"] {
        let mut sim = Sim::new();
        sim.set_fault_plan(FaultPlan::new().kill("victim", 2));
        let m = Arc::new(match kind {
            "hoare" => Monitor::hoare("m", false),
            _ => Monitor::mesa("m", false),
        });
        let c = Arc::new(Cond::new("c"));
        let (m1, c1) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("victim", move |ctx| {
            m1.enter(ctx, |mc| {
                // Point 1 is somewhere in entry; make the park the 2nd stop:
                // enter is uncontended, so stop 1 is this yield and stop 2
                // the park inside wait.
                mc.ctx().yield_now();
                while !mc.state(|s| *s) {
                    mc.wait(&c1);
                }
            });
        });
        let (m2, c2) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("peer", move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            m2.enter(ctx, |mc| {
                while !mc.state(|s| *s) {
                    mc.wait(&c2);
                }
                mc.ctx().emit("peer-woken", &[]);
            });
        });
        let (m3, c3) = (Arc::clone(&m), Arc::clone(&c));
        sim.spawn("signaller", move |ctx| {
            for _ in 0..5 {
                ctx.yield_now();
            }
            m3.enter(ctx, |mc| {
                mc.state(|s| *s = true);
                mc.signal(&c3);
            });
        });
        let report = sim.run().expect("{kind}: no wedge, no poison");
        assert!(!m.is_poisoned(), "{kind}: a cond waiter holds nothing");
        assert_eq!(
            report.trace.count_user("peer-woken"),
            1,
            "{kind}: the signal reaches the live waiter, not the corpse"
        );
    }
}

/// A holder dying while registered conditions have waiters broadcasts the
/// poison to them too; `wait_checked` surfaces it as a value.
#[test]
fn poison_broadcast_reaches_registered_cond_waiters() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 2));
    let m = Arc::new(Monitor::mesa("m", false));
    let c = Arc::new(Cond::new("c"));
    m.register_cond(&c);
    let (m1, c1) = (Arc::clone(&m), Arc::clone(&c));
    sim.spawn("cond-waiter", move |ctx| {
        let r = m1.try_enter(ctx, |mc| {
            while !mc.state(|s| *s) {
                if let Err(p) = mc.wait_checked(&c1) {
                    assert_eq!(p.primitive, "m");
                    ctx.emit("poisoned-while-waiting", &[]);
                    return;
                }
            }
        });
        assert!(r.is_ok(), "entry itself succeeded before the poison");
    });
    let m2 = Arc::clone(&m);
    sim.spawn("victim", move |ctx| {
        ctx.yield_now(); // let the waiter get onto the condition
        m2.enter(ctx, |mc| {
            mc.ctx().yield_now(); // killed here, holding possession
            mc.state(|s| *s = true);
        });
    });
    let report = sim.run().expect("broadcast prevents the wedge");
    assert_eq!(report.trace.count_user("poisoned-while-waiting"), 1);
    assert_eq!(report.trace.count_user("poison-seen:m"), 1);
}

/// Without registration, a condition's waiters are *not* woken by the
/// poison — the run ends in a reported deadlock (contained, not silent).
#[test]
fn unregistered_cond_waiters_deadlock_loudly() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 2));
    let m = Arc::new(Monitor::mesa("m", false));
    let c = Arc::new(Cond::new("c"));
    let (m1, c1) = (Arc::clone(&m), Arc::clone(&c));
    sim.spawn("cond-waiter", move |ctx| {
        let _ = m1.try_enter(ctx, |mc| {
            while !mc.state(|s| *s) {
                let _ = mc.wait_checked(&c1);
            }
        });
    });
    let m2 = Arc::clone(&m);
    sim.spawn("victim", move |ctx| {
        ctx.yield_now();
        m2.enter(ctx, |mc| {
            mc.ctx().yield_now();
            mc.state(|s| *s = true);
        });
    });
    let err = sim
        .run()
        .expect_err("nobody signals the orphaned condition");
    assert!(err.is_deadlock());
}

/// Poison is sticky: entrants arriving long after the crash still get the
/// verdict, and plain `enter` fails loudly rather than proceeding.
#[test]
fn poison_is_sticky_for_late_entrants() {
    let mut sim = Sim::new();
    sim.set_fault_plan(FaultPlan::new().kill("victim", 1));
    let m = Arc::new(Monitor::signal_and_exit("m", ()));
    let m1 = Arc::clone(&m);
    sim.spawn("victim", move |ctx| {
        let _ = m1.try_enter(ctx, |mc| mc.ctx().yield_now());
    });
    for i in 0..2 {
        let m = Arc::clone(&m);
        sim.spawn(&format!("late{i}"), move |ctx| {
            ctx.yield_now();
            ctx.yield_now();
            assert!(m.try_enter(ctx, |_| ()).is_err());
            ctx.emit("refused", &[]);
        });
    }
    let report = sim.run().expect("no wedge");
    assert_eq!(report.trace.count_user("refused"), 2);
}
